//! # rupam-faults
//!
//! The fault model: deterministic, seeded *chaos scripts* injected onto
//! the simulation calendar, and the *heartbeat failure detector* the RM
//! uses to turn missing heartbeats into `suspect` / `dead` declarations.
//!
//! Everything here is pure data + state machines — the engine owns the
//! clock and drives [`FailureDetector::observe`] / [`FailureDetector::
//! evaluate`] from its heartbeat events, and schedules each
//! [`FaultSpec`] of the script as a calendar event. With an empty
//! [`FaultScript`] the subsystem is a strict no-op: the detector is
//! never constructed and no fault event is ever scheduled, so healthy
//! runs are byte-identical to runs built without this crate.
//!
//! Determinism: a script is a *sorted* list of `(time, node, kind)`
//! triples; same seed + same script ⇒ the same calendar, the same
//! detector transitions, the same recovery decisions.

#![warn(missing_docs)]

use rupam_cluster::NodeId;
use rupam_simcore::time::{SimDuration, SimTime};

/// RM-visible liveness of one node, as judged by heartbeat freshness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeHealth {
    /// Heartbeats are fresh.
    Alive,
    /// Heartbeats are late past the suspect threshold; the node still
    /// holds its tasks but speculation treats it as a straggler source.
    Suspect,
    /// Heartbeats are late past the dead threshold; the node is evicted
    /// from every ranking and its work is rescheduled.
    Dead,
}

/// What a scripted fault does to its target node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The node dies: running attempts are killed, its cache and shuffle
    /// outputs are lost, heartbeats stop until a `Restart`.
    Crash,
    /// A crashed node comes back empty (fresh executor, cold cache) and
    /// resumes heartbeating.
    Restart,
    /// Every resource on the node runs `factor`× slower for `secs`
    /// seconds (CPU, disk, network alike — e.g. a co-tenant burst).
    Slowdown {
        /// Multiplier on phase service times (2.0 = half speed).
        factor: f64,
        /// How long the slowdown lasts, in seconds.
        secs: f64,
    },
    /// The node keeps computing but its heartbeats are lost for `secs`
    /// seconds (network partition); the detector will declare it
    /// suspect, then dead, then re-admit it once heartbeats resume.
    HeartbeatDropout {
        /// How long heartbeats are suppressed, in seconds.
        secs: f64,
    },
    /// For `secs` seconds the node randomly OOM-kills its hungriest
    /// running attempt with probability `prob` per check (~1 s cadence),
    /// modelling a host with a broken memory controller or a noisy
    /// co-tenant triggering the kernel OOM killer.
    FlakyOom {
        /// How long the flaky window lasts, in seconds.
        secs: f64,
        /// Per-check kill probability in `[0, 1]`.
        prob: f64,
    },
    /// The provider reclaims a spot node: the node keeps running for a
    /// `notice_secs` drain window (during which nothing new may launch),
    /// then the crash path fires — running attempts die, cache and
    /// shuffle outputs are lost. The elastic layer draws these from its
    /// price process, but they can also be scripted directly.
    Preempt {
        /// Drain-notice window between the notice and the reclaim, in
        /// seconds (the cloud's "two-minute warning", scaled down).
        notice_secs: f64,
    },
}

impl FaultKind {
    /// Stable short code used in decision traces and CSV exports.
    pub fn code(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Restart => "restart",
            FaultKind::Slowdown { .. } => "slowdown",
            FaultKind::HeartbeatDropout { .. } => "dropout",
            FaultKind::FlakyOom { .. } => "flaky-oom",
            FaultKind::Preempt { .. } => "preempt",
        }
    }
}

/// One scripted fault: at time `at`, do `kind` to `node`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Injection time.
    pub at: SimTime,
    /// Target node.
    pub node: NodeId,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic chaos script: fault events sorted by injection time
/// (ties keep insertion order, matching the calendar's FIFO tie-break).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultScript {
    events: Vec<FaultSpec>,
}

impl FaultScript {
    /// An empty script (the healthy-cluster default).
    pub fn empty() -> Self {
        FaultScript::default()
    }

    /// A script from the given events, stably sorted by time.
    pub fn new(mut events: Vec<FaultSpec>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultScript { events }
    }

    /// Whether the script injects nothing (faults layer fully disabled).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events in injection order.
    pub fn events(&self) -> &[FaultSpec] {
        &self.events
    }

    /// The `i`-th event in injection order.
    pub fn get(&self, i: usize) -> Option<&FaultSpec> {
        self.events.get(i)
    }

    /// Canned scenario: `node` crashes at `at_secs`, optionally coming
    /// back `restart_after_secs` later.
    pub fn one_node_crash(node: NodeId, at_secs: f64, restart_after_secs: Option<f64>) -> Self {
        let mut events = vec![FaultSpec {
            at: SimTime::from_secs_f64(at_secs),
            node,
            kind: FaultKind::Crash,
        }];
        if let Some(gap) = restart_after_secs {
            events.push(FaultSpec {
                at: SimTime::from_secs_f64(at_secs + gap),
                node,
                kind: FaultKind::Restart,
            });
        }
        FaultScript::new(events)
    }

    /// Canned scenario: two nodes turn flaky-OOM at `at_secs` for
    /// `secs`, each killing its hungriest attempt with probability
    /// `prob` per check, with heartbeat dropouts layered on the first.
    pub fn two_node_flaky(a: NodeId, b: NodeId, at_secs: f64, secs: f64, prob: f64) -> Self {
        FaultScript::new(vec![
            FaultSpec {
                at: SimTime::from_secs_f64(at_secs),
                node: a,
                kind: FaultKind::FlakyOom { secs, prob },
            },
            FaultSpec {
                at: SimTime::from_secs_f64(at_secs),
                node: b,
                kind: FaultKind::FlakyOom { secs, prob },
            },
            FaultSpec {
                at: SimTime::from_secs_f64(at_secs + secs * 0.25),
                node: a,
                kind: FaultKind::HeartbeatDropout { secs: secs * 0.25 },
            },
        ])
    }

    /// Parse the fault-script TOML dialect documented in the README:
    /// a sequence of `[[fault]]` tables with `at` (seconds), `node`
    /// (index) and `kind` keys, plus kind-specific parameters
    /// (`factor`/`secs` for `slowdown`, `secs` for `dropout`,
    /// `secs`/`prob` for `flaky-oom`). `#` starts a comment. The parser
    /// is hand-rolled — the build is offline and the grammar is tiny.
    pub fn parse_toml(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        // fields of the table currently being assembled
        let mut table: Option<Vec<(String, String)>> = None;
        let mut flush = |table: &mut Option<Vec<(String, String)>>| -> Result<(), String> {
            if let Some(fields) = table.take() {
                events.push(Self::spec_from_fields(&fields)?);
            }
            Ok(())
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[fault]]" {
                flush(&mut table)?;
                table = Some(Vec::new());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {}: expected `key = value`: {raw}",
                    lineno + 1
                ));
            };
            let Some(fields) = table.as_mut() else {
                return Err(format!(
                    "line {}: `{}` outside a [[fault]] table",
                    lineno + 1,
                    key.trim()
                ));
            };
            fields.push((
                key.trim().to_string(),
                value.trim().trim_matches('"').to_string(),
            ));
        }
        flush(&mut table)?;
        Ok(FaultScript::new(events))
    }

    /// Format the script back into the `[[fault]]` TOML dialect that
    /// [`parse_toml`](Self::parse_toml) reads. The two string tables are
    /// hand-matched; the round-trip test below keeps them honest when a
    /// new kind is added.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str("[[fault]]\n");
            out.push_str(&format!("at = {}\n", e.at.as_secs_f64()));
            out.push_str(&format!("node = {}\n", e.node.index()));
            out.push_str(&format!("kind = \"{}\"\n", e.kind.code()));
            match e.kind {
                FaultKind::Crash | FaultKind::Restart => {}
                FaultKind::Slowdown { factor, secs } => {
                    out.push_str(&format!("factor = {factor}\n"));
                    out.push_str(&format!("secs = {secs}\n"));
                }
                FaultKind::HeartbeatDropout { secs } => {
                    out.push_str(&format!("secs = {secs}\n"));
                }
                FaultKind::FlakyOom { secs, prob } => {
                    out.push_str(&format!("secs = {secs}\n"));
                    out.push_str(&format!("prob = {prob}\n"));
                }
                FaultKind::Preempt { notice_secs } => {
                    out.push_str(&format!("notice = {notice_secs}\n"));
                }
            }
            out.push('\n');
        }
        out
    }

    fn spec_from_fields(fields: &[(String, String)]) -> Result<FaultSpec, String> {
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
        };
        let num = |key: &str| -> Result<f64, String> {
            get(key)
                .ok_or_else(|| format!("[[fault]] missing `{key}`"))?
                .parse::<f64>()
                .map_err(|e| format!("[[fault]] bad `{key}`: {e}"))
        };
        let at = num("at")?;
        if !(at.is_finite() && at >= 0.0) {
            return Err(format!("[[fault]] bad `at`: {at}"));
        }
        let node = NodeId(num("node")? as usize);
        let kind = match get("kind").ok_or("[[fault]] missing `kind`")? {
            "crash" => FaultKind::Crash,
            "restart" => FaultKind::Restart,
            "slowdown" => FaultKind::Slowdown {
                factor: num("factor")?,
                secs: num("secs")?,
            },
            "dropout" => FaultKind::HeartbeatDropout { secs: num("secs")? },
            "flaky-oom" => FaultKind::FlakyOom {
                secs: num("secs")?,
                prob: num("prob")?,
            },
            "preempt" => FaultKind::Preempt {
                notice_secs: num("notice")?,
            },
            other => return Err(format!("[[fault]] unknown kind `{other}`")),
        };
        Ok(FaultSpec {
            at: SimTime::from_secs_f64(at),
            node,
            kind,
        })
    }
}

/// Fault-subsystem tunables carried inside the simulation config.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultsConfig {
    /// The chaos script to inject. Empty (the default) disables the
    /// whole subsystem — no detector, no fault events, byte-identical
    /// decision traces to a build without the faults layer.
    pub script: FaultScript,
    /// Heartbeat age past which a node is declared *suspect*.
    pub suspect_after: SimDuration,
    /// Heartbeat age past which a suspect node is declared *dead*.
    pub dead_after: SimDuration,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        FaultsConfig {
            script: FaultScript::empty(),
            suspect_after: SimDuration::from_secs(3),
            dead_after: SimDuration::from_secs(10),
        }
    }
}

/// One node's health transition reported by
/// [`FailureDetector::evaluate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthTransition {
    /// The node whose health changed.
    pub node: NodeId,
    /// Health before the transition.
    pub from: NodeHealth,
    /// Health after the transition.
    pub to: NodeHealth,
    /// Heartbeat age at the moment of the transition.
    pub age: SimDuration,
}

/// The RM's heartbeat failure detector: a per-node
/// `Alive → Suspect → Dead` state machine driven by heartbeat
/// freshness, with re-admission (`→ Alive`) the moment heartbeats
/// resume. Time comes from the caller; the detector holds no clock.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    last_seen: Vec<SimTime>,
    health: Vec<NodeHealth>,
    suspect_after: SimDuration,
    dead_after: SimDuration,
}

impl FailureDetector {
    /// A detector for `nodes` nodes, all alive with a fresh heartbeat
    /// at `now`.
    pub fn new(nodes: usize, cfg: &FaultsConfig, now: SimTime) -> Self {
        assert!(
            cfg.suspect_after <= cfg.dead_after,
            "suspect_after must not exceed dead_after"
        );
        FailureDetector {
            last_seen: vec![now; nodes],
            health: vec![NodeHealth::Alive; nodes],
            suspect_after: cfg.suspect_after,
            dead_after: cfg.dead_after,
        }
    }

    /// Record a heartbeat from `node` at `now`. The caller gates this on
    /// the node actually emitting one (crashed or partitioned nodes
    /// don't).
    pub fn observe(&mut self, node: NodeId, now: SimTime) {
        self.last_seen[node.index()] = now;
    }

    /// Heartbeat age of `node` at `now`.
    pub fn age(&self, node: NodeId, now: SimTime) -> SimDuration {
        now.since(self.last_seen[node.index()])
    }

    /// Current health of `node`.
    pub fn health(&self, node: NodeId) -> NodeHealth {
        self.health[node.index()]
    }

    /// Whether `node` is currently declared dead.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.health[node.index()] == NodeHealth::Dead
    }

    /// Re-evaluate every node against the thresholds at `now`,
    /// returning the transitions in node order. Recovery is immediate:
    /// a fresh heartbeat flips a suspect or dead node straight back to
    /// alive.
    pub fn evaluate(&mut self, now: SimTime) -> Vec<HealthTransition> {
        let mut out = Vec::new();
        for i in 0..self.health.len() {
            let age = now.since(self.last_seen[i]);
            let to = if age >= self.dead_after {
                NodeHealth::Dead
            } else if age >= self.suspect_after {
                NodeHealth::Suspect
            } else {
                NodeHealth::Alive
            };
            let from = self.health[i];
            // death is sticky until a heartbeat actually arrives — a
            // dead node cannot decay back to merely "suspect"
            if from == NodeHealth::Dead && to == NodeHealth::Suspect {
                continue;
            }
            if to != from {
                self.health[i] = to;
                out.push(HealthTransition {
                    node: NodeId(i),
                    from,
                    to,
                    age,
                });
            }
        }
        out
    }

    /// Forcibly mark `node` alive with a fresh heartbeat at `now`
    /// (restart of a crashed node). Returns its previous health.
    pub fn revive(&mut self, node: NodeId, now: SimTime) -> NodeHealth {
        let i = node.index();
        self.last_seen[i] = now;
        std::mem::replace(&mut self.health[i], NodeHealth::Alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaultsConfig {
        FaultsConfig::default()
    }

    #[test]
    fn empty_script_is_empty() {
        assert!(FaultScript::empty().is_empty());
        assert_eq!(FaultsConfig::default().script.len(), 0);
    }

    #[test]
    fn script_sorts_by_time_stably() {
        let s = FaultScript::new(vec![
            FaultSpec {
                at: SimTime::from_secs_f64(9.0),
                node: NodeId(1),
                kind: FaultKind::Crash,
            },
            FaultSpec {
                at: SimTime::from_secs_f64(3.0),
                node: NodeId(0),
                kind: FaultKind::Crash,
            },
            FaultSpec {
                at: SimTime::from_secs_f64(3.0),
                node: NodeId(2),
                kind: FaultKind::Restart,
            },
        ]);
        let order: Vec<usize> = s.events().iter().map(|e| e.node.index()).collect();
        assert_eq!(order, vec![0, 2, 1], "stable sort by time");
    }

    #[test]
    fn parses_the_documented_toml_dialect() {
        let text = r#"
            # two-phase chaos
            [[fault]]
            at = 30.0
            node = 2
            kind = "crash"

            [[fault]]
            at = 90
            node = 2
            kind = "restart"

            [[fault]]
            at = 10.0
            node = 1
            kind = "slowdown"
            factor = 3.0
            secs = 60.0

            [[fault]]
            at = 5.0
            node = 0
            kind = "dropout"  # partition
            secs = 15.0

            [[fault]]
            at = 0.0
            node = 3
            kind = "flaky-oom"
            secs = 120.0
            prob = 0.3
        "#;
        let s = FaultScript::parse_toml(text).expect("parses");
        assert_eq!(s.len(), 5);
        assert_eq!(
            s.events()[0].kind,
            FaultKind::FlakyOom {
                secs: 120.0,
                prob: 0.3
            }
        );
        assert_eq!(
            s.events()[1].kind,
            FaultKind::HeartbeatDropout { secs: 15.0 }
        );
        assert_eq!(
            s.events()[2].kind,
            FaultKind::Slowdown {
                factor: 3.0,
                secs: 60.0
            }
        );
        assert_eq!(s.events()[3].kind, FaultKind::Crash);
        assert_eq!(s.events()[3].node, NodeId(2));
        assert_eq!(s.events()[4].kind, FaultKind::Restart);
        assert_eq!(s.events()[4].at, SimTime::from_secs_f64(90.0));
    }

    #[test]
    fn toml_round_trips_every_kind() {
        // One spec per FaultKind variant: formatting then re-parsing
        // must reproduce the script exactly. This is the tripwire for
        // the hand-matched parse/format string tables — a new kind that
        // only updates one side fails here instead of silently skewing.
        let script = FaultScript::new(vec![
            FaultSpec {
                at: SimTime::from_secs_f64(5.0),
                node: NodeId(0),
                kind: FaultKind::Crash,
            },
            FaultSpec {
                at: SimTime::from_secs_f64(12.5),
                node: NodeId(1),
                kind: FaultKind::Restart,
            },
            FaultSpec {
                at: SimTime::from_secs_f64(20.0),
                node: NodeId(2),
                kind: FaultKind::Slowdown {
                    factor: 2.5,
                    secs: 30.0,
                },
            },
            FaultSpec {
                at: SimTime::from_secs_f64(25.0),
                node: NodeId(3),
                kind: FaultKind::HeartbeatDropout { secs: 8.0 },
            },
            FaultSpec {
                at: SimTime::from_secs_f64(40.0),
                node: NodeId(4),
                kind: FaultKind::FlakyOom {
                    secs: 60.0,
                    prob: 0.125,
                },
            },
            FaultSpec {
                at: SimTime::from_secs_f64(55.0),
                node: NodeId(5),
                kind: FaultKind::Preempt { notice_secs: 6.0 },
            },
        ]);
        let text = script.to_toml();
        let back = FaultScript::parse_toml(&text).expect("formatter output parses");
        assert_eq!(back, script, "parse(to_toml(s)) == s");
        // and the formatter is stable: format → parse → format is a
        // fixed point
        assert_eq!(back.to_toml(), text);
    }

    #[test]
    fn parses_preempt_kind() {
        let s = FaultScript::parse_toml(
            "[[fault]]\nat = 3.0\nnode = 1\nkind = \"preempt\"\nnotice = 5.0",
        )
        .expect("parses");
        assert_eq!(s.events()[0].kind, FaultKind::Preempt { notice_secs: 5.0 });
        assert!(
            FaultScript::parse_toml("[[fault]]\nat = 3.0\nnode = 1\nkind = \"preempt\"").is_err(),
            "preempt needs notice"
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(
            FaultScript::parse_toml("at = 1.0").is_err(),
            "key before table"
        );
        assert!(
            FaultScript::parse_toml("[[fault]]\nat = 1.0\nnode = 0").is_err(),
            "missing kind"
        );
        assert!(
            FaultScript::parse_toml("[[fault]]\nat = 1.0\nnode = 0\nkind = \"melt\"").is_err(),
            "unknown kind"
        );
        assert!(
            FaultScript::parse_toml("[[fault]]\nat = 1.0\nnode = 0\nkind = \"slowdown\"").is_err(),
            "slowdown needs factor/secs"
        );
        assert!(FaultScript::parse_toml("[[fault]]\nnonsense").is_err());
    }

    #[test]
    fn detector_walks_alive_suspect_dead_and_back() {
        let mut d = FailureDetector::new(2, &cfg(), SimTime::ZERO);
        let t = SimTime::from_secs_f64;
        // node 1 keeps heartbeating, node 0 goes silent
        d.observe(NodeId(1), t(2.0));
        assert!(d.evaluate(t(2.0)).is_empty());
        let tr = d.evaluate(t(4.0));
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].node, NodeId(0));
        assert_eq!(tr[0].to, NodeHealth::Suspect);
        assert_eq!(tr[0].age, SimDuration::from_secs(4));
        d.observe(NodeId(1), t(4.0));
        let tr = d.evaluate(t(11.0));
        // node 0 dead; node 1 suspect (7 s > 3 s)
        assert_eq!(tr.len(), 2);
        assert_eq!((tr[0].node, tr[0].to), (NodeId(0), NodeHealth::Dead));
        assert_eq!((tr[1].node, tr[1].to), (NodeId(1), NodeHealth::Suspect));
        // heartbeats resume: both flip straight back to alive
        d.observe(NodeId(0), t(12.0));
        d.observe(NodeId(1), t(12.0));
        let tr = d.evaluate(t(12.0));
        assert_eq!(tr.len(), 2);
        assert!(tr.iter().all(|x| x.to == NodeHealth::Alive));
        assert_eq!(tr[0].from, NodeHealth::Dead);
    }

    #[test]
    fn death_is_sticky_without_heartbeats() {
        let mut d = FailureDetector::new(1, &cfg(), SimTime::ZERO);
        let t = SimTime::from_secs_f64;
        d.evaluate(t(20.0));
        assert!(d.is_dead(NodeId(0)));
        // no heartbeat arrives: still dead, no transition
        assert!(d.evaluate(t(21.0)).is_empty());
        assert!(d.is_dead(NodeId(0)));
        assert_eq!(d.age(NodeId(0), t(21.0)), SimDuration::from_secs(21));
    }

    #[test]
    fn revive_resets_health_and_freshness() {
        let mut d = FailureDetector::new(1, &cfg(), SimTime::ZERO);
        let t = SimTime::from_secs_f64;
        d.evaluate(t(30.0));
        assert_eq!(d.revive(NodeId(0), t(30.0)), NodeHealth::Dead);
        assert_eq!(d.health(NodeId(0)), NodeHealth::Alive);
        assert!(d.evaluate(t(31.0)).is_empty());
    }

    #[test]
    fn canned_scenarios_are_well_formed() {
        let s = FaultScript::one_node_crash(NodeId(3), 30.0, Some(60.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[1].kind, FaultKind::Restart);
        assert_eq!(s.events()[1].at, SimTime::from_secs_f64(90.0));
        let s = FaultScript::two_node_flaky(NodeId(1), NodeId(2), 10.0, 80.0, 0.25);
        assert_eq!(s.len(), 3);
        assert!(FaultScript::one_node_crash(NodeId(0), 5.0, None).len() == 1);
    }
}
