//! Logistic Regression (SparkBench `LogisticRegression`, Table III: 6 GB).
//!
//! The classic iterative Spark workload: the training set is cached after
//! the first pass, then every iteration runs one compute-heavy gradient
//! stage over the cached partitions plus a tiny tree-aggregate. Compute
//! dominates (the gradient is a dense dot product per sample), shuffles
//! are negligible — exactly the task profile RUPAM routes to fast-clocked
//! nodes, and the workload the paper sweeps in Fig. 6 to show the
//! DB-driven speedup growing with iteration count (up to ≈ 3.4×).

use rupam_cluster::ClusterSpec;
use rupam_dag::app::{Application, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::task::{CacheKey, InputSource, TaskDemand, TaskTemplate};
use rupam_dag::AppBuilder;
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;

use crate::gen;

/// Tunables for the LR generator.
#[derive(Clone, Debug)]
pub struct LrParams {
    /// Training-set size (Table III: 6 GB).
    pub input: ByteSize,
    /// Number of regression iterations.
    pub iterations: usize,
    /// Gradient compute per partition, giga-cycles.
    pub compute_gcycles: f64,
    /// Peak memory per gradient task.
    pub peak_mem: ByteSize,
    /// Demand jitter amplitude.
    pub jitter: f64,
}

impl Default for LrParams {
    fn default() -> Self {
        LrParams {
            input: ByteSize::gib(6),
            iterations: 8,
            compute_gcycles: 30.0,
            peak_mem: ByteSize::mib(512),
            jitter: 0.10,
        }
    }
}

/// Build the LR application and its block placement.
pub fn build(cluster: &ClusterSpec, rngf: &RngFactory, p: &LrParams) -> (Application, DataLayout) {
    assert!(p.iterations >= 1, "LR needs at least one iteration");
    let mut rng = rngf.stream("lr");
    let n = gen::partitions_for(p.input);
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(cluster, &gen::block_sizes(p.input, n), 2, &mut rng);
    let block_bytes = p.input.per_shard(n);

    let mut b = AppBuilder::new("LogisticRegression");
    for iter in 0..p.iterations {
        let j = b.begin_job();
        let gradient: Vec<TaskTemplate> = (0..n)
            .map(|i| {
                let jit = gen::jitter(&mut rng, p.jitter);
                TaskTemplate {
                    index: i,
                    input: InputSource::CachedOrHdfs {
                        key: CacheKey::new("lr/points", i),
                        fallback: blocks[i],
                    },
                    demand: TaskDemand {
                        compute: p.compute_gcycles * jit,
                        input_bytes: block_bytes,
                        shuffle_write: ByteSize::mib(2),
                        peak_mem: p.peak_mem.scale(jit),
                        // deserialised points are ~25% larger than raw
                        cached_bytes: block_bytes.scale(1.25),
                        ..TaskDemand::default()
                    },
                }
            })
            .collect();
        let grad_stage = b.add_stage(
            j,
            format!("gradient iter={iter}"),
            "lr/points",
            StageKind::ShuffleMap,
            vec![],
            gradient,
        );
        b.add_stage(
            j,
            format!("aggregate iter={iter}"),
            "lr/aggregate",
            StageKind::Result,
            vec![grad_stage],
            vec![TaskTemplate {
                index: 0,
                input: InputSource::Shuffle,
                demand: TaskDemand {
                    compute: 1.0,
                    shuffle_read: ByteSize::mib(2 * n as u64),
                    output_bytes: ByteSize::mib(1),
                    peak_mem: ByteSize::mib(512),
                    ..TaskDemand::default()
                },
            }],
        );
    }
    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::lineage::validate_against_cluster;

    #[test]
    fn structure_matches_iterations() {
        let cluster = ClusterSpec::hydra();
        let (app, layout) = build(&cluster, &RngFactory::new(1), &LrParams::default());
        assert_eq!(app.jobs.len(), 8);
        assert_eq!(app.stages.len(), 16);
        // 6 GiB / 128 MiB = 48 gradient tasks per iteration + 1 aggregate
        assert_eq!(app.total_tasks(), 8 * (48 + 1));
        assert_eq!(layout.len(), 48);
        validate_against_cluster(&app, &cluster).unwrap();
    }

    #[test]
    fn gradient_is_compute_dominant() {
        let cluster = ClusterSpec::hydra();
        let (app, _) = build(&cluster, &RngFactory::new(1), &LrParams::default());
        let grad = &app.stages[0].tasks[0].demand;
        assert!(grad.compute > 20.0);
        assert!(grad.shuffle_write < ByteSize::mib(8));
        assert!(!grad.is_gpu_capable());
        assert!(grad.cached_bytes > ByteSize::ZERO, "LR caches its points");
    }

    #[test]
    fn deterministic_per_seed() {
        let cluster = ClusterSpec::hydra();
        let demands = |seed: u64| {
            let (app, _) = build(&cluster, &RngFactory::new(seed), &LrParams::default());
            app.stages[0]
                .tasks
                .iter()
                .map(|t| t.demand.compute)
                .collect::<Vec<_>>()
        };
        assert_eq!(demands(9), demands(9));
        assert_ne!(demands(9), demands(10));
    }

    #[test]
    fn iterations_scale_structure() {
        let cluster = ClusterSpec::hydra();
        let p = LrParams {
            iterations: 3,
            ..LrParams::default()
        };
        let (app, _) = build(&cluster, &RngFactory::new(1), &p);
        assert_eq!(app.jobs.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let p = LrParams {
            iterations: 0,
            ..LrParams::default()
        };
        build(&ClusterSpec::hydra(), &RngFactory::new(1), &p);
    }
}
