//! Triangle Count (SparkBench, Table III: 0.95 GB, 500 K vertices) —
//! multi-phase, shuffle- and memory-heavy graph analytics.
//!
//! Each phase builds neighbourhoods, materialises triads (the expensive,
//! skewed, memory-hungry shuffle) and counts closures. The algorithm
//! runs several passes over the same graph (canonicalised directions,
//! then triad checks), so the stage templates repeat and RUPAM's DB pays
//! off — the paper groups TC with the multi-iteration winners.

use rupam_cluster::ClusterSpec;
use rupam_dag::app::{Application, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::task::{CacheKey, InputSource, TaskDemand, TaskTemplate};
use rupam_dag::AppBuilder;
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;

use crate::gen;

/// Tunables for the Triangle Count generator.
#[derive(Clone, Debug)]
pub struct TriangleParams {
    /// Edge-list size (Table III: 0.95 GB).
    pub input: ByteSize,
    /// Graph partitions.
    pub partitions: usize,
    /// Triad partitions (the wide middle stage).
    pub triad_partitions: usize,
    /// Number of passes over the graph.
    pub phases: usize,
    /// Base peak memory; triads add skewed extra.
    pub base_peak_mem: ByteSize,
    /// Extra memory on hot triad partitions.
    pub hot_peak_mem: ByteSize,
    /// Degree-skew exponent.
    pub skew: f64,
    /// Demand jitter amplitude.
    pub jitter: f64,
}

impl Default for TriangleParams {
    fn default() -> Self {
        TriangleParams {
            input: ByteSize::gib_f64(0.95),
            partitions: 8,
            triad_partitions: 16,
            phases: 3,
            base_peak_mem: ByteSize::mib(700),
            hot_peak_mem: ByteSize::gib(6),
            skew: 1.0,
            jitter: 0.10,
        }
    }
}

/// Build the Triangle Count application and its block placement.
pub fn build(
    cluster: &ClusterSpec,
    rngf: &RngFactory,
    p: &TriangleParams,
) -> (Application, DataLayout) {
    assert!(p.phases >= 1);
    let mut rng = rngf.stream("triangle");
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(
        cluster,
        &gen::block_sizes(p.input, p.partitions),
        2,
        &mut rng,
    );
    let part_bytes = p.input.per_shard(p.partitions);
    let weights = gen::skew_profile(&mut rng, p.triad_partitions, p.skew);
    let wmax = weights.iter().cloned().fold(0.0f64, f64::max);

    let mut b = AppBuilder::new("TriangleCount");
    for phase in 0..p.phases {
        let j = b.begin_job();
        let neighb: Vec<TaskTemplate> = (0..p.partitions)
            .map(|i| {
                let jit = gen::jitter(&mut rng, p.jitter);
                TaskTemplate {
                    index: i,
                    input: InputSource::CachedOrHdfs {
                        key: CacheKey::new("tc/edges", i),
                        fallback: blocks[i],
                    },
                    demand: TaskDemand {
                        compute: 6.0 * jit,
                        input_bytes: part_bytes,
                        shuffle_write: ByteSize::mib(150).scale(jit),
                        peak_mem: ByteSize::mib(700).scale(jit),
                        cached_bytes: part_bytes.scale(1.3),
                        ..TaskDemand::default()
                    },
                }
            })
            .collect();
        let neighb_stage = b.add_stage(
            j,
            format!("neighbourhoods p{phase}"),
            "tc/edges",
            StageKind::ShuffleMap,
            vec![],
            neighb,
        );
        let triad_read =
            ByteSize(150 * 1024 * 1024 * p.partitions as u64 / p.triad_partitions as u64);
        let triads: Vec<TaskTemplate> = (0..p.triad_partitions)
            .map(|i| {
                let w = weights[i];
                let jit = gen::jitter(&mut rng, p.jitter);
                TaskTemplate {
                    index: i,
                    input: InputSource::Shuffle,
                    demand: TaskDemand {
                        compute: 9.0 * (0.5 + 0.5 * w.min(1.5)) * jit,
                        shuffle_read: gen::scaled(triad_read, w.min(2.5)),
                        shuffle_write: ByteSize::mib(120).scale((w * jit).min(2.5)),
                        peak_mem: p.base_peak_mem + p.hot_peak_mem.scale((w / wmax).powi(2) * jit),
                        ..TaskDemand::default()
                    },
                }
            })
            .collect();
        let triad_stage = b.add_stage(
            j,
            format!("triads p{phase}"),
            "tc/triads",
            StageKind::ShuffleMap,
            vec![neighb_stage],
            triads,
        );
        let count_read =
            ByteSize(120 * 1024 * 1024 * p.triad_partitions as u64 / p.partitions as u64);
        let count: Vec<TaskTemplate> = (0..p.partitions)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Shuffle,
                demand: TaskDemand {
                    compute: 3.0 * gen::jitter(&mut rng, p.jitter),
                    shuffle_read: count_read,
                    output_bytes: ByteSize::mib(1),
                    peak_mem: ByteSize::mib(800),
                    ..TaskDemand::default()
                },
            })
            .collect();
        b.add_stage(
            j,
            format!("count p{phase}"),
            "tc/count",
            StageKind::Result,
            vec![triad_stage],
            count,
        );
    }
    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::lineage::validate_against_cluster;

    #[test]
    fn structure() {
        let cluster = ClusterSpec::hydra();
        let (app, layout) = build(&cluster, &RngFactory::new(1), &TriangleParams::default());
        assert_eq!(app.jobs.len(), 3);
        assert_eq!(app.stages.len(), 9);
        assert_eq!(app.total_tasks(), 3 * (8 + 16 + 8));
        assert_eq!(layout.len(), 8);
        validate_against_cluster(&app, &cluster).unwrap();
    }

    #[test]
    fn triads_are_the_hot_stage() {
        let cluster = ClusterSpec::hydra();
        let (app, _) = build(&cluster, &RngFactory::new(2), &TriangleParams::default());
        let triads = &app.stages[1];
        assert_eq!(triads.template_key, "tc/triads");
        let max_peak = triads
            .tasks
            .iter()
            .map(|t| t.demand.peak_mem.as_gib())
            .fold(0.0f64, f64::max);
        assert!(
            max_peak > 5.0,
            "hot triads must be memory heavy, got {max_peak:.1}"
        );
        let total_read: ByteSize = triads.tasks.iter().map(|t| t.demand.shuffle_read).sum();
        assert!(
            total_read > ByteSize::gib(1),
            "triads shuffle more than the input"
        );
    }

    #[test]
    fn templates_repeat_across_phases() {
        let cluster = ClusterSpec::hydra();
        let (app, _) = build(&cluster, &RngFactory::new(3), &TriangleParams::default());
        assert_eq!(app.stages[0].template_key, app.stages[3].template_key);
        assert_eq!(app.stages[1].template_key, app.stages[4].template_key);
    }

    #[test]
    fn deterministic() {
        let cluster = ClusterSpec::hydra();
        let d = |seed| {
            let (app, _) = build(&cluster, &RngFactory::new(seed), &TriangleParams::default());
            app.stages[1]
                .tasks
                .iter()
                .map(|t| t.demand.peak_mem.bytes())
                .collect::<Vec<_>>()
        };
        assert_eq!(d(8), d(8));
    }
}
