//! TeraSort (SparkBench, Table III: 4 GB) — one-shot, I/O- and
//! shuffle-bound.
//!
//! A range-partitioning map pass that writes the entire input as shuffle
//! data, then a sort-and-write reduce pass. Both sides move the full
//! 4 GB through disk and network with little compute — the profile that
//! benefits from RUPAM routing tasks to the SSD-equipped `thor` nodes
//! (paper Fig. 5: 1.32×; one-shot, so the gain is placement, not
//! learning).

use rupam_cluster::ClusterSpec;
use rupam_dag::app::{Application, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
use rupam_dag::AppBuilder;
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;

use crate::gen;

/// Tunables for the TeraSort generator.
#[derive(Clone, Debug)]
pub struct TeraSortParams {
    /// Data size (Table III: 4 GB).
    pub input: ByteSize,
    /// Map-side partition compute, giga-cycles.
    pub map_compute: f64,
    /// Reduce-side sort compute, giga-cycles.
    pub sort_compute: f64,
    /// Peak memory per task (sort buffers).
    pub peak_mem: ByteSize,
    /// Demand jitter amplitude.
    pub jitter: f64,
}

impl Default for TeraSortParams {
    fn default() -> Self {
        TeraSortParams {
            input: ByteSize::gib(4),
            map_compute: 2.5,
            sort_compute: 4.0,
            peak_mem: ByteSize::gib_f64(1.25),
            jitter: 0.10,
        }
    }
}

/// Build the TeraSort application and its block placement.
pub fn build(
    cluster: &ClusterSpec,
    rngf: &RngFactory,
    p: &TeraSortParams,
) -> (Application, DataLayout) {
    let mut rng = rngf.stream("terasort");
    let n = gen::partitions_for(p.input);
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(cluster, &gen::block_sizes(p.input, n), 2, &mut rng);
    let block_bytes = p.input.per_shard(n);

    let mut b = AppBuilder::new("TeraSort");
    let j = b.begin_job();
    let map: Vec<TaskTemplate> = (0..n)
        .map(|i| {
            let jit = gen::jitter(&mut rng, p.jitter);
            TaskTemplate {
                index: i,
                input: InputSource::Hdfs(blocks[i]),
                demand: TaskDemand {
                    compute: p.map_compute * jit,
                    input_bytes: block_bytes,
                    shuffle_write: block_bytes, // everything is shuffled
                    peak_mem: p.peak_mem.scale(jit),
                    ..TaskDemand::default()
                },
            }
        })
        .collect();
    let map_stage = b.add_stage(
        j,
        "range-partition",
        "terasort/map",
        StageKind::ShuffleMap,
        vec![],
        map,
    );
    let reduce: Vec<TaskTemplate> = (0..n)
        .map(|i| {
            let jit = gen::jitter(&mut rng, p.jitter);
            TaskTemplate {
                index: i,
                input: InputSource::Shuffle,
                demand: TaskDemand {
                    compute: p.sort_compute * jit,
                    shuffle_read: block_bytes,
                    // sorted output written back to HDFS (local disk)
                    shuffle_write: block_bytes,
                    output_bytes: ByteSize::mib(1),
                    peak_mem: p.peak_mem.scale(jit),
                    ..TaskDemand::default()
                },
            }
        })
        .collect();
    b.add_stage(
        j,
        "sort-write",
        "terasort/reduce",
        StageKind::Result,
        vec![map_stage],
        reduce,
    );
    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::lineage::validate_against_cluster;

    #[test]
    fn structure() {
        let cluster = ClusterSpec::hydra();
        let (app, layout) = build(&cluster, &RngFactory::new(1), &TeraSortParams::default());
        assert_eq!(app.jobs.len(), 1, "TeraSort is one-shot");
        assert_eq!(app.total_tasks(), 32 + 32);
        assert_eq!(layout.len(), 32);
        validate_against_cluster(&app, &cluster).unwrap();
    }

    #[test]
    fn everything_is_shuffled() {
        let cluster = ClusterSpec::hydra();
        let (app, _) = build(&cluster, &RngFactory::new(2), &TeraSortParams::default());
        let total_write: ByteSize = app.stages[0]
            .tasks
            .iter()
            .map(|t| t.demand.shuffle_write)
            .sum();
        let total_read: ByteSize = app.stages[1]
            .tasks
            .iter()
            .map(|t| t.demand.shuffle_read)
            .sum();
        assert_eq!(total_write, ByteSize::gib(4));
        assert_eq!(total_read, ByteSize::gib(4));
    }

    #[test]
    fn io_dominates_compute() {
        let cluster = ClusterSpec::hydra();
        let (app, _) = build(&cluster, &RngFactory::new(3), &TeraSortParams::default());
        for stage in &app.stages {
            for t in &stage.tasks {
                assert!(t.demand.compute < 6.0, "TeraSort is not compute-bound");
                assert!(!t.demand.is_gpu_capable());
            }
        }
    }

    #[test]
    fn deterministic() {
        let cluster = ClusterSpec::hydra();
        let d = |seed| {
            let (app, _) = build(&cluster, &RngFactory::new(seed), &TeraSortParams::default());
            app.stages[0]
                .tasks
                .iter()
                .map(|t| t.demand.compute)
                .collect::<Vec<_>>()
        };
        assert_eq!(d(11), d(11));
    }
}
