//! # rupam-workloads
//!
//! SparkBench-shaped workload generators (paper Table III) plus the
//! 4K×4K matrix-multiplication motivation application of §II-B.
//!
//! Each generator builds a [`rupam_dag::Application`] — jobs, stages and
//! per-task demand vectors — plus the HDFS block placement for its input.
//! Demands are derived from each algorithm's structure (iterative vs
//! one-shot, shuffle volumes, skew, GPU kernels, memory footprints) and
//! the paper's measurements; `EXPERIMENTS.md` records the calibration.
//!
//! | Workload | Input (Table III) | Character |
//! |---|---|---|
//! | [`lr`] Logistic Regression | 6 GB | iterative, compute-bound, cacheable |
//! | [`terasort`] TeraSort | 4 GB | one-shot, disk/shuffle-bound |
//! | [`sql`] SQL | 35 GB | per-query one-shot, shuffle+memory heavy |
//! | [`pagerank`] PageRank | 0.95 GB (500 K vertices) | iterative, skewed shuffles, memory heavy |
//! | [`triangle`] Triangle Count | 0.95 GB (500 K vertices) | multi-phase, memory heavy |
//! | [`gramian`] Gramian Matrix | 0.96 GB (8 K × 8 K) | one-shot, GPU-accelerated |
//! | [`kmeans`] KMeans | 3.7 GB | iterative, GPU-accelerated, cacheable |
//! | [`matmul`] MatMul (motivation) | 4 K × 4 K | multi-stage resource phases (Fig. 2) |
//!
//! [`extra`] carries three beyond-paper workloads (ALS, WordCount, SVM)
//! that double as worked examples of the generator API.

#![warn(missing_docs)]

pub mod extra;
pub mod gen;
pub mod gramian;
pub mod kmeans;
pub mod lr;
pub mod matmul;
pub mod pagerank;
pub mod sql;
pub mod suite;
pub mod terasort;
pub mod triangle;

pub use suite::{Workload, WorkloadBuild};
