//! Shared generator utilities: partition sizing, deterministic skew
//! profiles and per-task jitter.

use rand::seq::SliceRandom;
use rand::Rng;
use rupam_simcore::units::ByteSize;

/// HDFS block size used by all workloads (Spark's default split).
pub const BLOCK: ByteSize = ByteSize(128 * 1024 * 1024);

/// Number of partitions an input of `size` splits into (≥ 1).
pub fn partitions_for(size: ByteSize) -> usize {
    size.bytes().div_ceil(BLOCK.bytes()).max(1) as usize
}

/// Even block sizes for an input (`n − 1` full blocks plus a remainder).
pub fn block_sizes(total: ByteSize, n: usize) -> Vec<ByteSize> {
    assert!(n > 0);
    let per = total.bytes() / n as u64;
    let mut sizes = vec![ByteSize(per); n];
    sizes[n - 1] = ByteSize(total.bytes() - per * (n as u64 - 1));
    sizes
}

/// A deterministic Zipf-like skew profile over `n` partitions: weights
/// with mean 1.0, the heaviest partition `w[hot] ≈ skew_ratio ×` the mean,
/// randomly permuted so the hot partitions are not always index 0.
///
/// Models the §II-B2 observation that "tasks in the same stage have
/// different execution times … due to data skewness, shuffle operations".
pub fn skew_profile(rng: &mut impl Rng, n: usize, zipf_s: f64) -> Vec<f64> {
    assert!(n > 0);
    let raw: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-zipf_s)).collect();
    let mean = raw.iter().sum::<f64>() / n as f64;
    let mut weights: Vec<f64> = raw.into_iter().map(|w| w / mean).collect();
    weights.shuffle(rng);
    weights
}

/// Multiplicative jitter in `[1 − amp, 1 + amp]`.
pub fn jitter(rng: &mut impl Rng, amp: f64) -> f64 {
    rupam_simcore::rng::jitter(rng, amp)
}

/// Scale a byte quantity by a weight, guarding non-negative rounding.
pub fn scaled(bytes: ByteSize, w: f64) -> ByteSize {
    bytes.scale(w.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_simcore::RngFactory;

    #[test]
    fn partition_counts() {
        assert_eq!(partitions_for(ByteSize::gib(6)), 48);
        assert_eq!(partitions_for(ByteSize::gib(4)), 32);
        assert_eq!(partitions_for(ByteSize::mib(1)), 1);
        assert_eq!(partitions_for(ByteSize::mib(129)), 2);
    }

    #[test]
    fn block_sizes_sum_to_total() {
        let total = ByteSize::gib_f64(0.95);
        let sizes = block_sizes(total, 8);
        assert_eq!(sizes.len(), 8);
        let sum: ByteSize = sizes.iter().copied().sum();
        assert_eq!(sum, total);
    }

    #[test]
    fn skew_profile_mean_one_and_skewed() {
        let mut rng = RngFactory::new(1).stream("skew");
        let w = skew_profile(&mut rng, 32, 1.1);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9);
        let max = w.iter().cloned().fold(0.0f64, f64::max);
        let min = w.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 5.0,
            "expected heavy skew, got max/min = {}",
            max / min
        );
    }

    #[test]
    fn skew_profile_deterministic() {
        let run = |seed| {
            let mut rng = RngFactory::new(seed).stream("skew");
            skew_profile(&mut rng, 16, 1.0)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn zero_skew_is_flat() {
        let mut rng = RngFactory::new(2).stream("skew");
        let w = skew_profile(&mut rng, 8, 0.0);
        for x in w {
            assert!((x - 1.0).abs() < 1e-12);
        }
    }
}
