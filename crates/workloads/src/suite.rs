//! The evaluation suite (paper Table III): a uniform handle over all
//! seven SparkBench workloads, in the paper's presentation order.

use rupam_cluster::ClusterSpec;
use rupam_dag::app::Application;
use rupam_dag::data::DataLayout;
use rupam_simcore::RngFactory;

/// A built workload: application plus its data placement.
pub type WorkloadBuild = (Application, DataLayout);

/// The seven evaluated workloads (Table III).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// Logistic Regression, 6 GB.
    LogisticRegression,
    /// TeraSort, 4 GB.
    TeraSort,
    /// SQL, 35 GB.
    Sql,
    /// PageRank, 0.95 GB (500 K vertices).
    PageRank,
    /// Triangle Count, 0.95 GB (500 K vertices).
    TriangleCount,
    /// Gramian Matrix, 0.96 GB (8 K × 8 K).
    GramianMatrix,
    /// KMeans, 3.7 GB.
    KMeans,
}

impl Workload {
    /// All workloads in the paper's Fig. 5 order.
    pub const ALL: [Workload; 7] = [
        Workload::LogisticRegression,
        Workload::Sql,
        Workload::TeraSort,
        Workload::PageRank,
        Workload::TriangleCount,
        Workload::GramianMatrix,
        Workload::KMeans,
    ];

    /// Paper's short label.
    pub fn short(self) -> &'static str {
        match self {
            Workload::LogisticRegression => "LR",
            Workload::TeraSort => "TeraSort",
            Workload::Sql => "SQL",
            Workload::PageRank => "PR",
            Workload::TriangleCount => "TC",
            Workload::GramianMatrix => "GM",
            Workload::KMeans => "KMeans",
        }
    }

    /// Full name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::LogisticRegression => "Logistic Regression",
            Workload::TeraSort => "TeraSort",
            Workload::Sql => "SQL",
            Workload::PageRank => "PageRank",
            Workload::TriangleCount => "Triangle Count",
            Workload::GramianMatrix => "Gramian Matrix",
            Workload::KMeans => "KMeans",
        }
    }

    /// Table III input-size column.
    pub fn input_description(self) -> &'static str {
        match self {
            Workload::LogisticRegression => "6 GB",
            Workload::TeraSort => "4 GB",
            Workload::Sql => "35 GB",
            Workload::PageRank => "0.95 GB (500K vertices)",
            Workload::TriangleCount => "0.95 GB (500K vertices)",
            Workload::GramianMatrix => "0.96 GB (8K*8K matrix)",
            Workload::KMeans => "3.7 GB",
        }
    }

    /// Whether the workload runs multiple iterations/phases (the paper's
    /// Fig. 5 analysis splits speed-ups along this line).
    pub fn is_iterative(self) -> bool {
        matches!(
            self,
            Workload::LogisticRegression
                | Workload::PageRank
                | Workload::TriangleCount
                | Workload::KMeans
        )
    }

    /// Build the workload with its default (paper) parameters.
    ///
    /// ```
    /// use rupam_cluster::ClusterSpec;
    /// use rupam_simcore::RngFactory;
    /// use rupam_workloads::Workload;
    ///
    /// let cluster = ClusterSpec::hydra();
    /// let (app, layout) = Workload::TeraSort.build(&cluster, &RngFactory::new(7));
    /// assert_eq!(app.total_tasks(), 64); // 32 maps + 32 reduces
    /// assert_eq!(layout.len(), 32);
    /// ```
    pub fn build(self, cluster: &ClusterSpec, rngf: &RngFactory) -> WorkloadBuild {
        match self {
            Workload::LogisticRegression => {
                crate::lr::build(cluster, rngf, &crate::lr::LrParams::default())
            }
            Workload::TeraSort => {
                crate::terasort::build(cluster, rngf, &crate::terasort::TeraSortParams::default())
            }
            Workload::Sql => crate::sql::build(cluster, rngf, &crate::sql::SqlParams::default()),
            Workload::PageRank => {
                crate::pagerank::build(cluster, rngf, &crate::pagerank::PageRankParams::default())
            }
            Workload::TriangleCount => {
                crate::triangle::build(cluster, rngf, &crate::triangle::TriangleParams::default())
            }
            Workload::GramianMatrix => {
                crate::gramian::build(cluster, rngf, &crate::gramian::GramianParams::default())
            }
            Workload::KMeans => {
                crate::kmeans::build(cluster, rngf, &crate::kmeans::KMeansParams::default())
            }
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::lineage::validate_against_cluster;

    #[test]
    fn all_workloads_build_and_validate_on_hydra() {
        let cluster = ClusterSpec::hydra();
        let rngf = RngFactory::new(1);
        for w in Workload::ALL {
            let (app, layout) = w.build(&cluster, &rngf);
            assert!(app.total_tasks() > 0, "{w} has no tasks");
            assert!(!layout.is_empty(), "{w} placed no blocks");
            validate_against_cluster(&app, &cluster).unwrap_or_else(|e| panic!("{w} invalid: {e}"));
        }
    }

    #[test]
    fn iterative_split_matches_paper() {
        use Workload::*;
        assert!(LogisticRegression.is_iterative());
        assert!(PageRank.is_iterative());
        assert!(TriangleCount.is_iterative());
        assert!(KMeans.is_iterative());
        assert!(!TeraSort.is_iterative());
        assert!(!Sql.is_iterative());
        assert!(!GramianMatrix.is_iterative());
    }

    #[test]
    fn labels_are_unique() {
        let mut shorts: Vec<&str> = Workload::ALL.iter().map(|w| w.short()).collect();
        shorts.sort();
        shorts.dedup();
        assert_eq!(shorts.len(), 7);
        assert_eq!(format!("{}", Workload::PageRank), "PR");
    }

    #[test]
    fn gpu_workloads_are_gm_and_kmeans() {
        let cluster = ClusterSpec::hydra();
        let rngf = RngFactory::new(2);
        for w in Workload::ALL {
            let (app, _) = w.build(&cluster, &rngf);
            let uses_gpu = app
                .stages
                .iter()
                .flat_map(|s| s.tasks.iter())
                .any(|t| t.demand.is_gpu_capable());
            let expected = matches!(w, Workload::GramianMatrix | Workload::KMeans);
            assert_eq!(uses_gpu, expected, "{w}: GPU capability mismatch");
        }
    }
}
