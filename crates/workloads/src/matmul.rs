//! The §II-B motivation application: 4 K × 4 K matrix multiplication on
//! the two-node cluster, instrumented for Fig. 2.
//!
//! The paper's Fig. 2 shows this application's cluster-wide utilisation
//! over time: a CPU spike in the early data-processing stage, memory
//! ramping through the middle, network spikes at the beginning and end
//! (reduce operations), low disk reads but high disk writes around the
//! shuffles. The stage structure below reproduces those phases: a
//! network/disk-heavy load stage that caches the matrices, memory-heavy
//! tile stages, a compute-heavy multiply and a network-heavy reduce.

use rupam_cluster::ClusterSpec;
use rupam_dag::app::{Application, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::task::{CacheKey, InputSource, TaskDemand, TaskTemplate};
use rupam_dag::AppBuilder;
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;

use crate::gen;

/// Tunables for the MatMul motivation app.
#[derive(Clone, Debug)]
pub struct MatMulParams {
    /// Total input (two 4 K × 4 K dense matrices).
    pub input: ByteSize,
    /// Tile partitions.
    pub partitions: usize,
    /// Multiply compute per tile pair, giga-cycles.
    pub multiply_gcycles: f64,
    /// Demand jitter amplitude.
    pub jitter: f64,
}

impl Default for MatMulParams {
    fn default() -> Self {
        MatMulParams {
            // 2 × (4096² × 8 B) = 256 MiB of raw doubles; on-disk text
            // representations in SparkBench are ≈ 4× larger
            input: ByteSize::gib(1),
            partitions: 8,
            multiply_gcycles: 45.0,
            jitter: 0.08,
        }
    }
}

/// Build the MatMul application and its block placement.
pub fn build(
    cluster: &ClusterSpec,
    rngf: &RngFactory,
    p: &MatMulParams,
) -> (Application, DataLayout) {
    let mut rng = rngf.stream("matmul");
    let mut layout = DataLayout::new();
    // single-replica placement: on the 2-node testbed half the input
    // reads cross the network, producing Fig. 2's opening network spike
    let blocks = layout.place_blocks(
        cluster,
        &gen::block_sizes(p.input, p.partitions),
        1,
        &mut rng,
    );
    let part_bytes = p.input.per_shard(p.partitions);

    let mut b = AppBuilder::new("MatMul4Kx4K");
    let j = b.begin_job();

    // stage 1: parse the matrices — CPU spike + network/disk input reads
    let load: Vec<TaskTemplate> = (0..p.partitions)
        .map(|i| {
            let jit = gen::jitter(&mut rng, p.jitter);
            TaskTemplate {
                index: i,
                input: InputSource::Hdfs(blocks[i]),
                demand: TaskDemand {
                    compute: 12.0 * jit, // parsing is CPU-visible
                    input_bytes: part_bytes,
                    shuffle_write: ByteSize::mib(96).scale(jit),
                    peak_mem: ByteSize::gib(2).scale(jit),
                    cached_bytes: part_bytes.scale(0.3), // parsed doubles
                    ..TaskDemand::default()
                },
            }
        })
        .collect();
    let load_stage = b.add_stage(
        j,
        "parse",
        "matmul/parse",
        StageKind::ShuffleMap,
        vec![],
        load,
    );

    // stage 2: tile regrouping — memory-resident, shuffle write heavy
    let tiles: Vec<TaskTemplate> = (0..p.partitions)
        .map(|i| {
            let jit = gen::jitter(&mut rng, p.jitter);
            TaskTemplate {
                index: i,
                input: InputSource::Shuffle,
                demand: TaskDemand {
                    compute: 6.0 * jit,
                    shuffle_read: ByteSize::mib(96),
                    shuffle_write: ByteSize::mib(128).scale(jit),
                    peak_mem: ByteSize::gib(4).scale(jit),
                    ..TaskDemand::default()
                },
            }
        })
        .collect();
    let tile_stage = b.add_stage(
        j,
        "tiles",
        "matmul/tiles",
        StageKind::ShuffleMap,
        vec![load_stage],
        tiles,
    );

    // stage 3: tile multiply — the late CPU surge of Fig. 2a
    let mult: Vec<TaskTemplate> = (0..p.partitions)
        .map(|i| {
            let jit = gen::jitter(&mut rng, p.jitter);
            TaskTemplate {
                index: i,
                input: InputSource::Shuffle,
                demand: TaskDemand {
                    compute: p.multiply_gcycles * jit,
                    shuffle_read: ByteSize::mib(128),
                    shuffle_write: ByteSize::mib(64).scale(jit),
                    peak_mem: ByteSize::gib_f64(3.5).scale(jit),
                    ..TaskDemand::default()
                },
            }
        })
        .collect();
    let mult_stage = b.add_stage(
        j,
        "multiply",
        "matmul/multiply",
        StageKind::ShuffleMap,
        vec![tile_stage],
        mult,
    );

    // stage 4: assemble the result — the closing network spike
    let reduce: Vec<TaskTemplate> = (0..p.partitions / 2)
        .map(|i| TaskTemplate {
            index: i,
            input: InputSource::Shuffle,
            demand: TaskDemand {
                compute: 3.0 * gen::jitter(&mut rng, p.jitter),
                shuffle_read: ByteSize::mib(128),
                output_bytes: ByteSize::mib(32),
                peak_mem: ByteSize::gib(2),
                ..TaskDemand::default()
            },
        })
        .collect();
    b.add_stage(
        j,
        "assemble",
        "matmul/assemble",
        StageKind::Result,
        vec![mult_stage],
        reduce,
    );

    let _ = CacheKey::new("matmul/parse", 0); // cached via cached_bytes above
    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::lineage::validate_against_cluster;

    #[test]
    fn four_stage_pipeline() {
        let cluster = ClusterSpec::two_node_motivation();
        let (app, layout) = build(&cluster, &RngFactory::new(1), &MatMulParams::default());
        assert_eq!(app.jobs.len(), 1);
        assert_eq!(app.stages.len(), 4);
        assert_eq!(app.total_tasks(), 8 + 8 + 8 + 4);
        assert_eq!(layout.len(), 8);
        validate_against_cluster(&app, &cluster).unwrap();
    }

    #[test]
    fn phases_have_distinct_profiles() {
        let cluster = ClusterSpec::two_node_motivation();
        let (app, _) = build(&cluster, &RngFactory::new(2), &MatMulParams::default());
        let stage_compute = |i: usize| {
            app.stages[i]
                .tasks
                .iter()
                .map(|t| t.demand.compute)
                .sum::<f64>()
        };
        // the multiply stage dominates compute
        assert!(stage_compute(2) > stage_compute(0));
        assert!(stage_compute(2) > stage_compute(1) * 3.0);
        // the tile stage holds the most memory
        let peak = |i: usize| {
            app.stages[i]
                .tasks
                .iter()
                .map(|t| t.demand.peak_mem.as_gib())
                .fold(0.0f64, f64::max)
        };
        assert!(peak(1) > peak(0));
        // writes dominate reads on disk overall (Fig. 2c)
        let writes: ByteSize = app
            .stages
            .iter()
            .flat_map(|s| s.tasks.iter())
            .map(|t| t.demand.shuffle_write)
            .sum();
        let input_reads: ByteSize = app
            .stages
            .iter()
            .flat_map(|s| s.tasks.iter())
            .map(|t| t.demand.input_bytes)
            .sum();
        assert!(writes > input_reads);
    }

    #[test]
    fn deterministic() {
        let cluster = ClusterSpec::two_node_motivation();
        let d = |seed| {
            let (app, _) = build(&cluster, &RngFactory::new(seed), &MatMulParams::default());
            app.stages[2]
                .tasks
                .iter()
                .map(|t| t.demand.compute)
                .collect::<Vec<_>>()
        };
        assert_eq!(d(12), d(12));
    }
}
