//! Gramian Matrix (paper §IV: 8 K × 8 K, 0.96 GB) — one-shot,
//! GPU-accelerated dense linear algebra.
//!
//! Computes `AᵀA` by block outer products: one map stage of very heavy
//! BLAS kernels (NVBLAS on a GPU, OpenBLAS on CPUs) and one reduction
//! summing the partial matrices. Crucially the whole workload is a
//! *single* iteration — the paper's Fig. 5 shows RUPAM gaining only
//! ≈ 1.4 % here, because with no second pass the Task Manager never gets
//! to apply what it learned.

use rupam_cluster::ClusterSpec;
use rupam_dag::app::{Application, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
use rupam_dag::AppBuilder;
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;

use crate::gen;

/// Tunables for the Gramian generator.
#[derive(Clone, Debug)]
pub struct GramianParams {
    /// Matrix size on disk (8 K × 8 K doubles ≈ 0.96 GB with overheads).
    pub input: ByteSize,
    /// Row-block partitions.
    pub partitions: usize,
    /// BLAS compute per block, giga-cycles.
    pub compute_gcycles: f64,
    /// Fraction executable as GPU kernels.
    pub gpu_fraction: f64,
    /// Peak memory per block task.
    pub peak_mem: ByteSize,
    /// Demand jitter amplitude.
    pub jitter: f64,
}

impl Default for GramianParams {
    fn default() -> Self {
        GramianParams {
            input: ByteSize::gib_f64(0.96),
            partitions: 16,
            compute_gcycles: 75.0,
            gpu_fraction: 0.92,
            peak_mem: ByteSize::gib_f64(1.2),
            jitter: 0.08,
        }
    }
}

/// Build the Gramian application and its block placement.
pub fn build(
    cluster: &ClusterSpec,
    rngf: &RngFactory,
    p: &GramianParams,
) -> (Application, DataLayout) {
    assert!(p.partitions >= 2);
    let mut rng = rngf.stream("gramian");
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(
        cluster,
        &gen::block_sizes(p.input, p.partitions),
        2,
        &mut rng,
    );
    let block_bytes = p.input.per_shard(p.partitions);

    let mut b = AppBuilder::new("GramianMatrix");
    let j = b.begin_job();
    let outer: Vec<TaskTemplate> = (0..p.partitions)
        .map(|i| {
            let jit = gen::jitter(&mut rng, p.jitter);
            let compute = p.compute_gcycles * jit;
            TaskTemplate {
                index: i,
                input: InputSource::Hdfs(blocks[i]),
                demand: TaskDemand {
                    compute,
                    gpu_kernels: compute * p.gpu_fraction,
                    input_bytes: block_bytes,
                    shuffle_write: ByteSize::mib(64),
                    peak_mem: p.peak_mem.scale(jit),
                    ..TaskDemand::default()
                },
            }
        })
        .collect();
    let outer_stage = b.add_stage(
        j,
        "block-gram",
        "gm/outer",
        StageKind::ShuffleMap,
        vec![],
        outer,
    );
    // the block outer products synchronise per sweep: under a
    // gang-admitting scheduler they launch all-or-nothing
    b.mark_gang(outer_stage);
    let reducers = (p.partitions / 2).max(1);
    let sum: Vec<TaskTemplate> = (0..reducers)
        .map(|i| TaskTemplate {
            index: i,
            input: InputSource::Shuffle,
            demand: TaskDemand {
                compute: 10.0 * gen::jitter(&mut rng, p.jitter),
                shuffle_read: ByteSize::mib(64 * p.partitions as u64 / reducers as u64),
                output_bytes: ByteSize::mib(32),
                peak_mem: ByteSize::gib_f64(1.5),
                ..TaskDemand::default()
            },
        })
        .collect();
    b.add_stage(
        j,
        "sum",
        "gm/sum",
        StageKind::Result,
        vec![outer_stage],
        sum,
    );
    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::lineage::validate_against_cluster;

    #[test]
    fn single_iteration_structure() {
        let cluster = ClusterSpec::hydra();
        let (app, layout) = build(&cluster, &RngFactory::new(1), &GramianParams::default());
        assert_eq!(
            app.jobs.len(),
            1,
            "GM is one-shot — the paper's no-learning case"
        );
        assert_eq!(app.stages.len(), 2);
        assert_eq!(app.total_tasks(), 16 + 8);
        assert_eq!(layout.len(), 16);
        assert!(app.stages[0].gang, "BLAS outer-product stage is gang");
        assert!(!app.stages[1].gang);
        validate_against_cluster(&app, &cluster).unwrap();
    }

    #[test]
    fn blas_blocks_are_gpu_heavy() {
        let cluster = ClusterSpec::hydra();
        let (app, _) = build(&cluster, &RngFactory::new(2), &GramianParams::default());
        let t = &app.stages[0].tasks[0].demand;
        assert!(t.is_gpu_capable());
        assert!(t.gpu_kernels / t.compute > 0.85);
        assert!(t.compute > 50.0, "block gram is very heavy compute");
    }

    #[test]
    fn deterministic() {
        let cluster = ClusterSpec::hydra();
        let d = |seed| {
            let (app, _) = build(&cluster, &RngFactory::new(seed), &GramianParams::default());
            app.stages[0]
                .tasks
                .iter()
                .map(|t| t.demand.compute)
                .collect::<Vec<_>>()
        };
        assert_eq!(d(7), d(7));
        assert_ne!(d(7), d(8));
    }
}
