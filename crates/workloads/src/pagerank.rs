//! PageRank (SparkBench, Table III: 0.95 GB, 500 K vertices) —
//! iterative, skewed, memory-heavy graph processing.
//!
//! Every iteration maps contributions along the (cached) edge partitions
//! and reduces them into new ranks. Power-law vertex degrees skew both
//! the shuffle volumes and per-task memory footprints heavily; the hot
//! partitions exceed what a stock-Spark 14 GB executor can co-host with
//! its slot-mates, producing the OOM fail-and-recover behaviour the
//! paper reports ("default Spark fails with memory error in some runs",
//! large error bars) and RUPAM's biggest Fig. 5 win (≈ 2.5×).

use rupam_cluster::ClusterSpec;
use rupam_dag::app::{Application, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::task::{CacheKey, InputSource, TaskDemand, TaskTemplate};
use rupam_dag::AppBuilder;
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;

use crate::gen;

/// Tunables for the PageRank generator.
#[derive(Clone, Debug)]
pub struct PageRankParams {
    /// Edge-list size (Table III: 0.95 GB).
    pub input: ByteSize,
    /// Graph partitions.
    pub partitions: usize,
    /// Rank iterations.
    pub iterations: usize,
    /// Contribution compute per (unit-weight) partition, giga-cycles.
    pub compute_gcycles: f64,
    /// Mean shuffle volume per partition per iteration.
    pub shuffle_per_partition: ByteSize,
    /// Base task memory.
    pub base_peak_mem: ByteSize,
    /// Additional memory on the hottest partitions (power-law vertices).
    pub hot_peak_mem: ByteSize,
    /// Degree-distribution skew exponent.
    pub skew: f64,
    /// Demand jitter amplitude.
    pub jitter: f64,
}

impl Default for PageRankParams {
    fn default() -> Self {
        PageRankParams {
            input: ByteSize::gib_f64(0.95),
            partitions: 24,
            iterations: 10,
            compute_gcycles: 6.0,
            shuffle_per_partition: ByteSize::mib(250),
            base_peak_mem: ByteSize::gib(1),
            hot_peak_mem: ByteSize::gib(8),
            skew: 1.1,
            jitter: 0.10,
        }
    }
}

/// Build the PageRank application and its block placement.
pub fn build(
    cluster: &ClusterSpec,
    rngf: &RngFactory,
    p: &PageRankParams,
) -> (Application, DataLayout) {
    assert!(p.iterations >= 1 && p.partitions >= 2);
    let mut rng = rngf.stream("pagerank");
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(
        cluster,
        &gen::block_sizes(p.input, p.partitions),
        2,
        &mut rng,
    );
    let part_bytes = p.input.per_shard(p.partitions);
    // one degree-skew profile for the whole run — the graph does not
    // change between iterations
    let weights = gen::skew_profile(&mut rng, p.partitions, p.skew);
    let wmax = weights.iter().cloned().fold(0.0f64, f64::max);

    let mut b = AppBuilder::new("PageRank");
    for iter in 0..p.iterations {
        let j = b.begin_job();
        let contrib: Vec<TaskTemplate> = (0..p.partitions)
            .map(|i| {
                let w = weights[i];
                let jit = gen::jitter(&mut rng, p.jitter);
                TaskTemplate {
                    index: i,
                    input: InputSource::CachedOrHdfs {
                        key: CacheKey::new("pr/edges", i),
                        fallback: blocks[i],
                    },
                    demand: TaskDemand {
                        compute: p.compute_gcycles * (0.5 + 0.5 * w.min(1.5)) * jit,
                        input_bytes: part_bytes,
                        shuffle_write: gen::scaled(p.shuffle_per_partition, (w * jit).min(2.5)),
                        peak_mem: p.base_peak_mem + p.hot_peak_mem.scale((w / wmax) * jit),
                        cached_bytes: part_bytes.scale(1.3),
                        ..TaskDemand::default()
                    },
                }
            })
            .collect();
        let contrib_stage = b.add_stage(
            j,
            format!("contrib iter={iter}"),
            "pr/edges",
            StageKind::ShuffleMap,
            vec![],
            contrib,
        );
        let total_shuffle = p.shuffle_per_partition.bytes() * p.partitions as u64;
        let per_reduce = ByteSize(total_shuffle / p.partitions as u64);
        let ranks: Vec<TaskTemplate> = (0..p.partitions)
            .map(|i| {
                let w = weights[i];
                let jit = gen::jitter(&mut rng, p.jitter);
                TaskTemplate {
                    index: i,
                    input: InputSource::Shuffle,
                    demand: TaskDemand {
                        compute: 3.0 * (0.5 + 0.5 * w.min(1.5)) * jit,
                        shuffle_read: gen::scaled(per_reduce, w.min(2.5)),
                        output_bytes: ByteSize::mib(2),
                        peak_mem: p.base_peak_mem + p.hot_peak_mem.scale(0.85 * (w / wmax) * jit),
                        ..TaskDemand::default()
                    },
                }
            })
            .collect();
        b.add_stage(
            j,
            format!("ranks iter={iter}"),
            "pr/ranks",
            StageKind::Result,
            vec![contrib_stage],
            ranks,
        );
    }
    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::lineage::validate_against_cluster;

    #[test]
    fn structure() {
        let cluster = ClusterSpec::hydra();
        let (app, layout) = build(&cluster, &RngFactory::new(1), &PageRankParams::default());
        assert_eq!(app.jobs.len(), 10);
        assert_eq!(app.total_tasks(), 10 * 48);
        assert_eq!(layout.len(), 24);
        validate_against_cluster(&app, &cluster).unwrap();
    }

    #[test]
    fn hot_partitions_strain_small_executors() {
        let cluster = ClusterSpec::hydra();
        let (app, _) = build(&cluster, &RngFactory::new(2), &PageRankParams::default());
        let peaks: Vec<f64> = app.stages[0]
            .tasks
            .iter()
            .map(|t| t.demand.peak_mem.as_gib())
            .collect();
        let max = peaks.iter().cloned().fold(0.0f64, f64::max);
        let mean = peaks.iter().sum::<f64>() / peaks.len() as f64;
        // the hottest task alone approaches a stock 14 GiB executor's half
        assert!(max > 6.0, "hot partition should be heavy, got {max:.1} GiB");
        assert!(max / mean > 2.0, "memory should be skewed");
        // but fits comfortably in a hulk's 62 GiB executor
        assert!(max < 20.0);
    }

    #[test]
    fn skew_is_stable_across_iterations() {
        let cluster = ClusterSpec::hydra();
        let (app, _) = build(&cluster, &RngFactory::new(3), &PageRankParams::default());
        // the same partition is hot in iteration 0 and iteration 5
        let hot0 = app.stages[0]
            .tasks
            .iter()
            .max_by(|a, b| a.demand.peak_mem.cmp(&b.demand.peak_mem))
            .unwrap()
            .index;
        let hot5 = app.stages[10]
            .tasks
            .iter()
            .max_by(|a, b| a.demand.peak_mem.cmp(&b.demand.peak_mem))
            .unwrap()
            .index;
        assert_eq!(
            hot0, hot5,
            "the graph (and its hot spots) persist across iterations"
        );
    }

    #[test]
    fn deterministic() {
        let cluster = ClusterSpec::hydra();
        let d = |seed| {
            let (app, _) = build(&cluster, &RngFactory::new(seed), &PageRankParams::default());
            app.stages[0]
                .tasks
                .iter()
                .map(|t| t.demand.peak_mem.bytes())
                .collect::<Vec<_>>()
        };
        assert_eq!(d(6), d(6));
        assert_ne!(d(6), d(7));
    }
}
