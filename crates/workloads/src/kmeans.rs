//! KMeans (SparkBench, Table III: 3.7 GB) — iterative, GPU-accelerated.
//!
//! Each iteration assigns points to centroids (a dense distance
//! computation that the paper's BLAS-backed implementation offloads to
//! NVBLAS when a GPU is present) and then reduces new centroids. Points
//! are cached after the first pass. Five iterations (the paper:
//! "KMeans' five iterations enable RUPAM to better match tasks with
//! suitable resources", yielding a 2.49× speedup).

use rupam_cluster::ClusterSpec;
use rupam_dag::app::{Application, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::task::{CacheKey, InputSource, TaskDemand, TaskTemplate};
use rupam_dag::AppBuilder;
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;

use crate::gen;

/// Tunables for the KMeans generator.
#[derive(Clone, Debug)]
pub struct KMeansParams {
    /// Point-set size (Table III: 3.7 GB).
    pub input: ByteSize,
    /// Lloyd iterations.
    pub iterations: usize,
    /// Assignment compute per partition, giga-cycles.
    pub compute_gcycles: f64,
    /// Fraction of the assignment compute that runs as GPU kernels.
    pub gpu_fraction: f64,
    /// Peak memory per assignment task.
    pub peak_mem: ByteSize,
    /// Demand jitter amplitude.
    pub jitter: f64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        KMeansParams {
            input: ByteSize::gib_f64(3.7),
            iterations: 5,
            compute_gcycles: 40.0,
            gpu_fraction: 0.85,
            peak_mem: ByteSize::mib(640),
            jitter: 0.10,
        }
    }
}

/// Build the KMeans application and its block placement.
pub fn build(
    cluster: &ClusterSpec,
    rngf: &RngFactory,
    p: &KMeansParams,
) -> (Application, DataLayout) {
    assert!(p.iterations >= 1);
    assert!((0.0..=1.0).contains(&p.gpu_fraction));
    let mut rng = rngf.stream("kmeans");
    let n = gen::partitions_for(p.input);
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(cluster, &gen::block_sizes(p.input, n), 2, &mut rng);
    let block_bytes = p.input.per_shard(n);

    let mut b = AppBuilder::new("KMeans");
    for iter in 0..p.iterations {
        let j = b.begin_job();
        let assign: Vec<TaskTemplate> = (0..n)
            .map(|i| {
                let jit = gen::jitter(&mut rng, p.jitter);
                let compute = p.compute_gcycles * jit;
                TaskTemplate {
                    index: i,
                    input: InputSource::CachedOrHdfs {
                        key: CacheKey::new("kmeans/points", i),
                        fallback: blocks[i],
                    },
                    demand: TaskDemand {
                        compute,
                        gpu_kernels: compute * p.gpu_fraction,
                        input_bytes: block_bytes,
                        shuffle_write: ByteSize::mib(4),
                        peak_mem: p.peak_mem.scale(jit),
                        cached_bytes: block_bytes.scale(1.25),
                        ..TaskDemand::default()
                    },
                }
            })
            .collect();
        let assign_stage = b.add_stage(
            j,
            format!("assign iter={iter}"),
            "kmeans/points",
            StageKind::ShuffleMap,
            vec![],
            assign,
        );
        b.add_stage(
            j,
            format!("update iter={iter}"),
            "kmeans/update",
            StageKind::Result,
            vec![assign_stage],
            vec![TaskTemplate {
                index: 0,
                input: InputSource::Shuffle,
                demand: TaskDemand {
                    compute: 1.5,
                    shuffle_read: ByteSize::mib(4 * n as u64),
                    output_bytes: ByteSize::mib(1),
                    peak_mem: ByteSize::mib(512),
                    ..TaskDemand::default()
                },
            }],
        );
    }
    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::lineage::validate_against_cluster;

    #[test]
    fn structure() {
        let cluster = ClusterSpec::hydra();
        let (app, layout) = build(&cluster, &RngFactory::new(1), &KMeansParams::default());
        assert_eq!(app.jobs.len(), 5);
        // 3.7 GiB / 128 MiB → 30 partitions
        let n = gen::partitions_for(ByteSize::gib_f64(3.7));
        assert_eq!(n, 30);
        assert_eq!(app.total_tasks(), 5 * (n + 1));
        assert_eq!(layout.len(), n);
        validate_against_cluster(&app, &cluster).unwrap();
    }

    #[test]
    fn assignment_is_gpu_capable() {
        let cluster = ClusterSpec::hydra();
        let (app, _) = build(&cluster, &RngFactory::new(2), &KMeansParams::default());
        let t = &app.stages[0].tasks[0].demand;
        assert!(t.is_gpu_capable());
        assert!(
            t.gpu_kernels < t.compute,
            "kernels are a fraction of total compute"
        );
        assert!(t.gpu_kernels > t.compute * 0.5);
        // the reduce side is not GPU work
        assert!(!app.stages[1].tasks[0].demand.is_gpu_capable());
    }

    #[test]
    fn deterministic() {
        let cluster = ClusterSpec::hydra();
        let d = |seed| {
            let (app, _) = build(&cluster, &RngFactory::new(seed), &KMeansParams::default());
            app.stages[0]
                .tasks
                .iter()
                .map(|t| t.demand.compute)
                .collect::<Vec<_>>()
        };
        assert_eq!(d(4), d(4));
    }
}
