//! SQL (SparkBench, Table III: 35 GB) — per-query one-shot analytics.
//!
//! Each query scans the fact table, shuffles into a hash join (the
//! memory-hungry part) and aggregates. "SQL has only one iteration per
//! SQL query with no data that needs to be preserved across queries, but
//! involves a lot of shuffle operations for data join, so GC is
//! triggered often" (§IV-D) — the paper measures a modest 1.19× for
//! RUPAM here, with *higher* GC and shuffle overheads than stock Spark
//! because RUPAM grows executors to node capacity and trades locality
//! for resource fit.

use rupam_cluster::ClusterSpec;
use rupam_dag::app::{Application, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
use rupam_dag::AppBuilder;
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;

use crate::gen;

/// Tunables for the SQL generator.
#[derive(Clone, Debug)]
pub struct SqlParams {
    /// Fact-table size (Table III: 35 GB).
    pub input: ByteSize,
    /// Number of queries (each its own job).
    pub queries: usize,
    /// Join parallelism.
    pub join_partitions: usize,
    /// Aggregate parallelism.
    pub agg_partitions: usize,
    /// Scan selectivity: shuffle bytes per scanned block.
    pub scan_output: ByteSize,
    /// Peak memory of a join task (hash tables).
    pub join_peak_mem: ByteSize,
    /// Skew exponent on the join keys.
    pub skew: f64,
    /// Demand jitter amplitude.
    pub jitter: f64,
}

impl Default for SqlParams {
    fn default() -> Self {
        SqlParams {
            input: ByteSize::gib(35),
            queries: 4,
            join_partitions: 32,
            agg_partitions: 16,
            scan_output: ByteSize::mib(36),
            join_peak_mem: ByteSize::gib(4),
            skew: 0.8,
            jitter: 0.10,
        }
    }
}

/// Build the SQL application and its block placement.
pub fn build(cluster: &ClusterSpec, rngf: &RngFactory, p: &SqlParams) -> (Application, DataLayout) {
    assert!(p.queries >= 1);
    let mut rng = rngf.stream("sql");
    let n = gen::partitions_for(p.input);
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(cluster, &gen::block_sizes(p.input, n), 2, &mut rng);
    let block_bytes = p.input.per_shard(n);

    let mut b = AppBuilder::new("SQL");
    for q in 0..p.queries {
        let j = b.begin_job();
        // scan + filter
        let scan: Vec<TaskTemplate> = (0..n)
            .map(|i| {
                let jit = gen::jitter(&mut rng, p.jitter);
                TaskTemplate {
                    index: i,
                    input: InputSource::Hdfs(blocks[i]),
                    demand: TaskDemand {
                        compute: 3.0 * jit,
                        input_bytes: block_bytes,
                        shuffle_write: p.scan_output.scale(jit),
                        peak_mem: ByteSize::mib(400).scale(jit),
                        ..TaskDemand::default()
                    },
                }
            })
            .collect();
        let scan_stage = b.add_stage(
            j,
            format!("scan q{q}"),
            "sql/scan",
            StageKind::ShuffleMap,
            vec![],
            scan,
        );
        // hash join over skewed keys
        let total_scanned = p.scan_output.bytes() * n as u64;
        let per_join = ByteSize(total_scanned / p.join_partitions as u64);
        let weights = gen::skew_profile(&mut rng, p.join_partitions, p.skew);
        let wmax = weights.iter().cloned().fold(0.0f64, f64::max);
        let join: Vec<TaskTemplate> = (0..p.join_partitions)
            .map(|i| {
                let w = weights[i];
                let jit = gen::jitter(&mut rng, p.jitter);
                TaskTemplate {
                    index: i,
                    input: InputSource::Shuffle,
                    demand: TaskDemand {
                        compute: 6.0 * w * jit,
                        shuffle_read: gen::scaled(per_join, w),
                        shuffle_write: gen::scaled(ByteSize::mib(50), w),
                        peak_mem: p.join_peak_mem.scale((0.25 + 0.75 * w / wmax) * jit),
                        ..TaskDemand::default()
                    },
                }
            })
            .collect();
        let join_stage = b.add_stage(
            j,
            format!("join q{q}"),
            "sql/join",
            StageKind::ShuffleMap,
            vec![scan_stage],
            join,
        );
        // aggregation
        let agg_read =
            ByteSize(50 * 1024 * 1024 * p.join_partitions as u64 / p.agg_partitions as u64);
        let agg: Vec<TaskTemplate> = (0..p.agg_partitions)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Shuffle,
                demand: TaskDemand {
                    compute: 2.0 * gen::jitter(&mut rng, p.jitter),
                    shuffle_read: agg_read,
                    output_bytes: ByteSize::mib(4),
                    peak_mem: ByteSize::gib(1),
                    ..TaskDemand::default()
                },
            })
            .collect();
        b.add_stage(
            j,
            format!("agg q{q}"),
            "sql/agg",
            StageKind::Result,
            vec![join_stage],
            agg,
        );
    }
    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::lineage::validate_against_cluster;

    #[test]
    fn structure() {
        let cluster = ClusterSpec::hydra();
        let (app, layout) = build(&cluster, &RngFactory::new(1), &SqlParams::default());
        assert_eq!(app.jobs.len(), 4);
        let n = gen::partitions_for(ByteSize::gib(35));
        assert_eq!(n, 280);
        assert_eq!(app.total_tasks(), 4 * (n + 32 + 16));
        assert_eq!(layout.len(), n);
        validate_against_cluster(&app, &cluster).unwrap();
    }

    #[test]
    fn joins_are_memory_hungry_and_skewed() {
        let cluster = ClusterSpec::hydra();
        let (app, _) = build(&cluster, &RngFactory::new(2), &SqlParams::default());
        let join = &app.stages[1];
        assert_eq!(join.template_key, "sql/join");
        let peaks: Vec<f64> = join
            .tasks
            .iter()
            .map(|t| t.demand.peak_mem.as_gib())
            .collect();
        let max = peaks.iter().cloned().fold(0.0f64, f64::max);
        let min = peaks.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max > 3.0,
            "hot join partitions should need > 3 GiB, got {max:.1}"
        );
        assert!(max / min > 1.5, "expected skewed memory needs");
        let reads: Vec<f64> = join
            .tasks
            .iter()
            .map(|t| t.demand.shuffle_read.as_mib())
            .collect();
        let rmax = reads.iter().cloned().fold(0.0f64, f64::max);
        let rmin = reads.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(rmax / rmin > 3.0, "expected skewed shuffle reads");
    }

    #[test]
    fn no_caching_between_queries() {
        let cluster = ClusterSpec::hydra();
        let (app, _) = build(&cluster, &RngFactory::new(3), &SqlParams::default());
        for s in &app.stages {
            for t in &s.tasks {
                assert_eq!(
                    t.demand.cached_bytes,
                    ByteSize::ZERO,
                    "SQL preserves nothing"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let cluster = ClusterSpec::hydra();
        let d = |seed| {
            let (app, _) = build(&cluster, &RngFactory::new(seed), &SqlParams::default());
            app.stages[1]
                .tasks
                .iter()
                .map(|t| t.demand.shuffle_read.bytes())
                .collect::<Vec<_>>()
        };
        assert_eq!(d(4), d(4));
        assert_ne!(d(4), d(5));
    }
}
