//! Beyond-paper workloads.
//!
//! The paper's suite stops at Table III; SparkBench itself carries more
//! applications. These three exercise scheduler behaviours the core
//! suite under-samples and double as worked examples of the generator
//! API:
//!
//! * [`als`] — Alternating Least Squares: *two* alternating cacheable
//!   RDDs per iteration (user factors / item factors), so the cache and
//!   the characteristics DB juggle twice the templates.
//! * [`wordcount`] — the canonical scan→reduce job: pure I/O + light
//!   compute, a clean probe of SSD routing with no memory story at all.
//! * [`svm`] — SVM training: LR-shaped iterations but with a heavy
//!   broadcast (driver → every task) each round, stressing the network
//!   on *every* iteration rather than only at shuffles.

use rupam_cluster::ClusterSpec;
use rupam_dag::app::{Application, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::task::{CacheKey, InputSource, TaskDemand, TaskTemplate};
use rupam_dag::AppBuilder;
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;

use crate::gen;

/// Tunables for the ALS generator.
#[derive(Clone, Debug)]
pub struct AlsParams {
    /// Ratings-matrix size.
    pub input: ByteSize,
    /// Alternation rounds (each round = user solve + item solve).
    pub rounds: usize,
    /// Factor-solve compute per partition, giga-cycles.
    pub solve_gcycles: f64,
    /// Peak memory per solve task.
    pub peak_mem: ByteSize,
    /// Demand jitter amplitude.
    pub jitter: f64,
}

impl Default for AlsParams {
    fn default() -> Self {
        AlsParams {
            input: ByteSize::gib(2),
            rounds: 4,
            solve_gcycles: 18.0,
            peak_mem: ByteSize::mib(768),
            jitter: 0.10,
        }
    }
}

/// Build the ALS application: per round, one stage solving user factors
/// against cached item factors, then one solving item factors against
/// cached user factors.
pub fn als(cluster: &ClusterSpec, rngf: &RngFactory, p: &AlsParams) -> (Application, DataLayout) {
    assert!(p.rounds >= 1);
    let mut rng = rngf.stream("als");
    let n = gen::partitions_for(p.input);
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(cluster, &gen::block_sizes(p.input, n), 2, &mut rng);
    let block_bytes = p.input.per_shard(n);

    let mut b = AppBuilder::new("ALS");
    for round in 0..p.rounds {
        for side in ["user", "item"] {
            let j = b.begin_job();
            let rdd = format!("als/{side}");
            let solve: Vec<TaskTemplate> = (0..n)
                .map(|i| {
                    let jit = gen::jitter(&mut rng, p.jitter);
                    TaskTemplate {
                        index: i,
                        input: InputSource::CachedOrHdfs {
                            key: CacheKey::new(rdd.clone(), i),
                            fallback: blocks[i],
                        },
                        demand: TaskDemand {
                            compute: p.solve_gcycles * jit,
                            input_bytes: block_bytes,
                            shuffle_write: ByteSize::mib(8),
                            peak_mem: p.peak_mem.scale(jit),
                            cached_bytes: block_bytes.scale(1.2),
                            ..TaskDemand::default()
                        },
                    }
                })
                .collect();
            let solve_stage = b.add_stage(
                j,
                format!("solve-{side} r{round}"),
                rdd,
                StageKind::ShuffleMap,
                vec![],
                solve,
            );
            b.add_stage(
                j,
                format!("gather-{side} r{round}"),
                "als/gather",
                StageKind::Result,
                vec![solve_stage],
                vec![TaskTemplate {
                    index: 0,
                    input: InputSource::Shuffle,
                    demand: TaskDemand {
                        compute: 1.0,
                        shuffle_read: ByteSize::mib(8 * n as u64),
                        output_bytes: ByteSize::mib(2),
                        peak_mem: ByteSize::mib(512),
                        ..TaskDemand::default()
                    },
                }],
            );
        }
    }
    (b.build(), layout)
}

/// Tunables for the WordCount generator.
#[derive(Clone, Debug)]
pub struct WordCountParams {
    /// Corpus size.
    pub input: ByteSize,
    /// Reducers.
    pub reducers: usize,
    /// Demand jitter amplitude.
    pub jitter: f64,
}

impl Default for WordCountParams {
    fn default() -> Self {
        WordCountParams {
            input: ByteSize::gib(8),
            reducers: 16,
            jitter: 0.10,
        }
    }
}

/// Build the WordCount application: one scan stage (read-heavy, light
/// compute, small combiner output) and one count reduce.
pub fn wordcount(
    cluster: &ClusterSpec,
    rngf: &RngFactory,
    p: &WordCountParams,
) -> (Application, DataLayout) {
    let mut rng = rngf.stream("wordcount");
    let n = gen::partitions_for(p.input);
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(cluster, &gen::block_sizes(p.input, n), 2, &mut rng);
    let block_bytes = p.input.per_shard(n);

    let mut b = AppBuilder::new("WordCount");
    let j = b.begin_job();
    let scan: Vec<TaskTemplate> = (0..n)
        .map(|i| {
            let jit = gen::jitter(&mut rng, p.jitter);
            TaskTemplate {
                index: i,
                input: InputSource::Hdfs(blocks[i]),
                demand: TaskDemand {
                    compute: 1.5 * jit,
                    input_bytes: block_bytes,
                    shuffle_write: ByteSize::mib(6).scale(jit), // combiner output
                    peak_mem: ByteSize::mib(384),
                    ..TaskDemand::default()
                },
            }
        })
        .collect();
    let scan_stage = b.add_stage(
        j,
        "tokenize",
        "wc/scan",
        StageKind::ShuffleMap,
        vec![],
        scan,
    );
    let count: Vec<TaskTemplate> = (0..p.reducers)
        .map(|i| TaskTemplate {
            index: i,
            input: InputSource::Shuffle,
            demand: TaskDemand {
                compute: 1.0 * gen::jitter(&mut rng, p.jitter),
                shuffle_read: ByteSize(6 * 1024 * 1024 * n as u64 / p.reducers as u64),
                output_bytes: ByteSize::mib(1),
                peak_mem: ByteSize::mib(384),
                ..TaskDemand::default()
            },
        })
        .collect();
    b.add_stage(
        j,
        "count",
        "wc/count",
        StageKind::Result,
        vec![scan_stage],
        count,
    );
    (b.build(), layout)
}

/// Tunables for the SVM generator.
#[derive(Clone, Debug)]
pub struct SvmParams {
    /// Training-set size.
    pub input: ByteSize,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Per-partition compute, giga-cycles.
    pub compute_gcycles: f64,
    /// Broadcast model size received by every task, every iteration.
    pub broadcast: ByteSize,
    /// Demand jitter amplitude.
    pub jitter: f64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            input: ByteSize::gib(4),
            iterations: 6,
            compute_gcycles: 16.0,
            broadcast: ByteSize::mib(96),
            jitter: 0.10,
        }
    }
}

/// Build the SVM application: per iteration, every gradient task first
/// pulls the broadcast model over the network (modelled as remote
/// shuffle input), then computes against cached points.
pub fn svm(cluster: &ClusterSpec, rngf: &RngFactory, p: &SvmParams) -> (Application, DataLayout) {
    assert!(p.iterations >= 1);
    let mut rng = rngf.stream("svm");
    let n = gen::partitions_for(p.input);
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(cluster, &gen::block_sizes(p.input, n), 2, &mut rng);
    let block_bytes = p.input.per_shard(n);

    let mut b = AppBuilder::new("SVM");
    for iter in 0..p.iterations {
        let j = b.begin_job();
        let grad: Vec<TaskTemplate> = (0..n)
            .map(|i| {
                let jit = gen::jitter(&mut rng, p.jitter);
                TaskTemplate {
                    index: i,
                    input: InputSource::CachedOrHdfs {
                        key: CacheKey::new("svm/points", i),
                        fallback: blocks[i],
                    },
                    demand: TaskDemand {
                        compute: p.compute_gcycles * jit,
                        input_bytes: block_bytes,
                        // the broadcast pull: network-borne every round
                        shuffle_read: p.broadcast,
                        shuffle_write: ByteSize::mib(3),
                        peak_mem: ByteSize::mib(640).scale(jit),
                        cached_bytes: block_bytes.scale(1.25),
                        ..TaskDemand::default()
                    },
                }
            })
            .collect();
        let grad_stage = b.add_stage(
            j,
            format!("gradient iter={iter}"),
            "svm/points",
            StageKind::ShuffleMap,
            vec![],
            grad,
        );
        b.add_stage(
            j,
            format!("update iter={iter}"),
            "svm/update",
            StageKind::Result,
            vec![grad_stage],
            vec![TaskTemplate {
                index: 0,
                input: InputSource::Shuffle,
                demand: TaskDemand {
                    compute: 1.0,
                    shuffle_read: ByteSize::mib(3 * n as u64),
                    output_bytes: ByteSize::mib(2),
                    peak_mem: ByteSize::mib(512),
                    ..TaskDemand::default()
                },
            }],
        );
    }
    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::lineage::validate_against_cluster;

    #[test]
    fn als_alternates_two_cached_rdds() {
        let cluster = ClusterSpec::hydra();
        let (app, layout) = als(&cluster, &RngFactory::new(1), &AlsParams::default());
        assert_eq!(app.jobs.len(), 8, "4 rounds × 2 sides");
        let templates: std::collections::HashSet<&str> =
            app.stages.iter().map(|s| s.template_key.as_str()).collect();
        assert!(templates.contains("als/user") && templates.contains("als/item"));
        assert!(!layout.is_empty());
        validate_against_cluster(&app, &cluster).unwrap();
    }

    #[test]
    fn wordcount_is_pure_io() {
        let cluster = ClusterSpec::hydra();
        let (app, _) = wordcount(&cluster, &RngFactory::new(2), &WordCountParams::default());
        assert_eq!(app.jobs.len(), 1);
        for s in &app.stages {
            for t in &s.tasks {
                assert!(
                    t.demand.compute < 3.0,
                    "wordcount must stay light on compute"
                );
                assert!(t.demand.peak_mem < ByteSize::mib(512));
                assert!(!t.demand.is_gpu_capable());
            }
        }
        validate_against_cluster(&app, &cluster).unwrap();
    }

    #[test]
    fn svm_broadcasts_every_iteration() {
        let cluster = ClusterSpec::hydra();
        let p = SvmParams::default();
        let (app, _) = svm(&cluster, &RngFactory::new(3), &p);
        assert_eq!(app.jobs.len(), 6);
        // every gradient task pulls the broadcast
        for s in app.stages.iter().filter(|s| s.template_key == "svm/points") {
            for t in &s.tasks {
                assert_eq!(t.demand.shuffle_read, p.broadcast);
            }
        }
        validate_against_cluster(&app, &cluster).unwrap();
    }

    #[test]
    fn extras_are_deterministic() {
        let cluster = ClusterSpec::hydra();
        let fingerprint = |seed: u64| {
            let (a, _) = als(&cluster, &RngFactory::new(seed), &AlsParams::default());
            let (w, _) = wordcount(
                &cluster,
                &RngFactory::new(seed),
                &WordCountParams::default(),
            );
            let (s, _) = svm(&cluster, &RngFactory::new(seed), &SvmParams::default());
            (
                a.stages[0].tasks[0].demand.compute,
                w.stages[0].tasks[0].demand.compute,
                s.stages[0].tasks[0].demand.compute,
            )
        };
        assert_eq!(fingerprint(9), fingerprint(9));
        assert_ne!(fingerprint(9), fingerprint(10));
    }

    #[test]
    fn extras_run_end_to_end() {
        // smoke: each extra workload completes under RUPAM via the engine
        use rupam_exec::{simulate, SimConfig, SimInput};
        let cluster = ClusterSpec::hydra();
        let cfg = SimConfig::default();
        let rngf = RngFactory::new(5);
        let builds = [
            als(
                &cluster,
                &rngf,
                &AlsParams {
                    rounds: 1,
                    ..AlsParams::default()
                },
            ),
            wordcount(
                &cluster,
                &rngf,
                &WordCountParams {
                    input: ByteSize::gib(1),
                    ..WordCountParams::default()
                },
            ),
            svm(
                &cluster,
                &rngf,
                &SvmParams {
                    iterations: 1,
                    ..SvmParams::default()
                },
            ),
        ];
        for (app, layout) in &builds {
            let input = SimInput {
                cluster: &cluster,
                app,
                layout,
                config: &cfg,
                seed: 5,
            };
            // the engine takes any Scheduler; use the cheap FIFO here to
            // keep the smoke fast and scheduler-independent
            struct Fifo(Vec<usize>);
            impl rupam_exec::Scheduler for Fifo {
                fn name(&self) -> &str {
                    "smoke-fifo"
                }
                fn executor_memory(&self, c: &ClusterSpec, n: rupam_cluster::NodeId) -> ByteSize {
                    c.node(n).mem
                }
                fn on_app_start(&mut self, _: &Application, c: &ClusterSpec) {
                    self.0 = c.nodes().iter().map(|n| n.cores as usize).collect();
                }
                fn offer_round(
                    &mut self,
                    input: &rupam_exec::OfferInput<'_>,
                ) -> Vec<rupam_exec::Command> {
                    let mut used: Vec<usize> =
                        input.nodes.iter().map(|n| n.running_count()).collect();
                    input
                        .pending
                        .iter()
                        .filter_map(|p| {
                            let i = (0..input.nodes.len())
                                .find(|&i| !input.nodes[i].blocked && used[i] < self.0[i])?;
                            used[i] += 1;
                            Some(rupam_exec::Command::Launch {
                                task: p.task,
                                node: rupam_cluster::NodeId(i),
                                use_gpu: false,
                                speculative: false,
                                reason: rupam_exec::LaunchReason::FifoSlot,
                            })
                        })
                        .collect()
                }
            }
            let mut sched = Fifo(Vec::new());
            let report = simulate(&input, &mut sched);
            assert!(report.completed, "{} did not complete", app.name);
        }
    }
}
