//! Per-node hardware specification (paper Table II) and static capability
//! queries (the static half of Table I's node metrics: `cpufreq`, `gpu`,
//! `ssd`, `netbandwith`).
//!
//! Conventions used across the workspace:
//!
//! * CPU capability is an *effective per-core clock* in GHz; a task's
//!   compute demand is expressed in giga-cycles, so a task with demand `w`
//!   running alone on a core finishes its compute phase in `w / cpu_ghz`
//!   seconds. Tasks beyond the core count share `cores × cpu_ghz`.
//! * Bandwidths (network, disk) are bytes/second and shared equally among
//!   the tasks currently in a phase using that resource (fluid
//!   processor-sharing model).
//! * GPUs execute a task's GPU kernels at `gpu_gcps` giga-cycles/s —
//!   several times any core, which is what makes routing GPU-capable tasks
//!   to `stack` nodes worthwhile (paper §IV, Gramian/KMeans).

use rupam_simcore::define_id;
use rupam_simcore::units::ByteSize;

use crate::resources::ResourceKind;

define_id!(
    /// Index of a node within its [`crate::topology::ClusterSpec`].
    NodeId,
    "node"
);

/// Procurement tier of a node: how it is paid for and how it can be
/// taken away. The topology itself is tier-agnostic — the elastic layer
/// assigns tiers by marking node ids as members of spot pools; everything
/// not in a pool is on-demand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NodeTier {
    /// Billed at a fixed price; never reclaimed by the provider.
    #[default]
    OnDemand,
    /// Billed at a fluctuating market price; may be preempted with a
    /// short drain notice when the price spikes.
    Spot,
}

impl NodeTier {
    /// Stable short code used in decision traces and reports.
    pub fn code(self) -> &'static str {
        match self {
            NodeTier::OnDemand => "on-demand",
            NodeTier::Spot => "spot",
        }
    }

    /// Whether the tier can be preempted by the provider.
    pub fn preemptible(self) -> bool {
        self == NodeTier::Spot
    }
}

/// Persistent-storage specification for a node.
#[derive(Clone, Debug, PartialEq)]
pub struct DiskSpec {
    /// Whether the Spark intermediate-data disk is an SSD (Table I `ssd`).
    pub is_ssd: bool,
    /// Sequential read bandwidth, bytes/s.
    pub read_bw: f64,
    /// Sequential write bandwidth, bytes/s.
    pub write_bw: f64,
}

impl DiskSpec {
    /// A SATA SSD comparable to the thor nodes' 512 GB Crucial drive.
    pub fn sata_ssd() -> Self {
        DiskSpec {
            is_ssd: true,
            read_bw: 510.0 * 1e6,
            write_bw: 430.0 * 1e6,
        }
    }

    /// A 7200 rpm HDD comparable to the 1 TB Seagate drives on hulk/stack.
    pub fn sata_hdd() -> Self {
        DiskSpec {
            is_ssd: false,
            read_bw: 140.0 * 1e6,
            write_bw: 120.0 * 1e6,
        }
    }
}

/// Static hardware description of one cluster node.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSpec {
    /// Host name, e.g. `thor3`.
    pub name: String,
    /// Hardware class, e.g. `thor` / `hulk` / `stack` (Table II rows).
    pub class: String,
    /// Number of CPU cores (task slots under stock Spark).
    pub cores: u32,
    /// Effective per-core clock in GHz (Table I `cpufreq`).
    pub cpu_ghz: f64,
    /// Installed RAM.
    pub mem: ByteSize,
    /// NIC bandwidth, bytes/s (Table I `netbandwith`).
    pub net_bw: f64,
    /// Storage device used for Spark intermediate data.
    pub disk: DiskSpec,
    /// Number of GPUs (Table I `gpu`).
    pub gpus: u32,
    /// GPU kernel execution rate in giga-cycles/s (only meaningful when
    /// `gpus > 0`).
    pub gpu_gcps: f64,
    /// Rack index for locality (RACK_LOCAL vs ANY).
    pub rack: usize,
}

impl NodeSpec {
    /// Aggregate CPU rate of the node in giga-cycles/s (all cores).
    #[inline]
    pub fn total_cpu_gcps(&self) -> f64 {
        self.cpu_ghz * self.cores as f64
    }

    /// The capability score RUPAM's Resource Queues sort by, per resource
    /// kind (most capable first; §III-B1). Higher is better.
    pub fn capability(&self, kind: ResourceKind) -> f64 {
        match kind {
            // Per-core speed is the dominant factor for a single
            // (one-core) task's compute phase.
            ResourceKind::Cpu => self.cpu_ghz,
            ResourceKind::Mem => self.mem.as_f64(),
            ResourceKind::Io => self.disk.read_bw + self.disk.write_bw,
            ResourceKind::Net => self.net_bw,
            ResourceKind::Gpu => self.gpus as f64 * self.gpu_gcps,
        }
    }

    /// Whether the node has the resource at all (`C_i^r = 0` in the
    /// paper's constraint formulation prevents mapping a task needing `r`
    /// to node `i`).
    pub fn has_resource(&self, kind: ResourceKind) -> bool {
        self.capability(kind) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> NodeSpec {
        NodeSpec {
            name: "n0".into(),
            class: "test".into(),
            cores: 8,
            cpu_ghz: 2.0,
            mem: ByteSize::gib(16),
            net_bw: 125e6,
            disk: DiskSpec::sata_ssd(),
            gpus: 0,
            gpu_gcps: 0.0,
            rack: 0,
        }
    }

    #[test]
    fn total_cpu_rate() {
        assert!((spec().total_cpu_gcps() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn capability_vector() {
        let s = spec();
        assert_eq!(s.capability(ResourceKind::Cpu), 2.0);
        assert_eq!(s.capability(ResourceKind::Mem), ByteSize::gib(16).as_f64());
        assert!(s.capability(ResourceKind::Io) > 900e6);
        assert_eq!(s.capability(ResourceKind::Net), 125e6);
        assert_eq!(s.capability(ResourceKind::Gpu), 0.0);
    }

    #[test]
    fn gpu_gate() {
        let mut s = spec();
        assert!(!s.has_resource(ResourceKind::Gpu));
        s.gpus = 1;
        s.gpu_gcps = 12.0;
        assert!(s.has_resource(ResourceKind::Gpu));
        assert_eq!(s.capability(ResourceKind::Gpu), 12.0);
    }

    #[test]
    fn disk_presets() {
        assert!(DiskSpec::sata_ssd().is_ssd);
        assert!(!DiskSpec::sata_hdd().is_ssd);
        assert!(DiskSpec::sata_ssd().read_bw > DiskSpec::sata_hdd().read_bw * 3.0);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(format!("{}", NodeId(3)), "node3");
        assert_eq!(NodeId::from(7).index(), 7);
    }
}
