//! # rupam-cluster
//!
//! Heterogeneous cluster model for the RUPAM reproduction:
//!
//! * [`resources`] — the five resource dimensions RUPAM schedules over
//!   (CPU, memory, I/O, network, GPU; paper Fig. 4).
//! * [`node`] — per-node hardware specifications (paper Table I, left /
//!   Table II) and capability queries.
//! * [`topology`] — cluster assembly, rack topology, and the two concrete
//!   clusters the paper evaluates on: the 12-node *Hydra* cluster
//!   (Table II) and the 2-node motivation setup (§II-B).
//! * [`monitor`] — the Resource Monitor (RM): per-node utilisation
//!   accounting with heartbeat snapshots (the paper piggy-backs metrics on
//!   Spark's worker heartbeats).
//! * [`microbench`] — SysBench-/Iperf-shaped hardware microbenchmark
//!   models that regenerate paper Table IV from node specs.

#![warn(missing_docs)]

pub mod microbench;
pub mod monitor;
pub mod node;
pub mod resources;
pub mod topology;

pub use monitor::{HeartbeatSnapshot, NodeMetrics, ResourceMonitor};
pub use node::{DiskSpec, NodeId, NodeSpec, NodeTier};
pub use resources::ResourceKind;
pub use topology::{ClusterSpec, ShardMap};
