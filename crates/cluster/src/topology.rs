//! Cluster assembly and the paper's concrete testbeds.
//!
//! * [`ClusterSpec::hydra`] — the 12-node heterogeneous evaluation cluster
//!   of §IV (Table II): 6 × `thor` (few fast cores, SSD, little RAM),
//!   4 × `hulk` (many slow cores, most RAM, 10 GbE NIC) and 2 × `stack`
//!   (moderate, one NVIDIA Tesla-class GPU each).
//! * [`ClusterSpec::two_node_motivation`] — the §II-B two-node setup
//!   (node-1: faster CPU, slower network; node-2: slower CPU, faster
//!   network) used for the Fig. 2/Fig. 3 motivation experiments.

use rupam_simcore::units::ByteSize;

use crate::node::{DiskSpec, NodeId, NodeSpec};

/// An immutable description of a cluster: nodes plus rack topology.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    nodes: Vec<NodeSpec>,
    racks: usize,
}

impl ClusterSpec {
    /// Build a cluster from explicit node specs.
    ///
    /// # Panics
    /// Panics if `nodes` is empty or any rack index is out of range.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        let racks = nodes.iter().map(|n| n.rack).max().unwrap() + 1;
        ClusterSpec { nodes, racks }
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The spec of one node.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the cluster has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Iterate `(NodeId, &NodeSpec)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeSpec)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Whether two nodes share a rack.
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.node(a).rack == self.node(b).rack
    }

    /// Total cluster memory.
    pub fn total_mem(&self) -> ByteSize {
        self.nodes.iter().map(|n| n.mem).sum()
    }

    /// The smallest node memory — what stock Spark must size its uniform
    /// executors for (§IV: "we set the executor memory size to 14 GB to
    /// accommodate the thor machines").
    pub fn min_mem(&self) -> ByteSize {
        self.nodes.iter().map(|n| n.mem).min().expect("non-empty")
    }

    /// Total core count.
    pub fn total_cores(&self) -> u32 {
        self.nodes.iter().map(|n| n.cores).sum()
    }

    /// Ids of nodes in a given hardware class.
    pub fn nodes_in_class(&self, class: &str) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.class == class)
            .map(|(id, _)| id)
            .collect()
    }

    /// The paper's Hydra cluster (Table II), 12 nodes in two racks.
    ///
    /// ```
    /// use rupam_cluster::ClusterSpec;
    ///
    /// let hydra = ClusterSpec::hydra();
    /// assert_eq!(hydra.len(), 12);
    /// assert_eq!(hydra.nodes_in_class("thor").len(), 6);
    /// assert_eq!(hydra.total_cores(), 208);
    /// ```
    ///
    /// Effective per-core clocks are calibrated so the SysBench CPU model
    /// in [`crate::microbench`] reproduces Table IV's *ordering* (thor
    /// fastest by far, hulk slightly ahead of stack). The paper's SysBench
    /// ratio is ≈ 5×; we use ≈ 3× for task execution, since a literal 5×
    /// per-core gap makes any single-wave workload implode on the slow
    /// tiers in ways the paper's end-to-end numbers do not show
    /// (EXPERIMENTS.md records the deviation).
    pub fn hydra() -> Self {
        Self::hydra_mix(6, 4, 2)
    }

    /// A Hydra-style cluster with a custom class mix — `hydra()` is
    /// `hydra_mix(6, 4, 2)`. Used by the heterogeneity-sensitivity
    /// ablation ("how much of RUPAM's win survives as the cluster gets
    /// more/less diverse?").
    ///
    /// # Panics
    /// Panics if all three counts are zero.
    pub fn hydra_mix(n_thor: usize, n_hulk: usize, n_stack: usize) -> Self {
        assert!(
            n_thor + n_hulk + n_stack > 0,
            "cluster needs at least one node"
        );
        let mut nodes = Vec::with_capacity(n_thor + n_hulk + n_stack);
        // thor: 8-core AMD FX-8320E, 16 GB RAM, 1 GbE, 512 GB SSD.
        for i in 0..n_thor {
            nodes.push(NodeSpec {
                name: format!("thor{}", i + 1),
                class: "thor".into(),
                cores: 8,
                cpu_ghz: 4.0,
                mem: ByteSize::gib(16),
                net_bw: 125e6, // 1 GbE
                disk: DiskSpec::sata_ssd(),
                gpus: 0,
                gpu_gcps: 0.0,
                rack: i % 2,
            });
        }
        // hulk: 32-core AMD Opteron 6380, 64 GB RAM, 10 GbE NIC, HDD.
        for i in 0..n_hulk {
            nodes.push(NodeSpec {
                name: format!("hulk{}", i + 1),
                class: "hulk".into(),
                cores: 32,
                cpu_ghz: 1.30,
                mem: ByteSize::gib(64),
                net_bw: 1.25e9, // 10 GbE
                disk: DiskSpec::sata_hdd(),
                gpus: 0,
                gpu_gcps: 0.0,
                rack: i % 2,
            });
        }
        // stack: 16-core Intel Xeon E5620, 48 GB RAM, 1 GbE, HDD,
        // one NVIDIA Tesla C2050 each.
        for i in 0..n_stack {
            nodes.push(NodeSpec {
                name: format!("stack{}", i + 1),
                class: "stack".into(),
                cores: 16,
                cpu_ghz: 1.20,
                mem: ByteSize::gib(48),
                net_bw: 125e6,
                disk: DiskSpec::sata_hdd(),
                gpus: 1,
                gpu_gcps: 18.0,
                rack: i % 2,
            });
        }
        ClusterSpec::new(nodes)
    }

    /// The §II-B motivation setup: two 16-core / 48 GB nodes where node-1
    /// has the faster CPU but the slower network and node-2 the reverse
    /// ("node-1 has a higher CPU processing capacity and lower network
    /// throughput than node-2").
    pub fn two_node_motivation() -> Self {
        let node1 = NodeSpec {
            name: "node-1".into(),
            class: "fast-cpu".into(),
            cores: 16,
            cpu_ghz: 2.4,
            mem: ByteSize::gib(48),
            net_bw: 125e6, // 1 GbE
            disk: DiskSpec::sata_hdd(),
            gpus: 0,
            gpu_gcps: 0.0,
            rack: 0,
        };
        let node2 = NodeSpec {
            name: "node-2".into(),
            class: "fast-net".into(),
            cores: 16,
            cpu_ghz: 1.6,
            mem: ByteSize::gib(48),
            net_bw: 1.25e9, // 10 GbE
            disk: DiskSpec::sata_hdd(),
            gpus: 0,
            gpu_gcps: 0.0,
            rack: 0,
        };
        ClusterSpec::new(vec![node1, node2])
    }

    /// A uniform cluster of `n` identical mid-range nodes — the control
    /// case where heterogeneity-aware scheduling should neither help nor
    /// hurt much (used by tests and ablations).
    pub fn homogeneous(n: usize) -> Self {
        assert!(n > 0);
        let nodes = (0..n)
            .map(|i| NodeSpec {
                name: format!("uniform{}", i + 1),
                class: "uniform".into(),
                cores: 16,
                cpu_ghz: 2.0,
                mem: ByteSize::gib(48),
                net_bw: 125e6,
                disk: DiskSpec::sata_hdd(),
                gpus: 0,
                gpu_gcps: 0.0,
                rack: i % 2,
            })
            .collect();
        ClusterSpec::new(nodes)
    }
}

/// A partition of the cluster's nodes into disjoint shards, used to
/// parallelise offer scoring: each shard owns a contiguous subset of the
/// node rankings and can be refreshed independently.
///
/// Sharding policy (`shard_count`):
/// * `0` — auto: one shard per rack when the cluster spans more than one
///   rack, otherwise a single shard (a rack is the natural locality and
///   failure domain, matching the paper's per-rack collectors);
/// * `n > 0` — exactly `min(n, nodes)` fixed-size node partitions,
///   ignoring rack boundaries (for benchmarking shard-count sensitivity).
#[derive(Clone, Debug)]
pub struct ShardMap {
    members: Vec<Vec<NodeId>>,
    shard_of: Vec<u32>,
}

impl ShardMap {
    /// Build the shard map for `cluster` under the given policy.
    pub fn build(cluster: &ClusterSpec, shard_count: usize) -> Self {
        let n = cluster.len();
        let mut members: Vec<Vec<NodeId>>;
        if shard_count == 0 {
            let racks = cluster.racks();
            let shards = if racks > 1 { racks } else { 1 };
            members = vec![Vec::new(); shards];
            for (id, spec) in cluster.iter() {
                let s = if shards == 1 { 0 } else { spec.rack };
                members[s].push(id);
            }
            // a rack index with no nodes would leave an empty shard —
            // drop it so every shard is non-empty
            members.retain(|m| !m.is_empty());
        } else {
            let shards = shard_count.min(n);
            let base = n / shards;
            let extra = n % shards; // first `extra` shards get one more
            members = Vec::with_capacity(shards);
            let mut next = 0usize;
            for s in 0..shards {
                let size = base + usize::from(s < extra);
                members.push((next..next + size).map(NodeId).collect());
                next += size;
            }
        }
        let mut shard_of = vec![0u32; n];
        for (s, m) in members.iter().enumerate() {
            for &id in m {
                shard_of[id.index()] = s as u32;
            }
        }
        ShardMap { members, shard_of }
    }

    /// Number of shards (≥ 1).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff there are no shards (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// Node ids owned by `shard`, in ascending id order.
    pub fn members(&self, shard: usize) -> &[NodeId] {
        &self.members[shard]
    }

    /// Total nodes covered (always the cluster size).
    pub fn total_nodes(&self) -> usize {
        self.shard_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceKind;

    #[test]
    fn hydra_matches_table_ii() {
        let c = ClusterSpec::hydra();
        assert_eq!(c.len(), 12);
        assert_eq!(c.nodes_in_class("thor").len(), 6);
        assert_eq!(c.nodes_in_class("hulk").len(), 4);
        assert_eq!(c.nodes_in_class("stack").len(), 2);
        // memory capacities per Table II
        let thor = c.node(c.nodes_in_class("thor")[0]);
        let hulk = c.node(c.nodes_in_class("hulk")[0]);
        let stack = c.node(c.nodes_in_class("stack")[0]);
        assert_eq!(thor.mem, ByteSize::gib(16));
        assert_eq!(hulk.mem, ByteSize::gib(64));
        assert_eq!(stack.mem, ByteSize::gib(48));
        assert_eq!(thor.cores, 8);
        assert_eq!(hulk.cores, 32);
        assert_eq!(stack.cores, 16);
        // only thor has SSD; only stack has GPUs
        assert!(thor.disk.is_ssd && !hulk.disk.is_ssd && !stack.disk.is_ssd);
        assert_eq!(stack.gpus, 1);
        assert_eq!(thor.gpus + hulk.gpus, 0);
        // min memory is the thor 16 GB that forces Spark's 14 GB executors
        assert_eq!(c.min_mem(), ByteSize::gib(16));
    }

    #[test]
    fn hydra_capability_ordering() {
        let c = ClusterSpec::hydra();
        let thor = c.node(c.nodes_in_class("thor")[0]);
        let hulk = c.node(c.nodes_in_class("hulk")[0]);
        let stack = c.node(c.nodes_in_class("stack")[0]);
        // thor per-core ≈ 3× others (Table IV reports 5× under SysBench;
        // see EXPERIMENTS.md for the calibration note), hulk > stack
        assert!(thor.cpu_ghz / hulk.cpu_ghz > 2.5);
        assert!(thor.cpu_ghz / stack.cpu_ghz > 2.5);
        assert!(hulk.cpu_ghz > stack.cpu_ghz);
        // I/O: thor SSD dominates
        assert!(thor.capability(ResourceKind::Io) > hulk.capability(ResourceKind::Io) * 2.0);
        // GPU only on stack
        assert!(stack.capability(ResourceKind::Gpu) > 0.0);
    }

    #[test]
    fn motivation_cluster_shape() {
        let c = ClusterSpec::two_node_motivation();
        assert_eq!(c.len(), 2);
        let n1 = c.node(NodeId(0));
        let n2 = c.node(NodeId(1));
        assert!(n1.cpu_ghz > n2.cpu_ghz, "node-1 has the faster CPU");
        assert!(n1.net_bw < n2.net_bw, "node-1 has the slower network");
        assert_eq!(n1.mem, n2.mem);
        assert_eq!(n1.cores, n2.cores);
    }

    #[test]
    fn rack_topology() {
        let c = ClusterSpec::hydra();
        assert_eq!(c.racks(), 2);
        let thors = c.nodes_in_class("thor");
        assert!(c.same_rack(thors[0], thors[2]));
        assert!(!c.same_rack(thors[0], thors[1]));
    }

    #[test]
    fn aggregates() {
        let c = ClusterSpec::hydra();
        assert_eq!(c.total_cores(), 6 * 8 + 4 * 32 + 2 * 16);
        assert_eq!(c.total_mem(), ByteSize::gib(6 * 16 + 4 * 64 + 2 * 48));
    }

    #[test]
    fn hydra_mix_composes() {
        let c = ClusterSpec::hydra_mix(1, 2, 3);
        assert_eq!(c.nodes_in_class("thor").len(), 1);
        assert_eq!(c.nodes_in_class("hulk").len(), 2);
        assert_eq!(c.nodes_in_class("stack").len(), 3);
        assert_eq!(c.len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_mix_panics() {
        ClusterSpec::hydra_mix(0, 0, 0);
    }

    #[test]
    fn homogeneous_is_uniform() {
        let c = ClusterSpec::homogeneous(4);
        assert_eq!(c.len(), 4);
        let first = c.node(NodeId(0));
        for (_, n) in c.iter() {
            assert_eq!(n.cpu_ghz, first.cpu_ghz);
            assert_eq!(n.mem, first.mem);
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_panics() {
        ClusterSpec::new(vec![]);
    }

    #[test]
    fn shard_map_auto_follows_racks() {
        let c = ClusterSpec::hydra();
        let m = ShardMap::build(&c, 0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.total_nodes(), 12);
        for (id, spec) in c.iter() {
            let s = m.shard_of(id);
            assert!(m.members(s).contains(&id));
            // auto shards are rack-aligned
            for &peer in m.members(s) {
                assert_eq!(c.node(peer).rack, spec.rack);
            }
        }
    }

    #[test]
    fn shard_map_single_rack_collapses_to_one_shard() {
        let c = ClusterSpec::two_node_motivation();
        let m = ShardMap::build(&c, 0);
        assert_eq!(m.len(), 1);
        assert_eq!(m.members(0).len(), 2);
    }

    #[test]
    fn shard_map_fixed_partitions_cover_all_nodes() {
        let c = ClusterSpec::homogeneous(10);
        let m = ShardMap::build(&c, 3);
        assert_eq!(m.len(), 3);
        let sizes: Vec<usize> = (0..m.len()).map(|s| m.members(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        // balanced within one node
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // disjoint + consistent with shard_of
        let mut seen = [false; 10];
        for s in 0..m.len() {
            for &id in m.members(s) {
                assert!(!seen[id.index()]);
                seen[id.index()] = true;
                assert_eq!(m.shard_of(id), s);
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn shard_map_clamps_oversized_count() {
        let c = ClusterSpec::homogeneous(3);
        let m = ShardMap::build(&c, 8);
        assert_eq!(m.len(), 3);
        for s in 0..m.len() {
            assert_eq!(m.members(s).len(), 1);
        }
    }
}
