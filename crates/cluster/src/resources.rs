//! The five resource dimensions of RUPAM's scheduling model.
//!
//! Fig. 4 of the paper shows one priority queue per resource type on both
//! the node side ("Resource Queue") and the task side ("Task Queue"):
//! CPU, MEM, I/O, NET, GPU. Everything in the workspace that is "per
//! resource kind" is indexed by [`ResourceKind`].

use std::fmt;

/// One of the five resource dimensions RUPAM tracks (paper Fig. 4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ResourceKind {
    /// Processor capability / load (node metric `cpufreq`, `cpuutil`).
    Cpu,
    /// Memory capacity / free memory (`freememory`).
    Mem,
    /// Disk I/O capability / load (`ssd`, `diskutil`).
    Io,
    /// Network capability / load (`netbandwith`, `netutil`).
    Net,
    /// Accelerators (`gpu` idle count).
    Gpu,
}

impl ResourceKind {
    /// All five kinds, in the round-robin order the Dispatcher walks them
    /// (Algorithm 2 dequeues "one node from each resource queue at a time
    /// in a round-robin fashion so no task with a single resource type is
    /// starved").
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::Cpu,
        ResourceKind::Mem,
        ResourceKind::Io,
        ResourceKind::Net,
        ResourceKind::Gpu,
    ];

    /// Number of resource kinds (the paper's `historyresource.size = 5`
    /// lock condition).
    pub const COUNT: usize = 5;

    /// Dense index in `0..COUNT` for table-driven storage.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Mem => 1,
            ResourceKind::Io => 2,
            ResourceKind::Net => 3,
            ResourceKind::Gpu => 4,
        }
    }

    /// Inverse of [`ResourceKind::index`].
    #[inline]
    pub fn from_index(i: usize) -> ResourceKind {
        Self::ALL[i]
    }

    /// Short upper-case label used in tables and traces.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "CPU",
            ResourceKind::Mem => "MEM",
            ResourceKind::Io => "I/O",
            ResourceKind::Net => "NET",
            ResourceKind::Gpu => "GPU",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A small fixed map from [`ResourceKind`] to `T`, used for per-kind
/// queues, counters and capability vectors.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerResource<T> {
    slots: [T; ResourceKind::COUNT],
}

impl<T> PerResource<T> {
    /// Build from a function of the kind.
    pub fn from_fn(mut f: impl FnMut(ResourceKind) -> T) -> Self {
        PerResource {
            slots: ResourceKind::ALL.map(&mut f),
        }
    }

    /// Shared access for one kind.
    #[inline]
    pub fn get(&self, kind: ResourceKind) -> &T {
        &self.slots[kind.index()]
    }

    /// Mutable access for one kind.
    #[inline]
    pub fn get_mut(&mut self, kind: ResourceKind) -> &mut T {
        &mut self.slots[kind.index()]
    }

    /// Iterate `(kind, &value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, &T)> {
        ResourceKind::ALL.iter().map(move |&k| (k, self.get(k)))
    }

    /// Iterate `(kind, &mut value)` pairs in canonical order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ResourceKind, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .map(|(i, v)| (ResourceKind::from_index(i), v))
    }
}

impl<T> std::ops::Index<ResourceKind> for PerResource<T> {
    type Output = T;
    fn index(&self, kind: ResourceKind) -> &T {
        self.get(kind)
    }
}

impl<T> std::ops::IndexMut<ResourceKind> for PerResource<T> {
    fn index_mut(&mut self, kind: ResourceKind) -> &mut T {
        self.get_mut(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for kind in ResourceKind::ALL {
            assert_eq!(ResourceKind::from_index(kind.index()), kind);
        }
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            ResourceKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ResourceKind::COUNT);
    }

    #[test]
    fn per_resource_indexing() {
        let mut pr: PerResource<u32> = PerResource::from_fn(|k| k.index() as u32);
        assert_eq!(pr[ResourceKind::Net], 3);
        pr[ResourceKind::Gpu] = 99;
        assert_eq!(*pr.get(ResourceKind::Gpu), 99);
        let collected: Vec<_> = pr.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(collected[0], (ResourceKind::Cpu, 0));
        assert_eq!(collected[4], (ResourceKind::Gpu, 99));
    }

    #[test]
    fn per_resource_iter_mut() {
        let mut pr: PerResource<u32> = PerResource::default();
        for (k, v) in pr.iter_mut() {
            *v = k.index() as u32 * 10;
        }
        assert_eq!(pr[ResourceKind::Io], 20);
    }
}
