//! Hardware microbenchmark models (paper §IV-A, Table IV).
//!
//! The paper characterises each Hydra node class with SysBench (CPU test:
//! computing 20 000 primes; I/O test: 1 GB file with direct I/O) and Iperf
//! (UDP throughput to the master, `stack1`). These functions evaluate the
//! same benchmarks against a [`NodeSpec`], which lets the harness
//! regenerate Table IV and — more importantly — validates that the
//! simulated hardware reproduces the measured capability *ratios* the
//! paper reports: thor ≈ 5× faster per core than hulk/stack with the
//! lowest latency, hulk slightly ahead of stack, thor's SSD dominating
//! both HDD classes, and near-identical network throughput across classes
//! (every path to the 1 GbE master is capped by the master's NIC).

use crate::node::NodeSpec;
use crate::topology::ClusterSpec;
use crate::NodeId;

/// Giga-cycles the SysBench prime workload costs per event-latency unit.
/// Calibrated so the model lands near the paper's absolute numbers.
const CPU_BENCH_GCYCLES: f64 = 0.90;
/// Giga-cycles of one SysBench event (used for the latency column).
const CPU_EVENT_GCYCLES: f64 = 0.0014;
/// Fraction of raw disk bandwidth a 1 GB direct-I/O test achieves.
const DIRECT_IO_EFFICIENCY: f64 = 0.95;
/// Fraction of line rate a UDP Iperf test achieves.
const UDP_EFFICIENCY: f64 = 0.957;

/// Result of the SysBench-style CPU benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuBenchResult {
    /// Total run time in seconds (Table IV "CPU (sec)").
    pub seconds: f64,
    /// Average event latency in milliseconds (Table IV "latency (ms)").
    pub latency_ms: f64,
}

/// Result of the SysBench-style direct-I/O benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoBenchResult {
    /// Sequential read throughput, MB/s.
    pub read_mbps: f64,
    /// Sequential write throughput, MB/s.
    pub write_mbps: f64,
}

/// SysBench CPU test: compute 20 000 primes on all cores.
///
/// SysBench's prime test is event-latency bound: each worker thread
/// repeatedly computes the prime table, so both total time and latency
/// follow the *per-core* clock rather than the aggregate core count —
/// which is how an 8-core thor beats a 32-core hulk 5× in the paper.
pub fn cpu_bench(spec: &NodeSpec) -> CpuBenchResult {
    assert!(spec.cpu_ghz > 0.0, "node without CPU");
    CpuBenchResult {
        seconds: CPU_BENCH_GCYCLES / spec.cpu_ghz,
        latency_ms: CPU_EVENT_GCYCLES / spec.cpu_ghz * 1_000.0,
    }
}

/// SysBench file I/O test: 1 GB file, direct I/O (no page-cache effect).
pub fn io_bench(spec: &NodeSpec) -> IoBenchResult {
    IoBenchResult {
        read_mbps: spec.disk.read_bw * DIRECT_IO_EFFICIENCY / 1e6,
        write_mbps: spec.disk.write_bw * DIRECT_IO_EFFICIENCY / 1e6,
    }
}

/// Iperf UDP throughput between two nodes, in Mbit/s.
///
/// The achievable rate is the slower endpoint's NIC at UDP efficiency;
/// with the paper's 1 GbE master every class measures ≈ 1 GbE regardless
/// of its own NIC (§IV-A: "the results are similar for all the
/// machines").
pub fn net_bench(cluster: &ClusterSpec, from: NodeId, to: NodeId) -> f64 {
    let a = cluster.node(from).net_bw;
    let b = cluster.node(to).net_bw;
    a.min(b) * UDP_EFFICIENCY * 8.0 / 1e6
}

/// A full Table IV row for one node class (benchmarked against the class's
/// first node, with Iperf towards `master`).
#[derive(Clone, Debug)]
pub struct HardwareRow {
    /// Node class name (`thor`, `hulk`, `stack`).
    pub class: String,
    /// CPU benchmark result.
    pub cpu: CpuBenchResult,
    /// I/O benchmark result.
    pub io: IoBenchResult,
    /// Iperf UDP throughput to the master, Mbit/s.
    pub net_mbits: f64,
}

/// Regenerate Table IV: one row per hardware class present in `cluster`,
/// Iperf measured against `master`.
pub fn table_iv(cluster: &ClusterSpec, master: NodeId) -> Vec<HardwareRow> {
    let mut seen: Vec<String> = Vec::new();
    let mut rows = Vec::new();
    for (id, spec) in cluster.iter() {
        if seen.contains(&spec.class) {
            continue;
        }
        seen.push(spec.class.clone());
        rows.push(HardwareRow {
            class: spec.class.clone(),
            cpu: cpu_bench(spec),
            io: io_bench(spec),
            net_mbits: net_bench(cluster, id, master),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hydra_rows() -> Vec<HardwareRow> {
        let c = ClusterSpec::hydra();
        // master runs on stack1 like the paper
        let master = c.nodes_in_class("stack")[0];
        table_iv(&c, master)
    }

    fn row<'a>(rows: &'a [HardwareRow], class: &str) -> &'a HardwareRow {
        rows.iter().find(|r| r.class == class).unwrap()
    }

    #[test]
    fn thor_is_about_5x_faster() {
        let rows = hydra_rows();
        let thor = row(&rows, "thor");
        let hulk = row(&rows, "hulk");
        let stack = row(&rows, "stack");
        assert!(hulk.cpu.seconds / thor.cpu.seconds > 2.5);
        assert!(stack.cpu.seconds / thor.cpu.seconds > 2.5);
        assert!(stack.cpu.seconds / thor.cpu.seconds < 6.5);
        // thor has the lowest latency; hulk slightly better than stack
        assert!(thor.cpu.latency_ms < hulk.cpu.latency_ms);
        assert!(hulk.cpu.latency_ms < stack.cpu.latency_ms);
    }

    #[test]
    fn thor_ssd_dominates_io() {
        let rows = hydra_rows();
        let thor = row(&rows, "thor");
        let hulk = row(&rows, "hulk");
        assert!(thor.io.read_mbps > hulk.io.read_mbps * 3.0);
        assert!(thor.io.write_mbps > hulk.io.write_mbps * 3.0);
    }

    #[test]
    fn network_is_uniform_through_1gbe_master() {
        let rows = hydra_rows();
        let mbits: Vec<f64> = rows.iter().map(|r| r.net_mbits).collect();
        // every class measures ≈ 1 GbE (within UDP efficiency)
        for m in &mbits {
            assert!((*m - 957.0).abs() < 10.0, "expected ~957 Mbit/s, got {m}");
        }
    }

    #[test]
    fn hulk_to_hulk_uses_10gbe() {
        let c = ClusterSpec::hydra();
        let hulks = c.nodes_in_class("hulk");
        let mbits = net_bench(&c, hulks[0], hulks[1]);
        assert!(
            mbits > 9_000.0,
            "hulk-to-hulk should see 10 GbE, got {mbits}"
        );
    }

    #[test]
    fn table_has_one_row_per_class() {
        let rows = hydra_rows();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn absolute_numbers_are_in_paper_ballpark() {
        let rows = hydra_rows();
        let thor = row(&rows, "thor");
        let stack = row(&rows, "stack");
        // paper: stack ≈ 1.1 s, thor ≈ 0.2 s; our compressed calibration
        // puts stack ≈ 0.75 s (see EXPERIMENTS.md)
        assert!(stack.cpu.seconds > 0.6 && stack.cpu.seconds < 1.3);
        assert!(thor.cpu.seconds > 0.15 && thor.cpu.seconds < 0.3);
        // thor SSD read ~ 480 MB/s
        assert!(thor.io.read_mbps > 450.0 && thor.io.read_mbps < 520.0);
    }
}
