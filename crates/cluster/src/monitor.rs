//! The Resource Monitor (RM, paper §III-B1).
//!
//! In the paper, a distributed *Collector* on each worker piggy-backs
//! real-time resource metrics on Spark's heartbeat messages; the central
//! *Monitor* records them in Spark's `executorDataMap`. Here the
//! simulation driver plays the collectors' role: whenever a node's state
//! changes it produces a [`HeartbeatSnapshot`] and the monitor records it,
//! keeping (a) the latest metrics per node — what the Dispatcher consults —
//! and (b) full utilisation histories — what Figures 2, 8 and 9 are
//! plotted from.

use rupam_simcore::series::TimeSeries;
use rupam_simcore::time::SimTime;
use rupam_simcore::units::ByteSize;

use crate::node::NodeId;
use crate::topology::ClusterSpec;

/// Dynamic node metrics (the real-time half of Table I, left side).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeMetrics {
    /// Fraction of cores busy, 0..=1 (`cpuutil`).
    pub cpu_util: f64,
    /// Executor memory currently held by running tasks.
    pub mem_used: ByteSize,
    /// Executor memory still free (`freememory`).
    pub free_mem: ByteSize,
    /// Fraction of NIC bandwidth in use, 0..=1 (`netutil`).
    pub net_util: f64,
    /// Fraction of disk bandwidth in use, 0..=1 (`diskutil`).
    pub disk_util: f64,
    /// Absolute network throughput, bytes/s (Fig. 2b / Fig. 8c).
    pub net_bytes_per_sec: f64,
    /// Absolute disk throughput, bytes/s (Fig. 2c / Fig. 8d).
    pub disk_bytes_per_sec: f64,
    /// Idle GPUs on the node (`gpu`).
    pub gpus_idle: u32,
}

/// One heartbeat message: a node's metrics at an instant.
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatSnapshot {
    /// Reporting node.
    pub node: NodeId,
    /// Report time.
    pub at: SimTime,
    /// The piggy-backed metrics.
    pub metrics: NodeMetrics,
}

/// The utilisation quantities whose histories the monitor keeps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKey {
    /// Busy-core fraction (Fig. 8a plots this as "CPU User %").
    CpuUtil,
    /// Memory in use, GiB (Fig. 8b).
    MemUsedGib,
    /// Network throughput, MB/s (Fig. 8c).
    NetMBps,
    /// Disk throughput, MB/s (Fig. 8d).
    DiskMBps,
}

impl MetricKey {
    /// All recorded histories.
    pub const ALL: [MetricKey; 4] = [
        MetricKey::CpuUtil,
        MetricKey::MemUsedGib,
        MetricKey::NetMBps,
        MetricKey::DiskMBps,
    ];

    fn index(self) -> usize {
        match self {
            MetricKey::CpuUtil => 0,
            MetricKey::MemUsedGib => 1,
            MetricKey::NetMBps => 2,
            MetricKey::DiskMBps => 3,
        }
    }

    fn extract(self, m: &NodeMetrics) -> f64 {
        match self {
            MetricKey::CpuUtil => m.cpu_util,
            MetricKey::MemUsedGib => m.mem_used.as_gib(),
            MetricKey::NetMBps => m.net_bytes_per_sec / 1e6,
            MetricKey::DiskMBps => m.disk_bytes_per_sec / 1e6,
        }
    }
}

struct NodeRecord {
    latest: NodeMetrics,
    latest_at: SimTime,
    histories: [TimeSeries; 4],
}

/// Central monitor: latest metrics per node plus full histories.
pub struct ResourceMonitor {
    records: Vec<NodeRecord>,
}

impl ResourceMonitor {
    /// A monitor for every node of `cluster`, all initially idle.
    pub fn new(cluster: &ClusterSpec) -> Self {
        let records = cluster
            .iter()
            .map(|(_, spec)| NodeRecord {
                latest: NodeMetrics {
                    free_mem: spec.mem,
                    gpus_idle: spec.gpus,
                    ..NodeMetrics::default()
                },
                latest_at: SimTime::ZERO,
                histories: Default::default(),
            })
            .collect();
        ResourceMonitor { records }
    }

    /// Ingest one heartbeat, updating the latest view and all histories.
    pub fn ingest(&mut self, hb: HeartbeatSnapshot) {
        let rec = &mut self.records[hb.node.index()];
        debug_assert!(
            hb.at >= rec.latest_at,
            "heartbeats must be monotone per node"
        );
        rec.latest = hb.metrics;
        rec.latest_at = hb.at;
        for key in MetricKey::ALL {
            rec.histories[key.index()].record(hb.at, key.extract(&hb.metrics));
        }
    }

    /// Ingest one round's worth of heartbeats in a single call — what a
    /// heartbeat *storm* produces. Semantically identical to calling
    /// [`ResourceMonitor::ingest`] once per snapshot in order; batching
    /// lets the driver hand the monitor one slice per round instead of
    /// one call per node, so downstream consumers (shard refresh) see a
    /// single coherent patch set.
    pub fn ingest_batch(&mut self, batch: &[HeartbeatSnapshot]) {
        for &hb in batch {
            self.ingest(hb);
        }
    }

    /// The most recent metrics for `node`.
    pub fn latest(&self, node: NodeId) -> &NodeMetrics {
        &self.records[node.index()].latest
    }

    /// When `node` last reported.
    pub fn latest_at(&self, node: NodeId) -> SimTime {
        self.records[node.index()].latest_at
    }

    /// Full history of one metric on one node.
    pub fn history(&self, node: NodeId, key: MetricKey) -> &TimeSeries {
        &self.records[node.index()].histories[key.index()]
    }

    /// Histories of one metric across all nodes (for Fig. 9's
    /// stddev-across-nodes computation).
    pub fn histories(&self, key: MetricKey) -> Vec<&TimeSeries> {
        self.records
            .iter()
            .map(|r| &r.histories[key.index()])
            .collect()
    }

    /// Number of monitored nodes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always false: constructed from a non-empty cluster.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_simcore::time::SimDuration;

    fn monitor() -> ResourceMonitor {
        ResourceMonitor::new(&ClusterSpec::two_node_motivation())
    }

    fn metrics(cpu: f64, used_gib: u64) -> NodeMetrics {
        NodeMetrics {
            cpu_util: cpu,
            mem_used: ByteSize::gib(used_gib),
            free_mem: ByteSize::gib(48 - used_gib),
            net_bytes_per_sec: 50e6,
            disk_bytes_per_sec: 10e6,
            ..NodeMetrics::default()
        }
    }

    #[test]
    fn initial_state_is_idle() {
        let m = monitor();
        assert_eq!(m.len(), 2);
        let latest = m.latest(NodeId(0));
        assert_eq!(latest.cpu_util, 0.0);
        assert_eq!(latest.free_mem, ByteSize::gib(48));
    }

    #[test]
    fn ingest_updates_latest_and_history() {
        let mut m = monitor();
        let t1 = SimTime::from_secs_f64(1.0);
        m.ingest(HeartbeatSnapshot {
            node: NodeId(0),
            at: t1,
            metrics: metrics(0.5, 10),
        });
        assert_eq!(m.latest(NodeId(0)).cpu_util, 0.5);
        assert_eq!(m.latest_at(NodeId(0)), t1);
        // node 1 untouched
        assert_eq!(m.latest(NodeId(1)).cpu_util, 0.0);
        let hist = m.history(NodeId(0), MetricKey::CpuUtil);
        assert_eq!(hist.value_at(t1), Some(0.5));
        let mem = m.history(NodeId(0), MetricKey::MemUsedGib);
        assert!((mem.value_at(t1).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn histories_across_nodes() {
        let mut m = monitor();
        let t = SimTime::from_secs_f64(2.0);
        m.ingest(HeartbeatSnapshot {
            node: NodeId(0),
            at: t,
            metrics: metrics(0.2, 1),
        });
        m.ingest(HeartbeatSnapshot {
            node: NodeId(1),
            at: t,
            metrics: metrics(0.8, 2),
        });
        let hs = m.histories(MetricKey::CpuUtil);
        assert_eq!(hs.len(), 2);
        let sd = rupam_simcore::series::stddev_across(
            &hs,
            t,
            t + SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        );
        assert!((sd[0].1 - 0.3).abs() < 1e-9);
    }

    #[test]
    fn batch_ingest_matches_sequential() {
        let t = SimTime::from_secs_f64(3.0);
        let storm = [
            HeartbeatSnapshot {
                node: NodeId(0),
                at: t,
                metrics: metrics(0.4, 3),
            },
            HeartbeatSnapshot {
                node: NodeId(1),
                at: t,
                metrics: metrics(0.9, 7),
            },
        ];
        let mut batched = monitor();
        batched.ingest_batch(&storm);
        let mut sequential = monitor();
        for hb in storm {
            sequential.ingest(hb);
        }
        for n in [NodeId(0), NodeId(1)] {
            assert_eq!(batched.latest(n), sequential.latest(n));
            assert_eq!(batched.latest_at(n), sequential.latest_at(n));
            for key in MetricKey::ALL {
                assert_eq!(
                    batched.history(n, key).value_at(t),
                    sequential.history(n, key).value_at(t)
                );
            }
        }
    }

    #[test]
    fn metric_key_extraction() {
        let m = metrics(0.75, 4);
        assert_eq!(MetricKey::CpuUtil.extract(&m), 0.75);
        assert!((MetricKey::MemUsedGib.extract(&m) - 4.0).abs() < 1e-9);
        assert!((MetricKey::NetMBps.extract(&m) - 50.0).abs() < 1e-9);
        assert!((MetricKey::DiskMBps.extract(&m) - 10.0).abs() < 1e-9);
    }
}
