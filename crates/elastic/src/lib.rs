//! # rupam-elastic
//!
//! The elastic-capacity model: deterministic, seeded *spot-price
//! processes* (one mean-reverting Ornstein–Uhlenbeck walk per spot
//! pool), a *capacity controller* with pluggable [`ScalingPolicy`]
//! implementations (Greedy / OnDemandFallback / OnDemandOnly), and
//! per-node-second *cost accounting*.
//!
//! Like `rupam-faults`, everything here is pure data + state machines —
//! the engine owns the clock, drives [`SpotPriceProcess::step`] from its
//! periodic elastic-check events on a dedicated RNG stream, and turns
//! the controller's [`ScalingAction`]s into node provision /
//! decommission / preemption transitions. With an empty
//! [`ElasticConfig`] (no pools) the subsystem is a strict no-op: no RNG
//! stream is ever drawn from, no check event is ever scheduled, and
//! runs are byte-identical to runs built without this crate.
//!
//! Determinism: the price path and the preemption draws are a pure
//! function of `(seed, pool order, check cadence)` — the same config
//! replays the same churn regardless of what the scheduler does with
//! it.

#![warn(missing_docs)]

use rand::Rng;
use rupam_cluster::{NodeId, NodeTier};

/// A mean-reverting Ornstein–Uhlenbeck price walk, discretised with the
/// Euler–Maruyama scheme:
///
/// ```text
/// p' = p + reversion · (mean − p) · dt + volatility · √dt · z
/// ```
///
/// where `z` is an approximately standard-normal draw. Prices are
/// clamped at `floor` (spot markets never pay you to compute).
#[derive(Clone, Debug, PartialEq)]
pub struct SpotPriceProcess {
    /// Current price, $/node-hour.
    pub price: f64,
    /// Long-run mean the walk reverts to.
    pub mean: f64,
    /// Mean-reversion rate (per second of simulated time).
    pub reversion: f64,
    /// Instantaneous volatility (per √second).
    pub volatility: f64,
    /// Hard lower bound on the price.
    pub floor: f64,
}

impl SpotPriceProcess {
    /// A process starting at its long-run mean.
    pub fn new(mean: f64, reversion: f64, volatility: f64) -> Self {
        SpotPriceProcess {
            price: mean,
            mean,
            reversion,
            volatility,
            floor: mean * 0.1,
        }
    }

    /// Advance the walk by `dt_secs`, drawing noise from `rng`.
    /// Returns the new price.
    pub fn step(&mut self, dt_secs: f64, rng: &mut impl Rng) -> f64 {
        // Irwin–Hall approximation of a standard normal: the sum of 12
        // uniforms minus 6. Keeps the dependency footprint at plain
        // `rand` (no rand_distr in the vendored set).
        let z: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0;
        self.price += self.reversion * (self.mean - self.price) * dt_secs
            + self.volatility * dt_secs.sqrt() * z;
        if self.price < self.floor {
            self.price = self.floor;
        }
        self.price
    }

    /// Relative excursion above the long-run mean, `≥ 0`.
    pub fn overshoot(&self) -> f64 {
        ((self.price - self.mean) / self.mean).max(0.0)
    }
}

/// One pool of spot nodes: a set of node ids sharing a price process
/// and a preemption model.
#[derive(Clone, Debug, PartialEq)]
pub struct SpotPool {
    /// Pool name used in traces and reports.
    pub name: String,
    /// Member nodes (spot tier). Must not overlap other pools.
    pub nodes: Vec<NodeId>,
    /// Long-run mean price, $/node-hour.
    pub mean_price: f64,
    /// OU mean-reversion rate, per second.
    pub reversion: f64,
    /// OU volatility, per √second.
    pub volatility: f64,
    /// Per-check preemption probability of an active node when the
    /// price sits at its long-run mean.
    pub preempt_base: f64,
    /// Extra per-check preemption probability per unit of relative
    /// price overshoot (price spikes reclaim capacity).
    pub preempt_slope: f64,
    /// Drain-notice window between the preemption notice and the
    /// reclaim, in seconds.
    pub notice_secs: f64,
}

impl SpotPool {
    /// The price process this pool starts with.
    pub fn price_process(&self) -> SpotPriceProcess {
        SpotPriceProcess::new(self.mean_price, self.reversion, self.volatility)
    }

    /// Per-check preemption probability at price state `p`.
    pub fn preempt_prob(&self, p: &SpotPriceProcess) -> f64 {
        (self.preempt_base + self.preempt_slope * p.overshoot()).clamp(0.0, 1.0)
    }
}

/// Which spot-procurement stance the capacity controller takes
/// (SNIPPETS.md Snippet 1's three allocation strategies).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpotPolicy {
    /// Always use spot capacity when there is backlog, whatever the
    /// current price.
    #[default]
    Greedy,
    /// Use spot capacity only while the pool price is at or below
    /// `max_spot_price`; above it, fall back to riding out the backlog
    /// on the on-demand fleet.
    OnDemandFallback,
    /// Never provision spot capacity (the fixed-fleet control).
    OnDemandOnly,
}

impl SpotPolicy {
    /// Stable short code used in reports and CLI flags.
    pub fn code(self) -> &'static str {
        match self {
            SpotPolicy::Greedy => "greedy",
            SpotPolicy::OnDemandFallback => "on-demand-fallback",
            SpotPolicy::OnDemandOnly => "on-demand-only",
        }
    }

    /// Parse a CLI / TOML policy code.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "greedy" => Ok(SpotPolicy::Greedy),
            "on-demand-fallback" => Ok(SpotPolicy::OnDemandFallback),
            "on-demand-only" => Ok(SpotPolicy::OnDemandOnly),
            other => Err(format!("unknown spot policy `{other}`")),
        }
    }

    /// The [`ScalingPolicy`] implementation behind this stance.
    pub fn scaling(self) -> &'static dyn ScalingPolicy {
        match self {
            SpotPolicy::Greedy => &Greedy,
            SpotPolicy::OnDemandFallback => &OnDemandFallback,
            SpotPolicy::OnDemandOnly => &OnDemandOnly,
        }
    }
}

/// What the controller can see of one pool when deciding a target.
#[derive(Clone, Copy, Debug)]
pub struct PoolView {
    /// Current spot price, $/node-hour.
    pub price: f64,
    /// Long-run mean price, $/node-hour.
    pub mean_price: f64,
    /// Nodes of the pool currently provisioned.
    pub active: usize,
    /// Total nodes in the pool.
    pub capacity: usize,
}

/// What the controller can see of cluster demand when deciding.
#[derive(Clone, Copy, Debug)]
pub struct DemandView {
    /// Launchable tasks waiting for a slot.
    pub backlog: usize,
    /// Provisioned nodes (all tiers).
    pub active_nodes: usize,
    /// Task slots per node the controller assumes when converting
    /// backlog into node counts.
    pub slots_per_node: usize,
}

impl DemandView {
    /// Extra nodes the backlog calls for beyond the active fleet, given
    /// the scale-up threshold `backlog_per_node`.
    pub fn shortfall(&self, backlog_per_node: f64) -> usize {
        let absorbed = (self.active_nodes as f64 * backlog_per_node) as usize;
        let excess = self.backlog.saturating_sub(absorbed);
        excess.div_ceil(self.slots_per_node.max(1))
    }
}

/// A capacity decision for one pool: how many of its nodes should be
/// provisioned after this check.
pub trait ScalingPolicy {
    /// Policy name for traces and reports.
    fn name(&self) -> &'static str;

    /// Desired number of active nodes in `pool`, given `demand` and the
    /// controller tunables in `cfg`. The controller clamps the answer
    /// to `[0, pool.capacity]`, only scales down nodes that are idle,
    /// and never touches draining nodes.
    fn target(&self, cfg: &ElasticConfig, pool: &PoolView, demand: &DemandView) -> usize;
}

/// Scale up into spot whenever there is backlog, whatever the price.
pub struct Greedy;

impl ScalingPolicy for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn target(&self, cfg: &ElasticConfig, pool: &PoolView, demand: &DemandView) -> usize {
        let want = pool.active + demand.shortfall(cfg.scale_up_backlog);
        if demand.backlog == 0 {
            0 // idle fleet: give everything back (subject to idle grace)
        } else {
            want.min(pool.capacity)
        }
    }
}

/// Spot only while cheap: above `max_spot_price` the pool drains and
/// the backlog rides on the on-demand fleet.
pub struct OnDemandFallback;

impl ScalingPolicy for OnDemandFallback {
    fn name(&self) -> &'static str {
        "on-demand-fallback"
    }

    fn target(&self, cfg: &ElasticConfig, pool: &PoolView, demand: &DemandView) -> usize {
        if pool.price > cfg.max_spot_price * pool.mean_price {
            return 0;
        }
        Greedy.target(cfg, pool, demand)
    }
}

/// The fixed-fleet control: spot pools stay empty forever.
pub struct OnDemandOnly;

impl ScalingPolicy for OnDemandOnly {
    fn name(&self) -> &'static str {
        "on-demand-only"
    }

    fn target(&self, _cfg: &ElasticConfig, _pool: &PoolView, _demand: &DemandView) -> usize {
        0
    }
}

/// Elastic-subsystem tunables carried inside the simulation config.
#[derive(Clone, Debug, PartialEq)]
pub struct ElasticConfig {
    /// Spot pools. Empty (the default) disables the whole subsystem —
    /// no controller events, no RNG draws, byte-identical decision
    /// traces to a build without the elastic layer.
    pub pools: Vec<SpotPool>,
    /// Controller cadence in seconds of simulated time.
    pub check_secs: f64,
    /// On-demand price, $/node-hour (cost accounting for the fixed
    /// fleet).
    pub on_demand_price: f64,
    /// Procurement stance.
    pub policy: SpotPolicy,
    /// Backlog per active node above which the controller scales up.
    pub scale_up_backlog: f64,
    /// How long a spot node must sit idle before the controller
    /// decommissions it.
    pub scale_down_idle_secs: f64,
    /// `OnDemandFallback` price ceiling, as a multiple of the pool's
    /// long-run mean price.
    pub max_spot_price: f64,
    /// Provisioning latency: a newly provisioned node accepts work this
    /// many seconds after the controller's decision.
    pub provision_secs: f64,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            pools: Vec::new(),
            check_secs: 5.0,
            on_demand_price: 1.0,
            policy: SpotPolicy::Greedy,
            scale_up_backlog: 4.0,
            scale_down_idle_secs: 30.0,
            max_spot_price: 1.25,
            provision_secs: 5.0,
        }
    }
}

impl ElasticConfig {
    /// Whether the subsystem is fully disabled (no pools).
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Tier of `node` under this config.
    pub fn tier(&self, node: NodeId) -> NodeTier {
        if self.pool_of(node).is_some() {
            NodeTier::Spot
        } else {
            NodeTier::OnDemand
        }
    }

    /// Index of the pool `node` belongs to, if any.
    pub fn pool_of(&self, node: NodeId) -> Option<usize> {
        self.pools.iter().position(|p| p.nodes.contains(&node))
    }

    /// Canned scenario: the last `spot` of `nodes` cluster nodes form
    /// one spot pool priced at a third of on-demand, preempted rarely
    /// at the mean and aggressively on spikes.
    pub fn spot_tail(nodes: usize, spot: usize, policy: SpotPolicy) -> Self {
        let spot = spot.min(nodes);
        ElasticConfig {
            pools: vec![SpotPool {
                name: "tail".into(),
                nodes: (nodes - spot..nodes).map(NodeId).collect(),
                mean_price: 0.33,
                reversion: 0.02,
                volatility: 0.05,
                preempt_base: 0.002,
                preempt_slope: 0.10,
                notice_secs: 8.0,
            }],
            policy,
            ..ElasticConfig::default()
        }
    }

    /// Parse the elasticity-script TOML dialect documented in the
    /// README: one optional `[elastic]` table of controller tunables
    /// followed by `[[pool]]` tables (`name`, `nodes` as an inline
    /// array of indices, `mean_price`, and optional `reversion`,
    /// `volatility`, `preempt_base`, `preempt_slope`, `notice`). `#`
    /// starts a comment. Hand-rolled like [`FaultScript::parse_toml`] —
    /// the build is offline and the grammar is tiny.
    ///
    /// [`FaultScript::parse_toml`]:
    ///     https://docs.rs/rupam-faults (see `rupam_faults::FaultScript`)
    pub fn parse_toml(text: &str) -> Result<Self, String> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Elastic,
            Pool,
        }
        let mut cfg = ElasticConfig::default();
        let mut section = Section::None;
        let mut fields: Vec<(String, String)> = Vec::new();
        let flush = |cfg: &mut ElasticConfig,
                     section: &Section,
                     fields: &mut Vec<(String, String)>|
         -> Result<(), String> {
            match section {
                Section::Pool => cfg.pools.push(Self::pool_from_fields(fields)?),
                Section::Elastic => Self::tunables_from_fields(cfg, fields)?,
                Section::None => {}
            }
            fields.clear();
            Ok(())
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            match line {
                "[elastic]" => {
                    flush(&mut cfg, &section, &mut fields)?;
                    section = Section::Elastic;
                    continue;
                }
                "[[pool]]" => {
                    flush(&mut cfg, &section, &mut fields)?;
                    section = Section::Pool;
                    continue;
                }
                _ => {}
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {}: expected `key = value`: {raw}",
                    lineno + 1
                ));
            };
            if section == Section::None {
                return Err(format!(
                    "line {}: `{}` outside [elastic] / [[pool]]",
                    lineno + 1,
                    key.trim()
                ));
            }
            fields.push((
                key.trim().to_string(),
                value.trim().trim_matches('"').to_string(),
            ));
        }
        flush(&mut cfg, &section, &mut fields)?;
        let mut seen: Vec<NodeId> = Vec::new();
        for p in &cfg.pools {
            if p.nodes.is_empty() {
                return Err(format!("pool `{}` has no nodes", p.name));
            }
            for n in &p.nodes {
                if seen.contains(n) {
                    return Err(format!("node {n} belongs to two pools"));
                }
                seen.push(*n);
            }
        }
        Ok(cfg)
    }

    fn tunables_from_fields(
        cfg: &mut ElasticConfig,
        fields: &[(String, String)],
    ) -> Result<(), String> {
        for (key, value) in fields {
            let num = || -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|e| format!("[elastic] bad `{key}`: {e}"))
            };
            match key.as_str() {
                "check_secs" => cfg.check_secs = num()?,
                "on_demand_price" => cfg.on_demand_price = num()?,
                "policy" => cfg.policy = SpotPolicy::parse(value)?,
                "scale_up_backlog" => cfg.scale_up_backlog = num()?,
                "scale_down_idle_secs" => cfg.scale_down_idle_secs = num()?,
                "max_spot_price" => cfg.max_spot_price = num()?,
                "provision_secs" => cfg.provision_secs = num()?,
                other => return Err(format!("[elastic] unknown key `{other}`")),
            }
        }
        if !(cfg.check_secs.is_finite() && cfg.check_secs > 0.0) {
            return Err(format!("[elastic] bad `check_secs`: {}", cfg.check_secs));
        }
        Ok(())
    }

    fn pool_from_fields(fields: &[(String, String)]) -> Result<SpotPool, String> {
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
        };
        let num = |key: &str, default: f64| -> Result<f64, String> {
            match get(key) {
                None => Ok(default),
                Some(v) => v
                    .parse::<f64>()
                    .map_err(|e| format!("[[pool]] bad `{key}`: {e}")),
            }
        };
        let nodes_text = get("nodes").ok_or("[[pool]] missing `nodes`")?;
        let nodes: Vec<NodeId> = nodes_text
            .trim_start_matches('[')
            .trim_end_matches(']')
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<usize>()
                    .map(NodeId)
                    .map_err(|e| format!("[[pool]] bad node `{s}`: {e}"))
            })
            .collect::<Result<_, _>>()?;
        let mean_price = num("mean_price", f64::NAN)?;
        if !mean_price.is_finite() || mean_price <= 0.0 {
            return Err("[[pool]] missing or bad `mean_price`".into());
        }
        Ok(SpotPool {
            name: get("name").unwrap_or("spot").to_string(),
            nodes,
            mean_price,
            reversion: num("reversion", 0.02)?,
            volatility: num("volatility", 0.05)?,
            preempt_base: num("preempt_base", 0.002)?,
            preempt_slope: num("preempt_slope", 0.10)?,
            notice_secs: num("notice", 8.0)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn empty_config_is_empty() {
        assert!(ElasticConfig::default().is_empty());
        assert_eq!(ElasticConfig::default().tier(NodeId(0)), NodeTier::OnDemand);
    }

    #[test]
    fn ou_walk_reverts_and_respects_floor() {
        let mut p = SpotPriceProcess::new(0.3, 0.05, 0.02);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        let mut n = 0.0;
        for _ in 0..5_000 {
            let v = p.step(5.0, &mut rng);
            assert!(v >= p.floor, "floor holds");
            sum += v;
            n += 1.0;
        }
        let avg = sum / n;
        assert!(
            (avg - 0.3).abs() < 0.1,
            "long-run average near the mean: {avg}"
        );
    }

    #[test]
    fn ou_walk_is_deterministic_per_seed() {
        let walk = |seed| {
            let mut p = SpotPriceProcess::new(0.3, 0.05, 0.02);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            (0..64).map(|_| p.step(5.0, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(walk(11), walk(11));
        assert_ne!(walk(11), walk(12));
    }

    #[test]
    fn preempt_prob_rises_with_price() {
        let pool = ElasticConfig::spot_tail(12, 4, SpotPolicy::Greedy).pools[0].clone();
        let mut p = pool.price_process();
        let at_mean = pool.preempt_prob(&p);
        p.price = p.mean * 2.0;
        let spiked = pool.preempt_prob(&p);
        assert!(at_mean < spiked, "{at_mean} < {spiked}");
        p.price = p.mean * 1e6;
        assert!(pool.preempt_prob(&p) <= 1.0, "clamped");
    }

    #[test]
    fn policies_disagree_exactly_where_expected() {
        let cfg = ElasticConfig::spot_tail(12, 4, SpotPolicy::Greedy);
        let demand = DemandView {
            backlog: 64,
            active_nodes: 8,
            slots_per_node: 8,
        };
        let cheap = PoolView {
            price: 0.33,
            mean_price: 0.33,
            active: 0,
            capacity: 4,
        };
        let spiked = PoolView {
            price: 0.33 * 3.0,
            ..cheap
        };
        assert!(Greedy.target(&cfg, &cheap, &demand) > 0);
        assert!(Greedy.target(&cfg, &spiked, &demand) > 0, "price-blind");
        assert!(OnDemandFallback.target(&cfg, &cheap, &demand) > 0);
        assert_eq!(OnDemandFallback.target(&cfg, &spiked, &demand), 0);
        assert_eq!(OnDemandOnly.target(&cfg, &cheap, &demand), 0);
        let idle = DemandView {
            backlog: 0,
            ..demand
        };
        assert_eq!(Greedy.target(&cfg, &cheap, &idle), 0, "idle scale-down");
    }

    #[test]
    fn shortfall_converts_backlog_to_nodes() {
        let d = DemandView {
            backlog: 100,
            active_nodes: 10,
            slots_per_node: 8,
        };
        // 10 nodes absorb 40 tasks at 4/node; 60 excess / 8 slots → 8
        assert_eq!(d.shortfall(4.0), 8);
        assert_eq!(DemandView { backlog: 0, ..d }.shortfall(4.0), 0);
    }

    #[test]
    fn parses_the_documented_toml_dialect() {
        let text = r#"
            # spot tail over hydra12
            [elastic]
            check_secs = 4.0
            policy = "on-demand-fallback"
            on_demand_price = 0.9
            max_spot_price = 1.5

            [[pool]]
            name = "tail"
            nodes = [8, 9, 10, 11]
            mean_price = 0.3
            volatility = 0.04
            notice = 6.0
        "#;
        let cfg = ElasticConfig::parse_toml(text).expect("parses");
        assert_eq!(cfg.check_secs, 4.0);
        assert_eq!(cfg.policy, SpotPolicy::OnDemandFallback);
        assert_eq!(cfg.on_demand_price, 0.9);
        assert_eq!(cfg.pools.len(), 1);
        let p = &cfg.pools[0];
        assert_eq!(p.name, "tail");
        assert_eq!(p.nodes, vec![NodeId(8), NodeId(9), NodeId(10), NodeId(11)]);
        assert_eq!(p.mean_price, 0.3);
        assert_eq!(p.volatility, 0.04);
        assert_eq!(p.notice_secs, 6.0);
        assert_eq!(p.reversion, 0.02, "default");
        assert_eq!(cfg.tier(NodeId(9)), NodeTier::Spot);
        assert_eq!(cfg.tier(NodeId(0)), NodeTier::OnDemand);
        assert_eq!(cfg.pool_of(NodeId(11)), Some(0));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(
            ElasticConfig::parse_toml("check_secs = 1.0").is_err(),
            "key before section"
        );
        assert!(
            ElasticConfig::parse_toml("[[pool]]\nname = \"p\"\nmean_price = 0.3").is_err(),
            "missing nodes"
        );
        assert!(
            ElasticConfig::parse_toml("[[pool]]\nnodes = [0]").is_err(),
            "missing mean_price"
        );
        assert!(
            ElasticConfig::parse_toml("[elastic]\nbogus = 1").is_err(),
            "unknown tunable"
        );
        assert!(
            ElasticConfig::parse_toml(
                "[[pool]]\nnodes = [0, 1]\nmean_price = 0.3\n[[pool]]\nnodes = [1]\nmean_price = 0.2"
            )
            .is_err(),
            "overlapping pools"
        );
        assert!(
            ElasticConfig::parse_toml("").expect("empty ok").is_empty(),
            "empty text is the disabled config"
        );
    }

    #[test]
    fn spot_tail_is_well_formed() {
        let cfg = ElasticConfig::spot_tail(12, 4, SpotPolicy::Greedy);
        assert_eq!(cfg.pools[0].nodes.len(), 4);
        assert_eq!(cfg.pools[0].nodes[0], NodeId(8));
        assert!(cfg.pools[0].mean_price < cfg.on_demand_price);
        assert_eq!(cfg.tier(NodeId(11)), NodeTier::Spot);
    }
}
