//! Plain-text exports of run data for external analysis: task records
//! and utilisation histories as CSV (no serialization dependency — the
//! formats are trivial and the writer is 50 lines).

use std::fmt::Write as _;

use rupam_cluster::monitor::MetricKey;
use rupam_cluster::NodeId;

use crate::breakdown::BreakdownCategory;
use crate::report::RunReport;

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// One CSV row per task attempt, with the full breakdown expanded into
/// columns.
pub fn records_csv(report: &RunReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "job,stage,index,template,attempt,node,speculative,locality,launched_s,finished_s,outcome,peak_mem_bytes,used_gpu"
    );
    for cat in BreakdownCategory::ALL {
        let _ = write!(
            out,
            ",{}_s",
            cat.label().to_lowercase().replace([' ', '-'], "_")
        );
    }
    let _ = writeln!(out);
    for r in &report.records {
        let _ = write!(
            out,
            "{},{},{},{},{},{},{},{},{:.6},{:.6},{:?},{},{}",
            r.job.index(),
            r.task.stage.index(),
            r.task.index,
            escape(r.template_key.as_str()),
            r.attempt,
            r.node.index(),
            r.speculative,
            r.locality.label(),
            r.launched_at.as_secs_f64(),
            r.finished_at.as_secs_f64(),
            r.outcome,
            r.peak_mem.bytes(),
            r.used_gpu,
        );
        for cat in BreakdownCategory::ALL {
            let _ = write!(out, ",{:.6}", r.breakdown.get(cat).as_secs_f64());
        }
        let _ = writeln!(out);
    }
    out
}

/// Schema-version marker emitted as the first line of [`trace_csv`].
/// Bump the version whenever columns or detail payloads change shape, so
/// downstream tooling can refuse files it does not understand. The `#`
/// prefix matches the digest-file convention (`# rupam-trace-digests v2`).
/// v2 added the `tenant` column (and tenants on the job/launch trace
/// events themselves, which is why the digest schema bumped in step).
pub const TRACE_CSV_SCHEMA: &str = "# rupam-trace-csv v2";

/// One CSV row per decision-trace event:
/// `time_s,round,event,task,node,tenant,detail`, preceded by the
/// [`TRACE_CSV_SCHEMA`] version line. The `tenant` column is filled on
/// the events that serve an identifiable tenant (job submission and
/// completion, launches) and empty elsewhere. The `detail` column
/// carries the event-specific payload (launch reason code and locality,
/// kill pressure, audit check name, …) so the trace stays greppable
/// without a schema per event kind.
pub fn trace_csv(trace: &crate::trace::TraceBuffer) -> String {
    use crate::trace::TraceEventKind as K;
    let fmt_task = |t: &rupam_dag::TaskRef| format!("{}.{}", t.stage.index(), t.index);
    let mut out = format!("{TRACE_CSV_SCHEMA}\ntime_s,round,event,task,node,tenant,detail\n");
    for e in trace.iter() {
        let mut tenant = String::new();
        let (task, node, detail) = match &e.kind {
            K::ExecutorSized { node, mem } => {
                (String::new(), node.index().to_string(), format!("mem={}", mem.bytes()))
            }
            K::OfferRound { pending, running, blocked, commands } => (
                String::new(),
                String::new(),
                format!("pending={pending} running={running} blocked={blocked} commands={commands}"),
            ),
            K::JobSubmitted { job, tenant: t } => {
                tenant = t.index().to_string();
                (String::new(), String::new(), format!("job={}", job.index()))
            }
            K::JobCompleted { job, tenant: t } => {
                tenant = t.index().to_string();
                (String::new(), String::new(), format!("job={}", job.index()))
            }
            K::Launch {
                task,
                job,
                tenant: t,
                node,
                attempt,
                speculative,
                use_gpu,
                locality,
                reason,
            } => {
                tenant = t.index().to_string();
                (
                    fmt_task(task),
                    node.index().to_string(),
                    format!(
                        "reason={reason} locality={} attempt={attempt} speculative={speculative} gpu={use_gpu} job={}",
                        locality.label(),
                        job.index()
                    ),
                )
            }
            K::KillRequeue { task, node } => {
                (fmt_task(task), node.index().to_string(), String::new())
            }
            K::OomTaskKill { task, node, pressure_pct } => (
                fmt_task(task),
                node.index().to_string(),
                format!("pressure_pct={pressure_pct}"),
            ),
            K::ExecutorLost { node, victims, pressure_pct } => (
                String::new(),
                node.index().to_string(),
                format!("victims={victims} pressure_pct={pressure_pct}"),
            ),
            K::SpeculationFlagged { task } => (fmt_task(task), String::new(), String::new()),
            K::Aborted { cause, task } => (
                task.as_ref().map(fmt_task).unwrap_or_default(),
                String::new(),
                format!("{cause:?}"),
            ),
            K::AuditViolation { check, detail } => {
                (String::new(), String::new(), format!("{check}: {detail}"))
            }
            K::FaultInjected { node, fault } => {
                (String::new(), node.index().to_string(), format!("fault={fault}"))
            }
            K::NodeSuspect { node, age } => (
                String::new(),
                node.index().to_string(),
                format!("age_s={:.6}", age.as_secs_f64()),
            ),
            K::NodeDead { node, age } => (
                String::new(),
                node.index().to_string(),
                format!("age_s={:.6}", age.as_secs_f64()),
            ),
            K::NodeRecovered { node } => (String::new(), node.index().to_string(), String::new()),
            K::LineageRecompute { stage, node, tasks } => (
                String::new(),
                node.index().to_string(),
                format!("stage={} tasks={tasks}", stage.index()),
            ),
            K::NodeProvisioned { node } => {
                (String::new(), node.index().to_string(), String::new())
            }
            K::NodeDecommissioned { node } => {
                (String::new(), node.index().to_string(), String::new())
            }
            K::PreemptionNotice { node, notice } => (
                String::new(),
                node.index().to_string(),
                format!("notice_s={:.6}", notice.as_secs_f64()),
            ),
        };
        let _ = writeln!(
            out,
            "{:.6},{},{},{},{},{},{}",
            e.at.as_secs_f64(),
            e.round,
            e.code(),
            task,
            node,
            tenant,
            escape(&detail)
        );
    }
    out
}

/// One CSV row per monitor sample of one metric:
/// `node,time_s,value`.
pub fn utilization_csv(report: &RunReport, key: MetricKey) -> String {
    let mut out = String::from("node,time_s,value\n");
    for i in 0..report.monitor.len() {
        for (t, v) in report.monitor.history(NodeId(i), key).points() {
            let _ = writeln!(out, "{},{:.6},{:.6}", i, t.as_secs_f64(), v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakdown::TaskBreakdown;
    use crate::record::{AttemptOutcome, TaskRecord};
    use crate::report::JobOutcome;
    use rupam_cluster::monitor::{HeartbeatSnapshot, NodeMetrics};
    use rupam_cluster::{ClusterSpec, ResourceMonitor};
    use rupam_dag::{JobId, Locality, StageId, TaskRef};
    use rupam_simcore::time::{SimDuration, SimTime};
    use rupam_simcore::units::ByteSize;

    fn report() -> RunReport {
        let mut breakdown = TaskBreakdown::new();
        breakdown.add(BreakdownCategory::Compute, SimDuration::from_secs(2));
        let mut monitor = ResourceMonitor::new(&ClusterSpec::two_node_motivation());
        monitor.ingest(HeartbeatSnapshot {
            node: NodeId(0),
            at: SimTime::from_secs_f64(1.0),
            metrics: NodeMetrics {
                cpu_util: 0.5,
                ..NodeMetrics::default()
            },
        });
        RunReport {
            app_name: "t".into(),
            scheduler_name: "s".into(),
            seed: 0,
            makespan: SimDuration::from_secs(10),
            completed: true,
            jobs: vec![JobOutcome {
                job: JobId(0),
                tenant: rupam_dag::TenantId(0),
                name: "t".into(),
                submitted_at: SimTime::ZERO,
                completed_at: Some(SimTime::from_secs_f64(10.0)),
            }],
            records: vec![TaskRecord {
                task: TaskRef {
                    stage: StageId(1),
                    index: 2,
                },
                job: JobId(0),
                template_key: "demo, with comma".into(),
                attempt: 0,
                node: NodeId(1),
                speculative: false,
                locality: Locality::NodeLocal,
                launched_at: SimTime::from_secs_f64(1.0),
                finished_at: SimTime::from_secs_f64(3.0),
                outcome: AttemptOutcome::Success,
                breakdown,
                peak_mem: ByteSize::mib(100),
                used_gpu: false,
            }],
            monitor,
            oom_failures: 0,
            executor_losses: 0,
            speculative_launched: 0,
            speculative_wins: 0,
            faults: crate::report::FaultSummary::default(),
            cost: crate::report::CostSummary::default(),
        }
    }

    #[test]
    fn records_csv_shape() {
        let csv = records_csv(&report());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2, "header + one record");
        let header_cols = lines[0].split(',').count();
        // the quoted template field contains a comma — count on the header
        assert_eq!(header_cols, 13 + BreakdownCategory::ALL.len());
        assert!(lines[1].contains("\"demo, with comma\""));
        assert!(lines[1].contains("NODE_LOCAL"));
        assert!(lines[1].contains("Success"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn trace_csv_shape() {
        use crate::trace::{LaunchReason, TraceBuffer, TraceEvent, TraceEventKind};
        let mut trace = TraceBuffer::new(16);
        trace.record(TraceEvent {
            at: SimTime::from_secs_f64(0.5),
            round: 1,
            kind: TraceEventKind::Launch {
                task: TaskRef {
                    stage: StageId(2),
                    index: 3,
                },
                job: JobId(0),
                tenant: rupam_dag::TenantId(4),
                node: NodeId(1),
                attempt: 0,
                speculative: false,
                use_gpu: true,
                locality: Locality::NodeLocal,
                reason: LaunchReason::SafetyValve,
            },
        });
        trace.record(TraceEvent {
            at: SimTime::from_secs_f64(1.0),
            round: 2,
            kind: TraceEventKind::AuditViolation {
                check: "memory-feasibility",
                detail: "claim, with comma".into(),
            },
        });
        let csv = trace_csv(&trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], TRACE_CSV_SCHEMA);
        assert_eq!(lines[1], "time_s,round,event,task,node,tenant,detail");
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("0.500000,1,launch,2.3,1,4,"));
        assert!(
            lines[3].contains(",,\"memory-feasibility"),
            "tenant column stays empty on non-tenant events"
        );
        assert!(lines[2].contains("reason=safety-valve"));
        assert!(lines[2].contains("locality=NODE_LOCAL"));
        assert!(lines[3].contains("audit-violation"));
        assert!(lines[3].contains("\"memory-feasibility: claim, with comma\""));
    }

    #[test]
    fn trace_csv_carries_fault_events_and_heartbeat_age() {
        use crate::trace::{TraceBuffer, TraceEvent, TraceEventKind};
        let mut trace = TraceBuffer::new(16);
        let ev = |kind| TraceEvent {
            at: SimTime::from_secs_f64(2.0),
            round: 3,
            kind,
        };
        trace.record(ev(TraceEventKind::FaultInjected {
            node: NodeId(2),
            fault: "crash",
        }));
        trace.record(ev(TraceEventKind::NodeSuspect {
            node: NodeId(2),
            age: SimDuration::from_secs_f64(4.5),
        }));
        trace.record(ev(TraceEventKind::NodeDead {
            node: NodeId(2),
            age: SimDuration::from_secs_f64(11.0),
        }));
        trace.record(ev(TraceEventKind::NodeRecovered { node: NodeId(2) }));
        trace.record(ev(TraceEventKind::LineageRecompute {
            stage: StageId(1),
            node: NodeId(2),
            tasks: 4,
        }));
        let csv = trace_csv(&trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], TRACE_CSV_SCHEMA);
        assert_eq!(lines.len(), 7);
        assert!(lines[2].contains("fault-injected") && lines[2].contains("fault=crash"));
        assert!(lines[3].contains("node-suspect") && lines[3].contains("age_s=4.500000"));
        assert!(lines[4].contains("node-dead") && lines[4].contains("age_s=11.000000"));
        assert!(lines[5].contains("node-recovered"));
        assert!(lines[6].contains("lineage-recompute") && lines[6].contains("stage=1 tasks=4"));
    }

    #[test]
    fn utilization_csv_shape() {
        let csv = utilization_csv(&report(), MetricKey::CpuUtil);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "node,time_s,value");
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("0,1.000000,0.5"));
    }
}
