//! Immutable per-attempt records.
//!
//! Every launched task attempt — regular, retried, or speculative —
//! yields exactly one [`TaskRecord`] when it leaves the system. The
//! record carries everything the paper's figures need and everything
//! RUPAM's Task Manager records into `DB_task_char` (Table I, right).

use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;
use rupam_simcore::Sym;

use rupam_cluster::NodeId;
use rupam_dag::{JobId, Locality, TaskRef};

use crate::breakdown::TaskBreakdown;

/// How an attempt left the system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttemptOutcome {
    /// Finished its work.
    Success,
    /// Failed with an out-of-memory error (stock Spark's failure mode on
    /// overcommitted executors).
    OomFailure,
    /// Killed because its executor died (worker JVM OOM).
    ExecutorLost,
    /// Pre-emptively killed by RUPAM's memory-straggler relocation and
    /// requeued elsewhere.
    MemoryStragglerKilled,
    /// Aborted because another attempt of the same task won the race
    /// (speculation or RUPAM's GPU/CPU racing).
    LostRace,
    /// Killed because its node crashed or was declared dead by the
    /// heartbeat failure detector; the task is re-queued.
    NodeFaulted,
    /// Killed because its tenant ran over quota and the allocator chose
    /// it as the preemption victim; the task is re-queued through the
    /// lineage-recovery path. Unlike [`AttemptOutcome::OomFailure`] this
    /// says nothing about the task's memory behaviour.
    QuotaPreempted,
}

impl AttemptOutcome {
    /// Whether the attempt's work counted towards stage completion.
    pub fn is_success(self) -> bool {
        matches!(self, AttemptOutcome::Success)
    }

    /// Whether the attempt failed and its task had to be relaunched.
    pub fn is_failure(self) -> bool {
        matches!(
            self,
            AttemptOutcome::OomFailure
                | AttemptOutcome::ExecutorLost
                | AttemptOutcome::MemoryStragglerKilled
                | AttemptOutcome::NodeFaulted
                | AttemptOutcome::QuotaPreempted
        )
    }
}

/// One completed (successfully or not) task attempt.
#[derive(Clone, Debug)]
pub struct TaskRecord {
    /// Which task this attempt ran.
    pub task: TaskRef,
    /// Stream job the task belongs to (`JobId(0)` on single-app runs).
    pub job: JobId,
    /// Template key of the owning stage (the `DB_task_char` key together
    /// with `task.index`).
    pub template_key: Sym,
    /// Attempt number (0 = first attempt).
    pub attempt: u32,
    /// Node the attempt ran on.
    pub node: NodeId,
    /// Whether this was a speculative / racing copy.
    pub speculative: bool,
    /// Locality level achieved at launch.
    pub locality: Locality,
    /// Launch time.
    pub launched_at: SimTime,
    /// Completion / termination time.
    pub finished_at: SimTime,
    /// Outcome.
    pub outcome: AttemptOutcome,
    /// Per-category time breakdown.
    pub breakdown: TaskBreakdown,
    /// Peak memory held.
    pub peak_mem: ByteSize,
    /// Whether the attempt executed its kernels on a GPU.
    pub used_gpu: bool,
}

impl TaskRecord {
    /// Wall-clock duration of the attempt.
    pub fn duration(&self) -> SimDuration {
        self.finished_at.since(self.launched_at)
    }

    /// Compute time including GC and serialisation — the paper's
    /// `computetime` task metric ("time the task spent on computation,
    /// including serialization and deserialization").
    pub fn compute_time(&self) -> SimDuration {
        use crate::breakdown::BreakdownCategory as C;
        self.breakdown.get(C::Compute)
            + self.breakdown.get(C::Gc)
            + self.breakdown.get(C::Serialization)
    }

    /// Shuffle-read time (`shuffleread`): network + local-disk fetch.
    pub fn shuffle_read_time(&self) -> SimDuration {
        use crate::breakdown::BreakdownCategory as C;
        self.breakdown.get(C::ShuffleNet) + self.breakdown.get(C::ShuffleDisk)
    }

    /// Shuffle-write time (`shufflewrite`).
    pub fn shuffle_write_time(&self) -> SimDuration {
        self.breakdown
            .get(crate::breakdown::BreakdownCategory::ShuffleWrite)
    }

    /// HDFS input read time (local disk + remote fetch) — reported apart
    /// from shuffle, as Spark's task metrics do.
    pub fn input_read_time(&self) -> SimDuration {
        use crate::breakdown::BreakdownCategory as C;
        self.breakdown.get(C::HdfsDisk) + self.breakdown.get(C::HdfsNet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakdown::BreakdownCategory as C;
    use rupam_dag::StageId;

    fn record() -> TaskRecord {
        let mut breakdown = TaskBreakdown::new();
        breakdown.add(C::Compute, SimDuration::from_secs(4));
        breakdown.add(C::Gc, SimDuration::from_secs(1));
        breakdown.add(C::Serialization, SimDuration::from_millis(500));
        breakdown.add(C::ShuffleNet, SimDuration::from_secs(2));
        breakdown.add(C::ShuffleDisk, SimDuration::from_secs(1));
        breakdown.add(C::ShuffleWrite, SimDuration::from_millis(1500));
        TaskRecord {
            task: TaskRef {
                stage: StageId(0),
                index: 3,
            },
            job: JobId(0),
            template_key: "t/m".into(),
            attempt: 0,
            node: NodeId(1),
            speculative: false,
            locality: Locality::NodeLocal,
            launched_at: SimTime::from_secs_f64(10.0),
            finished_at: SimTime::from_secs_f64(20.0),
            outcome: AttemptOutcome::Success,
            breakdown,
            peak_mem: ByteSize::gib(1),
            used_gpu: false,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = record();
        assert_eq!(r.duration(), SimDuration::from_secs(10));
        assert_eq!(r.compute_time(), SimDuration::from_millis(5500));
        assert_eq!(r.shuffle_read_time(), SimDuration::from_secs(3));
        assert_eq!(r.shuffle_write_time(), SimDuration::from_millis(1500));
    }

    #[test]
    fn outcome_predicates() {
        assert!(AttemptOutcome::Success.is_success());
        assert!(!AttemptOutcome::Success.is_failure());
        assert!(AttemptOutcome::OomFailure.is_failure());
        assert!(AttemptOutcome::ExecutorLost.is_failure());
        assert!(AttemptOutcome::MemoryStragglerKilled.is_failure());
        assert!(AttemptOutcome::NodeFaulted.is_failure());
        assert!(!AttemptOutcome::NodeFaulted.is_success());
        assert!(AttemptOutcome::QuotaPreempted.is_failure());
        assert!(!AttemptOutcome::QuotaPreempted.is_success());
        assert!(!AttemptOutcome::LostRace.is_failure());
        assert!(!AttemptOutcome::LostRace.is_success());
    }
}
