//! Structured decision traces.
//!
//! Every scheduling decision the engine applies can be recorded as a
//! [`TraceEvent`]: offer-round snapshots, launches (each carrying the
//! *reason* the issuing policy chose that placement), OOM kills, executor
//! losses, speculation flags, executor sizing and aborts. Events are
//! deterministic projections of simulation state — no wall-clock time, no
//! host randomness — so two runs of the same `(cluster, workload, seed)`
//! produce byte-identical traces, and a trace digest doubles as a replay-
//! determinism check.
//!
//! Traces are buffered in a fixed-capacity ring ([`TraceBuffer`]): steady
//! memory use on arbitrarily long runs, with a `dropped` counter instead
//! of silent truncation.

use std::collections::VecDeque;
use std::fmt;

use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;

use rupam_cluster::resources::ResourceKind;
use rupam_cluster::NodeId;
use rupam_dag::{JobId, Locality, StageId, TaskRef, TenantId};

/// Why a scheduler issued a `Command::Launch` — the machine-readable
/// reason code attached to every launch decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LaunchReason {
    /// Algorithm 2 queue match: the task came from `kind`'s Task Queue,
    /// the node from `kind`'s Resource Queue, and the memory-feasibility
    /// check passed; ties were broken at `locality`.
    QueueMatch {
        /// Resource kind whose queues were matched.
        kind: ResourceKind,
        /// Locality level of the winning candidate.
        locality: Locality,
    },
    /// The task has exhibited all five bottlenecks and is locked to its
    /// historically best executor (Algorithm 2 lines 12–16). When
    /// `overrode_memory_veto` is set, the lock overrode a failed
    /// memory-feasibility check — the one sanctioned exception.
    BestExecutorLock {
        /// True when the placement proceeded despite `peak > free_mem`.
        overrode_memory_veto: bool,
    },
    /// GPU queue had work but no GPU node had room, so the task fell back
    /// to the most powerful idle CPU node (§III-C3).
    GpuCpuFallback {
        /// Locality level of the fallback placement.
        locality: Locality,
    },
    /// The Dispatcher's progress safety valve: the cluster was idle and
    /// no estimate-respecting placement existed, so the first pending
    /// task was forced onto the node with the most free memory.
    SafetyValve,
    /// Stock Spark delay scheduling: the task set's current allowed level
    /// was `allowed` and the task launched at `achieved`.
    DelaySchedule {
        /// Locality level the task set currently tolerates.
        allowed: Locality,
        /// Locality level actually achieved on the offered node.
        achieved: Locality,
    },
    /// Stock Spark speculative copy on a free slot away from the original.
    SparkSpeculative,
    /// A plain FIFO slot fill (baseline/test schedulers).
    FifoSlot,
    /// Straggler relocation: a speculative copy placed on the best node
    /// for the task's recorded bottleneck.
    Relocation {
        /// Bottleneck resource that picked the target node.
        bottleneck: ResourceKind,
    },
    /// GPU/CPU race: the original grinds on the wrong side, this copy
    /// races it on the other (§III-C3).
    GpuRace,
    /// Gang admission: the task launched as part of an all-or-nothing
    /// plan that co-placed every task of a `gang: true` stage in one
    /// round (memory-feasibility checked per placement, like
    /// `QueueMatch`).
    GangAdmission {
        /// Locality level of this member's placement.
        locality: Locality,
    },
}

impl LaunchReason {
    /// Stable, machine-readable code (CSV exports, log filters).
    pub fn code(&self) -> &'static str {
        match self {
            LaunchReason::QueueMatch { .. } => "queue-match",
            LaunchReason::BestExecutorLock {
                overrode_memory_veto: true,
            } => "best-executor-lock-override",
            LaunchReason::BestExecutorLock { .. } => "best-executor-lock",
            LaunchReason::GpuCpuFallback { .. } => "gpu-cpu-fallback",
            LaunchReason::SafetyValve => "safety-valve",
            LaunchReason::DelaySchedule { .. } => "delay-schedule",
            LaunchReason::SparkSpeculative => "spark-speculative",
            LaunchReason::FifoSlot => "fifo-slot",
            LaunchReason::Relocation { .. } => "relocation",
            LaunchReason::GpuRace => "gpu-race",
            LaunchReason::GangAdmission { .. } => "gang-admission",
        }
    }

    /// True when the issuing policy claims it verified the task fits in
    /// the node's free memory — exactly the launches the invariant
    /// auditor may hold to the memory-feasibility check.
    pub fn claims_memory_checked(&self) -> bool {
        matches!(
            self,
            LaunchReason::QueueMatch { .. }
                | LaunchReason::GpuCpuFallback { .. }
                | LaunchReason::GangAdmission { .. }
        )
    }
}

/// Displays as the canonical [`LaunchReason::code`] — trace exports,
/// audit violation text and report summaries all render reasons through
/// this one table, so the strings never drift apart.
impl fmt::Display for LaunchReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Why a run aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortCause {
    /// A task exhausted `max_retries` attempts.
    RetriesExhausted,
    /// Pending work but no placements for a long stretch of heartbeats
    /// (Spark's "Initial job has not accepted any resources").
    Livelock,
    /// The engine's event calendar drained while stages were incomplete
    /// and nothing was running — the run can never make progress again
    /// (e.g. a fault script that crashes every node before arrival).
    CalendarExhausted,
    /// Serve mode: every input producer hung up (workers and client
    /// gone) while stages were incomplete — the live event source can
    /// never deliver the completions the run is waiting for.
    SourceDisconnected,
}

/// One recorded decision, stamped with simulation time and offer round.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub at: SimTime,
    /// Offer-round counter at the event (0 = before the first round).
    pub round: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The event payload.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEventKind {
    /// An executor was sized at application start.
    ExecutorSized {
        /// Node the executor runs on.
        node: NodeId,
        /// Heap the scheduler requested (after the node-capacity clamp).
        mem: ByteSize,
    },
    /// An offer round ran: the snapshot the scheduler saw, summarised.
    OfferRound {
        /// Pending (schedulable) tasks in the snapshot.
        pending: usize,
        /// Running attempts across the cluster.
        running: usize,
        /// Nodes blocked by a JVM restart.
        blocked: usize,
        /// Commands the scheduler returned.
        commands: usize,
    },
    /// A stream job was submitted to the shared cluster.
    JobSubmitted {
        /// The arriving stream job.
        job: JobId,
        /// Tenant submitting it (`TenantId(0)` on single-app runs).
        tenant: TenantId,
    },
    /// A stream job ran all of its stages to completion.
    JobCompleted {
        /// The finished stream job.
        job: JobId,
        /// Tenant the job ran for.
        tenant: TenantId,
    },
    /// A launch command was applied.
    Launch {
        /// The task launched.
        task: TaskRef,
        /// Stream job of the task (`JobId(0)` on single-app runs).
        job: JobId,
        /// Tenant the launch serves (`TenantId(0)` on single-app runs).
        tenant: TenantId,
        /// Target node.
        node: NodeId,
        /// Attempt number (0 = first try).
        attempt: u32,
        /// Whether this is a speculative copy.
        speculative: bool,
        /// Whether the attempt runs its kernels on a GPU.
        use_gpu: bool,
        /// Locality level resolved against live state at launch.
        locality: Locality,
        /// Why the scheduler placed it here.
        reason: LaunchReason,
    },
    /// A memory-straggler kill-and-requeue was applied.
    KillRequeue {
        /// The task killed.
        task: TaskRef,
        /// Node it was killed on.
        node: NodeId,
    },
    /// A task-level OOM killed one attempt.
    OomTaskKill {
        /// The victim.
        task: TaskRef,
        /// Node it died on.
        node: NodeId,
        /// Heap pressure (`mem_in_use / executor_mem`) in percent.
        pressure_pct: u32,
    },
    /// The whole executor JVM died; every running attempt failed.
    ExecutorLost {
        /// Node whose executor died.
        node: NodeId,
        /// Attempts that died with it.
        victims: usize,
        /// Heap pressure in percent at the kill.
        pressure_pct: u32,
    },
    /// The engine flagged a running task as speculatable.
    SpeculationFlagged {
        /// The straggling task.
        task: TaskRef,
    },
    /// The run aborted.
    Aborted {
        /// Why.
        cause: AbortCause,
        /// The task that exhausted retries, if that was the cause.
        task: Option<TaskRef>,
    },
    /// The invariant auditor flagged a violation (mirrored into the trace
    /// so CSV exports carry the full story).
    AuditViolation {
        /// Which invariant (stable code).
        check: &'static str,
        /// Human-readable specifics.
        detail: String,
    },
    /// A scripted fault was injected on a node (chaos calendar).
    FaultInjected {
        /// Target node.
        node: NodeId,
        /// Stable fault-kind code (`crash`, `restart`, `slowdown`,
        /// `dropout`, `flaky-oom`).
        fault: &'static str,
    },
    /// The failure detector declared a node suspect (heartbeats late).
    NodeSuspect {
        /// The suspected node.
        node: NodeId,
        /// Heartbeat age at the declaration.
        age: SimDuration,
    },
    /// The failure detector declared a node dead; its work is killed and
    /// re-queued, its shuffle outputs recomputed via lineage.
    NodeDead {
        /// The declared-dead node.
        node: NodeId,
        /// Heartbeat age at the declaration.
        age: SimDuration,
    },
    /// A previously suspect/dead node resumed heartbeating (or was
    /// restarted) and was re-admitted to the rankings.
    NodeRecovered {
        /// The re-admitted node.
        node: NodeId,
    },
    /// Lineage-driven recompute: finished shuffle-map tasks whose
    /// outputs lived on a dead node were re-pended.
    LineageRecompute {
        /// The shuffle-map stage whose outputs were lost.
        stage: StageId,
        /// The dead node that held them.
        node: NodeId,
        /// How many tasks were re-pended.
        tasks: usize,
    },
    /// The capacity controller provisioned a node (elastic scale-up).
    NodeProvisioned {
        /// The node joining the fleet.
        node: NodeId,
    },
    /// The capacity controller decommissioned an idle node (elastic
    /// scale-down; preemptions are traced separately).
    NodeDecommissioned {
        /// The node leaving the fleet.
        node: NodeId,
    },
    /// The provider issued a spot-preemption notice: the node drains
    /// for the notice window, then the crash path fires.
    PreemptionNotice {
        /// The node being reclaimed.
        node: NodeId,
        /// Length of the drain window.
        notice: SimDuration,
    },
}

impl TraceEvent {
    /// Stable event-type code (CSV exports, filters).
    pub fn code(&self) -> &'static str {
        match &self.kind {
            TraceEventKind::ExecutorSized { .. } => "executor-sized",
            TraceEventKind::OfferRound { .. } => "offer-round",
            TraceEventKind::JobSubmitted { .. } => "job-submitted",
            TraceEventKind::JobCompleted { .. } => "job-completed",
            TraceEventKind::Launch { .. } => "launch",
            TraceEventKind::KillRequeue { .. } => "kill-requeue",
            TraceEventKind::OomTaskKill { .. } => "oom-task-kill",
            TraceEventKind::ExecutorLost { .. } => "executor-lost",
            TraceEventKind::SpeculationFlagged { .. } => "speculation-flagged",
            TraceEventKind::Aborted { .. } => "aborted",
            TraceEventKind::AuditViolation { .. } => "audit-violation",
            TraceEventKind::FaultInjected { .. } => "fault-injected",
            TraceEventKind::NodeSuspect { .. } => "node-suspect",
            TraceEventKind::NodeDead { .. } => "node-dead",
            TraceEventKind::NodeRecovered { .. } => "node-recovered",
            TraceEventKind::LineageRecompute { .. } => "lineage-recompute",
            TraceEventKind::NodeProvisioned { .. } => "node-provisioned",
            TraceEventKind::NodeDecommissioned { .. } => "node-decommissioned",
            TraceEventKind::PreemptionNotice { .. } => "preemption-notice",
        }
    }
}

/// Default ring capacity: plenty for every workload in this repository
/// while bounding memory on adversarial runs.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Fixed-capacity ring buffer of [`TraceEvent`]s with a running digest.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    digest: u64,
    recorded: u64,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl TraceBuffer {
    /// A buffer keeping at most `capacity` events (0 keeps nothing but
    /// still digests — useful for cheap replay checks).
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            cap: capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
            digest: FNV_OFFSET,
            recorded: 0,
        }
    }

    /// Record one event, evicting the oldest when full.
    pub fn record(&mut self, event: TraceEvent) {
        // the digest covers *every* event ever recorded, evicted or not:
        // it is the replay-determinism fingerprint of the whole run
        self.digest = fnv1a(self.digest, format!("{event:?}").as_bytes());
        self.recorded += 1;
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently held (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or discarded by a zero-capacity buffer).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Order-sensitive digest over every event ever recorded. Two runs of
    /// the same inputs must produce equal digests — the replay-determinism
    /// invariant, checkable without storing either trace.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Count launches per reason code (quick forensic summaries).
    pub fn reason_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for e in &self.events {
            if let TraceEventKind::Launch { reason, .. } = &e.kind {
                *counts.entry(reason.code()).or_default() += 1;
            }
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::StageId;

    fn launch_event(i: usize) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_secs_f64(i as f64),
            round: i as u64,
            kind: TraceEventKind::Launch {
                task: TaskRef {
                    stage: StageId(0),
                    index: i,
                },
                job: JobId(0),
                tenant: TenantId(0),
                node: NodeId(0),
                attempt: 0,
                speculative: false,
                use_gpu: false,
                locality: Locality::Any,
                reason: LaunchReason::FifoSlot,
            },
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut buf = TraceBuffer::new(2);
        for i in 0..5 {
            buf.record(launch_event(i));
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
        assert_eq!(buf.recorded(), 5);
        let kept: Vec<u64> = buf.iter().map(|e| e.round).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn digest_is_order_sensitive_and_covers_evicted() {
        let mut a = TraceBuffer::new(1);
        let mut b = TraceBuffer::new(1);
        a.record(launch_event(0));
        a.record(launch_event(1));
        b.record(launch_event(1));
        b.record(launch_event(0));
        assert_ne!(a.digest(), b.digest());
        // same sequence, different capacities → same digest
        let mut c = TraceBuffer::new(100);
        c.record(launch_event(0));
        c.record(launch_event(1));
        let mut d = TraceBuffer::new(1);
        d.record(launch_event(0));
        d.record(launch_event(1));
        assert_eq!(c.digest(), d.digest());
    }

    #[test]
    fn reason_codes_are_stable() {
        assert_eq!(
            LaunchReason::QueueMatch {
                kind: ResourceKind::Cpu,
                locality: Locality::Any
            }
            .code(),
            "queue-match"
        );
        assert_eq!(
            LaunchReason::BestExecutorLock {
                overrode_memory_veto: true
            }
            .code(),
            "best-executor-lock-override"
        );
        assert!(LaunchReason::QueueMatch {
            kind: ResourceKind::Mem,
            locality: Locality::Any
        }
        .claims_memory_checked());
        assert!(!LaunchReason::SafetyValve.claims_memory_checked());
        assert!(!LaunchReason::DelaySchedule {
            allowed: Locality::Any,
            achieved: Locality::Any
        }
        .claims_memory_checked());
    }

    #[test]
    fn display_renders_the_canonical_code_for_every_variant() {
        // one value per row of the canonical table; Display must never
        // drift from code(), and the codes must stay pairwise distinct
        let variants = [
            LaunchReason::QueueMatch {
                kind: ResourceKind::Cpu,
                locality: Locality::Any,
            },
            LaunchReason::BestExecutorLock {
                overrode_memory_veto: true,
            },
            LaunchReason::BestExecutorLock {
                overrode_memory_veto: false,
            },
            LaunchReason::GpuCpuFallback {
                locality: Locality::Any,
            },
            LaunchReason::SafetyValve,
            LaunchReason::DelaySchedule {
                allowed: Locality::Any,
                achieved: Locality::Any,
            },
            LaunchReason::SparkSpeculative,
            LaunchReason::FifoSlot,
            LaunchReason::Relocation {
                bottleneck: ResourceKind::Io,
            },
            LaunchReason::GpuRace,
            LaunchReason::GangAdmission {
                locality: Locality::Any,
            },
        ];
        let mut codes = Vec::new();
        for r in variants {
            assert_eq!(r.to_string(), r.code(), "Display drifted for {r:?}");
            codes.push(r.code());
        }
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), variants.len(), "reason codes must be unique");
    }

    #[test]
    fn fault_event_codes_are_stable() {
        let ev = |kind| TraceEvent {
            at: SimTime::ZERO,
            round: 0,
            kind,
        };
        assert_eq!(
            ev(TraceEventKind::FaultInjected {
                node: NodeId(1),
                fault: "crash"
            })
            .code(),
            "fault-injected"
        );
        assert_eq!(
            ev(TraceEventKind::NodeSuspect {
                node: NodeId(1),
                age: SimDuration::from_secs(4)
            })
            .code(),
            "node-suspect"
        );
        assert_eq!(
            ev(TraceEventKind::NodeDead {
                node: NodeId(1),
                age: SimDuration::from_secs(11)
            })
            .code(),
            "node-dead"
        );
        assert_eq!(
            ev(TraceEventKind::NodeRecovered { node: NodeId(1) }).code(),
            "node-recovered"
        );
        assert_eq!(
            ev(TraceEventKind::LineageRecompute {
                stage: StageId(2),
                node: NodeId(1),
                tasks: 3
            })
            .code(),
            "lineage-recompute"
        );
    }

    #[test]
    fn elastic_event_codes_are_stable() {
        let ev = |kind| TraceEvent {
            at: SimTime::ZERO,
            round: 0,
            kind,
        };
        assert_eq!(
            ev(TraceEventKind::NodeProvisioned { node: NodeId(8) }).code(),
            "node-provisioned"
        );
        assert_eq!(
            ev(TraceEventKind::NodeDecommissioned { node: NodeId(8) }).code(),
            "node-decommissioned"
        );
        assert_eq!(
            ev(TraceEventKind::PreemptionNotice {
                node: NodeId(8),
                notice: SimDuration::from_secs(8)
            })
            .code(),
            "preemption-notice"
        );
    }

    #[test]
    fn reason_histogram_counts_launches() {
        let mut buf = TraceBuffer::default();
        buf.record(launch_event(0));
        buf.record(launch_event(1));
        buf.record(TraceEvent {
            at: SimTime::ZERO,
            round: 2,
            kind: TraceEventKind::OfferRound {
                pending: 0,
                running: 0,
                blocked: 0,
                commands: 0,
            },
        });
        assert_eq!(buf.reason_histogram(), vec![("fifo-slot", 2)]);
    }
}
