//! Whole-run reports.
//!
//! [`RunReport`] is what one simulated application run produces: the
//! makespan, every attempt record, the resource-monitor histories and the
//! failure counters. All of the paper's evaluation artefacts (Figs. 2-9,
//! Table V) are projections of this struct.

use rupam_simcore::series::stddev_across;
use rupam_simcore::stats;
use rupam_simcore::time::{SimDuration, SimTime};

use rupam_cluster::monitor::MetricKey;
use rupam_cluster::{NodeId, ResourceMonitor};
use rupam_dag::{JobId, Locality, TenantId};

use crate::breakdown::TaskBreakdown;
use crate::record::TaskRecord;

/// Per-stream-job outcome of a run: submission and completion instants.
/// Single-application runs carry exactly one (the whole app as job 0).
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Stream job id.
    pub job: JobId,
    /// Tenant that submitted the job (`TenantId(0)` on single-app runs).
    pub tenant: TenantId,
    /// Display name of the job.
    pub name: String,
    /// When the job was submitted.
    pub submitted_at: SimTime,
    /// When its last stage completed (`None` if the run aborted first).
    pub completed_at: Option<SimTime>,
}

impl JobOutcome {
    /// Job completion time: submission → last stage done.
    pub fn jct(&self) -> Option<SimDuration> {
        self.completed_at.map(|t| t.since(self.submitted_at))
    }
}

/// Jain's fairness index over a vector of non-negative allocations:
/// `(Σx)² / (n · Σx²)`. 1.0 when every entry is equal, approaching
/// `1/n` as one entry dominates. Returns 1.0 for empty or all-zero
/// inputs (a degenerate share-out is vacuously fair).
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq)
}

/// Counters for the fault-injection & recovery subsystem. All zero on a
/// healthy run (empty fault script).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSummary {
    /// Scripted node crashes injected.
    pub crashes: usize,
    /// Scripted node restarts injected.
    pub restarts: usize,
    /// Scripted transient slowdowns injected.
    pub slowdowns: usize,
    /// Scripted heartbeat dropouts injected.
    pub dropouts: usize,
    /// Scripted flaky-OOM windows injected.
    pub flaky_windows: usize,
    /// Preemption notices injected (scripted `preempt` faults plus
    /// price-driven spot reclaims from the elastic layer).
    pub preemptions: usize,
    /// Failure-detector suspect declarations.
    pub suspects: usize,
    /// Failure-detector dead declarations.
    pub deaths: usize,
    /// Dead/suspect nodes re-admitted after heartbeats resumed.
    pub readmissions: usize,
    /// Running attempts killed by node crashes or dead declarations.
    pub tasks_killed: usize,
    /// Finished shuffle-map tasks re-pended because their outputs lived
    /// on a dead node (lineage-driven recompute).
    pub map_outputs_recomputed: usize,
    /// Fault-killed or recomputed tasks that subsequently finished.
    pub recoveries: usize,
    /// Total kill-to-refinish latency across all recoveries, seconds.
    pub recovery_secs_total: f64,
}

impl FaultSummary {
    /// Mean kill-to-refinish latency, seconds (0.0 with no recoveries).
    pub fn mean_recovery_secs(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            self.recovery_secs_total / self.recoveries as f64
        }
    }
}

/// Per-node-second cost accounting for one run. All zero when the
/// elastic layer is disabled (no spot pools): a fixed fleet has no
/// marginal price signal worth reporting, so the accounting — like the
/// rest of the elastic subsystem — is a strict no-op.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostSummary {
    /// Node-seconds accrued by provisioned on-demand nodes.
    pub on_demand_node_secs: f64,
    /// Node-seconds accrued by provisioned spot nodes.
    pub spot_node_secs: f64,
    /// Dollars spent on the on-demand fleet (price × node-hours).
    pub on_demand_cost: f64,
    /// Dollars spent on spot capacity, integrated against the actual
    /// price path.
    pub spot_cost: f64,
    /// Spot nodes provisioned by the capacity controller.
    pub provisions: usize,
    /// Spot nodes decommissioned by the capacity controller (idle
    /// scale-down; excludes preemptions).
    pub decommissions: usize,
    /// Spot nodes reclaimed by the provider (price-driven preemption).
    pub preemptions: usize,
}

impl CostSummary {
    /// Total dollars spent across both tiers.
    pub fn total_cost(&self) -> f64 {
        self.on_demand_cost + self.spot_cost
    }

    /// Total node-seconds across both tiers.
    pub fn total_node_secs(&self) -> f64 {
        self.on_demand_node_secs + self.spot_node_secs
    }
}

/// Complete result of one simulated application run.
pub struct RunReport {
    /// Application name.
    pub app_name: String,
    /// Scheduler that produced the run.
    pub scheduler_name: String,
    /// Experiment seed.
    pub seed: u64,
    /// End-to-end execution time.
    pub makespan: SimDuration,
    /// Whether the application finished (false = aborted, e.g. a task
    /// exhausted its retries).
    pub completed: bool,
    /// Per-stream-job outcomes, indexed by [`JobId`] (one entry on
    /// single-application runs).
    pub jobs: Vec<JobOutcome>,
    /// Every attempt that ran, in completion order.
    pub records: Vec<TaskRecord>,
    /// Resource-monitor state with full utilisation histories.
    pub monitor: ResourceMonitor,
    /// Count of task-level OOM failures.
    pub oom_failures: usize,
    /// Count of executor (worker JVM) losses.
    pub executor_losses: usize,
    /// Speculative / racing copies launched.
    pub speculative_launched: usize,
    /// Speculative / racing copies that beat the original.
    pub speculative_wins: usize,
    /// Fault-injection & recovery counters (all zero on healthy runs).
    pub faults: FaultSummary,
    /// Elastic-capacity cost accounting (all zero on fixed-fleet runs).
    pub cost: CostSummary,
}

impl RunReport {
    /// Table V's locality census: how many non-speculative attempts
    /// launched at each locality level. Retried attempts count again —
    /// that is exactly why stock Spark shows *more* total tasks than
    /// RUPAM on OOM-prone workloads in the paper.
    pub fn locality_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for r in self.records.iter().filter(|r| !r.speculative) {
            let idx = Locality::ALL.iter().position(|l| *l == r.locality).unwrap();
            counts[idx] += 1;
        }
        counts
    }

    /// Total non-speculative attempts (the Table V row sum).
    pub fn total_attempts(&self) -> usize {
        self.records.iter().filter(|r| !r.speculative).count()
    }

    /// Fig. 7: per-category time summed over successful attempts.
    pub fn breakdown_totals(&self) -> TaskBreakdown {
        let mut total = TaskBreakdown::new();
        for r in self.records.iter().filter(|r| r.outcome.is_success()) {
            total.accumulate(&r.breakdown);
        }
        total
    }

    /// Fig. 8: cluster-average of one utilisation metric over the whole
    /// run (time-weighted mean per node, then averaged across nodes).
    pub fn avg_utilization(&self, key: MetricKey) -> f64 {
        let end = SimTime::ZERO + self.makespan;
        let per_node: Vec<f64> = (0..self.monitor.len())
            .map(|i| {
                self.monitor
                    .history(NodeId(i), key)
                    .time_weighted_mean(SimTime::ZERO, end)
                    .unwrap_or(0.0)
            })
            .collect();
        stats::mean(&per_node)
    }

    /// Fig. 9: the standard deviation of per-node utilisation sampled on
    /// a fixed grid over the run.
    pub fn utilization_stddev_series(
        &self,
        key: MetricKey,
        step: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        let end = SimTime::ZERO + self.makespan;
        let series = self.monitor.histories(key);
        stddev_across(&series, SimTime::ZERO, end, step)
    }

    /// Mean of the Fig. 9 series — a single load-balance score.
    pub fn utilization_stddev_mean(&self, key: MetricKey, step: SimDuration) -> f64 {
        let pts = self.utilization_stddev_series(key, step);
        stats::mean(&pts.iter().map(|p| p.1).collect::<Vec<_>>())
    }

    /// Fig. 3: number of non-speculative attempts per node.
    pub fn tasks_per_node(&self) -> Vec<(NodeId, usize)> {
        let mut counts = vec![0usize; self.monitor.len()];
        for r in self.records.iter().filter(|r| !r.speculative) {
            counts[r.node.index()] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (NodeId(i), c))
            .collect()
    }

    /// Successful first-result durations per task — the distribution the
    /// Fig. 3 skew analysis inspects.
    pub fn successful_durations_secs(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.outcome.is_success())
            .map(|r| r.duration().as_secs_f64())
            .collect()
    }

    /// Per-stage execution spans: `(stage, first launch, last successful
    /// finish)` in stage-id order — the stage-level view of the run that
    /// the per-iteration analyses (Fig. 6's learning curve) build on.
    pub fn stage_spans(&self) -> Vec<(rupam_dag::StageId, SimTime, SimTime)> {
        use std::collections::BTreeMap;
        let mut spans: BTreeMap<usize, (SimTime, SimTime)> = BTreeMap::new();
        for r in &self.records {
            let e = spans
                .entry(r.task.stage.index())
                .or_insert((r.launched_at, r.finished_at));
            e.0 = e.0.min(r.launched_at);
            if r.outcome.is_success() {
                e.1 = e.1.max(r.finished_at);
            }
        }
        spans
            .into_iter()
            .map(|(i, (a, b))| (rupam_dag::StageId(i), a, b))
            .collect()
    }

    /// Successful attempts that ran on a GPU.
    pub fn gpu_task_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome.is_success() && r.used_gpu)
            .count()
    }

    /// Completion times of the jobs that finished, in job order.
    pub fn jct_secs(&self) -> Vec<f64> {
        self.jobs
            .iter()
            .filter_map(|j| j.jct())
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// Mean job completion time (0.0 when no job finished).
    pub fn jct_mean(&self) -> f64 {
        stats::mean(&self.jct_secs())
    }

    /// 95th-percentile job completion time (0.0 when no job finished).
    pub fn jct_p95(&self) -> f64 {
        let jcts = self.jct_secs();
        if jcts.is_empty() {
            return 0.0;
        }
        stats::quantile(&jcts, 0.95)
    }

    /// Completion times of finished jobs grouped by tenant, in tenant-id
    /// order. Tenants none of whose jobs finished appear with an empty
    /// vector so indices line up with the stream's tenant numbering.
    pub fn jct_secs_by_tenant(&self) -> Vec<(TenantId, Vec<f64>)> {
        let tenants = self
            .jobs
            .iter()
            .map(|j| j.tenant.index() + 1)
            .max()
            .unwrap_or(0);
        let mut by_tenant: Vec<Vec<f64>> = vec![Vec::new(); tenants];
        for j in &self.jobs {
            if let Some(d) = j.jct() {
                by_tenant[j.tenant.index()].push(d.as_secs_f64());
            }
        }
        by_tenant
            .into_iter()
            .enumerate()
            .map(|(i, v)| (TenantId(i), v))
            .collect()
    }

    /// Mean JCT per tenant (tenants with no finished job report 0.0).
    pub fn tenant_jct_means(&self) -> Vec<(TenantId, f64)> {
        self.jct_secs_by_tenant()
            .into_iter()
            .map(|(t, v)| (t, stats::mean(&v)))
            .collect()
    }

    /// Jain's fairness index over per-tenant mean JCTs — 1.0 when every
    /// tenant experiences the same mean completion time. Tenants with no
    /// finished jobs are excluded (they have no JCT to be unfair about).
    pub fn tenant_jain_jct(&self) -> f64 {
        let means: Vec<f64> = self
            .jct_secs_by_tenant()
            .into_iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(_, v)| stats::mean(&v))
            .collect();
        jain_index(&means)
    }

    /// Per-tenant slowdown against solo-run baselines: tenant `i`'s mean
    /// JCT divided by `solo_means[i]` (its mean JCT when running the
    /// cluster alone). Tenants with no finished job, or with a zero /
    /// missing baseline, are skipped.
    pub fn tenant_slowdowns(&self, solo_means: &[f64]) -> Vec<(TenantId, f64)> {
        self.jct_secs_by_tenant()
            .into_iter()
            .filter(|(t, v)| {
                !v.is_empty() && solo_means.get(t.index()).copied().unwrap_or(0.0) > 0.0
            })
            .map(|(t, v)| (t, stats::mean(&v) / solo_means[t.index()]))
            .collect()
    }

    /// Jain's fairness index over per-tenant slowdowns — the
    /// size-normalised fairness measure. Raw JCTs conflate job size
    /// with treatment (a tenant of small jobs always "looks" fast);
    /// slowdown divides that out, so 1.0 means contention taxed every
    /// tenant equally regardless of what they run.
    pub fn tenant_jain_slowdown(&self, solo_means: &[f64]) -> f64 {
        let s: Vec<f64> = self
            .tenant_slowdowns(solo_means)
            .into_iter()
            .map(|(_, x)| x)
            .collect();
        jain_index(&s)
    }

    /// 95th-percentile of the per-tenant slowdowns (0.0 when none).
    pub fn tenant_slowdown_p95(&self, solo_means: &[f64]) -> f64 {
        let s: Vec<f64> = self
            .tenant_slowdowns(solo_means)
            .into_iter()
            .map(|(_, x)| x)
            .collect();
        if s.is_empty() {
            return 0.0;
        }
        stats::quantile(&s, 0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakdown::BreakdownCategory as C;
    use crate::record::AttemptOutcome;
    use rupam_cluster::ClusterSpec;
    use rupam_dag::{StageId, TaskRef};
    use rupam_simcore::units::ByteSize;

    fn mk_record(
        node: usize,
        locality: Locality,
        outcome: AttemptOutcome,
        spec: bool,
    ) -> TaskRecord {
        let mut b = TaskBreakdown::new();
        b.add(C::Compute, SimDuration::from_secs(2));
        TaskRecord {
            task: TaskRef {
                stage: StageId(0),
                index: 0,
            },
            job: JobId(0),
            template_key: "x".into(),
            attempt: 0,
            node: NodeId(node),
            speculative: spec,
            locality,
            launched_at: SimTime::ZERO,
            finished_at: SimTime::from_secs_f64(2.0),
            outcome,
            breakdown: b,
            peak_mem: ByteSize::mib(100),
            used_gpu: false,
        }
    }

    fn report(records: Vec<TaskRecord>) -> RunReport {
        RunReport {
            app_name: "t".into(),
            scheduler_name: "s".into(),
            seed: 0,
            makespan: SimDuration::from_secs(10),
            completed: true,
            jobs: vec![JobOutcome {
                job: JobId(0),
                tenant: TenantId(0),
                name: "t".into(),
                submitted_at: SimTime::ZERO,
                completed_at: Some(SimTime::from_secs_f64(10.0)),
            }],
            records,
            monitor: ResourceMonitor::new(&ClusterSpec::two_node_motivation()),
            oom_failures: 0,
            executor_losses: 0,
            speculative_launched: 0,
            speculative_wins: 0,
            faults: FaultSummary::default(),
            cost: CostSummary::default(),
        }
    }

    #[test]
    fn fault_summary_mean_recovery() {
        let mut f = FaultSummary::default();
        assert_eq!(f.mean_recovery_secs(), 0.0);
        f.recoveries = 4;
        f.recovery_secs_total = 10.0;
        assert!((f.mean_recovery_secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn locality_census_skips_speculative_counts_retries() {
        let recs = vec![
            mk_record(0, Locality::ProcessLocal, AttemptOutcome::Success, false),
            mk_record(0, Locality::NodeLocal, AttemptOutcome::OomFailure, false),
            mk_record(1, Locality::NodeLocal, AttemptOutcome::Success, false),
            mk_record(1, Locality::Any, AttemptOutcome::Success, true), // speculative
        ];
        let rep = report(recs);
        assert_eq!(rep.locality_counts(), [1, 2, 0, 0]);
        assert_eq!(rep.total_attempts(), 3);
    }

    #[test]
    fn breakdown_only_counts_successes() {
        let recs = vec![
            mk_record(0, Locality::Any, AttemptOutcome::Success, false),
            mk_record(0, Locality::Any, AttemptOutcome::OomFailure, false),
        ];
        let rep = report(recs);
        assert_eq!(
            rep.breakdown_totals().get(C::Compute),
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn tasks_per_node_counts() {
        let recs = vec![
            mk_record(0, Locality::Any, AttemptOutcome::Success, false),
            mk_record(1, Locality::Any, AttemptOutcome::Success, false),
            mk_record(1, Locality::Any, AttemptOutcome::Success, false),
        ];
        let rep = report(recs);
        let per_node = rep.tasks_per_node();
        assert_eq!(per_node[0].1, 1);
        assert_eq!(per_node[1].1, 2);
    }

    #[test]
    fn stage_spans_cover_launch_to_finish() {
        let mut early = mk_record(0, Locality::Any, AttemptOutcome::Success, false);
        early.task = TaskRef {
            stage: StageId(1),
            index: 0,
        };
        early.launched_at = SimTime::from_secs_f64(1.0);
        early.finished_at = SimTime::from_secs_f64(3.0);
        let mut late = mk_record(1, Locality::Any, AttemptOutcome::Success, false);
        late.task = TaskRef {
            stage: StageId(1),
            index: 1,
        };
        late.launched_at = SimTime::from_secs_f64(2.0);
        late.finished_at = SimTime::from_secs_f64(6.0);
        let rep = report(vec![early, late]);
        let spans = rep.stage_spans();
        assert_eq!(spans.len(), 1);
        let (sid, a, b) = spans[0];
        assert_eq!(sid, StageId(1));
        assert_eq!(a, SimTime::from_secs_f64(1.0));
        assert_eq!(b, SimTime::from_secs_f64(6.0));
    }

    #[test]
    fn jct_aggregates_completed_jobs_only() {
        let mut rep = report(vec![]);
        rep.jobs = vec![
            JobOutcome {
                job: JobId(0),
                tenant: TenantId(0),
                name: "a".into(),
                submitted_at: SimTime::ZERO,
                completed_at: Some(SimTime::from_secs_f64(10.0)),
            },
            JobOutcome {
                job: JobId(1),
                tenant: TenantId(1),
                name: "b".into(),
                submitted_at: SimTime::from_secs_f64(5.0),
                completed_at: Some(SimTime::from_secs_f64(25.0)),
            },
            JobOutcome {
                job: JobId(2),
                tenant: TenantId(1),
                name: "c".into(),
                submitted_at: SimTime::from_secs_f64(8.0),
                completed_at: None, // aborted before completion
            },
        ];
        assert_eq!(rep.jct_secs(), vec![10.0, 20.0]);
        assert!((rep.jct_mean() - 15.0).abs() < 1e-9);
        assert!((rep.jct_p95() - 19.5).abs() < 1e-9);
        assert_eq!(rep.jobs[2].jct(), None);
    }

    #[test]
    fn tenant_fairness_aggregates() {
        let mut rep = report(vec![]);
        let job = |i: usize, tenant: usize, jct: Option<f64>| JobOutcome {
            job: JobId(i),
            tenant: TenantId(tenant),
            name: format!("j{i}"),
            submitted_at: SimTime::ZERO,
            completed_at: jct.map(SimTime::from_secs_f64),
        };
        rep.jobs = vec![
            job(0, 0, Some(10.0)),
            job(1, 0, Some(30.0)),
            job(2, 1, Some(20.0)),
            job(3, 2, None), // tenant 2 never finished anything
        ];
        let by_tenant = rep.jct_secs_by_tenant();
        assert_eq!(by_tenant.len(), 3);
        assert_eq!(by_tenant[0].1, vec![10.0, 30.0]);
        assert_eq!(by_tenant[1].1, vec![20.0]);
        assert!(by_tenant[2].1.is_empty());
        // both finished tenants mean 20s → perfectly fair
        assert!((rep.tenant_jain_jct() - 1.0).abs() < 1e-12);
        // make tenant 1 finish 3× slower → index drops below 1
        rep.jobs[2].completed_at = Some(SimTime::from_secs_f64(60.0));
        assert!(rep.tenant_jain_jct() < 0.95);
        // slowdowns against solo baselines of 10s and 20s
        let slow = rep.tenant_slowdowns(&[10.0, 20.0]);
        assert_eq!(slow.len(), 2);
        assert!((slow[0].1 - 2.0).abs() < 1e-12);
        assert!((slow[1].1 - 3.0).abs() < 1e-12);
        assert!((rep.tenant_slowdown_p95(&[10.0, 20.0]) - 2.95).abs() < 1e-9);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // one tenant hogging everything → 1/n
        let skew = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12);
        let mid = jain_index(&[1.0, 3.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }

    #[test]
    fn jct_of_no_finished_jobs_is_zero() {
        let mut rep = report(vec![]);
        rep.jobs.clear();
        assert_eq!(rep.jct_mean(), 0.0);
        assert_eq!(rep.jct_p95(), 0.0);
    }

    #[test]
    fn empty_monitor_utilization_is_zero() {
        let rep = report(vec![]);
        assert_eq!(rep.avg_utilization(MetricKey::CpuUtil), 0.0);
        assert_eq!(
            rep.utilization_stddev_mean(MetricKey::CpuUtil, SimDuration::from_secs(1)),
            0.0
        );
    }
}
