//! Minimal ASCII charts for the paper-figure series the harness prints:
//! a vertical-bar chart for time series (Fig. 2 utilisation, Fig. 9
//! spread) and a labelled line for sweeps (Fig. 6 speedups).
//!
//! Terminal output only — the point is to make `cargo bench` /
//! `experiments` output self-contained, not to replace a plotting stack.

use std::fmt::Write as _;

/// Render a series as column bars of height `rows` (values scaled to the
/// series maximum). `labels` annotates the x-axis extremes.
pub fn bar_chart(title: &str, values: &[f64], rows: usize, unit: &str) -> String {
    assert!(rows >= 1, "need at least one row");
    let mut out = String::new();
    let _ = writeln!(out, "-- {title} --");
    if values.is_empty() {
        let _ = writeln!(out, "(empty series)");
        return out;
    }
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        let _ = writeln!(out, "(all zero; n={})", values.len());
        return out;
    }
    // quantise every value to 0..=rows
    let heights: Vec<usize> = values
        .iter()
        .map(|v| ((v / max) * rows as f64).round().clamp(0.0, rows as f64) as usize)
        .collect();
    for row in (1..=rows).rev() {
        // y-axis tick on the top and middle rows
        let tick = if row == rows {
            format!("{max:>8.1} |")
        } else if row == rows.div_ceil(2) {
            format!("{:>8.1} |", max * row as f64 / rows as f64)
        } else {
            format!("{:>8} |", "")
        };
        let _ = write!(out, "{tick}");
        for &h in &heights {
            let _ = write!(out, "{}", if h >= row { '#' } else { ' ' });
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "{:>8} +{}", "0", "-".repeat(values.len()));
    let _ = writeln!(out, "{:>10}n={} max={max:.1} {unit}", "", values.len());
    out
}

/// Render an `(x, y)` sweep as one labelled row per point with a
/// proportional bar — readable for the Fig. 6-style iteration sweeps.
pub fn sweep_chart(title: &str, points: &[(String, f64)], width: usize, unit: &str) -> String {
    assert!(width >= 1);
    let mut out = String::new();
    let _ = writeln!(out, "-- {title} --");
    if points.is_empty() {
        let _ = writeln!(out, "(no points)");
        return out;
    }
    let max = points.iter().map(|p| p.1).fold(0.0f64, f64::max);
    let label_w = points.iter().map(|p| p.0.len()).max().unwrap_or(1);
    for (label, v) in points {
        let bar = if max > 0.0 {
            ((v / max) * width as f64).round().clamp(0.0, width as f64) as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "{label:>label_w$} | {}{} {v:.2} {unit}",
            "█".repeat(bar),
            " ".repeat(width - bar),
        );
    }
    out
}

/// Down-sample a long series to at most `n` buckets by averaging — keeps
/// charts terminal-width even for second-granularity histories.
pub fn downsample(values: &[f64], n: usize) -> Vec<f64> {
    assert!(n >= 1);
    if values.len() <= n {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(n);
    let chunk = values.len() as f64 / n as f64;
    for i in 0..n {
        let lo = (i as f64 * chunk) as usize;
        let hi = (((i + 1) as f64 * chunk) as usize)
            .min(values.len())
            .max(lo + 1);
        let slice = &values[lo..hi];
        out.push(slice.iter().sum::<f64>() / slice.len() as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart("demo", &[1.0, 2.0, 4.0], 4, "MB/s");
        assert!(s.contains("-- demo --"));
        assert!(s.contains("max=4.0 MB/s"));
        // tallest column reaches the top row; shortest only the bottom
        let lines: Vec<&str> = s.lines().collect();
        let top = lines[1];
        assert!(
            top.ends_with("  #"),
            "top row should only show the max column: {top:?}"
        );
    }

    #[test]
    fn bar_chart_handles_degenerate_input() {
        assert!(bar_chart("e", &[], 3, "x").contains("empty"));
        assert!(bar_chart("z", &[0.0, 0.0], 3, "x").contains("all zero"));
    }

    #[test]
    fn sweep_chart_orders_and_scales() {
        let pts = vec![("1".to_string(), 1.0), ("20".to_string(), 2.5)];
        let s = sweep_chart("speedup", &pts, 10, "x");
        assert!(s.contains("1.00 x"));
        assert!(s.contains("2.50 x"));
        // the larger value gets the full-width bar
        let full: String = "█".repeat(10);
        assert!(s.contains(&full));
    }

    #[test]
    fn downsample_preserves_mean_roughly() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&values, 10);
        assert_eq!(d.len(), 10);
        let mean_in = values.iter().sum::<f64>() / 100.0;
        let mean_out = d.iter().sum::<f64>() / 10.0;
        assert!((mean_in - mean_out).abs() < 1.0);
        // short series pass through
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
    }

    #[test]
    fn downsample_single_bucket() {
        let d = downsample(&[2.0, 4.0, 6.0], 1);
        assert_eq!(d.len(), 1);
        assert!((d[0] - 4.0).abs() < 1e-9);
    }
}
