//! Per-node execution timelines.
//!
//! Renders a run's [`TaskRecord`]s as an ASCII Gantt view: one row per
//! node, time bucketed across the terminal width, each cell showing the
//! number of concurrently running attempts (`.` idle, `1`-`9`, then `+`).
//! Failures leave marks (`x` = memory failure, `!` = executor loss
//! window), making the §III-C3 straggler stories visible at a glance.

use std::fmt::Write as _;

use rupam_simcore::time::SimTime;

use crate::record::AttemptOutcome;
use crate::report::RunReport;

/// Occupancy of one node over `buckets` equal time slices.
pub fn node_occupancy(report: &RunReport, node: usize, buckets: usize) -> Vec<(usize, bool)> {
    assert!(buckets >= 1);
    let span = report.makespan.as_micros().max(1);
    let bucket_of = |t: SimTime| -> usize {
        ((t.as_micros() as u128 * buckets as u128) / span as u128).min(buckets as u128 - 1) as usize
    };
    let mut occupancy = vec![(0usize, false); buckets];
    for r in report.records.iter().filter(|r| r.node.index() == node) {
        let lo = bucket_of(r.launched_at);
        let hi = bucket_of(r.finished_at);
        for slot in occupancy.iter_mut().take(hi + 1).skip(lo) {
            slot.0 += 1;
        }
        if r.outcome.is_failure() {
            occupancy[hi].1 = true;
        }
    }
    occupancy
}

fn cell(count: usize, failed: bool) -> char {
    if failed {
        return 'x';
    }
    match count {
        0 => '.',
        1..=9 => char::from_digit(count as u32, 10).unwrap(),
        _ => '+',
    }
}

/// Render the whole cluster's timeline. `node_names` supplies row labels
/// (one per monitored node).
pub fn render(report: &RunReport, node_names: &[String], buckets: usize) -> String {
    assert_eq!(
        node_names.len(),
        report.monitor.len(),
        "one name per monitored node"
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- timeline: {} under {} ({}; {} attempts) --",
        report.app_name,
        report.scheduler_name,
        report.makespan,
        report.records.len()
    );
    let label_w = node_names.iter().map(|n| n.len()).max().unwrap_or(4);
    for (i, name) in node_names.iter().enumerate() {
        let row: String = node_occupancy(report, i, buckets)
            .into_iter()
            .map(|(c, f)| cell(c, f))
            .collect();
        let _ = writeln!(out, "{name:>label_w$} |{row}|");
    }
    let _ = writeln!(
        out,
        "{:>label_w$}  0{}{}",
        "",
        " ".repeat(buckets.saturating_sub(2)),
        report.makespan
    );
    let _ = writeln!(
        out,
        "{:>label_w$}  (cells: concurrent attempts; x = failure)",
        ""
    );
    out
}

/// Count concurrent attempts at a specific instant on one node (exact,
/// not bucketed) — used by tests and capacity analyses.
pub fn concurrency_at(report: &RunReport, node: usize, at: SimTime) -> usize {
    report
        .records
        .iter()
        .filter(|r| r.node.index() == node && r.launched_at <= at && r.finished_at > at)
        .count()
}

/// Total attempt-seconds wasted on failed attempts (`OomFailure`,
/// `ExecutorLost`, `MemoryStragglerKilled`) — the price of bad placement.
pub fn wasted_seconds(report: &RunReport) -> f64 {
    report
        .records
        .iter()
        .filter(|r| r.outcome.is_failure())
        .map(|r| r.duration().as_secs_f64())
        .sum()
}

/// Attempt-seconds lost to race losers (aborted duplicates) — the price
/// of speculation.
pub fn speculation_overhead_seconds(report: &RunReport) -> f64 {
    report
        .records
        .iter()
        .filter(|r| r.outcome == AttemptOutcome::LostRace)
        .map(|r| r.duration().as_secs_f64())
        .sum()
}

/// A convenience bundle: headline numbers about failures and duplicated
/// work for one run.
#[derive(Clone, Copy, Debug)]
pub struct WasteSummary {
    /// Seconds burnt by failed attempts.
    pub failed_secs: f64,
    /// Seconds burnt by losing race copies.
    pub race_secs: f64,
    /// Failed attempt count.
    pub failed_attempts: usize,
}

/// Compute the waste summary of a run.
pub fn waste(report: &RunReport) -> WasteSummary {
    WasteSummary {
        failed_secs: wasted_seconds(report),
        race_secs: speculation_overhead_seconds(report),
        failed_attempts: report
            .records
            .iter()
            .filter(|r| r.outcome.is_failure())
            .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakdown::TaskBreakdown;
    use crate::record::TaskRecord;
    use rupam_cluster::{ClusterSpec, NodeId, ResourceMonitor};
    use rupam_dag::{JobId, Locality, StageId, TaskRef};
    use rupam_simcore::time::SimDuration;
    use rupam_simcore::units::ByteSize;

    fn record(node: usize, start: f64, end: f64, outcome: AttemptOutcome) -> TaskRecord {
        TaskRecord {
            task: TaskRef {
                stage: StageId(0),
                index: 0,
            },
            job: JobId(0),
            template_key: "t".into(),
            attempt: 0,
            node: NodeId(node),
            speculative: false,
            locality: Locality::Any,
            launched_at: SimTime::from_secs_f64(start),
            finished_at: SimTime::from_secs_f64(end),
            outcome,
            breakdown: TaskBreakdown::new(),
            peak_mem: ByteSize::mib(10),
            used_gpu: false,
        }
    }

    fn report(records: Vec<TaskRecord>) -> RunReport {
        RunReport {
            app_name: "t".into(),
            scheduler_name: "s".into(),
            seed: 0,
            makespan: SimDuration::from_secs(10),
            completed: true,
            jobs: Vec::new(),
            records,
            monitor: ResourceMonitor::new(&ClusterSpec::two_node_motivation()),
            oom_failures: 0,
            executor_losses: 0,
            speculative_launched: 0,
            speculative_wins: 0,
            faults: crate::report::FaultSummary::default(),
            cost: crate::report::CostSummary::default(),
        }
    }

    #[test]
    fn occupancy_counts_overlaps() {
        let rep = report(vec![
            record(0, 0.0, 5.0, AttemptOutcome::Success),
            record(0, 2.0, 8.0, AttemptOutcome::Success),
            record(1, 0.0, 1.0, AttemptOutcome::Success),
        ]);
        let occ = node_occupancy(&rep, 0, 10);
        assert_eq!(occ[0].0, 1, "only the first task at t≈0");
        assert_eq!(occ[3].0, 2, "overlap window");
        assert_eq!(occ[9].0, 0, "idle tail");
        assert_eq!(node_occupancy(&rep, 1, 10)[5].0, 0);
    }

    #[test]
    fn failures_are_marked() {
        let rep = report(vec![record(0, 0.0, 4.0, AttemptOutcome::OomFailure)]);
        let occ = node_occupancy(&rep, 0, 10);
        assert!(
            occ[4].1,
            "failure bucket flagged (task ends at t=4s of 10s)"
        );
        let rendered = render(&rep, &["node-1".into(), "node-2".into()], 10);
        assert!(
            rendered.contains('x'),
            "render should show the failure: {rendered}"
        );
    }

    #[test]
    fn render_has_one_row_per_node() {
        let rep = report(vec![record(0, 0.0, 10.0, AttemptOutcome::Success)]);
        let s = render(&rep, &["a".into(), "b".into()], 20);
        assert_eq!(s.lines().filter(|l| l.contains('|')).count(), 2);
    }

    #[test]
    fn concurrency_exact() {
        let rep = report(vec![
            record(0, 0.0, 5.0, AttemptOutcome::Success),
            record(0, 2.0, 8.0, AttemptOutcome::Success),
        ]);
        assert_eq!(concurrency_at(&rep, 0, SimTime::from_secs_f64(1.0)), 1);
        assert_eq!(concurrency_at(&rep, 0, SimTime::from_secs_f64(3.0)), 2);
        assert_eq!(concurrency_at(&rep, 0, SimTime::from_secs_f64(9.0)), 0);
    }

    #[test]
    fn waste_accounting() {
        let rep = report(vec![
            record(0, 0.0, 4.0, AttemptOutcome::OomFailure),
            record(0, 0.0, 3.0, AttemptOutcome::LostRace),
            record(0, 0.0, 5.0, AttemptOutcome::Success),
        ]);
        let w = waste(&rep);
        assert!((w.failed_secs - 4.0).abs() < 1e-9);
        assert!((w.race_secs - 3.0).abs() < 1e-9);
        assert_eq!(w.failed_attempts, 1);
    }

    #[test]
    fn cell_symbols() {
        assert_eq!(cell(0, false), '.');
        assert_eq!(cell(7, false), '7');
        assert_eq!(cell(15, false), '+');
        assert_eq!(cell(3, true), 'x');
    }
}
