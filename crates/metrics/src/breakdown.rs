//! Execution-time breakdown categories.
//!
//! Fig. 3 splits task time into compute / shuffle / serialisation /
//! scheduler delay; Fig. 7 refines shuffle into network vs disk and adds
//! GC. [`TaskBreakdown`] carries the union of both decompositions, so
//! either figure can be produced from the same records.

use rupam_simcore::time::SimDuration;

/// One category of task execution time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BreakdownCategory {
    /// Time from "task could launch" to "task started", plus the
    /// scheduler's per-decision cost.
    SchedulerDelay,
    /// Data (de)serialisation on the CPU.
    Serialization,
    /// Shuffle bytes fetched over the network.
    ShuffleNet,
    /// Shuffle bytes read from local disk.
    ShuffleDisk,
    /// Shuffle bytes written to local disk.
    ShuffleWrite,
    /// HDFS input read from local disk (Spark reports input scan apart
    /// from shuffle; Algorithm 1 must not see it as `shuffleread`).
    HdfsDisk,
    /// HDFS input fetched from a remote replica.
    HdfsNet,
    /// Task body computation (CPU or GPU).
    Compute,
    /// JVM garbage collection.
    Gc,
}

impl BreakdownCategory {
    /// All categories in presentation order.
    pub const ALL: [BreakdownCategory; 9] = [
        BreakdownCategory::SchedulerDelay,
        BreakdownCategory::Serialization,
        BreakdownCategory::ShuffleNet,
        BreakdownCategory::ShuffleDisk,
        BreakdownCategory::ShuffleWrite,
        BreakdownCategory::HdfsDisk,
        BreakdownCategory::HdfsNet,
        BreakdownCategory::Compute,
        BreakdownCategory::Gc,
    ];

    /// Label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            BreakdownCategory::SchedulerDelay => "Scheduler",
            BreakdownCategory::Serialization => "Serialization",
            BreakdownCategory::ShuffleNet => "Shuffle-net",
            BreakdownCategory::ShuffleDisk => "Shuffle-disk",
            BreakdownCategory::ShuffleWrite => "Shuffle-write",
            BreakdownCategory::HdfsDisk => "Input-disk",
            BreakdownCategory::HdfsNet => "Input-net",
            BreakdownCategory::Compute => "Compute",
            BreakdownCategory::Gc => "GC",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).unwrap()
    }
}

impl std::fmt::Display for BreakdownCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Time spent per category by one task attempt.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskBreakdown {
    slots: [SimDuration; 9],
}

impl TaskBreakdown {
    /// All-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time in one category.
    #[inline]
    pub fn get(&self, cat: BreakdownCategory) -> SimDuration {
        self.slots[cat.index()]
    }

    /// Add time to a category.
    #[inline]
    pub fn add(&mut self, cat: BreakdownCategory, d: SimDuration) {
        self.slots[cat.index()] += d;
    }

    /// Sum of all categories — the attempt's total runtime.
    pub fn total(&self) -> SimDuration {
        self.slots.iter().fold(SimDuration::ZERO, |a, &b| a + b)
    }

    /// Element-wise accumulation (for per-workload totals).
    pub fn accumulate(&mut self, other: &TaskBreakdown) {
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a += *b;
        }
    }

    /// Fig. 3's coarser decomposition: (compute+gc, shuffle+input-read,
    /// serialisation, scheduler delay).
    pub fn coarse(&self) -> (SimDuration, SimDuration, SimDuration, SimDuration) {
        let compute = self.get(BreakdownCategory::Compute) + self.get(BreakdownCategory::Gc);
        let shuffle = self.get(BreakdownCategory::ShuffleNet)
            + self.get(BreakdownCategory::ShuffleDisk)
            + self.get(BreakdownCategory::ShuffleWrite)
            + self.get(BreakdownCategory::HdfsDisk)
            + self.get(BreakdownCategory::HdfsNet);
        (
            compute,
            shuffle,
            self.get(BreakdownCategory::Serialization),
            self.get(BreakdownCategory::SchedulerDelay),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut b = TaskBreakdown::new();
        b.add(BreakdownCategory::Compute, SimDuration::from_secs(3));
        b.add(BreakdownCategory::Gc, SimDuration::from_secs(1));
        b.add(BreakdownCategory::Compute, SimDuration::from_secs(2));
        assert_eq!(b.get(BreakdownCategory::Compute), SimDuration::from_secs(5));
        assert_eq!(b.total(), SimDuration::from_secs(6));
    }

    #[test]
    fn accumulate_merges() {
        let mut a = TaskBreakdown::new();
        a.add(BreakdownCategory::ShuffleNet, SimDuration::from_secs(1));
        let mut b = TaskBreakdown::new();
        b.add(BreakdownCategory::ShuffleNet, SimDuration::from_secs(2));
        b.add(
            BreakdownCategory::SchedulerDelay,
            SimDuration::from_millis(5),
        );
        a.accumulate(&b);
        assert_eq!(
            a.get(BreakdownCategory::ShuffleNet),
            SimDuration::from_secs(3)
        );
        assert_eq!(
            a.get(BreakdownCategory::SchedulerDelay),
            SimDuration::from_millis(5)
        );
    }

    #[test]
    fn coarse_projection() {
        let mut b = TaskBreakdown::new();
        b.add(BreakdownCategory::Compute, SimDuration::from_secs(4));
        b.add(BreakdownCategory::Gc, SimDuration::from_secs(1));
        b.add(BreakdownCategory::ShuffleNet, SimDuration::from_secs(2));
        b.add(BreakdownCategory::ShuffleWrite, SimDuration::from_secs(1));
        b.add(
            BreakdownCategory::Serialization,
            SimDuration::from_millis(100),
        );
        let (c, s, ser, sched) = b.coarse();
        assert_eq!(c, SimDuration::from_secs(5));
        assert_eq!(s, SimDuration::from_secs(3));
        assert_eq!(ser, SimDuration::from_millis(100));
        assert_eq!(sched, SimDuration::ZERO);
    }

    #[test]
    fn labels_unique() {
        let set: std::collections::HashSet<_> =
            BreakdownCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(set.len(), BreakdownCategory::ALL.len());
    }
}
