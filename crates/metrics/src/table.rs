//! Minimal fixed-width text tables for the paper-style printouts the
//! benchmark harness emits (`cargo bench` regenerates each figure/table
//! as text rows).

use std::fmt::Write as _;

/// A simple left-aligned text table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable cells.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line_width: usize = widths.iter().sum::<usize>() + 3 * ncols - 1;
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                if i + 1 < ncols {
                    let _ = write!(out, " | ");
                }
            }
            let _ = writeln!(out);
        };
        write_row(&mut out, &self.header);
        let _ = writeln!(out, "{}", "-".repeat(line_width));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds with a sensible precision for table cells.
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a ratio as `N.NNx`.
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

/// Format a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22222".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("name  | value"));
        assert!(s.contains("alpha | 1"));
        assert!(s.contains("b     | 22222"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::new("D", &["a", "b"]);
        t.row_display(&[1.5, 2.25]);
        assert!(t.render().contains("1.5 | 2.25"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("D", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(123.4), "123");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(speedup(2.5), "2.50x");
        assert_eq!(pct(0.377), "37.7%");
    }
}
