//! # rupam-metrics
//!
//! Run reports and evaluation plumbing:
//!
//! * [`breakdown`] — per-task execution-time breakdown into the paper's
//!   categories (compute, GC, shuffle over network, shuffle from disk,
//!   serialisation, scheduler delay; Figs. 3 and 7).
//! * [`record`] — immutable per-attempt records emitted by the simulator.
//! * [`report`] — whole-run reports: makespan, locality table (Table V),
//!   breakdown aggregation (Fig. 7), utilisation summaries (Figs. 2/8/9).
//! * [`table`] — fixed-width text tables for the paper-style printouts.
//! * [`chart`] — terminal bar/sweep charts for the figure series.
//! * [`timeline`] — per-node ASCII Gantt views and waste accounting.
//! * [`export`] — CSV writers for records and utilisation histories.
//! * [`trace`] — structured decision traces: every launch carries a
//!   machine-readable reason code, buffered deterministically for
//!   forensics, CSV export and replay-determinism digests.

#![warn(missing_docs)]

pub mod breakdown;
pub mod chart;
pub mod export;
pub mod record;
pub mod report;
pub mod table;
pub mod timeline;
pub mod trace;

pub use breakdown::{BreakdownCategory, TaskBreakdown};
pub use record::{AttemptOutcome, TaskRecord};
pub use report::{jain_index, FaultSummary, JobOutcome, RunReport};
pub use table::Table;
pub use trace::{LaunchReason, TraceBuffer, TraceEvent, TraceEventKind};
