//! Tenant allocation: fair queues, session snapshots and quota
//! preemption (ROADMAP #4, Volcano-style session/allocate loop).
//!
//! Every offer round the scheduler freezes an [`AllocSession`]: one
//! [`TenantQueue`] per tenant carrying its weight, optional quota and a
//! usage snapshot derived from the round's [`OfferInput`]. A pluggable
//! [`AllocationPolicy`] orders the queues; the Dispatcher then consumes
//! each tenant's candidate slice in that order, skipping tenants the
//! overuse check flags. Over-quota tenants additionally surrender their
//! newest running tasks through [`quota_preemption_commands`] — the
//! kills re-enter the pending set through the ordinary lineage-recovery
//! retry path, so no work is ever lost.
//!
//! The [`AllocationPolicy::FifoBaseline`] with no quotas is a strict
//! no-op: no session is built, the Dispatcher keeps its single shared
//! pool, and decisions stay byte-identical to the pre-tenant scheduler
//! (pinned by golden digests).

use rupam_dag::{StageId, TenantId};
use rupam_exec::scheduler::{Command, KillReason, OfferInput, RunningTaskView};
use rupam_simcore::time::SimTime;

use crate::config::RupamConfig;

/// How the allocation session orders tenants each round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// No tenant ordering at all: one shared FIFO pending pool, exactly
    /// the pre-tenant scheduler. The digest-pinned baseline.
    FifoBaseline,
    /// Weighted fair sharing over running-task counts: tenants are
    /// served in ascending `running / weight`, so the tenant furthest
    /// below its share goes first.
    WeightedFair,
    /// Dominant Resource Fairness: tenants are served in ascending
    /// `dominant_share / weight`, where the dominant share is the
    /// largest of the tenant's cores / memory / GPU cluster shares.
    Drf,
}

impl AllocationPolicy {
    /// Stable code used in scheduler name suffixes and bench tables.
    pub fn code(&self) -> &'static str {
        match self {
            AllocationPolicy::FifoBaseline => "fifo",
            AllocationPolicy::WeightedFair => "wfair",
            AllocationPolicy::Drf => "drf",
        }
    }
}

/// Per-tenant allocation parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantSpec {
    /// Relative share weight (≥ 0; the fair policies divide usage by
    /// it, so weight 3 tolerates 3× the usage of weight 1).
    pub weight: f64,
    /// Optional hard ceiling on the tenant's dominant resource share
    /// (fraction of the cluster, `0.0..=1.0`). Above it the tenant
    /// stops receiving offers and surrenders its newest running tasks.
    /// `None` = unlimited.
    pub quota: Option<f64>,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            weight: 1.0,
            quota: None,
        }
    }
}

/// A tenant's resource usage at snapshot time, as cluster shares.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TenantUsage {
    /// Running (non-speculative) attempts.
    pub running: usize,
    /// Fraction of cluster cores held (1 core per running attempt).
    pub cores_share: f64,
    /// Fraction of total executor memory held (peak allocations).
    pub mem_share: f64,
    /// Fraction of cluster GPUs held (attempts executing kernels).
    pub gpu_share: f64,
}

impl TenantUsage {
    /// The DRF dominant share: the largest of the three resource
    /// shares.
    pub fn dominant_share(&self) -> f64 {
        self.cores_share.max(self.mem_share).max(self.gpu_share)
    }
}

/// One tenant's queue in the session: spec + usage + overuse check.
#[derive(Clone, Copy, Debug)]
pub struct TenantQueue {
    /// The tenant.
    pub tenant: TenantId,
    /// Share weight (from [`TenantSpec`], default 1.0).
    pub weight: f64,
    /// Quota ceiling on the dominant share, if any.
    pub quota: Option<f64>,
    /// Usage snapshot for this round.
    pub usage: TenantUsage,
}

impl TenantQueue {
    /// The overuse check: is the tenant's dominant share strictly above
    /// its quota? Quota-less tenants are never over.
    pub fn over_quota(&self) -> bool {
        self.quota
            .is_some_and(|q| self.usage.dominant_share() > q + 1e-9)
    }

    /// Weighted-fair ordering key: running tasks per unit weight.
    fn fair_key(&self) -> f64 {
        if self.weight <= 0.0 {
            f64::INFINITY
        } else {
            self.usage.running as f64 / self.weight
        }
    }

    /// DRF ordering key: dominant share per unit weight.
    fn drf_key(&self) -> f64 {
        if self.weight <= 0.0 {
            f64::INFINITY
        } else {
            self.usage.dominant_share() / self.weight
        }
    }
}

/// The per-round allocation snapshot: one queue per tenant, ordered on
/// demand by the configured policy.
#[derive(Clone, Debug, Default)]
pub struct AllocSession {
    /// Queues indexed by tenant id.
    pub queues: Vec<TenantQueue>,
}

impl AllocSession {
    /// Freeze a session from this round's offer snapshot.
    /// `tenant_of_stage` resolves a running attempt's stage to its
    /// tenant (the scheduler wires its stage→job map composed with
    /// [`OfferInput::job_tenants`]); `tenant_count` is the number of
    /// tenants in the stream (at least 1).
    pub fn snapshot(
        cfg: &RupamConfig,
        input: &OfferInput<'_>,
        tenant_count: usize,
        tenant_of_stage: &dyn Fn(StageId) -> TenantId,
    ) -> Self {
        let tenants = tenant_count.max(1);
        let total_cores: f64 = input
            .cluster
            .nodes()
            .iter()
            .map(|n| n.cores as f64)
            .sum::<f64>()
            .max(1.0);
        let total_gpus: f64 = input
            .cluster
            .nodes()
            .iter()
            .map(|n| n.gpus as f64)
            .sum::<f64>()
            .max(1.0);
        let total_mem: f64 = input
            .nodes
            .iter()
            .map(|v| v.executor_mem.as_f64())
            .sum::<f64>()
            .max(1.0);
        let mut usage = vec![TenantUsage::default(); tenants];
        for view in &input.nodes {
            for r in &view.running {
                if r.speculative {
                    continue;
                }
                let t = tenant_of_stage(r.task.stage);
                let u = &mut usage[t.index().min(tenants - 1)];
                u.running += 1;
                u.cores_share += 1.0 / total_cores;
                u.mem_share += r.peak_mem.as_f64() / total_mem;
                if r.on_gpu {
                    u.gpu_share += 1.0 / total_gpus;
                }
            }
        }
        let queues = usage
            .into_iter()
            .enumerate()
            .map(|(i, usage)| {
                let spec = cfg.tenants.get(i).copied().unwrap_or_default();
                TenantQueue {
                    tenant: TenantId(i),
                    weight: spec.weight,
                    quota: spec.quota,
                    usage,
                }
            })
            .collect();
        AllocSession { queues }
    }

    /// Tenants in the order the Dispatcher should serve them this
    /// round. Ties break on tenant id, so the order — like every other
    /// scheduling decision — is a pure function of the snapshot.
    pub fn order(&self, policy: AllocationPolicy) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self.queues.iter().map(|q| q.tenant).collect();
        match policy {
            AllocationPolicy::FifoBaseline => {}
            AllocationPolicy::WeightedFair => {
                ids.sort_by(|&a, &b| {
                    self.queues[a.index()]
                        .fair_key()
                        .total_cmp(&self.queues[b.index()].fair_key())
                        .then(a.cmp(&b))
                });
            }
            AllocationPolicy::Drf => {
                ids.sort_by(|&a, &b| {
                    self.queues[a.index()]
                        .drf_key()
                        .total_cmp(&self.queues[b.index()].drf_key())
                        .then(a.cmp(&b))
                });
            }
        }
        ids
    }

    /// Whether `tenant` currently fails the overuse check (unknown
    /// tenants are within quota by definition).
    pub fn over_quota(&self, tenant: TenantId) -> bool {
        self.queues
            .get(tenant.index())
            .is_some_and(|q| q.over_quota())
    }
}

/// Per-tenant cooldown state for quota preemption, owned by the
/// scheduler across rounds (mirrors the memory-straggler cooldown: one
/// kill wave per tenant per cooldown window, so a briefly-over tenant
/// is not storm-killed while its re-queued work drains).
#[derive(Clone, Debug, Default)]
pub struct PreemptState {
    last_kill: Vec<Option<SimTime>>,
}

impl PreemptState {
    /// State for up to `tenants` tenants.
    pub fn new(tenants: usize) -> Self {
        PreemptState {
            last_kill: vec![None; tenants.max(1)],
        }
    }
}

/// Kill-and-requeue commands reclaiming capacity from every over-quota
/// tenant: the tenant's *newest* running tasks die first (they have the
/// least sunk work), at most enough to bring the dominant share back
/// under quota, at most one wave per tenant per
/// [`RupamConfig::mem_straggler_cooldown`] window. Victims re-enter the
/// pending set through the engine's ordinary failure path
/// ([`KillReason::QuotaPreempt`] → `AttemptOutcome::QuotaPreempted`),
/// so the no-lost-tasks recovery invariant holds unchanged.
pub fn quota_preemption_commands(
    cfg: &RupamConfig,
    session: &AllocSession,
    state: &mut PreemptState,
    input: &OfferInput<'_>,
    tenant_of_stage: &dyn Fn(StageId) -> TenantId,
) -> Vec<Command> {
    let mut cmds = Vec::new();
    if state.last_kill.len() < session.queues.len() {
        state.last_kill.resize(session.queues.len(), None);
    }
    for q in &session.queues {
        if !q.over_quota() {
            continue;
        }
        let idx = q.tenant.index();
        if let Some(last) = state.last_kill[idx] {
            if input.now.since(last) < cfg.mem_straggler_cooldown {
                continue;
            }
        }
        // enough of the newest tasks to get back under quota: the share
        // is ~proportional to running count, so scale the excess
        let dominant = q.usage.dominant_share();
        let quota = q.quota.unwrap_or(1.0);
        let excess = ((dominant - quota) / dominant * q.usage.running as f64).ceil() as usize;
        let excess = excess.clamp(1, q.usage.running);
        // gather this tenant's running attempts, newest first (smallest
        // elapsed); ties break on (stage, index, node) for determinism
        let mut victims: Vec<(&RunningTaskView, rupam_cluster::NodeId)> = input
            .nodes
            .iter()
            .flat_map(|v| v.running.iter().map(move |r| (r, v.node)))
            .filter(|(r, _)| !r.speculative && tenant_of_stage(r.task.stage) == q.tenant)
            .collect();
        victims.sort_by(|(a, an), (b, bn)| {
            a.elapsed
                .cmp(&b.elapsed)
                .then(a.task.stage.cmp(&b.task.stage))
                .then(a.task.index.cmp(&b.task.index))
                .then(an.cmp(bn))
        });
        let mut killed = 0;
        for (r, node) in victims {
            if killed == excess {
                break;
            }
            cmds.push(Command::KillAndRequeue {
                task: r.task,
                node,
                reason: KillReason::QuotaPreempt,
            });
            killed += 1;
        }
        if killed > 0 {
            state.last_kill[idx] = Some(input.now);
        }
    }
    cmds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(tenant: usize, weight: f64, quota: Option<f64>, usage: TenantUsage) -> TenantQueue {
        TenantQueue {
            tenant: TenantId(tenant),
            weight,
            quota,
            usage,
        }
    }

    fn usage(running: usize, cores: f64, mem: f64, gpu: f64) -> TenantUsage {
        TenantUsage {
            running,
            cores_share: cores,
            mem_share: mem,
            gpu_share: gpu,
        }
    }

    #[test]
    fn dominant_share_is_the_max() {
        assert_eq!(usage(3, 0.1, 0.4, 0.2).dominant_share(), 0.4);
        assert_eq!(usage(0, 0.0, 0.0, 0.0).dominant_share(), 0.0);
    }

    #[test]
    fn overuse_check() {
        let under = queue(0, 1.0, Some(0.5), usage(2, 0.3, 0.1, 0.0));
        let over = queue(1, 1.0, Some(0.25), usage(8, 0.3, 0.1, 0.0));
        let unlimited = queue(2, 1.0, None, usage(99, 1.0, 1.0, 1.0));
        assert!(!under.over_quota());
        assert!(over.over_quota());
        assert!(!unlimited.over_quota());
        // exactly at quota is not over (tolerance guards float dust)
        let at = queue(3, 1.0, Some(0.3), usage(3, 0.3, 0.1, 0.0));
        assert!(!at.over_quota());
    }

    #[test]
    fn fifo_order_is_tenant_id_order() {
        let s = AllocSession {
            queues: vec![
                queue(0, 1.0, None, usage(9, 0.9, 0.0, 0.0)),
                queue(1, 1.0, None, usage(0, 0.0, 0.0, 0.0)),
            ],
        };
        assert_eq!(
            s.order(AllocationPolicy::FifoBaseline),
            vec![TenantId(0), TenantId(1)]
        );
    }

    #[test]
    fn weighted_fair_serves_the_most_starved_first() {
        let s = AllocSession {
            queues: vec![
                queue(0, 1.0, None, usage(6, 0.0, 0.0, 0.0)), // 6 per weight
                queue(1, 3.0, None, usage(9, 0.0, 0.0, 0.0)), // 3 per weight
                queue(2, 1.0, None, usage(1, 0.0, 0.0, 0.0)), // 1 per weight
            ],
        };
        assert_eq!(
            s.order(AllocationPolicy::WeightedFair),
            vec![TenantId(2), TenantId(1), TenantId(0)]
        );
    }

    #[test]
    fn drf_orders_on_weighted_dominant_share() {
        let s = AllocSession {
            queues: vec![
                // dominant 0.6 / weight 2 = 0.3
                queue(0, 2.0, None, usage(4, 0.6, 0.2, 0.0)),
                // dominant 0.2 / weight 1 = 0.2
                queue(1, 1.0, None, usage(9, 0.1, 0.2, 0.0)),
            ],
        };
        assert_eq!(
            s.order(AllocationPolicy::Drf),
            vec![TenantId(1), TenantId(0)]
        );
    }

    #[test]
    fn order_ties_break_on_tenant_id() {
        let s = AllocSession {
            queues: vec![
                queue(0, 1.0, None, usage(2, 0.2, 0.0, 0.0)),
                queue(1, 1.0, None, usage(2, 0.2, 0.0, 0.0)),
            ],
        };
        assert_eq!(
            s.order(AllocationPolicy::WeightedFair),
            vec![TenantId(0), TenantId(1)]
        );
        assert_eq!(s.order(AllocationPolicy::Drf), vec![TenantId(0), TenantId(1)]);
    }

    #[test]
    fn session_over_quota_handles_unknown_tenants() {
        let s = AllocSession {
            queues: vec![queue(0, 1.0, Some(0.1), usage(5, 0.5, 0.0, 0.0))],
        };
        assert!(s.over_quota(TenantId(0)));
        assert!(!s.over_quota(TenantId(7)), "unknown tenants are in quota");
    }

    #[test]
    fn zero_weight_sorts_last() {
        let s = AllocSession {
            queues: vec![
                queue(0, 0.0, None, usage(0, 0.0, 0.0, 0.0)),
                queue(1, 1.0, None, usage(50, 0.9, 0.9, 0.9)),
            ],
        };
        assert_eq!(
            s.order(AllocationPolicy::WeightedFair),
            vec![TenantId(1), TenantId(0)]
        );
    }

    #[test]
    fn policy_codes_are_stable() {
        assert_eq!(AllocationPolicy::FifoBaseline.code(), "fifo");
        assert_eq!(AllocationPolicy::WeightedFair.code(), "wfair");
        assert_eq!(AllocationPolicy::Drf.code(), "drf");
    }
}
