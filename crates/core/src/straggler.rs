//! Straggler handling and task relocation (§III-C3).
//!
//! Three mechanisms beyond stock Spark's speculation:
//!
//! * **Memory stragglers** — when RM sees a node with critically low free
//!   memory, TM kills the most memory-hungry task on it and requeues it,
//!   pre-empting the catastrophic JVM-level OOM that takes the whole
//!   Spark worker down.
//! * **GPU/CPU racing** — a GPU-classified task is not held hostage by
//!   busy GPUs: after a grace period it also runs on a powerful idle CPU
//!   node; "whichever version finishes first will continue, while the
//!   unfinished version is aborted".
//! * **Resource stragglers** — `checkSpeculatableTasks()` extended with
//!   resource usage: a task far past the stage median *on a contended
//!   node* becomes speculatable even before Spark's 75 % quantile.

use rupam_simcore::time::SimTime;
use rupam_simcore::units::ByteSize;

use rupam_cluster::resources::ResourceKind;
use rupam_cluster::NodeId;
use rupam_dag::TaskRef;
use rupam_exec::scheduler::{Command, KillReason, NodeView, OfferInput};
use rupam_metrics::trace::LaunchReason;

use crate::config::RupamConfig;
use crate::tm::TaskManager;

/// Per-node cooldown state for memory-straggler kills.
#[derive(Debug, Default)]
pub struct StragglerState {
    last_kill: Vec<Option<SimTime>>,
    /// GPU-capable tasks already raced (one extra copy each).
    raced: std::collections::HashSet<TaskRef>,
}

impl StragglerState {
    /// State for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        StragglerState {
            last_kill: vec![None; n],
            raced: Default::default(),
        }
    }

    /// Reset between runs.
    pub fn reset(&mut self) {
        for k in &mut self.last_kill {
            *k = None;
        }
        self.raced.clear();
    }
}

/// The node views a straggler rule needs to inspect this round, in
/// ascending node order. Every straggler mechanism acts only on nodes
/// with running attempts, and [`OfferInput::changed`] guarantees a
/// `Some` delta covers every such node — so scanning the delta visits
/// the same candidates as scanning the whole cluster, at `O(changed)`.
fn candidate_views<'a>(input: &'a OfferInput<'a>) -> impl Iterator<Item = &'a NodeView> + 'a {
    let (delta, all) = match input.changed.as_deref() {
        Some(d) => (Some(d), None),
        None => (None, Some(&input.nodes[..])),
    };
    delta
        .into_iter()
        .flatten()
        .map(|id| &input.nodes[id.index()])
        .chain(all.into_iter().flatten())
}

/// Memory-straggler detection: for every node whose free memory fell
/// below the watermark, kill-and-requeue the hungriest running task
/// (respecting a per-node cooldown).
pub fn memory_straggler_commands(
    cfg: &RupamConfig,
    state: &mut StragglerState,
    input: &OfferInput<'_>,
) -> Vec<Command> {
    let mut cmds = Vec::new();
    for view in candidate_views(input) {
        let watermark = view.executor_mem.scale(cfg.mem_straggler_watermark);
        if view.free_mem > watermark || view.running.is_empty() {
            continue;
        }
        let idx = view.node.index();
        if let Some(last) = state.last_kill[idx] {
            if input.now.since(last) < cfg.mem_straggler_cooldown {
                continue;
            }
        }
        // the hungriest non-speculative task; ties to the newest arrival
        if let Some(victim) = view
            .running
            .iter()
            .filter(|r| !r.speculative)
            .min_by_key(|r| (std::cmp::Reverse(r.peak_mem), r.elapsed))
        {
            // pointless to relocate the only task on the node
            if view.running.len() > 1 {
                state.last_kill[idx] = Some(input.now);
                cmds.push(Command::KillAndRequeue {
                    task: victim.task,
                    node: view.node,
                    reason: KillReason::MemoryStraggler,
                });
            }
        }
    }
    cmds
}

/// GPU/CPU racing: for each running GPU-capable attempt that has been
/// executing on the "wrong" side for longer than the grace period, launch
/// one racing copy on the best node of the other side.
pub fn gpu_race_commands(
    cfg: &RupamConfig,
    state: &mut StragglerState,
    input: &OfferInput<'_>,
    tm: &TaskManager,
) -> Vec<Command> {
    let mut cmds = Vec::new();
    for view in candidate_views(input) {
        for r in &view.running {
            if r.speculative || state.raced.contains(&r.task) {
                continue;
            }
            if r.elapsed < cfg.gpu_race_after {
                continue;
            }
            let stage = input.app.stage(r.task.stage);
            let gpu_capable = stage.tasks[r.task.index].demand.is_gpu_capable();
            if !gpu_capable {
                continue;
            }
            if r.on_gpu {
                continue; // GPU side is already the fast path
            }
            // running on CPU: race it on an idle GPU if one exists
            if let Some(gpu_node) = best_idle_gpu(input, view.node) {
                state.raced.insert(r.task);
                cmds.push(Command::Launch {
                    task: r.task,
                    node: gpu_node,
                    use_gpu: true,
                    speculative: true,
                    reason: LaunchReason::GpuRace,
                });
            }
        }
    }
    let _ = tm;
    cmds
}

fn best_idle_gpu(input: &OfferInput<'_>, not_on: NodeId) -> Option<NodeId> {
    input
        .nodes
        .iter()
        .filter(|v| !v.blocked && v.node != not_on && v.gpus_idle > 0)
        .max_by_key(|v| {
            (
                (input.cluster.node(v.node).capability(ResourceKind::Gpu) * 1e3) as u64,
                std::cmp::Reverse(v.node),
            )
        })
        .map(|v| v.node)
}

/// Resource stragglers: running attempts far beyond their stage's median
/// on a node whose matching resource is saturated become speculatable
/// regardless of the global quantile. Returns `(task, bad_node)` pairs —
/// the caller places copies elsewhere.
pub fn resource_straggler_candidates(
    cfg: &RupamConfig,
    input: &OfferInput<'_>,
    tm: &TaskManager,
) -> Vec<(TaskRef, NodeId)> {
    let mut out = Vec::new();
    for view in candidate_views(input) {
        // a node the failure detector marked Suspect counts as contended:
        // its heartbeats are stale, so anything running there is a
        // relocation candidate before the node is declared dead outright
        let contended =
            view.cpu_util > 0.9 || view.net_util > 0.9 || view.disk_util > 0.9 || view.suspect;
        if !contended {
            continue;
        }
        for r in &view.running {
            if r.speculative {
                continue;
            }
            let template = input.app.stage(r.task.stage).template_key;
            if let Some(median) = tm.median_duration_secs(r.task.stage, template) {
                if r.elapsed.as_secs_f64() > 1.5 * median.max(1.0) * cfg.res_factor {
                    out.push((r.task, view.node));
                }
            }
        }
    }
    out
}

/// Pick the placement node for a speculative copy of a task whose known
/// bottleneck is `kind`: the best-capability, least-utilised node of that
/// kind that is not the straggling node.
pub fn relocation_target(
    input: &OfferInput<'_>,
    kind: ResourceKind,
    avoid: NodeId,
) -> Option<NodeId> {
    let queues = crate::rm::ResourceQueues::build(input.cluster, &input.nodes);
    queues
        .nodes(kind)
        .iter()
        .copied()
        .find(|&n| n != avoid && !input.nodes[n.index()].blocked)
}

/// Minimum free memory across views — used by tests.
pub fn min_free_mem(views: &[NodeView]) -> ByteSize {
    views
        .iter()
        .map(|v| v.free_mem)
        .min()
        .unwrap_or(ByteSize::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_cluster::ClusterSpec;
    use rupam_dag::app::{Application, StageId, StageKind};
    use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
    use rupam_exec::scheduler::RunningTaskView;
    use rupam_simcore::time::SimDuration;

    fn app_with_gpu_stage() -> Application {
        let mut b = rupam_dag::AppBuilder::new("g");
        let j = b.begin_job();
        b.add_stage(
            j,
            "r",
            "g/r",
            StageKind::Result,
            vec![],
            (0..4)
                .map(|i| TaskTemplate {
                    index: i,
                    input: InputSource::Generated,
                    demand: TaskDemand {
                        compute: 10.0,
                        gpu_kernels: 8.0,
                        ..TaskDemand::default()
                    },
                })
                .collect(),
        );
        b.build()
    }

    fn base_views(cluster: &ClusterSpec) -> Vec<NodeView> {
        cluster
            .iter()
            .map(|(id, spec)| NodeView {
                node: id,
                executor_mem: spec.mem.saturating_sub(ByteSize::gib(2)),
                mem_in_use: ByteSize::ZERO,
                free_mem: spec.mem.saturating_sub(ByteSize::gib(2)),
                running: vec![],
                cpu_util: 0.0,
                net_util: 0.0,
                disk_util: 0.0,
                gpus_idle: spec.gpus,
                blocked: false,
                heartbeat_age: SimDuration::ZERO,
                dead: false,
                suspect: false,
                tier: rupam_cluster::NodeTier::OnDemand,
                draining: false,
                preempt_risk: 0.0,
            })
            .collect()
    }

    fn running(task_index: usize, elapsed_s: u64, peak_gib: u64, on_gpu: bool) -> RunningTaskView {
        RunningTaskView {
            task: TaskRef {
                stage: StageId(0),
                index: task_index,
            },
            speculative: false,
            elapsed: SimDuration::from_secs(elapsed_s),
            peak_mem: ByteSize::gib(peak_gib),
            on_gpu,
        }
    }

    #[test]
    fn memory_straggler_kills_hungriest() {
        let cluster = ClusterSpec::hydra();
        let app = app_with_gpu_stage();
        let cfg = RupamConfig::default();
        let mut st = StragglerState::new(cluster.len());
        let mut views = base_views(&cluster);
        // node 0 nearly out of memory with two tasks
        views[0].free_mem = ByteSize::mib(100);
        views[0].running = vec![running(0, 10, 2, false), running(1, 5, 8, false)];
        let input = OfferInput {
            now: SimTime::from_secs_f64(100.0),
            cluster: &cluster,
            app: &app,
            nodes: views,
            pending: vec![],
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        let cmds = memory_straggler_commands(&cfg, &mut st, &input);
        assert_eq!(
            cmds,
            vec![Command::KillAndRequeue {
                task: TaskRef {
                    stage: StageId(0),
                    index: 1
                },
                node: NodeId(0),
                reason: KillReason::MemoryStraggler,
            }],
            "the 8 GiB task must die, not the 2 GiB one"
        );
        // cooldown: immediate second check is silent
        let input2 = OfferInput {
            now: SimTime::from_secs_f64(101.0),
            cluster: &cluster,
            app: &app,
            nodes: base_views(&cluster),
            pending: vec![],
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        assert!(memory_straggler_commands(&cfg, &mut st, &input2).is_empty());
    }

    #[test]
    fn lone_task_never_relocated() {
        let cluster = ClusterSpec::hydra();
        let app = app_with_gpu_stage();
        let cfg = RupamConfig::default();
        let mut st = StragglerState::new(cluster.len());
        let mut views = base_views(&cluster);
        views[0].free_mem = ByteSize::mib(10);
        views[0].running = vec![running(0, 10, 12, false)];
        let input = OfferInput {
            now: SimTime::from_secs_f64(50.0),
            cluster: &cluster,
            app: &app,
            nodes: views,
            pending: vec![],
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        assert!(memory_straggler_commands(&cfg, &mut st, &input).is_empty());
    }

    #[test]
    fn gpu_race_launches_copy_on_gpu_node() {
        let cluster = ClusterSpec::hydra();
        let app = app_with_gpu_stage();
        let cfg = RupamConfig::default();
        let tm = TaskManager::new(cfg.clone());
        let mut st = StragglerState::new(cluster.len());
        let mut views = base_views(&cluster);
        // a GPU-capable task grinding on a thor CPU for 30 s
        views[0].running = vec![running(0, 30, 1, false)];
        let input = OfferInput {
            now: SimTime::from_secs_f64(30.0),
            cluster: &cluster,
            app: &app,
            nodes: views,
            pending: vec![],
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        let cmds = gpu_race_commands(&cfg, &mut st, &input, &tm);
        assert_eq!(cmds.len(), 1);
        match &cmds[0] {
            Command::Launch {
                node,
                use_gpu,
                speculative,
                ..
            } => {
                assert_eq!(cluster.node(*node).class, "stack");
                assert!(*use_gpu && *speculative);
            }
            _ => panic!(),
        }
        // raced once only
        assert!(gpu_race_commands(&cfg, &mut st, &input, &tm).is_empty());
    }

    #[test]
    fn no_race_before_grace_period() {
        let cluster = ClusterSpec::hydra();
        let app = app_with_gpu_stage();
        let cfg = RupamConfig::default();
        let tm = TaskManager::new(cfg.clone());
        let mut st = StragglerState::new(cluster.len());
        let mut views = base_views(&cluster);
        views[0].running = vec![running(0, 1, 1, false)];
        let input = OfferInput {
            now: SimTime::from_secs_f64(1.0),
            cluster: &cluster,
            app: &app,
            nodes: views,
            pending: vec![],
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        assert!(gpu_race_commands(&cfg, &mut st, &input, &tm).is_empty());
    }

    #[test]
    fn resource_stragglers_need_contention_and_history() {
        let cluster = ClusterSpec::hydra();
        let app = app_with_gpu_stage();
        let cfg = RupamConfig::default();
        let mut tm = TaskManager::new(cfg.clone());
        // teach the TM a median duration of 2 s for the stage template
        {
            use rupam_metrics::breakdown::TaskBreakdown;
            use rupam_metrics::record::{AttemptOutcome, TaskRecord};
            use rupam_simcore::units::ByteSize as BS;
            tm.record_finish(&TaskRecord {
                task: TaskRef {
                    stage: StageId(0),
                    index: 9,
                },
                job: rupam_dag::app::JobId(0),
                template_key: "g/r".into(),
                attempt: 0,
                node: NodeId(0),
                speculative: false,
                locality: rupam_dag::Locality::Any,
                launched_at: SimTime::ZERO,
                finished_at: SimTime::from_secs_f64(2.0),
                outcome: AttemptOutcome::Success,
                breakdown: TaskBreakdown::new(),
                peak_mem: BS::mib(64),
                used_gpu: false,
            });
        }
        let mut views = base_views(&cluster);
        // a task 100 s past a 2 s median, on an *idle* node: not flagged
        views[0].running = vec![running(0, 100, 1, false)];
        let input = OfferInput {
            now: SimTime::from_secs_f64(100.0),
            cluster: &cluster,
            app: &app,
            nodes: views.clone(),
            pending: vec![],
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        assert!(
            resource_straggler_candidates(&cfg, &input, &tm).is_empty(),
            "no contention, no resource straggler"
        );
        // same task on a CPU-saturated node: flagged
        views[0].cpu_util = 0.99;
        let input = OfferInput {
            now: SimTime::from_secs_f64(100.0),
            cluster: &cluster,
            app: &app,
            nodes: views,
            pending: vec![],
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        let out = resource_straggler_candidates(&cfg, &input, &tm);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, NodeId(0));
    }

    #[test]
    fn relocation_prefers_capable_idle_node() {
        let cluster = ClusterSpec::hydra();
        let app = app_with_gpu_stage();
        let views = base_views(&cluster);
        let input = OfferInput {
            now: SimTime::ZERO,
            cluster: &cluster,
            app: &app,
            nodes: views,
            pending: vec![],
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        let target = relocation_target(&input, ResourceKind::Cpu, NodeId(0)).unwrap();
        assert_ne!(target, NodeId(0));
        assert_eq!(cluster.node(target).class, "thor");
    }
}
