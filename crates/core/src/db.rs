//! `DB_task_char` — the task characteristics database (§III-B2).
//!
//! RUPAM stores per-task metrics keyed so that "future task iterations
//! and job runs" find them: we key by `(stage template key, partition)`,
//! which is stable across iterations of the same operation.
//!
//! The paper manages DB access cost with a *helper thread*: "all write
//! requests are queued and served by the helper thread. For read
//! requests, the helper thread first checks the queue to see if the task
//! has written to the database yet, and if it has, the request is served
//! from the enqueued requests … before accessing the database." This
//! module reproduces that design faithfully: writes go into a pending
//! queue drained by a real background thread; reads consult the pending
//! queue first (read-your-writes), so results are deterministic no matter
//! how far the drain has progressed.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use rupam_simcore::units::ByteSize;

use rupam_cluster::resources::ResourceKind;
use rupam_cluster::NodeId;

/// Database key: stable task identity across iterations and job runs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TaskKey {
    /// Stage template key (e.g. `"lr/gradient"`).
    pub template: String,
    /// Partition index.
    pub partition: usize,
}

impl TaskKey {
    /// Convenience constructor.
    pub fn new(template: impl Into<String>, partition: usize) -> Self {
        TaskKey {
            template: template.into(),
            partition,
        }
    }
}

/// Recorded characteristics of one task (Table I, right side).
#[derive(Clone, Debug, Default)]
pub struct TaskChar {
    /// The most recent bottleneck classification (Algorithm 1).
    pub last_bottleneck: Option<ResourceKind>,
    /// `historyresource`: which bottlenecks have ever been observed.
    pub history: [bool; ResourceKind::COUNT],
    /// `optexecutor`: node with the lowest observed runtime, and that
    /// runtime in seconds.
    pub best: Option<(NodeId, f64)>,
    /// `peakmemory`: the largest memory footprint ever observed.
    pub peak_mem: ByteSize,
    /// Whether the task has ever used a GPU (`gpu`).
    pub used_gpu: bool,
    /// Number of recorded runs.
    pub runs: u32,
}

impl TaskChar {
    /// Number of distinct bottlenecks observed — the paper's
    /// `historyresource.size`, whose value 5 triggers best-executor
    /// locking in Algorithm 2.
    pub fn history_size(&self) -> usize {
        self.history.iter().filter(|b| **b).count()
    }

    /// Merge a new observation into the record.
    pub fn observe(
        &mut self,
        bottleneck: ResourceKind,
        node: NodeId,
        runtime_secs: f64,
        peak_mem: ByteSize,
        used_gpu: bool,
    ) {
        self.last_bottleneck = Some(bottleneck);
        self.history[bottleneck.index()] = true;
        self.peak_mem = self.peak_mem.max(peak_mem);
        self.used_gpu |= used_gpu;
        self.runs += 1;
        match self.best {
            Some((_, best_secs)) if best_secs <= runtime_secs => {}
            _ => self.best = Some((node, runtime_secs)),
        }
    }
}

enum DbOp {
    Drain,
    Flush(Sender<()>),
    Shutdown,
}

/// The task-characteristics database with helper-thread write-behind.
pub struct TaskCharDb {
    store: Arc<Mutex<HashMap<TaskKey, TaskChar>>>,
    pending: Arc<Mutex<Vec<(TaskKey, TaskChar)>>>,
    ops: Sender<DbOp>,
    helper: Option<JoinHandle<()>>,
}

impl TaskCharDb {
    /// An empty database with its helper thread running.
    pub fn new() -> Self {
        let store: Arc<Mutex<HashMap<TaskKey, TaskChar>>> = Arc::new(Mutex::new(HashMap::new()));
        let pending: Arc<Mutex<Vec<(TaskKey, TaskChar)>>> = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = unbounded::<DbOp>();
        let store2 = Arc::clone(&store);
        let pending2 = Arc::clone(&pending);
        let helper = std::thread::Builder::new()
            .name("dbtaskchar-helper".into())
            .spawn(move || {
                for op in rx.iter() {
                    match op {
                        DbOp::Drain | DbOp::Flush(_) => {
                            // take the store lock BEFORE draining: readers
                            // check pending then store, so a value must
                            // never be absent from both. Holding the store
                            // across the transfer makes the hand-off atomic
                            // from the reader's point of view.
                            let mut store = store2.lock();
                            let drained: Vec<(TaskKey, TaskChar)> =
                                std::mem::take(&mut *pending2.lock());
                            for (k, v) in drained {
                                store.insert(k, v);
                            }
                            drop(store);
                            if let DbOp::Flush(ack) = op {
                                let _ = ack.send(());
                            }
                        }
                        DbOp::Shutdown => break,
                    }
                }
            })
            .expect("spawn db helper thread");
        TaskCharDb {
            store,
            pending,
            ops: tx,
            helper: Some(helper),
        }
    }

    /// Queue a write; the helper thread commits it to the store.
    pub fn write(&self, key: TaskKey, value: TaskChar) {
        self.pending.lock().push((key, value));
        let _ = self.ops.send(DbOp::Drain);
    }

    /// Read the latest value for `key`, consulting the pending write
    /// queue first (read-your-writes), then the store.
    pub fn read(&self, key: &TaskKey) -> Option<TaskChar> {
        {
            let pending = self.pending.lock();
            if let Some((_, v)) = pending.iter().rev().find(|(k, _)| k == key) {
                return Some(v.clone());
            }
        }
        self.store.lock().get(key).cloned()
    }

    /// Read-modify-write convenience: apply `f` to the existing (or
    /// default) record and queue the result.
    pub fn update(&self, key: TaskKey, f: impl FnOnce(&mut TaskChar)) {
        let mut cur = self.read(&key).unwrap_or_default();
        f(&mut cur);
        self.write(key, cur);
    }

    /// Block until every queued write has been committed.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = unbounded();
        if self.ops.send(DbOp::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Drop everything (the paper clears `DB_task_char` between the five
    /// repetitions of each Fig. 5 measurement).
    pub fn clear(&self) {
        self.flush();
        self.pending.lock().clear();
        self.store.lock().clear();
    }

    /// Number of committed + pending records (flushes first for an exact
    /// answer).
    pub fn len(&self) -> usize {
        self.flush();
        self.store.lock().len()
    }

    /// True iff the database holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TaskCharDb {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TaskCharDb {
    fn drop(&mut self) {
        let _ = self.ops.send(DbOp::Shutdown);
        if let Some(h) = self.helper.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes_before_drain() {
        let db = TaskCharDb::new();
        let key = TaskKey::new("lr/grad", 3);
        let mut c = TaskChar::default();
        c.observe(ResourceKind::Cpu, NodeId(1), 12.0, ByteSize::gib(1), false);
        db.write(key.clone(), c);
        // immediately readable even if the helper has not drained yet
        let got = db.read(&key).expect("read-your-writes");
        assert_eq!(got.last_bottleneck, Some(ResourceKind::Cpu));
        assert_eq!(got.best, Some((NodeId(1), 12.0)));
    }

    #[test]
    fn update_merges_observations() {
        let db = TaskCharDb::new();
        let key = TaskKey::new("pr/contrib", 0);
        db.update(key.clone(), |c| {
            c.observe(ResourceKind::Cpu, NodeId(0), 20.0, ByteSize::gib(1), false)
        });
        db.update(key.clone(), |c| {
            c.observe(ResourceKind::Net, NodeId(2), 10.0, ByteSize::gib(2), false)
        });
        let got = db.read(&key).unwrap();
        assert_eq!(got.runs, 2);
        assert_eq!(got.history_size(), 2);
        assert_eq!(got.best, Some((NodeId(2), 10.0)), "faster run wins");
        assert_eq!(got.peak_mem, ByteSize::gib(2), "peak is a running max");
        assert_eq!(got.last_bottleneck, Some(ResourceKind::Net));
    }

    #[test]
    fn best_executor_keeps_minimum() {
        let mut c = TaskChar::default();
        c.observe(ResourceKind::Cpu, NodeId(0), 10.0, ByteSize::ZERO, false);
        c.observe(ResourceKind::Cpu, NodeId(1), 30.0, ByteSize::ZERO, false);
        assert_eq!(c.best, Some((NodeId(0), 10.0)));
    }

    #[test]
    fn history_reaches_five() {
        let mut c = TaskChar::default();
        for kind in ResourceKind::ALL {
            c.observe(
                kind,
                NodeId(0),
                1.0,
                ByteSize::ZERO,
                kind == ResourceKind::Gpu,
            );
        }
        assert_eq!(c.history_size(), 5);
        assert!(c.used_gpu);
    }

    #[test]
    fn flush_commits_and_clear_wipes() {
        let db = TaskCharDb::new();
        for i in 0..20 {
            db.update(TaskKey::new("x", i), |c| {
                c.observe(ResourceKind::Io, NodeId(0), 1.0, ByteSize::ZERO, false)
            });
        }
        assert_eq!(db.len(), 20);
        db.clear();
        assert!(db.is_empty());
        assert!(db.read(&TaskKey::new("x", 0)).is_none());
    }

    #[test]
    fn unknown_key_reads_none() {
        let db = TaskCharDb::new();
        assert!(db.read(&TaskKey::new("missing", 0)).is_none());
    }

    #[test]
    fn a_written_key_is_always_readable() {
        // regression: the helper thread must never expose a window where
        // a written value is in neither the pending queue nor the store
        // (that window made whole simulations nondeterministic under load)
        let db = TaskCharDb::new();
        for i in 0..5_000u64 {
            let key = TaskKey::new("race", (i % 7) as usize);
            db.update(key.clone(), |c| {
                c.observe(
                    ResourceKind::Net,
                    NodeId(0),
                    i as f64,
                    ByteSize::ZERO,
                    false,
                )
            });
            let got = db.read(&key);
            assert!(got.is_some(), "write {i} vanished mid-drain");
        }
    }

    #[test]
    fn survives_many_writers_worth_of_traffic() {
        // hammer the write path to exercise the helper thread
        let db = TaskCharDb::new();
        for round in 0..50 {
            for i in 0..10 {
                db.update(TaskKey::new("hot", i), |c| {
                    c.observe(
                        ResourceKind::Cpu,
                        NodeId(round % 3),
                        (round + 1) as f64,
                        ByteSize::ZERO,
                        false,
                    )
                });
            }
        }
        db.flush();
        let got = db.read(&TaskKey::new("hot", 5)).unwrap();
        assert_eq!(got.runs, 50);
        assert_eq!(got.best.unwrap().1, 1.0, "first round was fastest");
    }
}
