//! `DB_task_char` — the task characteristics database (§III-B2).
//!
//! RUPAM stores per-task metrics keyed so that "future task iterations
//! and job runs" find them: we key by `(stage template key, partition)`,
//! which is stable across iterations of the same operation. Template
//! keys are interned [`Sym`]s, so a key is two machine words — no
//! `String` clone per lookup.
//!
//! The paper manages DB access cost with a *helper thread*: "all write
//! requests are queued and served by the helper thread. For read
//! requests, the helper thread first checks the queue to see if the task
//! has written to the database yet, and if it has, the request is served
//! from the enqueued requests … before accessing the database." This
//! module reproduces that design faithfully: writes go into a pending
//! queue drained by a real background thread; reads consult the pending
//! queue first (read-your-writes), so results are deterministic no matter
//! how far the drain has progressed.
//!
//! Storage is striped across [`SHARDS`] independent shards, each with its
//! own read-write-locked store and pending queue, so offer-round readers
//! on different keys never serialise on one global mutex. The helper
//! drains each shard while holding that shard's store lock, keeping the
//! per-shard hand-off atomic from a reader's point of view (a written
//! value is never absent from both the pending queue and the store).

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};

use rupam_simcore::units::ByteSize;
use rupam_simcore::Sym;

use rupam_cluster::resources::ResourceKind;
use rupam_cluster::NodeId;

/// Number of lock stripes. A small power of two: the simulator runs one
/// scheduler thread plus the helper per DB, but the bench harness reads
/// from several worker threads at once.
pub const SHARDS: usize = 16;

/// Database key: stable task identity across iterations and job runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TaskKey {
    /// Stage template key (e.g. `"lr/gradient"`), interned.
    pub template: Sym,
    /// Partition index.
    pub partition: usize,
}

impl TaskKey {
    /// Convenience constructor.
    pub fn new(template: impl Into<Sym>, partition: usize) -> Self {
        TaskKey {
            template: template.into(),
            partition,
        }
    }

    /// Which stripe this key lives in: FNV-1a over the template bytes
    /// mixed with the partition. Deterministic across runs (symbol ids
    /// are not), though shard choice only spreads lock contention and
    /// never affects results.
    fn shard(&self) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.template.as_str().bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        h = (h ^ self.partition as u64).wrapping_mul(0x100_0000_01b3);
        (h % SHARDS as u64) as usize
    }
}

/// Recorded characteristics of one task (Table I, right side).
#[derive(Clone, Debug, Default)]
pub struct TaskChar {
    /// The most recent bottleneck classification (Algorithm 1).
    pub last_bottleneck: Option<ResourceKind>,
    /// `historyresource`: which bottlenecks have ever been observed.
    pub history: [bool; ResourceKind::COUNT],
    /// `optexecutor`: node with the lowest observed runtime, and that
    /// runtime in seconds.
    pub best: Option<(NodeId, f64)>,
    /// `peakmemory`: the largest memory footprint ever observed.
    pub peak_mem: ByteSize,
    /// Whether the task has ever used a GPU (`gpu`).
    pub used_gpu: bool,
    /// Number of recorded runs.
    pub runs: u32,
}

impl TaskChar {
    /// Number of distinct bottlenecks observed — the paper's
    /// `historyresource.size`, whose value 5 triggers best-executor
    /// locking in Algorithm 2.
    pub fn history_size(&self) -> usize {
        self.history.iter().filter(|b| **b).count()
    }

    /// Merge a new observation into the record.
    pub fn observe(
        &mut self,
        bottleneck: ResourceKind,
        node: NodeId,
        runtime_secs: f64,
        peak_mem: ByteSize,
        used_gpu: bool,
    ) {
        self.last_bottleneck = Some(bottleneck);
        self.history[bottleneck.index()] = true;
        self.peak_mem = self.peak_mem.max(peak_mem);
        self.used_gpu |= used_gpu;
        self.runs += 1;
        match self.best {
            Some((_, best_secs)) if best_secs <= runtime_secs => {}
            _ => self.best = Some((node, runtime_secs)),
        }
    }
}

// cacheline-aligned so concurrent readers on neighbouring shards don't
// false-share the lock words
#[derive(Default)]
#[repr(align(64))]
struct Shard {
    store: RwLock<HashMap<TaskKey, TaskChar>>,
    pending: Mutex<Vec<(TaskKey, TaskChar)>>,
}

impl Shard {
    fn drain(&self) {
        // take the store lock BEFORE draining: readers check pending
        // then store, so a value must never be absent from both. Holding
        // the store across the transfer makes the hand-off atomic from
        // the reader's point of view.
        let mut store = self.store.write();
        let drained: Vec<(TaskKey, TaskChar)> = std::mem::take(&mut *self.pending.lock());
        for (k, v) in drained {
            store.insert(k, v);
        }
    }
}

enum DbOp {
    Drain,
    Flush(Sender<()>),
    Shutdown,
}

/// The task-characteristics database: sharded storage with helper-thread
/// write-behind.
pub struct TaskCharDb {
    shards: Arc<[Shard; SHARDS]>,
    ops: Sender<DbOp>,
    helper: Option<JoinHandle<()>>,
}

impl TaskCharDb {
    /// An empty database with its helper thread running.
    pub fn new() -> Self {
        let shards: Arc<[Shard; SHARDS]> = Arc::new(std::array::from_fn(|_| Shard::default()));
        let (tx, rx) = unbounded::<DbOp>();
        let shards2 = Arc::clone(&shards);
        let helper = std::thread::Builder::new()
            .name("dbtaskchar-helper".into())
            .spawn(move || {
                for op in rx.iter() {
                    match op {
                        DbOp::Drain | DbOp::Flush(_) => {
                            for shard in shards2.iter() {
                                shard.drain();
                            }
                            if let DbOp::Flush(ack) = op {
                                let _ = ack.send(());
                            }
                        }
                        DbOp::Shutdown => break,
                    }
                }
            })
            .expect("spawn db helper thread");
        TaskCharDb {
            shards,
            ops: tx,
            helper: Some(helper),
        }
    }

    /// Queue a write; the helper thread commits it to the store.
    pub fn write(&self, key: TaskKey, value: TaskChar) {
        self.shards[key.shard()].pending.lock().push((key, value));
        let _ = self.ops.send(DbOp::Drain);
    }

    /// Read the latest value for `key`, consulting the shard's pending
    /// write queue first (read-your-writes), then the store.
    pub fn read(&self, key: &TaskKey) -> Option<TaskChar> {
        let shard = &self.shards[key.shard()];
        {
            let pending = shard.pending.lock();
            if let Some((_, v)) = pending.iter().rev().find(|(k, _)| k == key) {
                return Some(v.clone());
            }
        }
        shard.store.read().get(key).cloned()
    }

    /// Read-modify-write convenience: apply `f` to the existing (or
    /// default) record and queue the result.
    pub fn update(&self, key: TaskKey, f: impl FnOnce(&mut TaskChar)) {
        let mut cur = self.read(&key).unwrap_or_default();
        f(&mut cur);
        self.write(key, cur);
    }

    /// Ask the helper to drain pending writes without blocking — called
    /// from heartbeat hooks so queues stay short between offer rounds.
    /// Has no observable effect on reads (read-your-writes already covers
    /// the pending queue).
    pub fn nudge(&self) {
        let _ = self.ops.send(DbOp::Drain);
    }

    /// Block until every queued write has been committed.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = unbounded();
        if self.ops.send(DbOp::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Drop everything (the paper clears `DB_task_char` between the five
    /// repetitions of each Fig. 5 measurement).
    pub fn clear(&self) {
        self.flush();
        for shard in self.shards.iter() {
            shard.pending.lock().clear();
            shard.store.write().clear();
        }
    }

    /// Number of committed + pending records (flushes first for an exact
    /// answer).
    pub fn len(&self) -> usize {
        self.flush();
        self.shards.iter().map(|s| s.store.read().len()).sum()
    }

    /// True iff the database holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TaskCharDb {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TaskCharDb {
    fn drop(&mut self) {
        let _ = self.ops.send(DbOp::Shutdown);
        if let Some(h) = self.helper.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes_before_drain() {
        let db = TaskCharDb::new();
        let key = TaskKey::new("lr/grad", 3);
        let mut c = TaskChar::default();
        c.observe(ResourceKind::Cpu, NodeId(1), 12.0, ByteSize::gib(1), false);
        db.write(key, c);
        // immediately readable even if the helper has not drained yet
        let got = db.read(&key).expect("read-your-writes");
        assert_eq!(got.last_bottleneck, Some(ResourceKind::Cpu));
        assert_eq!(got.best, Some((NodeId(1), 12.0)));
    }

    #[test]
    fn update_merges_observations() {
        let db = TaskCharDb::new();
        let key = TaskKey::new("pr/contrib", 0);
        db.update(key, |c| {
            c.observe(ResourceKind::Cpu, NodeId(0), 20.0, ByteSize::gib(1), false)
        });
        db.update(key, |c| {
            c.observe(ResourceKind::Net, NodeId(2), 10.0, ByteSize::gib(2), false)
        });
        let got = db.read(&key).unwrap();
        assert_eq!(got.runs, 2);
        assert_eq!(got.history_size(), 2);
        assert_eq!(got.best, Some((NodeId(2), 10.0)), "faster run wins");
        assert_eq!(got.peak_mem, ByteSize::gib(2), "peak is a running max");
        assert_eq!(got.last_bottleneck, Some(ResourceKind::Net));
    }

    #[test]
    fn best_executor_keeps_minimum() {
        let mut c = TaskChar::default();
        c.observe(ResourceKind::Cpu, NodeId(0), 10.0, ByteSize::ZERO, false);
        c.observe(ResourceKind::Cpu, NodeId(1), 30.0, ByteSize::ZERO, false);
        assert_eq!(c.best, Some((NodeId(0), 10.0)));
    }

    #[test]
    fn history_reaches_five() {
        let mut c = TaskChar::default();
        for kind in ResourceKind::ALL {
            c.observe(
                kind,
                NodeId(0),
                1.0,
                ByteSize::ZERO,
                kind == ResourceKind::Gpu,
            );
        }
        assert_eq!(c.history_size(), 5);
        assert!(c.used_gpu);
    }

    #[test]
    fn flush_commits_and_clear_wipes() {
        let db = TaskCharDb::new();
        for i in 0..20 {
            db.update(TaskKey::new("x", i), |c| {
                c.observe(ResourceKind::Io, NodeId(0), 1.0, ByteSize::ZERO, false)
            });
        }
        assert_eq!(db.len(), 20);
        db.clear();
        assert!(db.is_empty());
        assert!(db.read(&TaskKey::new("x", 0)).is_none());
    }

    #[test]
    fn unknown_key_reads_none() {
        let db = TaskCharDb::new();
        assert!(db.read(&TaskKey::new("missing", 0)).is_none());
    }

    #[test]
    fn a_written_key_is_always_readable() {
        // regression: the helper thread must never expose a window where
        // a written value is in neither the pending queue nor the store
        // (that window made whole simulations nondeterministic under load)
        let db = TaskCharDb::new();
        for i in 0..5_000u64 {
            let key = TaskKey::new("race", (i % 7) as usize);
            db.update(key, |c| {
                c.observe(
                    ResourceKind::Net,
                    NodeId(0),
                    i as f64,
                    ByteSize::ZERO,
                    false,
                )
            });
            let got = db.read(&key);
            assert!(got.is_some(), "write {i} vanished mid-drain");
        }
    }

    #[test]
    fn survives_many_writers_worth_of_traffic() {
        // hammer the write path to exercise the helper thread
        let db = TaskCharDb::new();
        for round in 0..50 {
            for i in 0..10 {
                db.update(TaskKey::new("hot", i), |c| {
                    c.observe(
                        ResourceKind::Cpu,
                        NodeId(round % 3),
                        (round + 1) as f64,
                        ByteSize::ZERO,
                        false,
                    )
                });
            }
        }
        db.flush();
        let got = db.read(&TaskKey::new("hot", 5)).unwrap();
        assert_eq!(got.runs, 50);
        assert_eq!(got.best.unwrap().1, 1.0, "first round was fastest");
    }

    #[test]
    fn keys_spread_across_shards() {
        let keys: Vec<TaskKey> = (0..64)
            .flat_map(|p| {
                ["a/map", "b/reduce", "c/join"]
                    .into_iter()
                    .map(move |t| TaskKey::new(t, p))
            })
            .collect();
        let mut used = std::collections::HashSet::new();
        for k in &keys {
            used.insert(k.shard());
        }
        assert!(
            used.len() > SHARDS / 2,
            "striping degenerated to {} shards",
            used.len()
        );
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let db = Arc::new(TaskCharDb::new());
        for i in 0..256 {
            db.update(TaskKey::new("warm", i), |c| {
                c.observe(ResourceKind::Cpu, NodeId(0), 5.0, ByteSize::ZERO, false)
            });
        }
        db.flush();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for i in 0..4_000usize {
                        let key = TaskKey::new("warm", (i * (t + 1)) % 256);
                        assert!(db.read(&key).is_some());
                    }
                });
            }
            let db2 = Arc::clone(&db);
            scope.spawn(move || {
                for i in 0..1_000 {
                    db2.update(TaskKey::new("churn", i % 32), |c| {
                        c.observe(ResourceKind::Io, NodeId(1), 2.0, ByteSize::ZERO, false)
                    });
                }
            });
        });
        assert_eq!(db.len(), 256 + 32);
    }
}
