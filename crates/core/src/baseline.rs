//! Stock Spark 2.2 task scheduling (the paper's baseline).
//!
//! Faithful to the behaviour the paper contrasts against (§II-A):
//!
//! * **Uniform executors** — one executor size for the whole cluster,
//!   dimensioned for the *smallest* node (14 GB on Hydra, to fit the
//!   16 GB thor machines).
//! * **One task per core** — a node is "available" iff it has free core
//!   slots, regardless of its actual load or free memory.
//! * **Delay scheduling** — per task set, wait up to
//!   `spark.locality.wait` (3 s) per locality level before relaxing from
//!   `PROCESS_LOCAL` towards `ANY`.
//! * **Speculation** — launches copies of the engine-flagged stragglers
//!   on any free slot (never next to the original copy).
//! * **No heterogeneity awareness** — CPU speed, SSDs, GPUs, memory
//!   capacity and current utilisation are all ignored.

use std::collections::HashMap;

use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;

use std::collections::HashSet;

use rupam_cluster::{ClusterSpec, NodeId};
use rupam_dag::app::{Application, Stage, StageId};
use rupam_dag::{Locality, TaskRef};
use rupam_exec::scheduler::{Command, OfferInput, PendingTaskView, Scheduler};
use rupam_metrics::record::AttemptOutcome;
use rupam_metrics::trace::LaunchReason;

/// Baseline configuration (`spark.*` defaults).
#[derive(Clone, Debug)]
pub struct SparkConfig {
    /// `spark.locality.wait`: how long a task set tolerates launching at
    /// a worse locality level than its best.
    pub locality_wait: SimDuration,
    /// Executor memory override (`spark.executor.memory`); `None` sizes
    /// for the smallest node minus the OS reservation, like the paper's
    /// 14 GB setting.
    pub executor_mem: Option<ByteSize>,
    /// Memory the operator leaves for the OS when sizing executors.
    pub os_reserved: ByteSize,
    /// Task slots per core (`spark.task.cpus` = 1 ⇒ 1 slot per core).
    pub slots_per_core: u32,
}

impl Default for SparkConfig {
    fn default() -> Self {
        SparkConfig {
            locality_wait: SimDuration::from_secs(3),
            executor_mem: None,
            os_reserved: ByteSize::gib(2),
            slots_per_core: 1,
        }
    }
}

/// Delay-scheduling state of one task set (Spark's `TaskSetManager`).
#[derive(Clone, Debug)]
struct TaskSetState {
    /// Locality levels this set can use, best first (derived from its
    /// tasks' preferences; `ANY` is always last).
    levels: Vec<Locality>,
    /// Index into `levels` of the currently allowed level.
    level_idx: usize,
    /// Last time a task launched at the current level (or the level
    /// changed) — the delay-scheduling timer.
    last_launch: SimTime,
}

impl TaskSetState {
    fn allowed(&mut self, now: SimTime, wait: SimDuration) -> Locality {
        if self.levels.is_empty() {
            return Locality::Any; // no pending tasks yet — nothing to gate
        }
        while self.level_idx + 1 < self.levels.len() && now.since(self.last_launch) > wait {
            self.level_idx += 1;
            self.last_launch = now;
        }
        self.levels[self.level_idx]
    }

    fn note_launch(&mut self, at: Locality, now: SimTime) {
        if let Some(idx) = self.levels.iter().position(|l| *l == at) {
            if idx <= self.level_idx {
                self.level_idx = idx;
            }
        }
        self.last_launch = now;
    }
}

/// The stock Spark scheduler.
pub struct SparkScheduler {
    cfg: SparkConfig,
    /// Stages in submission order (FIFO across task sets).
    stage_order: Vec<StageId>,
    states: HashMap<StageId, TaskSetState>,
    slots: Vec<usize>,
    /// Executors a task has already failed on — Spark's TaskSetManager
    /// will not relaunch an attempt there (`spark.excludeOnFailure`).
    failed_on: HashMap<TaskRef, HashSet<NodeId>>,
    /// Offer-round counter used to vary the node visit order — real
    /// drivers receive resource offers in arbitrary (registration/heartbeat)
    /// order, not sorted by hardware quality.
    round: u64,
}

impl SparkScheduler {
    /// A baseline scheduler with the given configuration.
    pub fn new(cfg: SparkConfig) -> Self {
        SparkScheduler {
            cfg,
            stage_order: Vec::new(),
            states: HashMap::new(),
            slots: Vec::new(),
            failed_on: HashMap::new(),
            round: 0,
        }
    }

    /// A baseline scheduler with Spark's default configuration.
    pub fn with_defaults() -> Self {
        Self::new(SparkConfig::default())
    }

    fn stage_levels(pending: &[PendingTaskView], stage: StageId) -> Vec<Locality> {
        let mut levels = Vec::new();
        for p in pending.iter().filter(|p| p.task.stage == stage) {
            let best = p.best_locality();
            if !levels.contains(&best) {
                levels.push(best);
            }
        }
        if !levels.contains(&Locality::Any) {
            levels.push(Locality::Any);
        }
        levels.sort();
        levels
    }
}

impl Scheduler for SparkScheduler {
    fn name(&self) -> &str {
        "spark"
    }

    fn executor_memory(&self, cluster: &ClusterSpec, _node: NodeId) -> ByteSize {
        self.cfg
            .executor_mem
            .unwrap_or_else(|| cluster.min_mem().saturating_sub(self.cfg.os_reserved))
    }

    fn decision_cost(&self) -> SimDuration {
        SimDuration::from_millis(1)
    }

    fn on_app_start(&mut self, _app: &Application, cluster: &ClusterSpec) {
        self.slots = cluster
            .nodes()
            .iter()
            .map(|n| (n.cores * self.cfg.slots_per_core) as usize)
            .collect();
        self.stage_order.clear();
        self.states.clear();
        self.failed_on.clear();
        self.round = 0;
    }

    fn on_task_failed(
        &mut self,
        task: TaskRef,
        node: NodeId,
        _outcome: AttemptOutcome,
        _now: SimTime,
    ) {
        let set = self.failed_on.entry(task).or_default();
        set.insert(node);
        // a task excluded from every executor could never relaunch;
        // Spark would abort — we clear the exclusions and let it retry
        if set.len() >= self.slots.len() {
            set.clear();
        }
    }

    fn on_stage_ready(&mut self, stage: &Stage, now: SimTime) {
        self.stage_order.push(stage.id);
        self.states.insert(
            stage.id,
            TaskSetState {
                levels: Vec::new(), // derived from pending tasks at first offer
                level_idx: 0,
                last_launch: now,
            },
        );
    }

    fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
        self.round += 1;
        let mut cmds = Vec::new();
        let mut used: Vec<usize> = input.nodes.iter().map(|n| n.running_count()).collect();
        let mut claimed: Vec<bool> = vec![false; input.pending.len()];

        // deterministic per-round permutation of the node visit order
        let mut node_order: Vec<usize> = (0..input.nodes.len()).collect();
        let round = self.round;
        node_order.sort_by_key(|&i| splitmix(round.wrapping_mul(0x9e37).wrapping_add(i as u64)));

        // refresh each live task set's locality levels from what is
        // actually pending (tasks get re-queued with new preferences,
        // e.g. once their input is cached somewhere)
        for &sid in &self.stage_order {
            if input.pending.iter().any(|p| p.task.stage == sid) {
                let levels = Self::stage_levels(&input.pending, sid);
                if let Some(st) = self.states.get_mut(&sid) {
                    if st.levels.is_empty() {
                        // first offer for this task set
                        st.levels = levels;
                        st.level_idx = 0;
                    } else if st.levels != levels {
                        let old_level = st.levels.get(st.level_idx).copied();
                        st.levels = levels;
                        st.level_idx = old_level
                            .and_then(|l| st.levels.iter().position(|x| *x == l))
                            .unwrap_or(0);
                    }
                }
            }
        }

        for &ni in &node_order {
            let node_view = &input.nodes[ni];
            if node_view.blocked {
                continue;
            }
            let node = NodeId(ni);
            'slot: while used[ni] < self.slots[ni] {
                // walk task sets FIFO, respecting each one's allowed level
                for &sid in &self.stage_order {
                    let Some(state) = self.states.get_mut(&sid) else {
                        continue;
                    };
                    let allowed = state.allowed(input.now, self.cfg.locality_wait);
                    // best candidate at or under the allowed level
                    let mut best: Option<(usize, Locality)> = None;
                    for (pi, p) in input.pending.iter().enumerate() {
                        if claimed[pi] || p.task.stage != sid {
                            continue;
                        }
                        if self
                            .failed_on
                            .get(&p.task)
                            .map(|s| s.contains(&node))
                            .unwrap_or(false)
                        {
                            continue; // excludeOnFailure
                        }
                        let loc = p.locality(input.cluster, node);
                        if loc <= allowed && best.map(|(_, bl)| loc < bl).unwrap_or(true) {
                            best = Some((pi, loc));
                        }
                    }
                    if let Some((pi, loc)) = best {
                        claimed[pi] = true;
                        state.note_launch(loc, input.now);
                        cmds.push(Command::Launch {
                            task: input.pending[pi].task,
                            node,
                            use_gpu: false,
                            speculative: false,
                            reason: LaunchReason::DelaySchedule {
                                allowed,
                                achieved: loc,
                            },
                        });
                        used[ni] += 1;
                        continue 'slot;
                    }
                }
                // no regular task fits: try a speculative copy (anywhere
                // but next to the original)
                let original_here =
                    |t: &PendingTaskView| node_view.running.iter().any(|r| r.task == t.task);
                if let Some(s) = input
                    .speculatable
                    .iter()
                    .find(|s| !original_here(s) && !cmds.iter().any(|c| matches!(c, Command::Launch { task, speculative: true, .. } if *task == s.task)))
                {
                    cmds.push(Command::Launch {
                        task: s.task,
                        node,
                        use_gpu: false,
                        speculative: true,
                        reason: LaunchReason::SparkSpeculative,
                    });
                    used[ni] += 1;
                    continue 'slot;
                }
                break;
            }
        }
        cmds
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::app::StageKind;
    use rupam_dag::TaskRef;
    use rupam_exec::scheduler::NodeView;

    fn node_view(node: usize, running: usize, cores: usize) -> NodeView {
        let _ = cores;
        NodeView {
            node: NodeId(node),
            executor_mem: ByteSize::gib(14),
            mem_in_use: ByteSize::ZERO,
            free_mem: ByteSize::gib(14),
            running: (0..running)
                .map(|i| rupam_exec::scheduler::RunningTaskView {
                    task: TaskRef {
                        stage: StageId(99),
                        index: i,
                    },
                    speculative: false,
                    elapsed: SimDuration::ZERO,
                    peak_mem: ByteSize::mib(100),
                    on_gpu: false,
                })
                .collect(),
            cpu_util: 0.0,
            net_util: 0.0,
            disk_util: 0.0,
            gpus_idle: 0,
            blocked: false,
            heartbeat_age: SimDuration::ZERO,
            dead: false,
            suspect: false,
            tier: rupam_cluster::NodeTier::OnDemand,
            draining: false,
            preempt_risk: 0.0,
        }
    }

    fn pending(stage: usize, index: usize, node_local: Vec<NodeId>) -> PendingTaskView {
        PendingTaskView {
            task: TaskRef {
                stage: StageId(stage),
                index,
            },
            job: rupam_dag::app::JobId(0),
            template_key: "t".into(),
            stage_kind: StageKind::ShuffleMap,
            attempt_no: 0,
            peak_mem_hint: ByteSize::ZERO,
            gpu_capable: false,
            process_nodes: vec![],
            node_local,
        }
    }

    fn mk_offer<'a>(
        cluster: &'a ClusterSpec,
        app: &'a Application,
        now: SimTime,
        nodes: Vec<NodeView>,
        pending: Vec<PendingTaskView>,
    ) -> OfferInput<'a> {
        OfferInput {
            now,
            cluster,
            app,
            nodes,
            pending,
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        }
    }

    fn dummy_app() -> Application {
        use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
        let mut b = rupam_dag::AppBuilder::new("d");
        let j = b.begin_job();
        b.add_stage(
            j,
            "r",
            "d/r",
            StageKind::Result,
            vec![],
            vec![TaskTemplate {
                index: 0,
                input: InputSource::Generated,
                demand: TaskDemand::default(),
            }],
        );
        b.build()
    }

    fn ready_stage(sched: &mut SparkScheduler, app: &Application, now: SimTime) {
        sched.on_stage_ready(app.stage(StageId(0)), now);
    }

    #[test]
    fn uniform_executor_sized_for_smallest_node() {
        let cluster = ClusterSpec::hydra();
        let s = SparkScheduler::with_defaults();
        // 16 GiB thor − 2 GiB reserved = 14 GiB, on EVERY node
        for (id, _) in cluster.iter() {
            assert_eq!(s.executor_memory(&cluster, id), ByteSize::gib(14));
        }
    }

    #[test]
    fn one_task_per_core() {
        let cluster = ClusterSpec::two_node_motivation();
        let app = dummy_app();
        let mut s = SparkScheduler::with_defaults();
        s.on_app_start(&app, &cluster);
        ready_stage(&mut s, &app, SimTime::ZERO);
        // node 0 already runs 16 tasks (= cores): nothing launches there
        let offer = mk_offer(
            &cluster,
            &app,
            SimTime::ZERO,
            vec![node_view(0, 16, 16), node_view(1, 15, 16)],
            vec![pending(0, 0, vec![]), pending(0, 1, vec![])],
        );
        let cmds = s.offer_round(&offer);
        assert_eq!(cmds.len(), 1, "only node 1 has a slot: {cmds:?}");
        match &cmds[0] {
            Command::Launch { node, .. } => assert_eq!(*node, NodeId(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delay_scheduling_waits_then_relaxes() {
        let cluster = ClusterSpec::two_node_motivation();
        let app = dummy_app();
        let mut s = SparkScheduler::with_defaults();
        s.on_app_start(&app, &cluster);
        ready_stage(&mut s, &app, SimTime::ZERO);
        // task prefers node 1; only node 0 has slots
        let offer_at = |now: SimTime, sched: &mut SparkScheduler| {
            let offer = mk_offer(
                &cluster,
                &app,
                now,
                vec![node_view(0, 0, 16), node_view(1, 16, 16)],
                vec![pending(0, 0, vec![NodeId(1)])],
            );
            sched.offer_round(&offer)
        };
        // immediately: NODE_LOCAL allowed only; node 0 is ANY-level => wait
        assert!(offer_at(SimTime::from_secs_f64(0.5), &mut s).is_empty());
        // after the 3 s wait the level relaxes and node 0 is accepted
        let cmds = offer_at(SimTime::from_secs_f64(4.0), &mut s);
        assert_eq!(cmds.len(), 1);
    }

    #[test]
    fn prefers_local_node_when_available() {
        let cluster = ClusterSpec::two_node_motivation();
        let app = dummy_app();
        let mut s = SparkScheduler::with_defaults();
        s.on_app_start(&app, &cluster);
        ready_stage(&mut s, &app, SimTime::ZERO);
        let offer = mk_offer(
            &cluster,
            &app,
            SimTime::ZERO,
            vec![node_view(0, 0, 16), node_view(1, 0, 16)],
            vec![pending(0, 0, vec![NodeId(1)])],
        );
        let cmds = s.offer_round(&offer);
        assert_eq!(cmds.len(), 1);
        match &cmds[0] {
            Command::Launch { node, task, .. } => {
                assert_eq!(*node, NodeId(1), "should follow data locality");
                assert_eq!(task.index, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn never_requests_gpu() {
        let cluster = ClusterSpec::hydra();
        let app = dummy_app();
        let mut s = SparkScheduler::with_defaults();
        s.on_app_start(&app, &cluster);
        ready_stage(&mut s, &app, SimTime::ZERO);
        let mut p = pending(0, 0, vec![]);
        p.gpu_capable = true;
        let offer = mk_offer(
            &cluster,
            &app,
            SimTime::ZERO,
            (0..cluster.len()).map(|i| node_view(i, 0, 8)).collect(),
            vec![p],
        );
        for cmd in s.offer_round(&offer) {
            if let Command::Launch { use_gpu, .. } = cmd {
                assert!(!use_gpu, "stock Spark is GPU-oblivious");
            }
        }
    }

    #[test]
    fn speculative_copy_avoids_original_node() {
        let cluster = ClusterSpec::two_node_motivation();
        let app = dummy_app();
        let mut s = SparkScheduler::with_defaults();
        s.on_app_start(&app, &cluster);
        ready_stage(&mut s, &app, SimTime::ZERO);
        // original of task (0,0) runs on node 0
        let mut nv0 = node_view(0, 0, 16);
        nv0.running.push(rupam_exec::scheduler::RunningTaskView {
            task: TaskRef {
                stage: StageId(0),
                index: 0,
            },
            speculative: false,
            elapsed: SimDuration::from_secs(100),
            peak_mem: ByteSize::mib(100),
            on_gpu: false,
        });
        let offer = OfferInput {
            now: SimTime::from_secs_f64(100.0),
            cluster: &cluster,
            app: &app,
            nodes: vec![nv0, node_view(1, 0, 16)],
            pending: vec![],
            speculatable: vec![pending(0, 0, vec![])],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        let cmds = s.offer_round(&offer);
        let spec_launches: Vec<_> = cmds
            .iter()
            .filter_map(|c| match c {
                Command::Launch {
                    node,
                    speculative: true,
                    ..
                } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(spec_launches, vec![NodeId(1)], "copy must avoid node 0");
    }
}
