//! Resource Queues (§III-B1).
//!
//! For each resource type RUPAM keeps a priority queue of candidate
//! nodes, "sorted with capacity in descending order (most
//! powerful/capable/capacity first) and associated utilization in
//! ascending order (least used first)". The two criteria are combined
//! into one score — the *remaining* capability
//! `capability × (1 − utilization)` — so a saturated top-tier node
//! sinks below an idle lower-tier one instead of monopolising the head
//! of the queue (on an idle cluster the score degenerates to raw
//! capability, preserving the capability ranking). Queues are rebuilt
//! from the offer-round snapshot — the paper likewise only inserts
//! nodes that are ready to run a task and empties the queues between
//! offer rounds, keeping the sorting cost low.

use rupam_cluster::resources::{PerResource, ResourceKind};
use rupam_cluster::{ClusterSpec, NodeId};
use rupam_exec::scheduler::NodeView;

/// Per-kind utilisation of a node in `0..=1` (lower = more attractive).
pub fn utilization(view: &NodeView, kind: ResourceKind) -> f64 {
    match kind {
        ResourceKind::Cpu => view.cpu_util,
        ResourceKind::Mem => {
            let cap = view.executor_mem.as_f64();
            if cap <= 0.0 {
                1.0
            } else {
                view.mem_in_use.as_f64() / cap
            }
        }
        ResourceKind::Io => view.disk_util,
        ResourceKind::Net => view.net_util,
        ResourceKind::Gpu => {
            let total =
                view.gpus_idle as f64 + view.running.iter().filter(|r| r.on_gpu).count() as f64;
            if total <= 0.0 {
                1.0
            } else {
                1.0 - view.gpus_idle as f64 / total
            }
        }
    }
}

/// The snapshot ranking score: the capability a new task would still
/// find on the node, `capability × (1 − utilization)`.
pub fn remaining_capability(cluster: &ClusterSpec, view: &NodeView, kind: ResourceKind) -> f64 {
    let util = utilization(view, kind).clamp(0.0, 1.0);
    cluster.node(view.node).capability(kind) * (1.0 - util)
}

/// The five node priority queues, rebuilt each offer round.
pub struct ResourceQueues {
    queues: PerResource<Vec<NodeId>>,
}

impl ResourceQueues {
    /// Build the queues from the current snapshot. Blocked (restarting)
    /// nodes and nodes without the resource (`C_i^r = 0`) are excluded.
    pub fn build(cluster: &ClusterSpec, views: &[NodeView]) -> Self {
        let queues = PerResource::from_fn(|kind| {
            let mut nodes: Vec<NodeId> = views
                .iter()
                .filter(|v| !v.blocked)
                .filter(|v| cluster.node(v.node).has_resource(kind))
                .map(|v| v.node)
                .collect();
            let score = |id: NodeId| remaining_capability(cluster, &views[id.index()], kind);
            nodes.sort_by(|&a, &b| {
                let remaining = score(b)
                    .partial_cmp(&score(a))
                    .unwrap_or(std::cmp::Ordering::Equal);
                let util_a = utilization(&views[a.index()], kind);
                let util_b = utilization(&views[b.index()], kind);
                remaining
                    .then(
                        util_a
                            .partial_cmp(&util_b)
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
                    .then(a.cmp(&b))
            });
            nodes
        });
        ResourceQueues { queues }
    }

    /// Nodes for one resource kind, best first.
    pub fn nodes(&self, kind: ResourceKind) -> &[NodeId] {
        self.queues.get(kind)
    }

    /// The best node for one kind, if any qualifies.
    pub fn best(&self, kind: ResourceKind) -> Option<NodeId> {
        self.queues.get(kind).first().copied()
    }
}

/// Collapse `-0.0` to `0.0` so `total_cmp` agrees with the
/// `partial_cmp` the from-scratch sort uses (which treats the two zeros
/// as equal).
#[inline]
fn norm(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x
    }
}

/// One node's position key in a kind's ordered set: remaining capability
/// descending, then raw utilisation ascending, then `NodeId` — exactly
/// the comparator [`ResourceQueues::build`] sorts with, made total via
/// `total_cmp` over [`norm`]alised (NaN-free, single-zero) floats.
#[derive(Clone, Copy, Debug)]
struct Rank {
    remaining: f64,
    util: f64,
    node: NodeId,
}

impl PartialEq for Rank {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Rank {}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .remaining
            .total_cmp(&self.remaining)
            .then(self.util.total_cmp(&other.util))
            .then(self.node.cmp(&other.node))
    }
}

/// Persistent per-kind node rankings, updated in place between offer
/// rounds instead of rebuilt by a full sort.
///
/// Each kind keeps an ordered set of [`Rank`] entries plus the key each
/// node currently occupies. A refresh recomputes every node's key from
/// the snapshot (a handful of float operations) and touches the set —
/// one `O(log n)` remove + insert — only for nodes whose key actually
/// changed. On quiet rounds (heartbeats without launches or finishes)
/// that is zero structural work, versus the rebuild path's
/// unconditional five `O(n log n)` sorts.
#[derive(Default)]
pub struct NodeQueueCache {
    /// Current key per node per kind; `None` while excluded (blocked or
    /// without the resource).
    keys: Vec<PerResource<Option<(f64, f64)>>>,
    sets: PerResource<std::collections::BTreeSet<Rank>>,
}

impl NodeQueueCache {
    /// An empty cache (populated by the first refresh).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget everything (cluster changed / run restarted).
    pub fn reset(&mut self) {
        self.keys.clear();
        for kind in ResourceKind::ALL {
            self.sets.get_mut(kind).clear();
        }
    }

    /// Bring the rankings in line with an offer-round snapshot.
    pub fn refresh(&mut self, cluster: &ClusterSpec, views: &[NodeView]) {
        if self.keys.len() != views.len() {
            self.reset();
            self.keys = (0..views.len()).map(|_| PerResource::default()).collect();
        }
        for v in views {
            for kind in ResourceKind::ALL {
                let eligible = !v.blocked && cluster.node(v.node).has_resource(kind);
                let next = if eligible {
                    Some((
                        norm(remaining_capability(cluster, v, kind)),
                        norm(utilization(v, kind)),
                    ))
                } else {
                    None
                };
                let slot = self.keys[v.node.index()].get_mut(kind);
                if *slot == next {
                    continue;
                }
                let set = self.sets.get_mut(kind);
                if let Some((remaining, util)) = *slot {
                    set.remove(&Rank {
                        remaining,
                        util,
                        node: v.node,
                    });
                }
                if let Some((remaining, util)) = next {
                    set.insert(Rank {
                        remaining,
                        util,
                        node: v.node,
                    });
                }
                *slot = next;
            }
        }
    }

    /// Materialise the dispatch-ready ordering, with per-position score
    /// bounds for the dispatcher's early exit.
    pub fn order(&self, cluster: &ClusterSpec) -> NodeOrder {
        let queues = PerResource::from_fn(|kind| {
            self.sets
                .get(kind)
                .iter()
                .map(|r| r.node)
                .collect::<Vec<NodeId>>()
        });
        NodeOrder::new(cluster, queues, |kind, node| {
            self.keys[node.index()]
                .get(kind)
                .map(|(remaining, _)| remaining)
                .unwrap_or(0.0)
        })
    }

    /// Cross-check the incremental ordering against a from-scratch
    /// rebuild over the same snapshot — the "queues sorted" audit
    /// invariant used as the equivalence oracle.
    pub fn verify(&self, cluster: &ClusterSpec, views: &[NodeView]) -> Vec<String> {
        let reference = ResourceQueues::build(cluster, views);
        let mut findings = Vec::new();
        for kind in ResourceKind::ALL {
            let incremental: Vec<NodeId> = self.sets.get(kind).iter().map(|r| r.node).collect();
            if incremental != reference.nodes(kind) {
                findings.push(format!(
                    "{kind:?} incremental ranking {incremental:?} diverges from rebuilt {:?}",
                    reference.nodes(kind)
                ));
            }
        }
        findings
    }
}

/// A per-kind node ordering plus, for each queue position, an upper
/// bound on the pick score any node at or after that position can still
/// achieve this round. Bounds let [`crate::dispatcher::Dispatcher`] stop
/// scanning as soon as the current best pick is unbeatable:
///
/// * CPU / GPU score is raw capability (claims never change it), so the
///   bound is the suffix maximum of capability;
/// * MEM / NET / I/O score is `capability × (1 − util-with-claims)`,
///   and claims only ever *raise* utilisation above the snapshot, so
///   each node's snapshot key — which the queue is sorted by, descending
///   — bounds its achievable score, and position `i`'s key bounds the
///   whole suffix.
pub struct NodeOrder {
    queues: PerResource<Vec<NodeId>>,
    bounds: PerResource<Vec<f64>>,
}

impl NodeOrder {
    fn new(
        cluster: &ClusterSpec,
        queues: PerResource<Vec<NodeId>>,
        snapshot_key: impl Fn(ResourceKind, NodeId) -> f64,
    ) -> Self {
        let bounds = PerResource::from_fn(|kind| {
            let nodes = queues.get(kind);
            let mut bounds: Vec<f64> = nodes
                .iter()
                .map(|&n| match kind {
                    ResourceKind::Cpu | ResourceKind::Gpu => cluster.node(n).capability(kind),
                    ResourceKind::Mem | ResourceKind::Net | ResourceKind::Io => {
                        snapshot_key(kind, n)
                    }
                })
                .collect();
            // suffix maximum: bound[i] caps every node from i onward
            for i in (0..bounds.len().saturating_sub(1)).rev() {
                bounds[i] = bounds[i].max(bounds[i + 1]);
            }
            bounds
        });
        NodeOrder { queues, bounds }
    }

    /// Nodes for one resource kind, best first.
    pub fn nodes(&self, kind: ResourceKind) -> &[NodeId] {
        self.queues.get(kind)
    }

    /// Upper bound on the score achievable by any node at position `i`
    /// or later in `kind`'s queue.
    pub fn bound(&self, kind: ResourceKind, i: usize) -> f64 {
        self.bounds.get(kind)[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_simcore::units::ByteSize;

    fn views(cluster: &ClusterSpec) -> Vec<NodeView> {
        cluster
            .iter()
            .map(|(id, spec)| NodeView {
                node: id,
                executor_mem: spec.mem,
                mem_in_use: ByteSize::ZERO,
                free_mem: spec.mem,
                running: vec![],
                cpu_util: 0.0,
                net_util: 0.0,
                disk_util: 0.0,
                gpus_idle: spec.gpus,
                blocked: false,
                heartbeat_age: rupam_simcore::time::SimDuration::ZERO,
                dead: false,
                suspect: false,
            })
            .collect()
    }

    #[test]
    fn cpu_queue_leads_with_thor() {
        let cluster = ClusterSpec::hydra();
        let q = ResourceQueues::build(&cluster, &views(&cluster));
        let best = q.best(ResourceKind::Cpu).unwrap();
        assert_eq!(cluster.node(best).class, "thor");
    }

    #[test]
    fn mem_queue_leads_with_hulk() {
        let cluster = ClusterSpec::hydra();
        let q = ResourceQueues::build(&cluster, &views(&cluster));
        let best = q.best(ResourceKind::Mem).unwrap();
        assert_eq!(cluster.node(best).class, "hulk");
    }

    #[test]
    fn io_queue_leads_with_ssd() {
        let cluster = ClusterSpec::hydra();
        let q = ResourceQueues::build(&cluster, &views(&cluster));
        let best = q.best(ResourceKind::Io).unwrap();
        assert!(cluster.node(best).disk.is_ssd);
    }

    #[test]
    fn gpu_queue_only_contains_gpu_nodes() {
        let cluster = ClusterSpec::hydra();
        let q = ResourceQueues::build(&cluster, &views(&cluster));
        let gpu_nodes = q.nodes(ResourceKind::Gpu);
        assert_eq!(gpu_nodes.len(), 2);
        for n in gpu_nodes {
            assert_eq!(cluster.node(*n).class, "stack");
        }
    }

    #[test]
    fn utilization_breaks_capability_ties() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        // load the first thor node's CPU
        vs[0].cpu_util = 0.9;
        let q = ResourceQueues::build(&cluster, &vs);
        let best = q.best(ResourceKind::Cpu).unwrap();
        assert_ne!(best, NodeId(0), "a loaded node must rank below idle peers");
        assert_eq!(cluster.node(best).class, "thor");
    }

    #[test]
    fn blocked_nodes_excluded() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        for v in vs.iter_mut() {
            v.blocked = true;
        }
        let q = ResourceQueues::build(&cluster, &vs);
        for kind in ResourceKind::ALL {
            assert!(q.nodes(kind).is_empty());
        }
    }

    #[test]
    fn cache_tracks_rebuild_through_mutations() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        let mut cache = NodeQueueCache::new();
        // a sequence of snapshot mutations: load CPUs, fill memory,
        // block a node, then idle everything again
        type Step = Box<dyn Fn(&mut Vec<NodeView>)>;
        let steps: Vec<Step> = vec![
            Box::new(|_| {}),
            Box::new(|vs| vs[0].cpu_util = 0.9),
            Box::new(|vs| {
                vs[7].mem_in_use = ByteSize::gib(30);
                vs[7].free_mem = vs[7].executor_mem.saturating_sub(ByteSize::gib(30));
            }),
            Box::new(|vs| vs[3].blocked = true),
            Box::new(|vs| {
                vs[3].blocked = false;
                vs[0].cpu_util = 0.0;
            }),
        ];
        for (i, step) in steps.iter().enumerate() {
            step(&mut vs);
            cache.refresh(&cluster, &vs);
            let findings = cache.verify(&cluster, &vs);
            assert!(findings.is_empty(), "step {i}: {findings:?}");
            let order = cache.order(&cluster);
            let reference = ResourceQueues::build(&cluster, &vs);
            for kind in ResourceKind::ALL {
                assert_eq!(
                    order.nodes(kind),
                    reference.nodes(kind),
                    "step {i} {kind:?}"
                );
            }
        }
    }

    #[test]
    fn order_bounds_dominate_suffix_scores() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        vs[2].cpu_util = 0.5;
        vs[5].net_util = 0.7;
        let mut cache = NodeQueueCache::new();
        cache.refresh(&cluster, &vs);
        let order = cache.order(&cluster);
        for kind in ResourceKind::ALL {
            let nodes = order.nodes(kind);
            for i in 0..nodes.len() {
                for &n in &nodes[i..] {
                    let score = match kind {
                        ResourceKind::Cpu | ResourceKind::Gpu => cluster.node(n).capability(kind),
                        _ => remaining_capability(&cluster, &vs[n.index()], kind),
                    };
                    assert!(
                        order.bound(kind, i) >= score,
                        "{kind:?} bound at {i} misses node {n:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn gpu_utilization_accounts_running_kernels() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        let stack_ids = cluster.nodes_in_class("stack");
        // stack1 busy on its one GPU
        let v = &mut vs[stack_ids[0].index()];
        v.gpus_idle = 0;
        v.running.push(rupam_exec::scheduler::RunningTaskView {
            task: rupam_dag::TaskRef {
                stage: rupam_dag::StageId(0),
                index: 0,
            },
            speculative: false,
            elapsed: rupam_simcore::SimDuration::ZERO,
            peak_mem: ByteSize::mib(100),
            on_gpu: true,
        });
        let q = ResourceQueues::build(&cluster, &vs);
        assert_eq!(
            q.best(ResourceKind::Gpu),
            Some(stack_ids[1]),
            "idle GPU node first"
        );
        assert!((utilization(&vs[stack_ids[0].index()], ResourceKind::Gpu) - 1.0).abs() < 1e-9);
    }
}
