//! Resource Queues (§III-B1).
//!
//! For each resource type RUPAM keeps a priority queue of candidate
//! nodes, "sorted with capacity in descending order (most
//! powerful/capable/capacity first) and associated utilization in
//! ascending order (least used first)". The two criteria are combined
//! into one score — the *remaining* capability
//! `capability × (1 − utilization)` — so a saturated top-tier node
//! sinks below an idle lower-tier one instead of monopolising the head
//! of the queue (on an idle cluster the score degenerates to raw
//! capability, preserving the capability ranking). Queues are rebuilt
//! from the offer-round snapshot — the paper likewise only inserts
//! nodes that are ready to run a task and empties the queues between
//! offer rounds, keeping the sorting cost low.

use rupam_cluster::resources::{PerResource, ResourceKind};
use rupam_cluster::{ClusterSpec, NodeId, ShardMap};
use rupam_exec::scheduler::NodeView;

/// Per-kind utilisation of a node in `0..=1` (lower = more attractive).
pub fn utilization(view: &NodeView, kind: ResourceKind) -> f64 {
    match kind {
        ResourceKind::Cpu => view.cpu_util,
        ResourceKind::Mem => {
            let cap = view.executor_mem.as_f64();
            if cap <= 0.0 {
                1.0
            } else {
                view.mem_in_use.as_f64() / cap
            }
        }
        ResourceKind::Io => view.disk_util,
        ResourceKind::Net => view.net_util,
        ResourceKind::Gpu => {
            let total =
                view.gpus_idle as f64 + view.running.iter().filter(|r| r.on_gpu).count() as f64;
            if total <= 0.0 {
                1.0
            } else {
                1.0 - view.gpus_idle as f64 / total
            }
        }
    }
}

/// The snapshot ranking score: the capability a new task would still
/// find on the node, `capability × (1 − utilization)`.
pub fn remaining_capability(cluster: &ClusterSpec, view: &NodeView, kind: ResourceKind) -> f64 {
    let util = utilization(view, kind).clamp(0.0, 1.0);
    cluster.node(view.node).capability(kind) * (1.0 - util)
}

/// The five node priority queues, rebuilt each offer round.
pub struct ResourceQueues {
    queues: PerResource<Vec<NodeId>>,
}

impl ResourceQueues {
    /// Build the queues from the current snapshot. Blocked (restarting)
    /// nodes and nodes without the resource (`C_i^r = 0`) are excluded.
    pub fn build(cluster: &ClusterSpec, views: &[NodeView]) -> Self {
        let queues = PerResource::from_fn(|kind| {
            let mut nodes: Vec<NodeId> = views
                .iter()
                .filter(|v| !v.blocked)
                .filter(|v| cluster.node(v.node).has_resource(kind))
                .map(|v| v.node)
                .collect();
            let score = |id: NodeId| remaining_capability(cluster, &views[id.index()], kind);
            nodes.sort_by(|&a, &b| {
                let remaining = score(b)
                    .partial_cmp(&score(a))
                    .unwrap_or(std::cmp::Ordering::Equal);
                let util_a = utilization(&views[a.index()], kind);
                let util_b = utilization(&views[b.index()], kind);
                remaining
                    .then(
                        util_a
                            .partial_cmp(&util_b)
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
                    .then(a.cmp(&b))
            });
            nodes
        });
        ResourceQueues { queues }
    }

    /// Nodes for one resource kind, best first.
    pub fn nodes(&self, kind: ResourceKind) -> &[NodeId] {
        self.queues.get(kind)
    }

    /// The best node for one kind, if any qualifies.
    pub fn best(&self, kind: ResourceKind) -> Option<NodeId> {
        self.queues.get(kind).first().copied()
    }
}

/// Collapse `-0.0` to `0.0` so `total_cmp` agrees with the
/// `partial_cmp` the from-scratch sort uses (which treats the two zeros
/// as equal). A NaN here would poison every `total_cmp` downstream
/// (NaN sorts *after* every real under `total_cmp`, silently corrupting
/// rank comparisons), so it is rejected outright.
#[inline]
fn norm(x: f64) -> f64 {
    debug_assert!(!x.is_nan(), "ranking key must never be NaN");
    if x == 0.0 {
        0.0
    } else {
        x
    }
}

/// One node's position key in a kind's ordered set: remaining capability
/// descending, then raw utilisation ascending, then `NodeId` — exactly
/// the comparator [`ResourceQueues::build`] sorts with, made total via
/// `total_cmp` over [`norm`]alised (NaN-free, single-zero) floats.
///
/// `Rank` totally orders the *global* queue even when it is stored
/// shard-by-shard, which is what lets per-shard winners be merged back
/// into the exact global pick: "earlier in the unsharded queue" is
/// precisely "smaller `Rank`".
#[derive(Clone, Copy, Debug)]
pub(crate) struct Rank {
    pub(crate) remaining: f64,
    util: f64,
    pub(crate) node: NodeId,
}

impl PartialEq for Rank {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Rank {}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .remaining
            .total_cmp(&self.remaining)
            .then(self.util.total_cmp(&other.util))
            .then(self.node.cmp(&other.node))
    }
}

/// Full parallel refresh only pays off once per-shard work dwarfs the
/// `std::thread::scope` spawn/join overhead (tens of microseconds —
/// several times a whole hydra64 offer round).
const PARALLEL_REFRESH_MIN_NODES: usize = 512;

/// One shard of the node rankings: the ordered sets, current keys and
/// materialised dispatch queues for a disjoint subset of the cluster's
/// nodes (one rack, under the default policy).
#[derive(Default)]
struct QueueShard {
    /// Owned nodes, ascending id; `keys[local]` is the key of
    /// `members[local]`.
    members: Vec<NodeId>,
    /// Current key per member per kind; `None` while excluded (blocked
    /// or without the resource).
    keys: Vec<PerResource<Option<(f64, f64)>>>,
    sets: PerResource<std::collections::BTreeSet<Rank>>,
    /// Dispatch-ready snapshot of `sets`, rebuilt only while `dirty`.
    queue: PerResource<Vec<Rank>>,
    /// Suffix-max pick-score bounds, parallel to `queue` (same model as
    /// [`NodeOrder`], per shard).
    bounds: PerResource<Vec<f64>>,
    /// Set when a refresh structurally changed a set since the last
    /// materialisation.
    dirty: bool,
}

impl QueueShard {
    fn new(members: Vec<NodeId>) -> Self {
        QueueShard {
            keys: members.iter().map(|_| PerResource::default()).collect(),
            members,
            ..QueueShard::default()
        }
    }

    /// Re-key one member from its snapshot view, patching the ordered
    /// sets (`O(log shard)`) only when the key actually changed.
    fn refresh_member(&mut self, cluster: &ClusterSpec, view: &NodeView, local: usize) {
        for kind in ResourceKind::ALL {
            let eligible = !view.blocked && cluster.node(view.node).has_resource(kind);
            let next = if eligible {
                Some((
                    norm(remaining_capability(cluster, view, kind)),
                    norm(utilization(view, kind)),
                ))
            } else {
                None
            };
            let slot = self.keys[local].get_mut(kind);
            if *slot == next {
                continue;
            }
            let set = self.sets.get_mut(kind);
            if let Some((remaining, util)) = *slot {
                set.remove(&Rank {
                    remaining,
                    util,
                    node: view.node,
                });
            }
            if let Some((remaining, util)) = next {
                set.insert(Rank {
                    remaining,
                    util,
                    node: view.node,
                });
            }
            *slot = next;
            self.dirty = true;
        }
    }

    fn refresh_all(&mut self, cluster: &ClusterSpec, views: &[NodeView]) {
        for local in 0..self.members.len() {
            let id = self.members[local];
            self.refresh_member(cluster, &views[id.index()], local);
        }
    }

    /// Rebuild the dispatch queue and suffix-max bounds from the sets.
    fn materialize(&mut self, cluster: &ClusterSpec) {
        for kind in ResourceKind::ALL {
            let queue: Vec<Rank> = self.sets.get(kind).iter().copied().collect();
            let mut bounds: Vec<f64> = queue
                .iter()
                .map(|r| match kind {
                    ResourceKind::Cpu | ResourceKind::Gpu => cluster.node(r.node).capability(kind),
                    ResourceKind::Mem | ResourceKind::Net | ResourceKind::Io => r.remaining,
                })
                .collect();
            // suffix maximum: bound[i] caps every position from i onward
            for i in (0..bounds.len().saturating_sub(1)).rev() {
                bounds[i] = bounds[i].max(bounds[i + 1]);
            }
            *self.queue.get_mut(kind) = queue;
            *self.bounds.get_mut(kind) = bounds;
        }
        self.dirty = false;
    }
}

/// Persistent per-kind node rankings, updated in place between offer
/// rounds instead of rebuilt by a full sort — and partitioned into
/// rack-aligned shards (see [`ShardMap`]) so refreshes touch only the
/// shards whose nodes changed and, on big clusters, full re-scores run
/// shard-parallel under `std::thread::scope`.
///
/// Each shard keeps, per resource kind, an ordered set of [`Rank`]
/// entries plus the key each owned node currently occupies. A refresh
/// recomputes keys (a handful of float operations per node — or only
/// for the nodes in the engine's changed-set, when one is supplied) and
/// touches a set — one `O(log shard)` remove + insert — only for nodes
/// whose key actually changed. Dispatch queues are materialised lazily,
/// per dirty shard: on quiet rounds (heartbeats without launches or
/// finishes) a refresh does *zero* structural work, versus the rebuild
/// path's unconditional five `O(n log n)` sorts.
#[derive(Default)]
pub struct NodeQueueCache {
    /// Requested sharding policy (see [`ShardMap::build`]; 0 = by rack).
    shard_count: usize,
    shards: Vec<QueueShard>,
    /// Node index → owning shard.
    shard_of: Vec<u32>,
    /// Node index → position within its shard's `members`.
    local_of: Vec<u32>,
}

impl NodeQueueCache {
    /// An empty cache (populated by the first refresh) with the default
    /// rack-aligned sharding.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with an explicit shard-count policy (see
    /// [`ShardMap::build`]).
    pub fn with_shards(shard_count: usize) -> Self {
        NodeQueueCache {
            shard_count,
            ..NodeQueueCache::default()
        }
    }

    /// Forget everything (cluster changed / run restarted).
    pub fn reset(&mut self) {
        self.shards.clear();
        self.shard_of.clear();
        self.local_of.clear();
    }

    /// Number of shards the rankings are partitioned into (0 before the
    /// first refresh).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn rebuild_shards(&mut self, cluster: &ClusterSpec) {
        let map = ShardMap::build(cluster, self.shard_count);
        self.shards = (0..map.len())
            .map(|s| QueueShard::new(map.members(s).to_vec()))
            .collect();
        self.shard_of = vec![0; cluster.len()];
        self.local_of = vec![0; cluster.len()];
        for (s, shard) in self.shards.iter().enumerate() {
            for (local, &id) in shard.members.iter().enumerate() {
                self.shard_of[id.index()] = s as u32;
                self.local_of[id.index()] = local as u32;
            }
        }
    }

    /// Bring the rankings in line with an offer-round snapshot.
    ///
    /// `changed` is the engine's per-round delta: the nodes whose view
    /// may differ from the previous offer round. When present (and the
    /// cache is already populated for this cluster) only those nodes are
    /// re-keyed — the storm-batching fast path. `None` means "assume
    /// anything moved" and re-keys every node, shard-parallel on big
    /// clusters.
    pub fn refresh(
        &mut self,
        cluster: &ClusterSpec,
        views: &[NodeView],
        changed: Option<&[NodeId]>,
    ) {
        self.refresh_keys(cluster, views, changed);
        self.materialize_dirty(cluster);
    }

    /// [`NodeQueueCache::refresh`] without the dispatch-queue
    /// materialisation: re-keys the ordered sets only. On rounds with no
    /// dispatchable work the caller can stop here — keeping a shard
    /// `dirty` across quiet rounds is legal (the sets are authoritative;
    /// the queues are a lazily-rebuilt view) and turns the common
    /// heartbeat-only round from `O(shard)` into `O(changed)`.
    pub fn refresh_keys(
        &mut self,
        cluster: &ClusterSpec,
        views: &[NodeView],
        changed: Option<&[NodeId]>,
    ) {
        let fresh = self.shard_of.len() != views.len() || self.shards.is_empty();
        if fresh {
            self.reset();
            self.rebuild_shards(cluster);
        }
        match (fresh, changed) {
            (false, Some(delta)) => {
                for &id in delta {
                    debug_assert!(id.index() < views.len());
                    let s = self.shard_of[id.index()] as usize;
                    let local = self.local_of[id.index()] as usize;
                    self.shards[s].refresh_member(cluster, &views[id.index()], local);
                }
            }
            _ if self.shards.len() > 1 && views.len() >= PARALLEL_REFRESH_MIN_NODES => {
                std::thread::scope(|scope| {
                    for shard in &mut self.shards {
                        scope.spawn(move || {
                            shard.refresh_all(cluster, views);
                            if shard.dirty {
                                shard.materialize(cluster);
                            }
                        });
                    }
                });
            }
            _ => {
                for shard in &mut self.shards {
                    shard.refresh_all(cluster, views);
                }
            }
        }
    }

    /// Rebuild the dispatch queues and bounds of every dirty shard —
    /// required before [`NodeQueueCache::sharded_order`].
    pub fn materialize_dirty(&mut self, cluster: &ClusterSpec) {
        for shard in &mut self.shards {
            if shard.dirty {
                shard.materialize(cluster);
            }
        }
    }

    fn key(&self, node: NodeId, kind: ResourceKind) -> Option<(f64, f64)> {
        let s = *self.shard_of.get(node.index())? as usize;
        let local = self.local_of[node.index()] as usize;
        *self.shards[s].keys[local].get(kind)
    }

    /// The global (cross-shard) ranking for one kind, best first.
    fn merged_ranks(&self, kind: ResourceKind) -> Vec<Rank> {
        let mut ranks: Vec<Rank> = self
            .shards
            .iter()
            .flat_map(|s| s.sets.get(kind).iter().copied())
            .collect();
        ranks.sort_unstable();
        ranks
    }

    /// Materialise the global dispatch ordering, with per-position score
    /// bounds for the dispatcher's early exit. The shard-merged
    /// equivalent of the pre-sharding single queue — kept as the
    /// equivalence oracle (and for callers that want one flat ranking);
    /// the dispatcher itself consumes [`NodeQueueCache::sharded_order`].
    pub fn order(&self, cluster: &ClusterSpec) -> NodeOrder {
        let queues = PerResource::from_fn(|kind| {
            self.merged_ranks(kind)
                .into_iter()
                .map(|r| r.node)
                .collect::<Vec<NodeId>>()
        });
        NodeOrder::new(cluster, queues, |kind, node| {
            self.key(node, kind)
                .map(|(remaining, _)| remaining)
                .unwrap_or(0.0)
        })
    }

    /// Borrow the per-shard dispatch queues and bounds — the zero-copy
    /// ranking view [`crate::dispatcher::Dispatcher`] scans. Valid (all
    /// shards materialised) from the end of any refresh until the next
    /// mutation.
    pub fn sharded_order(&self) -> ShardedOrder<'_> {
        debug_assert!(
            self.shards.iter().all(|s| !s.dirty),
            "sharded_order taken before materialisation"
        );
        ShardedOrder {
            shards: &self.shards,
        }
    }

    /// Cross-check the incremental ordering against a from-scratch
    /// rebuild over the same snapshot — the "queues sorted" audit
    /// invariant used as the equivalence oracle. Also checks every
    /// shard's materialised dispatch queue against its ordered set, so a
    /// missed `dirty` flag cannot hide.
    pub fn verify(&self, cluster: &ClusterSpec, views: &[NodeView]) -> Vec<String> {
        let reference = ResourceQueues::build(cluster, views);
        let mut findings = Vec::new();
        for kind in ResourceKind::ALL {
            let incremental: Vec<NodeId> = self.merged_ranks(kind).iter().map(|r| r.node).collect();
            if incremental != reference.nodes(kind) {
                findings.push(format!(
                    "{kind:?} incremental ranking {incremental:?} diverges from rebuilt {:?}",
                    reference.nodes(kind)
                ));
            }
            for (s, shard) in self.shards.iter().enumerate() {
                // a dirty shard is allowed to lag (materialisation is
                // lazy); a shard claiming to be clean is not — a missed
                // `dirty` flag still cannot hide
                if shard.dirty {
                    continue;
                }
                let from_set: Vec<Rank> = shard.sets.get(kind).iter().copied().collect();
                if shard.queue.get(kind) != &from_set {
                    findings.push(format!("{kind:?} shard {s} materialised queue is stale"));
                }
            }
        }
        findings
    }
}

/// A borrowed view of the materialised per-shard rankings: for each
/// shard and kind, the dispatch queue (best first) and the suffix-max
/// score bounds. The dispatcher scans shards independently — skipping
/// any shard whose *top* bound cannot beat the incumbent — and merges
/// per-shard winners with the [`Rank`] total order as the final
/// tiebreak, reproducing the unsharded first-wins scan exactly.
pub struct ShardedOrder<'c> {
    shards: &'c [QueueShard],
}

impl<'c> ShardedOrder<'c> {
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's queue for `kind`, best first.
    pub(crate) fn ranks(&self, shard: usize, kind: ResourceKind) -> &'c [Rank] {
        self.shards[shard].queue.get(kind)
    }

    /// Upper bound on the pick score achievable at position `i` or later
    /// of one shard's queue.
    pub(crate) fn bound(&self, shard: usize, kind: ResourceKind, i: usize) -> f64 {
        self.shards[shard].bounds.get(kind)[i]
    }

    /// Upper bound over a whole shard (`-inf` when it has no candidates).
    pub(crate) fn top_bound(&self, shard: usize, kind: ResourceKind) -> f64 {
        self.shards[shard]
            .bounds
            .get(kind)
            .first()
            .copied()
            .unwrap_or(f64::NEG_INFINITY)
    }
}

/// A per-kind node ordering plus, for each queue position, an upper
/// bound on the pick score any node at or after that position can still
/// achieve this round. Bounds let [`crate::dispatcher::Dispatcher`] stop
/// scanning as soon as the current best pick is unbeatable:
///
/// * CPU / GPU score is raw capability (claims never change it), so the
///   bound is the suffix maximum of capability;
/// * MEM / NET / I/O score is `capability × (1 − util-with-claims)`,
///   and claims only ever *raise* utilisation above the snapshot, so
///   each node's snapshot key — which the queue is sorted by, descending
///   — bounds its achievable score, and position `i`'s key bounds the
///   whole suffix.
pub struct NodeOrder {
    queues: PerResource<Vec<NodeId>>,
    bounds: PerResource<Vec<f64>>,
}

impl NodeOrder {
    fn new(
        cluster: &ClusterSpec,
        queues: PerResource<Vec<NodeId>>,
        snapshot_key: impl Fn(ResourceKind, NodeId) -> f64,
    ) -> Self {
        let bounds = PerResource::from_fn(|kind| {
            let nodes = queues.get(kind);
            let mut bounds: Vec<f64> = nodes
                .iter()
                .map(|&n| match kind {
                    ResourceKind::Cpu | ResourceKind::Gpu => cluster.node(n).capability(kind),
                    ResourceKind::Mem | ResourceKind::Net | ResourceKind::Io => {
                        snapshot_key(kind, n)
                    }
                })
                .collect();
            // suffix maximum: bound[i] caps every node from i onward
            for i in (0..bounds.len().saturating_sub(1)).rev() {
                bounds[i] = bounds[i].max(bounds[i + 1]);
            }
            bounds
        });
        NodeOrder { queues, bounds }
    }

    /// Nodes for one resource kind, best first.
    pub fn nodes(&self, kind: ResourceKind) -> &[NodeId] {
        self.queues.get(kind)
    }

    /// Upper bound on the score achievable by any node at position `i`
    /// or later in `kind`'s queue.
    pub fn bound(&self, kind: ResourceKind, i: usize) -> f64 {
        self.bounds.get(kind)[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_simcore::units::ByteSize;

    fn views(cluster: &ClusterSpec) -> Vec<NodeView> {
        cluster
            .iter()
            .map(|(id, spec)| NodeView {
                node: id,
                executor_mem: spec.mem,
                mem_in_use: ByteSize::ZERO,
                free_mem: spec.mem,
                running: vec![],
                cpu_util: 0.0,
                net_util: 0.0,
                disk_util: 0.0,
                gpus_idle: spec.gpus,
                blocked: false,
                heartbeat_age: rupam_simcore::time::SimDuration::ZERO,
                dead: false,
                suspect: false,
                tier: rupam_cluster::NodeTier::OnDemand,
                draining: false,
                preempt_risk: 0.0,
            })
            .collect()
    }

    #[test]
    fn cpu_queue_leads_with_thor() {
        let cluster = ClusterSpec::hydra();
        let q = ResourceQueues::build(&cluster, &views(&cluster));
        let best = q.best(ResourceKind::Cpu).unwrap();
        assert_eq!(cluster.node(best).class, "thor");
    }

    #[test]
    fn mem_queue_leads_with_hulk() {
        let cluster = ClusterSpec::hydra();
        let q = ResourceQueues::build(&cluster, &views(&cluster));
        let best = q.best(ResourceKind::Mem).unwrap();
        assert_eq!(cluster.node(best).class, "hulk");
    }

    #[test]
    fn io_queue_leads_with_ssd() {
        let cluster = ClusterSpec::hydra();
        let q = ResourceQueues::build(&cluster, &views(&cluster));
        let best = q.best(ResourceKind::Io).unwrap();
        assert!(cluster.node(best).disk.is_ssd);
    }

    #[test]
    fn gpu_queue_only_contains_gpu_nodes() {
        let cluster = ClusterSpec::hydra();
        let q = ResourceQueues::build(&cluster, &views(&cluster));
        let gpu_nodes = q.nodes(ResourceKind::Gpu);
        assert_eq!(gpu_nodes.len(), 2);
        for n in gpu_nodes {
            assert_eq!(cluster.node(*n).class, "stack");
        }
    }

    #[test]
    fn utilization_breaks_capability_ties() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        // load the first thor node's CPU
        vs[0].cpu_util = 0.9;
        let q = ResourceQueues::build(&cluster, &vs);
        let best = q.best(ResourceKind::Cpu).unwrap();
        assert_ne!(best, NodeId(0), "a loaded node must rank below idle peers");
        assert_eq!(cluster.node(best).class, "thor");
    }

    #[test]
    fn blocked_nodes_excluded() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        for v in vs.iter_mut() {
            v.blocked = true;
        }
        let q = ResourceQueues::build(&cluster, &vs);
        for kind in ResourceKind::ALL {
            assert!(q.nodes(kind).is_empty());
        }
    }

    #[test]
    fn cache_tracks_rebuild_through_mutations() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        let mut cache = NodeQueueCache::new();
        // a sequence of snapshot mutations: load CPUs, fill memory,
        // block a node, then idle everything again
        type Step = Box<dyn Fn(&mut Vec<NodeView>)>;
        let steps: Vec<Step> = vec![
            Box::new(|_| {}),
            Box::new(|vs| vs[0].cpu_util = 0.9),
            Box::new(|vs| {
                vs[7].mem_in_use = ByteSize::gib(30);
                vs[7].free_mem = vs[7].executor_mem.saturating_sub(ByteSize::gib(30));
            }),
            Box::new(|vs| vs[3].blocked = true),
            Box::new(|vs| {
                vs[3].blocked = false;
                vs[0].cpu_util = 0.0;
            }),
        ];
        for (i, step) in steps.iter().enumerate() {
            step(&mut vs);
            cache.refresh(&cluster, &vs, None);
            let findings = cache.verify(&cluster, &vs);
            assert!(findings.is_empty(), "step {i}: {findings:?}");
            let order = cache.order(&cluster);
            let reference = ResourceQueues::build(&cluster, &vs);
            for kind in ResourceKind::ALL {
                assert_eq!(
                    order.nodes(kind),
                    reference.nodes(kind),
                    "step {i} {kind:?}"
                );
            }
        }
    }

    #[test]
    fn order_bounds_dominate_suffix_scores() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        vs[2].cpu_util = 0.5;
        vs[5].net_util = 0.7;
        let mut cache = NodeQueueCache::new();
        cache.refresh(&cluster, &vs, None);
        let order = cache.order(&cluster);
        for kind in ResourceKind::ALL {
            let nodes = order.nodes(kind);
            for i in 0..nodes.len() {
                for &n in &nodes[i..] {
                    let score = match kind {
                        ResourceKind::Cpu | ResourceKind::Gpu => cluster.node(n).capability(kind),
                        _ => remaining_capability(&cluster, &vs[n.index()], kind),
                    };
                    assert!(
                        order.bound(kind, i) >= score,
                        "{kind:?} bound at {i} misses node {n:?}"
                    );
                }
            }
        }
    }

    /// Regression for the GPU 0/0 score: a node with no GPUs (or a GPU
    /// node whose view reports zero idle GPUs and no running kernels)
    /// must never feed a NaN into a [`Rank`] — NaN sorts after every
    /// real under `total_cmp` and silently corrupts the rankings.
    #[test]
    fn pathological_views_never_rank_nan() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        // GPU node with zero idle GPUs and nothing running: the GPU
        // utilisation denominator is 0
        let stack = cluster.nodes_in_class("stack")[0];
        vs[stack.index()].gpus_idle = 0;
        // executor not yet sized: zero-memory capacity
        vs[1].executor_mem = ByteSize::ZERO;
        vs[1].mem_in_use = ByteSize::ZERO;
        vs[1].free_mem = ByteSize::ZERO;
        let mut cache = NodeQueueCache::new();
        cache.refresh(&cluster, &vs, None);
        for kind in ResourceKind::ALL {
            for v in &vs {
                assert!(
                    utilization(v, kind).is_finite(),
                    "{kind:?} utilisation NaN/inf on {:?}",
                    v.node
                );
            }
            for shard in &cache.shards {
                for r in shard.sets.get(kind) {
                    assert!(
                        r.remaining.is_finite() && r.util.is_finite(),
                        "{kind:?} rank for {:?} carries a non-finite key",
                        r.node
                    );
                }
            }
        }
        assert!(cache.verify(&cluster, &vs).is_empty());
    }

    /// A refresh driven by the engine's changed-set must land in the same
    /// state as a full re-score when the set covers everything that moved.
    #[test]
    fn changed_hint_refresh_matches_full() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        let mut hinted = NodeQueueCache::new();
        let mut full = NodeQueueCache::new();
        hinted.refresh(&cluster, &vs, None);
        full.refresh(&cluster, &vs, None);
        // two nodes move; only they appear in the delta
        vs[0].cpu_util = 0.8;
        vs[9].net_util = 0.6;
        hinted.refresh(&cluster, &vs, Some(&[NodeId(0), NodeId(9)]));
        full.refresh(&cluster, &vs, None);
        assert!(hinted.verify(&cluster, &vs).is_empty());
        let (h, f) = (hinted.order(&cluster), full.order(&cluster));
        for kind in ResourceKind::ALL {
            assert_eq!(h.nodes(kind), f.nodes(kind), "{kind:?}");
        }
        // an empty delta on a quiet round is a no-op, not a wipe
        hinted.refresh(&cluster, &vs, Some(&[]));
        assert!(hinted.verify(&cluster, &vs).is_empty());
    }

    /// Concatenating the per-shard dispatch queues and re-sorting by
    /// [`Rank`] must reproduce the flat global ordering, and every
    /// per-shard bound must dominate its suffix — the two facts the
    /// dispatcher's cross-shard merge rests on.
    #[test]
    fn sharded_order_merges_to_global() {
        let cluster = ClusterSpec::hydra_mix(4, 3, 2);
        let mut vs = views(&cluster);
        vs[1].cpu_util = 0.4;
        vs[5].disk_util = 0.9;
        for shard_count in [0usize, 1, 3, 5] {
            let mut cache = NodeQueueCache::with_shards(shard_count);
            cache.refresh(&cluster, &vs, None);
            let sharded = cache.sharded_order();
            let flat = cache.order(&cluster);
            for kind in ResourceKind::ALL {
                let mut merged: Vec<Rank> = (0..sharded.shard_count())
                    .flat_map(|s| sharded.ranks(s, kind).iter().copied())
                    .collect();
                merged.sort_unstable();
                let merged_nodes: Vec<NodeId> = merged.iter().map(|r| r.node).collect();
                assert_eq!(
                    merged_nodes,
                    flat.nodes(kind),
                    "shards={shard_count} {kind:?}"
                );
                for s in 0..sharded.shard_count() {
                    let ranks = sharded.ranks(s, kind);
                    for i in 0..ranks.len() {
                        for r in &ranks[i..] {
                            let score = match kind {
                                ResourceKind::Cpu | ResourceKind::Gpu => {
                                    cluster.node(r.node).capability(kind)
                                }
                                _ => remaining_capability(&cluster, &vs[r.node.index()], kind),
                            };
                            assert!(
                                sharded.bound(s, kind, i) >= score,
                                "shards={shard_count} {kind:?} shard {s} bound at {i}"
                            );
                        }
                    }
                    if ranks.is_empty() {
                        assert_eq!(sharded.top_bound(s, kind), f64::NEG_INFINITY);
                    } else {
                        assert_eq!(sharded.top_bound(s, kind), sharded.bound(s, kind, 0));
                    }
                }
            }
        }
    }

    /// Property test: randomised view churn — including a node dying and
    /// reviving *within one round* (blocked → dead → alive between two
    /// refreshes) and elastic-tier transitions (drain notice →
    /// decommission → re-provision, where the node leaves and re-enters
    /// the fleet without ever being marked dead) — keeps every shard's
    /// patched sets identical to a from-scratch rebuild, under both
    /// full and changed-set refreshes.
    #[test]
    fn property_patch_ordering_under_churn_and_revival() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let cluster = ClusterSpec::hydra_mix(5, 4, 3);
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for shard_count in [0usize, 4] {
            let mut vs = views(&cluster);
            let mut cache = NodeQueueCache::with_shards(shard_count);
            cache.refresh(&cluster, &vs, None);
            for round in 0..200 {
                let mut touched = Vec::new();
                for _ in 0..rng.gen_range(1usize..=4) {
                    let id = NodeId(rng.gen_range(0..cluster.len()));
                    touched.push(id);
                    let v = &mut vs[id.index()];
                    match rng.gen_range(0..9) {
                        0 => v.cpu_util = rng.gen_range(0.0..1.0),
                        1 => v.net_util = rng.gen_range(0.0..1.0),
                        2 => v.disk_util = rng.gen_range(0.0..1.0),
                        3 => {
                            let used = ByteSize::gib(rng.gen_range(0..16));
                            v.mem_in_use = used;
                            v.free_mem = v.executor_mem.saturating_sub(used);
                        }
                        4 => {
                            // death → revival within one refresh: the
                            // detector killed and re-admitted the node
                            // between offers, so the cache sees only the
                            // final (alive, idle) state and must re-rank
                            // it from whatever it held before
                            v.blocked = false;
                            v.dead = false;
                            v.cpu_util = 0.0;
                            v.net_util = 0.0;
                            v.disk_util = 0.0;
                        }
                        5 => {
                            // spot drain notice: the node stays alive but
                            // stops taking work until the reclaim fires
                            v.tier = rupam_cluster::NodeTier::Spot;
                            v.draining = true;
                            v.blocked = true;
                            v.preempt_risk = rng.gen_range(0.0..1.0);
                        }
                        6 => {
                            // controller decommission: out of the fleet
                            // without ever being dead
                            v.tier = rupam_cluster::NodeTier::Spot;
                            v.draining = false;
                            v.blocked = true;
                            v.preempt_risk = 0.0;
                        }
                        7 => {
                            // re-provision after a decommission (or a
                            // decommission→re-provision pair collapsed
                            // into one refresh): back in the fleet, idle,
                            // carrying fresh pool risk
                            v.tier = rupam_cluster::NodeTier::Spot;
                            v.draining = false;
                            v.blocked = false;
                            v.dead = false;
                            v.preempt_risk = rng.gen_range(0.0..0.5);
                            v.cpu_util = 0.0;
                            v.net_util = 0.0;
                            v.disk_util = 0.0;
                        }
                        _ => {
                            v.blocked = true;
                            v.dead = true;
                        }
                    }
                }
                let hint: Option<Vec<NodeId>> = rng.gen_bool(0.5).then(|| touched.clone());
                cache.refresh(&cluster, &vs, hint.as_deref());
                let findings = cache.verify(&cluster, &vs);
                assert!(
                    findings.is_empty(),
                    "shards={shard_count} round {round}: {findings:?}"
                );
            }
        }
    }

    #[test]
    fn gpu_utilization_accounts_running_kernels() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        let stack_ids = cluster.nodes_in_class("stack");
        // stack1 busy on its one GPU
        let v = &mut vs[stack_ids[0].index()];
        v.gpus_idle = 0;
        v.running.push(rupam_exec::scheduler::RunningTaskView {
            task: rupam_dag::TaskRef {
                stage: rupam_dag::StageId(0),
                index: 0,
            },
            speculative: false,
            elapsed: rupam_simcore::SimDuration::ZERO,
            peak_mem: ByteSize::mib(100),
            on_gpu: true,
        });
        let q = ResourceQueues::build(&cluster, &vs);
        assert_eq!(
            q.best(ResourceKind::Gpu),
            Some(stack_ids[1]),
            "idle GPU node first"
        );
        assert!((utilization(&vs[stack_ids[0].index()], ResourceKind::Gpu) - 1.0).abs() < 1e-9);
    }
}
