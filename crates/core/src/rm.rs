//! Resource Queues (§III-B1).
//!
//! For each resource type RUPAM keeps a priority queue of candidate
//! nodes, "sorted with capacity in descending order (most
//! powerful/capable/capacity first) and associated utilization in
//! ascending order (least used first)". The two criteria are combined
//! into one score — the *remaining* capability
//! `capability × (1 − utilization)` — so a saturated top-tier node
//! sinks below an idle lower-tier one instead of monopolising the head
//! of the queue (on an idle cluster the score degenerates to raw
//! capability, preserving the capability ranking). Queues are rebuilt
//! from the offer-round snapshot — the paper likewise only inserts
//! nodes that are ready to run a task and empties the queues between
//! offer rounds, keeping the sorting cost low.

use rupam_cluster::resources::{PerResource, ResourceKind};
use rupam_cluster::{ClusterSpec, NodeId};
use rupam_exec::scheduler::NodeView;

/// Per-kind utilisation of a node in `0..=1` (lower = more attractive).
pub fn utilization(view: &NodeView, kind: ResourceKind) -> f64 {
    match kind {
        ResourceKind::Cpu => view.cpu_util,
        ResourceKind::Mem => {
            let cap = view.executor_mem.as_f64();
            if cap <= 0.0 {
                1.0
            } else {
                view.mem_in_use.as_f64() / cap
            }
        }
        ResourceKind::Io => view.disk_util,
        ResourceKind::Net => view.net_util,
        ResourceKind::Gpu => {
            let total =
                view.gpus_idle as f64 + view.running.iter().filter(|r| r.on_gpu).count() as f64;
            if total <= 0.0 {
                1.0
            } else {
                1.0 - view.gpus_idle as f64 / total
            }
        }
    }
}

/// The snapshot ranking score: the capability a new task would still
/// find on the node, `capability × (1 − utilization)`.
pub fn remaining_capability(cluster: &ClusterSpec, view: &NodeView, kind: ResourceKind) -> f64 {
    let util = utilization(view, kind).clamp(0.0, 1.0);
    cluster.node(view.node).capability(kind) * (1.0 - util)
}

/// The five node priority queues, rebuilt each offer round.
pub struct ResourceQueues {
    queues: PerResource<Vec<NodeId>>,
}

impl ResourceQueues {
    /// Build the queues from the current snapshot. Blocked (restarting)
    /// nodes and nodes without the resource (`C_i^r = 0`) are excluded.
    pub fn build(cluster: &ClusterSpec, views: &[NodeView]) -> Self {
        let queues = PerResource::from_fn(|kind| {
            let mut nodes: Vec<NodeId> = views
                .iter()
                .filter(|v| !v.blocked)
                .filter(|v| cluster.node(v.node).has_resource(kind))
                .map(|v| v.node)
                .collect();
            let score = |id: NodeId| remaining_capability(cluster, &views[id.index()], kind);
            nodes.sort_by(|&a, &b| {
                let remaining = score(b)
                    .partial_cmp(&score(a))
                    .unwrap_or(std::cmp::Ordering::Equal);
                let util_a = utilization(&views[a.index()], kind);
                let util_b = utilization(&views[b.index()], kind);
                remaining
                    .then(
                        util_a
                            .partial_cmp(&util_b)
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
                    .then(a.cmp(&b))
            });
            nodes
        });
        ResourceQueues { queues }
    }

    /// Nodes for one resource kind, best first.
    pub fn nodes(&self, kind: ResourceKind) -> &[NodeId] {
        self.queues.get(kind)
    }

    /// The best node for one kind, if any qualifies.
    pub fn best(&self, kind: ResourceKind) -> Option<NodeId> {
        self.queues.get(kind).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_simcore::units::ByteSize;

    fn views(cluster: &ClusterSpec) -> Vec<NodeView> {
        cluster
            .iter()
            .map(|(id, spec)| NodeView {
                node: id,
                executor_mem: spec.mem,
                mem_in_use: ByteSize::ZERO,
                free_mem: spec.mem,
                running: vec![],
                cpu_util: 0.0,
                net_util: 0.0,
                disk_util: 0.0,
                gpus_idle: spec.gpus,
                blocked: false,
            })
            .collect()
    }

    #[test]
    fn cpu_queue_leads_with_thor() {
        let cluster = ClusterSpec::hydra();
        let q = ResourceQueues::build(&cluster, &views(&cluster));
        let best = q.best(ResourceKind::Cpu).unwrap();
        assert_eq!(cluster.node(best).class, "thor");
    }

    #[test]
    fn mem_queue_leads_with_hulk() {
        let cluster = ClusterSpec::hydra();
        let q = ResourceQueues::build(&cluster, &views(&cluster));
        let best = q.best(ResourceKind::Mem).unwrap();
        assert_eq!(cluster.node(best).class, "hulk");
    }

    #[test]
    fn io_queue_leads_with_ssd() {
        let cluster = ClusterSpec::hydra();
        let q = ResourceQueues::build(&cluster, &views(&cluster));
        let best = q.best(ResourceKind::Io).unwrap();
        assert!(cluster.node(best).disk.is_ssd);
    }

    #[test]
    fn gpu_queue_only_contains_gpu_nodes() {
        let cluster = ClusterSpec::hydra();
        let q = ResourceQueues::build(&cluster, &views(&cluster));
        let gpu_nodes = q.nodes(ResourceKind::Gpu);
        assert_eq!(gpu_nodes.len(), 2);
        for n in gpu_nodes {
            assert_eq!(cluster.node(*n).class, "stack");
        }
    }

    #[test]
    fn utilization_breaks_capability_ties() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        // load the first thor node's CPU
        vs[0].cpu_util = 0.9;
        let q = ResourceQueues::build(&cluster, &vs);
        let best = q.best(ResourceKind::Cpu).unwrap();
        assert_ne!(best, NodeId(0), "a loaded node must rank below idle peers");
        assert_eq!(cluster.node(best).class, "thor");
    }

    #[test]
    fn blocked_nodes_excluded() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        for v in vs.iter_mut() {
            v.blocked = true;
        }
        let q = ResourceQueues::build(&cluster, &vs);
        for kind in ResourceKind::ALL {
            assert!(q.nodes(kind).is_empty());
        }
    }

    #[test]
    fn gpu_utilization_accounts_running_kernels() {
        let cluster = ClusterSpec::hydra();
        let mut vs = views(&cluster);
        let stack_ids = cluster.nodes_in_class("stack");
        // stack1 busy on its one GPU
        let v = &mut vs[stack_ids[0].index()];
        v.gpus_idle = 0;
        v.running.push(rupam_exec::scheduler::RunningTaskView {
            task: rupam_dag::TaskRef {
                stage: rupam_dag::StageId(0),
                index: 0,
            },
            speculative: false,
            elapsed: rupam_simcore::SimDuration::ZERO,
            peak_mem: ByteSize::mib(100),
            on_gpu: true,
        });
        let q = ResourceQueues::build(&cluster, &vs);
        assert_eq!(
            q.best(ResourceKind::Gpu),
            Some(stack_ids[1]),
            "idle GPU node first"
        );
        assert!((utilization(&vs[stack_ids[0].index()], ResourceKind::Gpu) - 1.0).abs() < 1e-9);
    }
}
