//! The Task Manager (TM): Algorithm 1 task characterisation and the
//! per-resource Task Queues of Fig. 4.
//!
//! When tasks are submitted, TM looks each one up in `DB_task_char`:
//!
//! * known task → enqueue in the queue of its recorded bottleneck;
//! * first contact, map stage → "considered to be bounded by all types
//!   of resources and thus enqueued in all queues";
//! * first contact, reduce stage → network-bound (reduce tasks fetch
//!   shuffle data and ship results to the driver).
//!
//! When a task finishes, TM runs Algorithm 1 over its observed metrics
//! (compute time vs shuffle read/write, GPU usage; we add the Fig. 4 MEM
//! class for memory-dominated tasks) and banks the result in the DB for
//! "future task iterations and job runs".

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use rupam_simcore::time::SimTime;
use rupam_simcore::units::ByteSize;
use rupam_simcore::Sym;

use rupam_cluster::resources::{PerResource, ResourceKind};
use rupam_dag::app::{JobId, Stage, StageId, StageKind};
use rupam_dag::{TaskRef, TenantId};
use rupam_exec::scheduler::PendingTaskView;
use rupam_metrics::record::TaskRecord;

use crate::config::RupamConfig;
use crate::db::{TaskChar, TaskCharDb, TaskKey};

/// Algorithm 1: classify a finished task's bottleneck from its metrics.
///
/// Extended with the Fig. 4 MEM class: a task whose peak memory exceeds
/// `mem_bound_fraction` of the smallest executor is memory-bound — it is
/// placement-constrained by capacity more than by any bandwidth.
pub fn classify(
    record: &TaskRecord,
    cfg: &RupamConfig,
    smallest_executor: ByteSize,
) -> ResourceKind {
    if record.used_gpu {
        return ResourceKind::Gpu;
    }
    if record.peak_mem.as_f64() > cfg.mem_bound_fraction * smallest_executor.as_f64() {
        return ResourceKind::Mem;
    }
    let compute = record.compute_time().as_secs_f64();
    let sread = record.shuffle_read_time().as_secs_f64();
    let swrite = record.shuffle_write_time().as_secs_f64();
    if compute > cfg.res_factor * sread.max(swrite) {
        ResourceKind::Cpu
    } else if sread > cfg.res_factor * swrite {
        ResourceKind::Net
    } else {
        ResourceKind::Io
    }
}

/// The five pending-task queues plus membership bookkeeping.
///
/// Incremental representation: each kind keeps an ordered set of live
/// `(seat, task)` entries, where a task's *seat* in a kind is assigned
/// the first time it is ever enqueued there and retained for the rest of
/// the run. Insert and remove are `O(log n)`; iteration yields live
/// tasks in seat order with no dead entries to skip.
///
/// Seat retention reproduces the historical deque semantics exactly: the
/// old implementation never physically removed a launched task's deque
/// entry, so (a) a task re-enqueued into a queue it had occupied before
/// resumed its *old* position rather than moving to the back, and (b)
/// re-enqueueing a member made it visible again in *every* queue that
/// had ever held it. Decision replay across the suite depends on both.
#[derive(Default)]
pub struct TaskQueues {
    /// Live entries per kind, ordered by seat number (FIFO).
    live: PerResource<BTreeSet<(u64, TaskRef)>>,
    /// Every seat ever assigned per kind (kept across removals).
    seats: PerResource<HashMap<TaskRef, u64>>,
    /// Monotonic seat counter shared by all kinds.
    next_seat: u64,
    /// Tasks currently enqueued anywhere (a first-contact task sits in
    /// all five queues but counts once).
    members: HashSet<TaskRef>,
    /// When each member was first enqueued (GPU-race timing).
    enqueued_at: HashMap<TaskRef, SimTime>,
    /// Persistent special/plain split of `live`, maintained across
    /// rounds for the serve path's `pending_fresh` warranty. *Special*
    /// tasks carry placement preferences or a raw best-executor lock
    /// (liveness of the lock target is checked per probe, so node
    /// deaths never invalidate the split); *plain* tasks can only ever
    /// match a node at `ANY` locality. Ordered by seat, like `live`.
    special: PerResource<BTreeSet<(u64, TaskRef)>>,
    /// Plain side of the persistent split (see `special`).
    plain: PerResource<BTreeSet<(u64, TaskRef)>>,
    /// Live plain peak estimates → multiplicity per kind; the first key
    /// answers "does anything plain fit" without a scan.
    plain_by_peak: PerResource<BTreeMap<ByteSize, usize>>,
    /// Current classification of each member: `(special, peak estimate)`.
    class: HashMap<TaskRef, (bool, ByteSize)>,
    /// Tenant partitioning armed (set once, before any enqueue, by a
    /// tenant-aware scheduler). Off by default: the shards below stay
    /// empty and every path is byte-identical to the shared pool.
    tenant_aware: bool,
    /// Owning tenant of every task ever noted (tenant mode only).
    tenant_of: HashMap<TaskRef, TenantId>,
    /// Per-tenant mirror of the persistent special/plain split: shard
    /// `t` holds exactly the global entries whose task belongs to
    /// tenant `t`, in the same seat order. Maintained at the same
    /// mutation points as the global split, so
    /// `shard[t] == filter(global, tenant == t)` is an invariant.
    shards: Vec<TenantShard>,
}

/// One tenant's slice of the persistent split (see
/// [`TaskQueues::shards`]).
#[derive(Default)]
struct TenantShard {
    special: PerResource<BTreeSet<(u64, TaskRef)>>,
    plain: PerResource<BTreeSet<(u64, TaskRef)>>,
    plain_by_peak: PerResource<BTreeMap<ByteSize, usize>>,
}

impl TaskQueues {
    /// Empty queues.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue `task` into the given queues, carrying its current
    /// classification (`special` iff it has placement preferences or a
    /// raw best-executor lock; `peak` is its admission estimate).
    pub fn enqueue(
        &mut self,
        task: TaskRef,
        kinds: &[ResourceKind],
        now: SimTime,
        special: bool,
        peak: ByteSize,
    ) {
        if self.members.insert(task) {
            self.enqueued_at.insert(task, now);
        }
        for &k in kinds {
            if !self.seats.get(k).contains_key(&task) {
                let seat = self.next_seat;
                self.next_seat += 1;
                self.seats.get_mut(k).insert(task, seat);
            }
        }
        // a member is visible in every queue holding a seat for it, not
        // just the kinds of this call (historical-deque resurrection)
        for k in ResourceKind::ALL {
            if let Some(&seat) = self.seats.get(k).get(&task) {
                self.live.get_mut(k).insert((seat, task));
            }
        }
        self.sync_class(task, special, peak);
    }

    /// Re-point the persistent split at `task`'s current classification:
    /// drop any entries recorded under the old class, insert under the
    /// new one, in every kind where the task is live.
    fn sync_class(&mut self, task: TaskRef, special: bool, peak: ByteSize) {
        let old = self.class.insert(task, (special, peak));
        let shard_idx = self.shard_idx(task);
        for k in ResourceKind::ALL {
            let Some(&seat) = self.seats.get(k).get(&task) else {
                continue;
            };
            if !self.live.get(k).contains(&(seat, task)) {
                continue;
            }
            if let Some((was_special, old_peak)) = old {
                if was_special {
                    self.special.get_mut(k).remove(&(seat, task));
                } else if self.plain.get_mut(k).remove(&(seat, task)) {
                    Self::dec_peak(self.plain_by_peak.get_mut(k), old_peak);
                }
            }
            if special {
                self.special.get_mut(k).insert((seat, task));
            } else if self.plain.get_mut(k).insert((seat, task)) {
                *self.plain_by_peak.get_mut(k).entry(peak).or_insert(0) += 1;
            }
            if let Some(ti) = shard_idx {
                let shard = &mut self.shards[ti];
                if let Some((was_special, old_peak)) = old {
                    if was_special {
                        shard.special.get_mut(k).remove(&(seat, task));
                    } else if shard.plain.get_mut(k).remove(&(seat, task)) {
                        Self::dec_peak(shard.plain_by_peak.get_mut(k), old_peak);
                    }
                }
                if special {
                    shard.special.get_mut(k).insert((seat, task));
                } else if shard.plain.get_mut(k).insert((seat, task)) {
                    *shard.plain_by_peak.get_mut(k).entry(peak).or_insert(0) += 1;
                }
            }
        }
    }

    /// The shard index of `task` (growing the shard table on first
    /// sight), or `None` outside tenant mode.
    fn shard_idx(&mut self, task: TaskRef) -> Option<usize> {
        if !self.tenant_aware {
            return None;
        }
        let ti = self
            .tenant_of
            .get(&task)
            .copied()
            .unwrap_or(TenantId(0))
            .index();
        if ti >= self.shards.len() {
            self.shards.resize_with(ti + 1, TenantShard::default);
        }
        Some(ti)
    }

    fn dec_peak(by_peak: &mut BTreeMap<ByteSize, usize>, peak: ByteSize) {
        if let Some(count) = by_peak.get_mut(&peak) {
            *count -= 1;
            if *count == 0 {
                by_peak.remove(&peak);
            }
        }
    }

    /// Update a still-queued member's classification (its view or DB
    /// record changed). No-op for non-members.
    pub fn reclassify(&mut self, task: TaskRef, special: bool, peak: ByteSize) {
        if !self.members.contains(&task) {
            return;
        }
        if self.class.get(&task) == Some(&(special, peak)) {
            return;
        }
        self.sync_class(task, special, peak);
    }

    /// Whether the task is pending in any queue.
    pub fn contains(&self, task: &TaskRef) -> bool {
        self.members.contains(task)
    }

    /// When the task entered the queues (None if not pending).
    pub fn waiting_since(&self, task: &TaskRef) -> Option<SimTime> {
        if self.members.contains(task) {
            self.enqueued_at.get(task).copied()
        } else {
            None
        }
    }

    /// Remove a task everywhere (it launched or completed) in
    /// `O(log n)` per kind. Its seats survive for position-preserving
    /// re-enqueue.
    pub fn remove(&mut self, task: &TaskRef) {
        self.members.remove(task);
        self.enqueued_at.remove(task);
        let class = self.class.remove(task);
        let shard_idx = self.shard_idx(*task);
        for k in ResourceKind::ALL {
            if let Some(&seat) = self.seats.get(k).get(task) {
                self.live.get_mut(k).remove(&(seat, *task));
                if let Some((special, peak)) = class {
                    if special {
                        self.special.get_mut(k).remove(&(seat, *task));
                    } else if self.plain.get_mut(k).remove(&(seat, *task)) {
                        Self::dec_peak(self.plain_by_peak.get_mut(k), peak);
                    }
                    if let Some(ti) = shard_idx {
                        let shard = &mut self.shards[ti];
                        if special {
                            shard.special.get_mut(k).remove(&(seat, *task));
                        } else if shard.plain.get_mut(k).remove(&(seat, *task)) {
                            Self::dec_peak(shard.plain_by_peak.get_mut(k), peak);
                        }
                    }
                }
            }
        }
    }

    /// Iterate the *live* tasks of one queue in FIFO (seat) order.
    pub fn iter_kind<'q>(&'q self, kind: ResourceKind) -> impl Iterator<Item = TaskRef> + 'q {
        self.live.get(kind).iter().map(|&(_, t)| t)
    }

    /// The live *special* entries of one queue, `(seat, task)` in seat
    /// order (the persistent counterpart of the per-round partition's
    /// special side).
    pub fn special_kind<'q>(
        &'q self,
        kind: ResourceKind,
    ) -> impl Iterator<Item = (u64, TaskRef)> + 'q {
        self.special.get(kind).iter().copied()
    }

    /// The live *plain* entries of one queue, `(seat, task, peak)` in
    /// seat order.
    pub fn plain_kind<'q>(
        &'q self,
        kind: ResourceKind,
    ) -> impl Iterator<Item = (u64, TaskRef, ByteSize)> + 'q {
        self.plain.get(kind).iter().map(move |&(seat, t)| {
            let peak = self.class.get(&t).map(|&(_, p)| p).unwrap_or_default();
            (seat, t, peak)
        })
    }

    /// Smallest live plain peak estimate in one queue, if any.
    pub fn plain_floor(&self, kind: ResourceKind) -> Option<ByteSize> {
        self.plain_by_peak.get(kind).keys().next().copied()
    }

    /// Arm tenant partitioning. Must be called before any task is
    /// enqueued (the shards only mirror mutations made after arming).
    pub fn set_tenant_mode(&mut self) {
        debug_assert!(
            self.members.is_empty(),
            "tenant mode must be armed before the first enqueue"
        );
        self.tenant_aware = true;
    }

    /// Whether tenant partitioning is armed.
    pub fn tenant_mode(&self) -> bool {
        self.tenant_aware
    }

    /// Record which tenant owns `task`. Must precede the task's first
    /// [`TaskQueues::enqueue`]; no-op outside tenant mode. A task's
    /// tenant never changes (stage → job → tenant is fixed at submit).
    pub fn note_tenant(&mut self, task: TaskRef, tenant: TenantId) {
        if !self.tenant_aware {
            return;
        }
        if tenant.index() >= self.shards.len() {
            self.shards
                .resize_with(tenant.index() + 1, TenantShard::default);
        }
        self.tenant_of.insert(task, tenant);
    }

    /// The owning tenant of a noted task (`TenantId(0)` for unknown
    /// tasks or outside tenant mode).
    pub fn tenant_of(&self, task: &TaskRef) -> TenantId {
        self.tenant_of.get(task).copied().unwrap_or(TenantId(0))
    }

    /// The live *special* entries of one tenant's slice of a queue,
    /// `(seat, task)` in seat order. Empty outside tenant mode.
    pub fn special_kind_of(
        &self,
        kind: ResourceKind,
        tenant: TenantId,
    ) -> impl Iterator<Item = (u64, TaskRef)> + '_ {
        self.shards
            .get(tenant.index())
            .into_iter()
            .flat_map(move |s| s.special.get(kind).iter().copied())
    }

    /// The live *plain* entries of one tenant's slice of a queue,
    /// `(seat, task, peak)` in seat order. Empty outside tenant mode.
    pub fn plain_kind_of(
        &self,
        kind: ResourceKind,
        tenant: TenantId,
    ) -> impl Iterator<Item = (u64, TaskRef, ByteSize)> + '_ {
        self.shards
            .get(tenant.index())
            .into_iter()
            .flat_map(move |s| {
                s.plain.get(kind).iter().map(move |&(seat, t)| {
                    let peak = self.class.get(&t).map(|&(_, p)| p).unwrap_or_default();
                    (seat, t, peak)
                })
            })
    }

    /// Smallest live plain peak estimate in one tenant's slice of a
    /// queue, if any. `None` outside tenant mode.
    pub fn plain_floor_of(&self, kind: ResourceKind, tenant: TenantId) -> Option<ByteSize> {
        self.shards
            .get(tenant.index())
            .and_then(|s| s.plain_by_peak.get(kind).keys().next().copied())
    }

    /// Forget the retained seats of non-members in one queue, so a later
    /// re-enqueue joins at the back instead of its old position (the
    /// historical `compact`; never called on the production path).
    pub fn compact(&mut self, kind: ResourceKind) {
        let members = &self.members;
        self.seats.get_mut(kind).retain(|t, _| members.contains(t));
    }

    /// Number of live pending tasks.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// The Task Manager.
pub struct TaskManager {
    cfg: RupamConfig,
    db: TaskCharDb,
    /// Pending tasks per resource kind.
    pub queues: TaskQueues,
    /// Successful durations per stage template (resource-straggler
    /// thresholds).
    finished_secs: HashMap<Sym, Vec<f64>>,
    /// Stage templates observed using a GPU (§III-B2: one GPU sighting
    /// marks the whole stage).
    gpu_stages: HashSet<Sym>,
    /// Smallest executor in the cluster (MEM-bound threshold).
    smallest_executor: ByteSize,
    /// Stream job owning each stage (multi-tenant runs; used to scope
    /// keys when `cross_job_db` is off).
    job_of_stage: HashMap<StageId, JobId>,
    /// Tenant of each stream job, refreshed from the offer input every
    /// round by a tenant-aware scheduler. Empty by default.
    job_tenants: Vec<TenantId>,
    /// Memo of cold-DB scoped keys (`jN@template`), so the ablation path
    /// formats and interns each `(job, template)` pair once.
    scope_cache: RefCell<HashMap<(JobId, Sym), Sym>>,
    /// Memoised per-template median (value + sample count it was computed
    /// at). The straggler scan asks for the median once per running task
    /// per contended node per round; recomputing it from scratch each time
    /// clones and sorts the whole duration vector. Incremental mode keeps
    /// the answer until a new sample lands. Keyed by the *scoped* template.
    median_cache: RefCell<HashMap<Sym, (usize, f64)>>,
    /// What each ingested task's classification was derived from, so a
    /// DB write to its key can recompute it without the view in hand.
    class_meta: HashMap<TaskRef, ClassMeta>,
    /// Tasks ever ingested under each DB key — the invalidation fan-out
    /// for [`TaskManager::record_finish`] / memory failures.
    key_index: HashMap<TaskKey, HashSet<TaskRef>>,
}

/// View-side inputs to a task's special/plain classification (the
/// DB-side inputs are re-read at reclassification time).
struct ClassMeta {
    /// The view carried placement preferences.
    prefs_special: bool,
    /// The view's own peak-memory hint.
    hint: ByteSize,
}

impl TaskManager {
    /// A TM with a fresh database.
    pub fn new(cfg: RupamConfig) -> Self {
        let mut queues = TaskQueues::new();
        if cfg.tenant_aware() {
            queues.set_tenant_mode();
        }
        TaskManager {
            cfg,
            db: TaskCharDb::new(),
            queues,
            finished_secs: HashMap::new(),
            gpu_stages: HashSet::new(),
            smallest_executor: ByteSize::gib(14),
            job_of_stage: HashMap::new(),
            job_tenants: Vec::new(),
            scope_cache: RefCell::new(HashMap::new()),
            median_cache: RefCell::new(HashMap::new()),
            class_meta: HashMap::new(),
            key_index: HashMap::new(),
        }
    }

    /// Register which stages a submitted stream job owns. With
    /// `cross_job_db` on (the default) `DB_task_char` keys stay
    /// per-template, so a new tenant repeating a known template reuses
    /// everything earlier tenants taught the scheduler. With it off,
    /// every key is scoped `jN@template` — the cold-DB control.
    pub fn note_job(&mut self, job: JobId, stages: &[StageId]) {
        for &s in stages {
            self.job_of_stage.insert(s, job);
        }
    }

    /// Refresh the job → tenant map from the offer input (tenant-aware
    /// schedulers call this once per round, before ingesting tasks).
    pub fn note_tenants(&mut self, job_tenants: &[TenantId]) {
        if self.job_tenants.as_slice() != job_tenants {
            self.job_tenants = job_tenants.to_vec();
        }
    }

    /// The stream job owning a stage (`JobId(0)` for single-app runs).
    pub fn job_of(&self, stage: StageId) -> JobId {
        self.job_of_stage.get(&stage).copied().unwrap_or(JobId(0))
    }

    /// The tenant owning a stage, via its stream job (`TenantId(0)` for
    /// single-app runs or jobs beyond the noted tenant map).
    pub fn tenant_of_stage(&self, stage: StageId) -> TenantId {
        self.job_tenants
            .get(self.job_of(stage).index())
            .copied()
            .unwrap_or(TenantId(0))
    }

    /// Template key as stored in the DB / stage statistics: per-template
    /// when warm (a free `Sym` copy — no allocation on the hot path),
    /// scoped to the owning stream job when cold.
    fn scope(&self, stage: StageId, template: Sym) -> Sym {
        if self.cfg.cross_job_db {
            return template;
        }
        let job = self.job_of_stage.get(&stage).copied().unwrap_or(JobId(0));
        if let Some(&scoped) = self.scope_cache.borrow().get(&(job, template)) {
            return scoped;
        }
        let scoped = Sym::from(format!("j{}@{}", job.index(), template.as_str()));
        self.scope_cache
            .borrow_mut()
            .insert((job, template), scoped);
        scoped
    }

    /// Set the smallest executor size (called at app start).
    pub fn set_smallest_executor(&mut self, size: ByteSize) {
        self.smallest_executor = size;
    }

    /// Access the characteristics database.
    pub fn db(&self) -> &TaskCharDb {
        &self.db
    }

    /// Reset run-local state, keeping the DB (cross-run learning) —
    /// the harness calls [`TaskManager::clear_db`] separately when the
    /// experiment protocol requires a cold DB.
    pub fn reset_run_state(&mut self) {
        self.queues = TaskQueues::new();
        if self.cfg.tenant_aware() {
            self.queues.set_tenant_mode();
        }
        self.finished_secs.clear();
        self.gpu_stages.clear();
        self.job_of_stage.clear();
        self.job_tenants.clear();
        self.scope_cache.borrow_mut().clear();
        self.median_cache.borrow_mut().clear();
        self.class_meta.clear();
        self.key_index.clear();
    }

    /// Wipe the characteristics database (Fig. 5 protocol).
    pub fn clear_db(&self) {
        self.db.clear();
    }

    /// DB lookup for a pending task.
    pub fn lookup(&self, view: &PendingTaskView) -> Option<TaskChar> {
        if !self.cfg.use_task_db {
            return None;
        }
        self.db.read(&TaskKey::new(
            self.scope(view.task.stage, view.template_key),
            view.task.index,
        ))
    }

    /// Which queues a submitted task belongs in.
    pub fn queues_for(&self, view: &PendingTaskView) -> Vec<ResourceKind> {
        self.queues_for_char(&self.lookup(view), view)
    }

    fn queues_for_char(
        &self,
        char: &Option<TaskChar>,
        view: &PendingTaskView,
    ) -> Vec<ResourceKind> {
        if let Some(char) = char {
            if let Some(k) = char.last_bottleneck {
                return vec![k];
            }
        }
        if self
            .gpu_stages
            .contains(&self.scope(view.task.stage, view.template_key))
        {
            // §III-B2: once TM sees any task of a stage using a GPU, it
            // "marks all the tasks in the same stage to be GPU tasks"
            return vec![ResourceKind::Gpu];
        }
        match view.stage_kind {
            // first contact, map stage: bounded by everything
            StageKind::ShuffleMap => ResourceKind::ALL.to_vec(),
            // first contact, reduce stage: network-bound
            StageKind::Result => vec![ResourceKind::Net],
        }
    }

    /// A task's persistent-split classification from its view and DB
    /// record. *Special* iff it carries placement preferences or a raw
    /// best-executor lock — raw deliberately: lock-target liveness is
    /// filtered at probe time, so node deaths never reclassify anything.
    /// The peak mirrors the dispatcher's admission estimate exactly.
    fn class_of(&self, char: &Option<TaskChar>, view: &PendingTaskView) -> (bool, ByteSize) {
        let raw_lock = char
            .as_ref()
            .is_some_and(|c| c.history_size() == ResourceKind::COUNT && c.best.is_some());
        let special = !view.process_nodes.is_empty() || !view.node_local.is_empty() || raw_lock;
        let peak = if view.peak_mem_hint > ByteSize::ZERO {
            view.peak_mem_hint
        } else {
            match char {
                Some(c) if c.peak_mem > ByteSize::ZERO => c.peak_mem,
                _ => self.cfg.unknown_task_mem_estimate,
            }
        };
        (special, peak)
    }

    fn note_class_meta(&mut self, view: &PendingTaskView) {
        let key = TaskKey::new(
            self.scope(view.task.stage, view.template_key),
            view.task.index,
        );
        self.class_meta.insert(
            view.task,
            ClassMeta {
                prefs_special: !view.process_nodes.is_empty() || !view.node_local.is_empty(),
                hint: view.peak_mem_hint,
            },
        );
        self.key_index.entry(key).or_default().insert(view.task);
    }

    fn ingest(&mut self, view: &PendingTaskView, now: SimTime) {
        if self.queues.tenant_mode() {
            let tenant = self
                .job_tenants
                .get(view.job.index())
                .copied()
                .unwrap_or(TenantId(0));
            self.queues.note_tenant(view.task, tenant);
        }
        let char = self.lookup(view);
        let kinds = self.queues_for_char(&char, view);
        let (special, peak) = self.class_of(&char, view);
        self.queues.enqueue(view.task, &kinds, now, special, peak);
        self.note_class_meta(view);
    }

    /// Submit a ready stage's tasks.
    pub fn submit_stage(&mut self, _stage: &Stage, views: &[PendingTaskView], now: SimTime) {
        for v in views {
            self.ingest(v, now);
        }
    }

    /// Re-queue a failed / relocated task (re-characterised from the DB;
    /// a memory-straggler kill marks it MEM-bound first — the paper sends
    /// the task back to TM, which "analyzes the task metrics to determine
    /// the bottleneck and enqueues it to the Task Queue again").
    pub fn requeue(&mut self, view: &PendingTaskView, now: SimTime) {
        self.ingest(view, now);
    }

    /// A still-queued task's view changed (placement preferences, peak
    /// hint): refresh its persistent-split classification. Queue
    /// membership (kinds) deliberately stays untouched — the reference
    /// path never re-ingests a queued task either.
    pub fn reclassify_view(&mut self, view: &PendingTaskView) {
        if !self.queues.contains(&view.task) {
            return;
        }
        let char = self.lookup(view);
        let (special, peak) = self.class_of(&char, view);
        self.queues.reclassify(view.task, special, peak);
        self.note_class_meta(view);
    }

    /// A DB write landed on `key`: recompute the classification of every
    /// still-queued task characterising under it (the lock or observed
    /// peak may have appeared / changed). The DB is read-your-writes, so
    /// doing this at the record call site keeps the persistent split
    /// exactly as fresh as a per-round rebuild would see it.
    fn reclassify_key(&mut self, key: TaskKey) {
        if !self.cfg.use_task_db {
            return;
        }
        let Some(tasks) = self.key_index.get(&key) else {
            return;
        };
        let queued: Vec<TaskRef> = tasks
            .iter()
            .copied()
            .filter(|t| self.queues.contains(t))
            .collect();
        if queued.is_empty() {
            return;
        }
        let char = self.db.read(&key);
        let raw_lock = char
            .as_ref()
            .is_some_and(|c| c.history_size() == ResourceKind::COUNT && c.best.is_some());
        let char_peak = match &char {
            Some(c) if c.peak_mem > ByteSize::ZERO => c.peak_mem,
            _ => self.cfg.unknown_task_mem_estimate,
        };
        for t in queued {
            let Some(meta) = self.class_meta.get(&t) else {
                continue;
            };
            let special = meta.prefs_special || raw_lock;
            let peak = if meta.hint > ByteSize::ZERO {
                meta.hint
            } else {
                char_peak
            };
            self.queues.reclassify(t, special, peak);
        }
    }

    /// Record a finished task: classify, bank into the DB, update stage
    /// statistics.
    pub fn record_finish(&mut self, record: &TaskRecord) {
        self.queues.remove(&record.task);
        let scoped = self.scope(record.task.stage, record.template_key);
        if record.used_gpu {
            self.gpu_stages.insert(scoped);
        }
        let bottleneck = classify(record, &self.cfg, self.smallest_executor);
        if self.cfg.use_task_db {
            let key = TaskKey::new(scoped, record.task.index);
            let node = record.node;
            let secs = record.duration().as_secs_f64();
            let peak = record.peak_mem;
            let gpu = record.used_gpu;
            self.db
                .update(key, |c| c.observe(bottleneck, node, secs, peak, gpu));
            self.reclassify_key(key);
        }
        self.finished_secs
            .entry(scoped)
            .or_default()
            .push(record.duration().as_secs_f64());
    }

    /// A failed attempt still teaches us its memory footprint (it is what
    /// blew the node up). Marks the task MEM-bound.
    pub fn record_memory_failure(
        &mut self,
        stage: StageId,
        template_key: Sym,
        index: usize,
        peak: ByteSize,
        node: rupam_cluster::NodeId,
    ) {
        if !self.cfg.use_task_db {
            return;
        }
        let key = TaskKey::new(self.scope(stage, template_key), index);
        self.db.update(key, |c| {
            c.observe(ResourceKind::Mem, node, f64::MAX, peak, false);
        });
        self.reclassify_key(key);
    }

    /// Median successful duration for a stage template, if any finished.
    ///
    /// In incremental mode the median is memoised per scoped template and
    /// only recomputed when the sample count changed — the value is
    /// bit-identical to the from-scratch computation, only cheaper. The
    /// rebuild reference path recomputes every call (pre-change cost
    /// model).
    pub fn median_duration_secs(&self, stage: StageId, template_key: Sym) -> Option<f64> {
        let scoped = self.scope(stage, template_key);
        let v = self.finished_secs.get(&scoped).filter(|v| !v.is_empty())?;
        if !self.cfg.incremental_queues {
            return Some(rupam_simcore::stats::median(v));
        }
        let mut cache = self.median_cache.borrow_mut();
        match cache.get(&scoped) {
            Some(&(len, m)) if len == v.len() => Some(m),
            _ => {
                let m = rupam_simcore::stats::median(v);
                cache.insert(scoped, (v.len(), m));
                Some(m)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_cluster::NodeId;
    use rupam_dag::app::StageId;
    use rupam_dag::Locality;
    use rupam_metrics::breakdown::{BreakdownCategory as C, TaskBreakdown};
    use rupam_metrics::record::AttemptOutcome;

    fn record(compute_s: u64, sread_s: u64, swrite_s: u64, peak_gib: u64, gpu: bool) -> TaskRecord {
        let mut b = TaskBreakdown::new();
        b.add(C::Compute, rupam_simcore::SimDuration::from_secs(compute_s));
        b.add(
            C::ShuffleNet,
            rupam_simcore::SimDuration::from_secs(sread_s),
        );
        b.add(
            C::ShuffleWrite,
            rupam_simcore::SimDuration::from_secs(swrite_s),
        );
        TaskRecord {
            task: TaskRef {
                stage: StageId(0),
                index: 0,
            },
            job: JobId(0),
            template_key: "w/s".into(),
            attempt: 0,
            node: NodeId(1),
            speculative: false,
            locality: Locality::Any,
            launched_at: SimTime::ZERO,
            finished_at: SimTime::from_secs_f64((compute_s + sread_s + swrite_s) as f64),
            outcome: AttemptOutcome::Success,
            breakdown: b,
            peak_mem: ByteSize::gib(peak_gib),
            used_gpu: gpu,
        }
    }

    fn cfg() -> RupamConfig {
        RupamConfig::default()
    }

    #[test]
    fn algorithm1_gpu_first() {
        let r = record(10, 1, 1, 1, true);
        assert_eq!(classify(&r, &cfg(), ByteSize::gib(14)), ResourceKind::Gpu);
    }

    #[test]
    fn algorithm1_cpu_bound() {
        // compute 10 > 2 × max(2, 1)
        let r = record(10, 2, 1, 1, false);
        assert_eq!(classify(&r, &cfg(), ByteSize::gib(14)), ResourceKind::Cpu);
    }

    #[test]
    fn algorithm1_net_bound() {
        // compute 2 ≤ 2×max(6,1); sread 6 > 2×swrite 1
        let r = record(2, 6, 1, 1, false);
        assert_eq!(classify(&r, &cfg(), ByteSize::gib(14)), ResourceKind::Net);
    }

    #[test]
    fn algorithm1_disk_bound() {
        // compute small, swrite dominates sread
        let r = record(1, 2, 6, 1, false);
        assert_eq!(classify(&r, &cfg(), ByteSize::gib(14)), ResourceKind::Io);
    }

    #[test]
    fn algorithm1_mem_bound_extension() {
        // 8 GiB peak > 25% of a 14 GiB executor
        let r = record(10, 1, 1, 8, false);
        assert_eq!(classify(&r, &cfg(), ByteSize::gib(14)), ResourceKind::Mem);
    }

    fn pview(stage: usize, index: usize, kind: StageKind, gpu: bool) -> PendingTaskView {
        PendingTaskView {
            task: TaskRef {
                stage: StageId(stage),
                index,
            },
            job: JobId(0),
            template_key: "w/s".into(),
            stage_kind: kind,
            attempt_no: 0,
            peak_mem_hint: ByteSize::ZERO,
            gpu_capable: gpu,
            process_nodes: vec![],
            node_local: vec![],
        }
    }

    #[test]
    fn first_contact_map_goes_everywhere() {
        let tm = TaskManager::new(cfg());
        let kinds = tm.queues_for(&pview(0, 0, StageKind::ShuffleMap, false));
        assert_eq!(kinds.len(), 5);
    }

    #[test]
    fn first_contact_reduce_is_net() {
        let tm = TaskManager::new(cfg());
        let kinds = tm.queues_for(&pview(0, 0, StageKind::Result, false));
        assert_eq!(kinds, vec![ResourceKind::Net]);
    }

    #[test]
    fn gpu_membership_is_learned_not_assumed() {
        let mut tm = TaskManager::new(cfg());
        // first contact: GPU-capable or not, a map task goes everywhere —
        // the TM has not *observed* GPU usage yet (the paper's GM case)
        let kinds = tm.queues_for(&pview(0, 0, StageKind::ShuffleMap, true));
        assert_eq!(kinds.len(), 5);
        // observe one sibling using the GPU → whole stage marked GPU
        tm.record_finish(&record(10, 1, 1, 1, true));
        let kinds = tm.queues_for(&pview(0, 1, StageKind::ShuffleMap, true));
        assert_eq!(kinds, vec![ResourceKind::Gpu]);
    }

    #[test]
    fn known_task_goes_to_its_bottleneck_queue() {
        let mut tm = TaskManager::new(cfg());
        tm.record_finish(&record(10, 1, 1, 1, false)); // CPU-bound
        let kinds = tm.queues_for(&pview(0, 0, StageKind::ShuffleMap, false));
        assert_eq!(kinds, vec![ResourceKind::Cpu]);
    }

    #[test]
    fn db_ablation_forgets() {
        let c = RupamConfig {
            use_task_db: false,
            ..cfg()
        };
        let mut tm = TaskManager::new(c);
        tm.record_finish(&record(10, 1, 1, 1, false));
        let kinds = tm.queues_for(&pview(0, 0, StageKind::ShuffleMap, false));
        assert_eq!(
            kinds.len(),
            5,
            "without the DB every contact is first contact"
        );
    }

    #[test]
    fn warm_db_carries_characterization_across_jobs() {
        // two stream jobs share the template "w/s"; job 0 finishes a
        // CPU-bound task, job 1's identical stage should inherit the
        // classification when the DB stays warm
        let mut tm = TaskManager::new(cfg());
        tm.note_job(JobId(0), &[StageId(0)]);
        tm.note_job(JobId(1), &[StageId(1)]);
        tm.record_finish(&record(10, 1, 1, 1, false)); // stage 0 / job 0
        let mut later = pview(1, 0, StageKind::ShuffleMap, false);
        later.job = JobId(1);
        assert_eq!(tm.queues_for(&later), vec![ResourceKind::Cpu]);
    }

    #[test]
    fn cold_db_scopes_characterization_per_job() {
        let c = RupamConfig {
            cross_job_db: false,
            ..cfg()
        };
        let mut tm = TaskManager::new(c);
        tm.note_job(JobId(0), &[StageId(0)]);
        tm.note_job(JobId(1), &[StageId(1)]);
        tm.record_finish(&record(10, 1, 1, 1, false)); // stage 0 / job 0
                                                       // the producing job still benefits from its own history...
        assert_eq!(
            tm.queues_for(&pview(0, 0, StageKind::ShuffleMap, false)),
            vec![ResourceKind::Cpu]
        );
        // ...but the next tenant is back to first contact
        let mut later = pview(1, 0, StageKind::ShuffleMap, false);
        later.job = JobId(1);
        assert_eq!(
            tm.queues_for(&later).len(),
            5,
            "cold DB must not leak across jobs"
        );
        // the duration history is scoped the same way
        assert_eq!(
            tm.median_duration_secs(StageId(0), "w/s".into()),
            Some(12.0)
        );
        assert_eq!(tm.median_duration_secs(StageId(1), "w/s".into()), None);
    }

    #[test]
    fn queue_membership_and_removal() {
        let mut q = TaskQueues::new();
        let t = TaskRef {
            stage: StageId(0),
            index: 1,
        };
        q.enqueue(t, &ResourceKind::ALL, SimTime::ZERO, false, ByteSize::ZERO);
        assert!(q.contains(&t));
        assert_eq!(q.len(), 1, "multi-queue membership counts once");
        assert_eq!(q.iter_kind(ResourceKind::Cpu).count(), 1);
        q.remove(&t);
        assert!(!q.contains(&t));
        assert_eq!(
            q.iter_kind(ResourceKind::Cpu).count(),
            0,
            "lazy filtering hides removed tasks"
        );
        q.compact(ResourceKind::Cpu);
        assert!(q.is_empty());
    }

    #[test]
    fn tenant_shards_mirror_the_global_split() {
        let mut q = TaskQueues::new();
        q.set_tenant_mode();
        let t = |i| TaskRef {
            stage: StageId(i),
            index: 0,
        };
        // tenant 0: one plain, one special; tenant 1: one plain
        q.note_tenant(t(0), TenantId(0));
        q.enqueue(t(0), &[ResourceKind::Cpu], SimTime::ZERO, false, ByteSize::gib(2));
        q.note_tenant(t(1), TenantId(0));
        q.enqueue(t(1), &[ResourceKind::Cpu], SimTime::ZERO, true, ByteSize::gib(1));
        q.note_tenant(t(2), TenantId(1));
        q.enqueue(t(2), &[ResourceKind::Cpu], SimTime::ZERO, false, ByteSize::gib(4));

        let plain0: Vec<TaskRef> = q
            .plain_kind_of(ResourceKind::Cpu, TenantId(0))
            .map(|(_, task, _)| task)
            .collect();
        assert_eq!(plain0, vec![t(0)]);
        let special0: Vec<TaskRef> = q
            .special_kind_of(ResourceKind::Cpu, TenantId(0))
            .map(|(_, task)| task)
            .collect();
        assert_eq!(special0, vec![t(1)]);
        assert_eq!(
            q.plain_floor_of(ResourceKind::Cpu, TenantId(0)),
            Some(ByteSize::gib(2))
        );
        assert_eq!(
            q.plain_floor_of(ResourceKind::Cpu, TenantId(1)),
            Some(ByteSize::gib(4))
        );
        // the shards always equal the tenant-filtered global split
        let global: Vec<TaskRef> = q.plain_kind(ResourceKind::Cpu).map(|(_, task, _)| task).collect();
        assert_eq!(global, vec![t(0), t(2)]);

        // reclassify t(0) special → moves shards too
        q.reclassify(t(0), true, ByteSize::gib(2));
        assert_eq!(q.plain_kind_of(ResourceKind::Cpu, TenantId(0)).count(), 0);
        assert_eq!(q.special_kind_of(ResourceKind::Cpu, TenantId(0)).count(), 2);
        assert_eq!(q.plain_floor_of(ResourceKind::Cpu, TenantId(0)), None);

        // removal drains the owning shard only
        q.remove(&t(2));
        assert_eq!(q.plain_kind_of(ResourceKind::Cpu, TenantId(1)).count(), 0);
        assert_eq!(q.special_kind_of(ResourceKind::Cpu, TenantId(0)).count(), 2);
    }

    #[test]
    fn default_mode_keeps_shards_empty() {
        let mut q = TaskQueues::new();
        let t = TaskRef {
            stage: StageId(0),
            index: 0,
        };
        q.note_tenant(t, TenantId(3)); // no-op outside tenant mode
        q.enqueue(t, &ResourceKind::ALL, SimTime::ZERO, false, ByteSize::gib(1));
        assert!(!q.tenant_mode());
        assert_eq!(q.plain_kind_of(ResourceKind::Cpu, TenantId(0)).count(), 0);
        assert_eq!(q.plain_floor_of(ResourceKind::Cpu, TenantId(0)), None);
        assert_eq!(q.tenant_of(&t), TenantId(0));
    }

    #[test]
    fn waiting_since_tracked() {
        let mut q = TaskQueues::new();
        let t = TaskRef {
            stage: StageId(0),
            index: 0,
        };
        let t0 = SimTime::from_secs_f64(5.0);
        q.enqueue(t, &[ResourceKind::Gpu], t0, false, ByteSize::ZERO);
        assert_eq!(q.waiting_since(&t), Some(t0));
        // re-enqueue does not reset the clock
        q.enqueue(
            t,
            &[ResourceKind::Cpu],
            SimTime::from_secs_f64(9.0),
            false,
            ByteSize::ZERO,
        );
        assert_eq!(q.waiting_since(&t), Some(t0));
    }

    #[test]
    fn median_duration_per_template() {
        let mut tm = TaskManager::new(cfg());
        for secs in [10, 20, 30] {
            tm.record_finish(&record(secs, 0, 0, 1, false));
        }
        assert_eq!(
            tm.median_duration_secs(StageId(0), "w/s".into()),
            Some(20.0)
        );
        assert_eq!(tm.median_duration_secs(StageId(0), "unknown".into()), None);
    }

    #[test]
    fn memory_failure_marks_mem_bound() {
        let mut tm = TaskManager::new(cfg());
        tm.record_memory_failure(StageId(0), "w/s".into(), 0, ByteSize::gib(12), NodeId(3));
        let kinds = tm.queues_for(&pview(0, 0, StageKind::ShuffleMap, false));
        assert_eq!(kinds, vec![ResourceKind::Mem]);
        let char = tm.db().read(&TaskKey::new("w/s", 0)).unwrap();
        assert_eq!(char.peak_mem, ByteSize::gib(12));
        assert!(
            char.best.is_none() || char.best.unwrap().1 == f64::MAX,
            "a failed run must never become the best executor"
        );
    }
}
