//! RUPAM configuration.

use rupam_simcore::time::SimDuration;
use rupam_simcore::units::ByteSize;

use crate::alloc::{AllocationPolicy, TenantSpec};

/// Tunables of the RUPAM scheduler (§III).
#[derive(Clone, Debug)]
pub struct RupamConfig {
    /// `Res_factor` — sensitivity of the Algorithm 1 bottleneck
    /// classification ("a task is considered compute-bound if it spends
    /// 2× more time than shuffle").
    pub res_factor: f64,
    /// Memory the executor leaves for the OS when sizing itself to the
    /// node (§III-C2 dynamic allocation: executor = node memory − this).
    pub os_reserved: ByteSize,
    /// Fraction of executor memory that must stay free for RUPAM to
    /// consider a node for a memory-unknown task.
    pub unknown_task_mem_estimate: ByteSize,
    /// CPU-utilisation ceiling above which a node stops receiving more
    /// CPU-bound tasks (over-commit guard).
    pub cpu_util_ceiling: f64,
    /// Network-utilisation ceiling for NET-bound tasks.
    pub net_util_ceiling: f64,
    /// Disk-utilisation ceiling for I/O-bound tasks.
    pub disk_util_ceiling: f64,
    /// Maximum concurrent tasks per node as a multiple of cores (RUPAM
    /// over-commits beyond core count when resources allow; this caps the
    /// overlap).
    pub overcommit_factor: f64,
    /// Free-memory watermark that triggers memory-straggler relocation
    /// (§III-C3): below this fraction of executor memory, the hungriest
    /// task is killed and requeued.
    pub mem_straggler_watermark: f64,
    /// Minimum time between two memory-straggler kills on one node, to
    /// avoid kill storms.
    pub mem_straggler_cooldown: SimDuration,
    /// How long a GPU-bound task may wait for a GPU slot before RUPAM
    /// races a CPU copy on the strongest idle CPU node (§III-C3's
    /// OpenBLAS/NVBLAS race).
    pub gpu_race_after: SimDuration,
    /// A task whose `peakmemory` exceeds this fraction of the *smallest*
    /// executor is classified MEM-bound (Fig. 4's MEM queue).
    pub mem_bound_fraction: f64,
    /// Per-decision overhead (RUPAM does more bookkeeping than stock
    /// Spark; Fig. 7 shows a moderate extra scheduler delay).
    pub decision_cost: SimDuration,
    /// Ablation: disable the task-characteristics DB (every task is
    /// treated as first-contact forever).
    pub use_task_db: bool,
    /// Ablation: disable per-node executor sizing (fall back to the
    /// uniform smallest-node executor, like stock Spark).
    pub dynamic_executors: bool,
    /// Ablation: disable locality awareness inside Algorithm 2 (pure
    /// resource matching).
    pub use_locality: bool,
    /// Ablation: disable the straggler/racing extensions.
    pub straggler_handling: bool,
    /// How strongly a node's spot-preemption risk discounts its pick
    /// score: the dispatcher multiplies every candidate's score by
    /// `1 − min(1, spot_risk_penalty × preempt_risk)`, where
    /// `preempt_risk` is the per-check preemption probability the
    /// elastic controller publishes on the node view. `0.0` is the
    /// risk-blind ablation (spot nodes compete as equals); without an
    /// elastic spot tier every risk is `0.0` and any value here is a
    /// no-op, so decisions stay byte-identical to pre-elastic builds.
    pub spot_risk_penalty: f64,
    /// Keep `DB_task_char` entries warm across the jobs of a multi-tenant
    /// stream (keys stay per-template). Disabling scopes every entry to
    /// the stream job that produced it — the cold-DB control where a new
    /// tenant learns nothing from its predecessors.
    pub cross_job_db: bool,
    /// Keep per-resource node rankings and per-round dispatcher state
    /// incrementally (persistent ordered sets, `O(log n)` updates,
    /// memoised DB lookups) instead of rebuilding and re-sorting from
    /// scratch every offer round. Decision-identical to the rebuild
    /// path — the audit layer cross-checks the two orderings every
    /// round — so `false` exists only as the benchmark reference.
    pub incremental_queues: bool,
    /// How the incremental node-queue cache is sharded for parallel
    /// offer scoring: `0` = auto (one shard per rack when the cluster has
    /// more than one rack, otherwise unsharded), `n` = exactly
    /// `min(n, nodes)` fixed-size partitions. Decision-identical for
    /// every value — sharding changes how the global ranking is stored
    /// and scanned, never what it says.
    pub shard_count: usize,
    /// How the per-round allocation session orders tenants before the
    /// Dispatcher consumes their candidate slices. The default,
    /// [`AllocationPolicy::FifoBaseline`], keeps the single shared
    /// pending pool and is byte-identical to the pre-tenant scheduler.
    pub allocation: AllocationPolicy,
    /// Per-tenant weights and quotas, indexed by
    /// [`rupam_dag::TenantId`]. Tenants beyond the vector (or an empty
    /// vector) get [`TenantSpec::default`]: weight 1, no quota.
    pub tenants: Vec<TenantSpec>,
    /// Honour `gang: true` stage flags: admit such a stage only when
    /// every one of its tasks can be co-resident in one round, with
    /// all-or-nothing rollback. Off by default (gang stages dispatch
    /// piecemeal exactly as before).
    pub gang_admission: bool,
}

impl RupamConfig {
    /// True when any tenant-scoped machinery must run: a non-FIFO
    /// allocation policy, or at least one tenant with a quota. The
    /// FIFO-baseline with no quotas takes exactly the pre-tenant code
    /// paths (pinned by golden digests).
    pub fn tenant_aware(&self) -> bool {
        self.allocation != AllocationPolicy::FifoBaseline
            || self.tenants.iter().any(|t| t.quota.is_some())
    }
}

impl Default for RupamConfig {
    fn default() -> Self {
        RupamConfig {
            res_factor: 2.0,
            os_reserved: ByteSize::gib(2),
            unknown_task_mem_estimate: ByteSize::mib(1024),
            cpu_util_ceiling: 1.0,
            net_util_ceiling: 0.9,
            disk_util_ceiling: 0.9,
            overcommit_factor: 1.5,
            mem_straggler_watermark: 0.08,
            mem_straggler_cooldown: SimDuration::from_secs(5),
            gpu_race_after: SimDuration::from_secs(5),
            mem_bound_fraction: 0.25,
            decision_cost: SimDuration::from_millis(3),
            use_task_db: true,
            dynamic_executors: true,
            use_locality: true,
            straggler_handling: true,
            spot_risk_penalty: 1.0,
            cross_job_db: true,
            incremental_queues: true,
            shard_count: 0,
            allocation: AllocationPolicy::FifoBaseline,
            tenants: Vec::new(),
            gang_admission: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = RupamConfig::default();
        assert_eq!(c.res_factor, 2.0);
        assert!(c.overcommit_factor >= 1.0);
        assert!(c.mem_straggler_watermark > 0.0 && c.mem_straggler_watermark < 0.5);
        assert!(c.use_task_db && c.dynamic_executors && c.use_locality && c.straggler_handling);
        assert!(c.cross_job_db, "the warm DB is the paper's default");
        assert!(
            c.decision_cost > SimDuration::from_millis(1),
            "RUPAM costs more per decision than stock Spark"
        );
        assert_eq!(c.allocation, AllocationPolicy::FifoBaseline);
        assert!(c.tenants.is_empty() && !c.gang_admission);
        assert!(
            !c.tenant_aware(),
            "the default config must take the pre-tenant code paths"
        );
    }

    #[test]
    fn tenant_awareness_triggers() {
        let mut c = RupamConfig {
            allocation: AllocationPolicy::WeightedFair,
            ..RupamConfig::default()
        };
        assert!(c.tenant_aware());
        c.allocation = AllocationPolicy::FifoBaseline;
        c.tenants = vec![TenantSpec::default()];
        assert!(!c.tenant_aware(), "weights alone don't leave the baseline");
        c.tenants[0].quota = Some(0.5);
        assert!(c.tenant_aware(), "a quota arms the allocator");
    }
}
