//! `RupamScheduler` — the full system of Fig. 4 wired together.
//!
//! Per offer round:
//!
//! 1. newly pending tasks are submitted to the Task Manager, which
//!    places them in per-resource Task Queues (DB lookup / Algorithm 1
//!    first-contact rules);
//! 2. straggler handling runs (memory-straggler kills, GPU/CPU races,
//!    resource-straggler speculation) when enabled;
//! 3. the Dispatcher (Algorithm 2) matches Resource Queues against Task
//!    Queues round-robin and emits launches;
//! 4. engine-flagged speculatable tasks are relocated to the best node
//!    for their recorded bottleneck.

use std::collections::HashMap;

use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;
use rupam_simcore::Sym;

use rupam_cluster::resources::ResourceKind;
use rupam_cluster::{ClusterSpec, NodeId};
use rupam_dag::app::{Application, Stage, StageId};
use rupam_exec::scheduler::{Command, OfferInput, Scheduler};
use rupam_metrics::record::{AttemptOutcome, TaskRecord};
use rupam_metrics::trace::LaunchReason;

use crate::alloc::{quota_preemption_commands, AllocSession, AllocationPolicy, PreemptState};
use crate::config::RupamConfig;
use crate::dispatcher::Dispatcher;
use crate::rm::NodeQueueCache;
use crate::straggler::{
    gpu_race_commands, memory_straggler_commands, relocation_target, resource_straggler_candidates,
    StragglerState,
};
use crate::tm::TaskManager;

/// The heterogeneity-aware task scheduler.
pub struct RupamScheduler {
    cfg: RupamConfig,
    name: String,
    tm: TaskManager,
    straggler: StragglerState,
    /// Template key per stage (for failure bookkeeping).
    stage_templates: HashMap<StageId, Sym>,
    min_node_mem: ByteSize,
    /// Persistent per-kind node rankings, kept in sync with the offer
    /// snapshots instead of re-sorted every round (when
    /// `cfg.incremental_queues`).
    node_cache: NodeQueueCache,
    /// Per-tenant quota-preemption cooldowns (tenant-aware runs only).
    preempt: PreemptState,
}

impl RupamScheduler {
    /// Build a scheduler with the given configuration. The reported name
    /// encodes any ablation switches (`rupam`, `rupam-nodb`, …).
    pub fn new(cfg: RupamConfig) -> Self {
        let mut name = String::from("rupam");
        if !cfg.use_task_db {
            name.push_str("-nodb");
        }
        if !cfg.dynamic_executors {
            name.push_str("-staticmem");
        }
        if !cfg.use_locality {
            name.push_str("-noloc");
        }
        if !cfg.straggler_handling {
            name.push_str("-nostrag");
        }
        if !cfg.cross_job_db {
            name.push_str("-colddb");
        }
        if !cfg.incremental_queues {
            name.push_str("-rebuild");
        }
        match cfg.allocation {
            AllocationPolicy::FifoBaseline => {}
            AllocationPolicy::WeightedFair => name.push_str("-wfair"),
            AllocationPolicy::Drf => name.push_str("-drf"),
        }
        if cfg.tenants.iter().any(|t| t.quota.is_some()) {
            name.push_str("-quota");
        }
        if cfg.gang_admission {
            name.push_str("-gang");
        }
        RupamScheduler {
            tm: TaskManager::new(cfg.clone()),
            straggler: StragglerState::new(0),
            stage_templates: HashMap::new(),
            min_node_mem: ByteSize::gib(16),
            node_cache: NodeQueueCache::with_shards(cfg.shard_count),
            preempt: PreemptState::new(cfg.tenants.len()),
            cfg,
            name,
        }
    }

    /// The paper's configuration.
    pub fn default_config() -> RupamConfig {
        RupamConfig::default()
    }

    /// A scheduler with the paper's configuration.
    pub fn with_defaults() -> Self {
        Self::new(RupamConfig::default())
    }

    /// Access the Task Manager (tests, ablation instrumentation).
    pub fn tm(&self) -> &TaskManager {
        &self.tm
    }

    /// Wipe the task-characteristics DB (the Fig. 5 protocol clears it
    /// between repetitions).
    pub fn clear_db(&self) {
        self.tm.clear_db();
    }
}

impl Scheduler for RupamScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn executor_memory(&self, cluster: &ClusterSpec, node: NodeId) -> ByteSize {
        if self.cfg.dynamic_executors {
            // §III-C2: "RUPAM changes the executor size … different nodes
            // will have executors with different memory sizes"
            cluster.node(node).mem.saturating_sub(self.cfg.os_reserved)
        } else {
            cluster.min_mem().saturating_sub(self.cfg.os_reserved)
        }
    }

    fn decision_cost(&self) -> SimDuration {
        self.cfg.decision_cost
    }

    fn on_app_start(&mut self, app: &Application, cluster: &ClusterSpec) {
        self.straggler = StragglerState::new(cluster.len());
        self.tm.reset_run_state();
        self.node_cache.reset();
        self.preempt = PreemptState::new(self.cfg.tenants.len());
        self.min_node_mem = cluster.min_mem();
        let smallest_exec = cluster
            .iter()
            .map(|(id, _)| self.executor_memory(cluster, id))
            .min()
            .unwrap_or(ByteSize::gib(14));
        self.tm.set_smallest_executor(smallest_exec);
        self.stage_templates = app.stages.iter().map(|s| (s.id, s.template_key)).collect();
    }

    fn on_job_submitted(&mut self, job: rupam_dag::app::JobId, stages: &[StageId], _now: SimTime) {
        // the TM needs stage ownership to scope its keys when the
        // cold-DB control is active
        self.tm.note_job(job, stages);
    }

    fn on_stage_ready(&mut self, _stage: &Stage, _now: SimTime) {
        // tasks are picked up from `input.pending` at the next offer
        // round; nothing to do eagerly
    }

    fn on_task_finished(&mut self, record: &TaskRecord, _now: SimTime) {
        self.tm.record_finish(record);
    }

    fn on_task_failed(
        &mut self,
        task: rupam_dag::TaskRef,
        node: NodeId,
        outcome: AttemptOutcome,
        _now: SimTime,
    ) {
        self.tm.queues.remove(&task);
        if matches!(
            outcome,
            AttemptOutcome::OomFailure
                | AttemptOutcome::ExecutorLost
                | AttemptOutcome::MemoryStragglerKilled
        ) {
            if let Some(template) = self.stage_templates.get(&task.stage) {
                // a memory death marks the task MEM-bound so the next
                // placement favours large-memory nodes
                self.tm.record_memory_failure(
                    task.stage,
                    *template,
                    task.index,
                    ByteSize::ZERO,
                    node,
                );
            }
        }
    }

    fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
        // 0. tenant-aware runs refresh the job → tenant map before any
        //    ingestion, so every enqueue lands in the right shard
        let tenant_aware = self.cfg.tenant_aware();
        if tenant_aware {
            self.tm.note_tenants(&input.job_tenants);
        }

        // 1. submit newly pending tasks to the TM queues. With the
        //    `pending_fresh` warranty the full O(pending) scan collapses
        //    to the listed tasks: anything unlisted is either already
        //    queued with an unchanged view, or left the queues through
        //    this scheduler's own commands. Fresh-but-queued tasks only
        //    changed their view — refresh their classification without
        //    re-ingesting (the full scan never re-ingests them either).
        match &input.pending_fresh {
            None => {
                for view in &input.pending {
                    if !self.tm.queues.contains(&view.task) {
                        self.tm.requeue(view, input.now);
                    }
                }
            }
            Some(fresh) => {
                for task in fresh {
                    let Ok(i) = input.pending.binary_search_by(|p| {
                        (p.task.stage, p.task.index).cmp(&(task.stage, task.index))
                    }) else {
                        continue;
                    };
                    let view = &input.pending[i];
                    if !self.tm.queues.contains(task) {
                        self.tm.requeue(view, input.now);
                    } else {
                        self.tm.reclassify_view(view);
                    }
                }
            }
        }

        let mut cmds = Vec::new();

        // 2. straggler handling
        if self.cfg.straggler_handling {
            cmds.extend(memory_straggler_commands(
                &self.cfg,
                &mut self.straggler,
                input,
            ));
            cmds.extend(gpu_race_commands(
                &self.cfg,
                &mut self.straggler,
                input,
                &self.tm,
            ));
            for (task, bad_node) in resource_straggler_candidates(&self.cfg, input, &self.tm) {
                let kind = self
                    .stage_templates
                    .get(&task.stage)
                    .and_then(|t| self.tm.db().read(&crate::db::TaskKey::new(*t, task.index)))
                    .and_then(|c| c.last_bottleneck)
                    .unwrap_or(ResourceKind::Cpu);
                if let Some(target) = relocation_target(input, kind, bad_node) {
                    cmds.push(Command::Launch {
                        task,
                        node: target,
                        use_gpu: kind == ResourceKind::Gpu,
                        speculative: true,
                        reason: LaunchReason::Relocation { bottleneck: kind },
                    });
                }
            }
        }

        // 2.5 tenant allocation: freeze the session snapshot, reclaim
        //     capacity from over-quota tenants, and compute the order
        //     the Dispatcher serves tenants in this round
        let order: Option<Vec<rupam_dag::TenantId>> = if tenant_aware {
            let tenant_count = input
                .job_tenants
                .iter()
                .map(|t| t.index() + 1)
                .max()
                .unwrap_or(1)
                .max(self.cfg.tenants.len());
            let session = {
                let tm = &self.tm;
                AllocSession::snapshot(&self.cfg, input, tenant_count, &|stage| {
                    tm.tenant_of_stage(stage)
                })
            };
            {
                let tm = &self.tm;
                cmds.extend(quota_preemption_commands(
                    &self.cfg,
                    &session,
                    &mut self.preempt,
                    input,
                    &|stage| tm.tenant_of_stage(stage),
                ));
            }
            // over-quota tenants are skipped for the round: they are
            // surrendering capacity, not receiving more
            Some(
                session
                    .order(self.cfg.allocation)
                    .into_iter()
                    .filter(|&t| !session.over_quota(t))
                    .collect(),
            )
        } else {
            None
        };

        // 3. Algorithm 2 dispatch (gang stages first: all-or-nothing
        //    co-residency, with failed plans held for the round)
        if self.cfg.incremental_queues {
            let mut dispatcher = Dispatcher::new_incremental(&self.cfg, input);
            if self.cfg.gang_admission {
                cmds.extend(dispatcher.admit_gangs(&mut self.tm));
            }
            match &order {
                Some(order) => cmds.extend(dispatcher.dispatch_ordered_incremental(
                    &mut self.tm,
                    &mut self.node_cache,
                    order,
                )),
                None => {
                    cmds.extend(dispatcher.dispatch_incremental(&mut self.tm, &mut self.node_cache))
                }
            }
        } else {
            let mut dispatcher = Dispatcher::new(&self.cfg, input);
            if self.cfg.gang_admission {
                cmds.extend(dispatcher.admit_gangs(&mut self.tm));
            }
            match &order {
                Some(order) => cmds.extend(dispatcher.dispatch_ordered(&mut self.tm, order)),
                None => cmds.extend(dispatcher.dispatch(&mut self.tm)),
            }
        }

        // 4. engine-flagged stragglers: relocate to the best node for
        //    the task's recorded bottleneck
        for s in &input.speculatable {
            let kind =
                self.tm
                    .lookup(s)
                    .and_then(|c| c.last_bottleneck)
                    .unwrap_or(if s.gpu_capable {
                        ResourceKind::Gpu
                    } else {
                        ResourceKind::Cpu
                    });
            // find where the original runs so the copy lands elsewhere
            let original_node = input
                .nodes
                .iter()
                .find(|v| v.running.iter().any(|r| r.task == s.task))
                .map(|v| v.node)
                .unwrap_or(NodeId(0));
            if let Some(target) = relocation_target(input, kind, original_node) {
                cmds.push(Command::Launch {
                    task: s.task,
                    node: target,
                    use_gpu: kind == ResourceKind::Gpu && s.gpu_capable,
                    speculative: true,
                    reason: LaunchReason::Relocation { bottleneck: kind },
                });
            }
        }

        cmds
    }

    fn audit_round(&self, input: &OfferInput<'_>) -> Vec<String> {
        // Re-derive the Resource Queues from the same snapshot and check
        // RUPAM's own structural invariants: every queue sorted by
        // non-increasing remaining capability, holding only unblocked
        // nodes that actually have the resource.
        let mut findings = Vec::new();
        let queues = crate::rm::ResourceQueues::build(input.cluster, &input.nodes);
        for kind in ResourceKind::ALL {
            let nodes = queues.nodes(kind);
            for &n in nodes {
                if input.nodes[n.index()].blocked {
                    findings.push(format!("{kind:?} queue holds blocked node {n:?}"));
                }
                if input.nodes[n.index()].dead {
                    findings.push(format!("{kind:?} queue holds dead node {n:?}"));
                }
                if !input.cluster.node(n).has_resource(kind) {
                    findings.push(format!("{kind:?} queue holds {n:?} with zero capability"));
                }
            }
            for w in nodes.windows(2) {
                let ahead = crate::rm::remaining_capability(
                    input.cluster,
                    &input.nodes[w[0].index()],
                    kind,
                );
                let behind = crate::rm::remaining_capability(
                    input.cluster,
                    &input.nodes[w[1].index()],
                    kind,
                );
                if behind > ahead * (1.0 + 1e-9) + 1e-12 {
                    findings.push(format!(
                        "{kind:?} queue out of order: {:?} ({ahead:.4}) ranked ahead of {:?} ({behind:.4})",
                        w[0], w[1]
                    ));
                }
            }
        }
        // The incremental rankings must match a from-scratch rebuild of
        // the very snapshot they just dispatched from — this is the
        // equivalence oracle for the O(log n) path.
        if self.cfg.incremental_queues {
            findings.extend(self.node_cache.verify(input.cluster, &input.nodes));
        }
        findings
    }

    fn on_heartbeat(&mut self, _now: SimTime) {
        // fold queued DB_task_char writes into the store off the
        // dispatch path, so offer rounds mostly hit the read-optimised
        // shards with empty pending queues
        self.tm.db().nudge();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::app::StageKind;
    use rupam_dag::data::DataLayout;
    use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
    use rupam_exec::{simulate, SimConfig, SimInput};
    use rupam_simcore::RngFactory;

    use crate::baseline::SparkScheduler;

    #[test]
    fn dynamic_executor_sizing() {
        let cluster = ClusterSpec::hydra();
        let s = RupamScheduler::with_defaults();
        let thor = cluster.nodes_in_class("thor")[0];
        let hulk = cluster.nodes_in_class("hulk")[0];
        assert_eq!(s.executor_memory(&cluster, thor), ByteSize::gib(14));
        assert_eq!(s.executor_memory(&cluster, hulk), ByteSize::gib(62));
    }

    #[test]
    fn static_ablation_matches_spark_sizing() {
        let cfg = RupamConfig {
            dynamic_executors: false,
            ..RupamConfig::default()
        };
        let s = RupamScheduler::new(cfg);
        assert_eq!(s.name(), "rupam-staticmem");
        let cluster = ClusterSpec::hydra();
        for (id, _) in cluster.iter() {
            assert_eq!(s.executor_memory(&cluster, id), ByteSize::gib(14));
        }
    }

    /// Build a compute-heavy iterative app whose tasks live on HDFS
    /// blocks placed across the cluster.
    fn compute_app(
        cluster: &ClusterSpec,
        seed: u64,
        iterations: usize,
        compute: f64,
        peak: ByteSize,
    ) -> (Application, DataLayout) {
        let mut layout = DataLayout::new();
        let mut rng = RngFactory::new(seed).stream("layout");
        let n_parts = 24;
        let blocks = layout.place_blocks(cluster, &vec![ByteSize::mib(128); n_parts], 2, &mut rng);
        let mut b = rupam_dag::AppBuilder::new("compute-app");
        for _ in 0..iterations {
            let j = b.begin_job();
            let tasks: Vec<TaskTemplate> = (0..n_parts)
                .map(|i| TaskTemplate {
                    index: i,
                    input: InputSource::CachedOrHdfs {
                        key: rupam_dag::task::CacheKey::new("compute/data", i),
                        fallback: blocks[i],
                    },
                    demand: TaskDemand {
                        compute,
                        input_bytes: ByteSize::mib(128),
                        peak_mem: peak,
                        cached_bytes: ByteSize::mib(192),
                        shuffle_write: ByteSize::mib(4),
                        ..TaskDemand::default()
                    },
                })
                .collect();
            let m = b.add_stage(
                j,
                "grad",
                "compute/data",
                StageKind::ShuffleMap,
                vec![],
                tasks,
            );
            b.add_stage(
                j,
                "agg",
                "compute/agg",
                StageKind::Result,
                vec![m],
                vec![TaskTemplate {
                    index: 0,
                    input: InputSource::Shuffle,
                    demand: TaskDemand {
                        compute: 1.0,
                        shuffle_read: ByteSize::mib(4 * n_parts as u64),
                        output_bytes: ByteSize::mib(1),
                        peak_mem: ByteSize::mib(512),
                        ..TaskDemand::default()
                    },
                }],
            );
        }
        (b.build(), layout)
    }

    #[test]
    fn rupam_completes_and_learns() {
        let cluster = ClusterSpec::hydra();
        let (app, layout) = compute_app(&cluster, 3, 3, 20.0, ByteSize::gib(1));
        let cfg = SimConfig::default();
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed: 3,
        };
        let mut rupam = RupamScheduler::with_defaults();
        let report = simulate(&input, &mut rupam);
        assert!(report.completed);
        assert_eq!(report.scheduler_name, "rupam");
        // the DB should now know the gradient tasks
        assert!(!rupam.tm().db().is_empty());
        let char = rupam
            .tm()
            .db()
            .read(&crate::db::TaskKey::new("compute/data", 0))
            .expect("task characterised");
        assert!(char.runs >= 1);
    }

    #[test]
    fn rupam_beats_spark_on_heterogeneous_iterative_compute() {
        let cluster = ClusterSpec::hydra();
        let cfg = SimConfig::default();
        let mut spark_total = 0.0;
        let mut rupam_total = 0.0;
        for seed in [11, 12, 13] {
            let (app, layout) = compute_app(&cluster, seed, 4, 20.0, ByteSize::gib(1));
            let input = SimInput {
                cluster: &cluster,
                app: &app,
                layout: &layout,
                config: &cfg,
                seed,
            };
            let mut spark = SparkScheduler::with_defaults();
            let spark_report = simulate(&input, &mut spark);
            let mut rupam = RupamScheduler::with_defaults();
            let rupam_report = simulate(&input, &mut rupam);
            assert!(spark_report.completed && rupam_report.completed);
            spark_total += spark_report.makespan.as_secs_f64();
            rupam_total += rupam_report.makespan.as_secs_f64();
        }
        assert!(
            rupam_total < spark_total,
            "RUPAM ({rupam_total:.1}s) should beat Spark ({spark_total:.1}s) on \
             an iterative compute-bound workload on Hydra"
        );
    }

    #[test]
    fn rupam_avoids_memory_deaths_spark_suffers() {
        let cluster = ClusterSpec::hydra();
        // memory-hungry tasks: 6 GiB peak each; Spark's uniform 14 GiB
        // executors choke when 8 cores × 6 GiB land on a thor node
        let (app, layout) = compute_app(&cluster, 21, 2, 8.0, ByteSize::gib(6));
        let cfg = SimConfig::default();
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed: 21,
        };
        let mut spark = SparkScheduler::with_defaults();
        let spark_report = simulate(&input, &mut spark);
        let mut rupam = RupamScheduler::with_defaults();
        let rupam_report = simulate(&input, &mut rupam);
        let spark_deaths = spark_report.oom_failures + spark_report.executor_losses;
        let rupam_deaths = rupam_report.oom_failures + rupam_report.executor_losses;
        assert!(
            spark_deaths > rupam_deaths,
            "expected Spark ({spark_deaths}) to suffer more memory deaths than RUPAM ({rupam_deaths})"
        );
    }

    #[test]
    fn warm_stream_reuses_characterization_cold_stream_partitions_it() {
        let cluster = ClusterSpec::hydra();
        let cfg = SimConfig::default();
        let build_stream = || {
            let mut stream = rupam_dag::JobStream::new();
            let (a1, l1) = compute_app(&cluster, 7, 2, 10.0, ByteSize::gib(1));
            let (a2, l2) = compute_app(&cluster, 8, 2, 10.0, ByteSize::gib(1));
            stream.push("tenant-a", a1, l1, SimTime::ZERO);
            stream.push("tenant-b", a2, l2, SimTime::from_secs_f64(20.0));
            stream.merge()
        };

        let warm_stream = build_stream();
        let input = rupam_exec::StreamInput {
            cluster: &cluster,
            stream: &warm_stream,
            config: &cfg,
            seed: 7,
        };
        let mut warm = RupamScheduler::with_defaults();
        let report = rupam_exec::simulate_stream(&input, &mut warm);
        assert!(report.completed);
        assert_eq!(report.jobs.len(), 2);
        assert!(report.jobs.iter().all(|j| j.completed_at.is_some()));
        // warm DB: both tenants bank under the shared template key
        assert!(warm
            .tm()
            .db()
            .read(&crate::db::TaskKey::new("compute/data", 0))
            .is_some());

        let cold_stream = build_stream();
        let input = rupam_exec::StreamInput {
            cluster: &cluster,
            stream: &cold_stream,
            config: &cfg,
            seed: 7,
        };
        let mut cold = RupamScheduler::new(RupamConfig {
            cross_job_db: false,
            ..RupamConfig::default()
        });
        assert_eq!(cold.name(), "rupam-colddb");
        let report = rupam_exec::simulate_stream(&input, &mut cold);
        assert!(report.completed);
        // cold DB: every entry is scoped to the tenant that produced it
        let db = cold.tm().db();
        assert!(db
            .read(&crate::db::TaskKey::new("compute/data", 0))
            .is_none());
        assert!(db
            .read(&crate::db::TaskKey::new("j0@compute/data", 0))
            .is_some());
        assert!(db
            .read(&crate::db::TaskKey::new("j1@compute/data", 0))
            .is_some());
    }

    #[test]
    fn gpu_capable_work_reaches_gpus() {
        let cluster = ClusterSpec::hydra();
        let mut layout = DataLayout::new();
        let mut rng = RngFactory::new(5).stream("layout");
        let blocks = layout.place_blocks(&cluster, &[ByteSize::mib(64); 8], 2, &mut rng);
        let mut b = rupam_dag::AppBuilder::new("gpu-app");
        let j = b.begin_job();
        let tasks: Vec<TaskTemplate> = (0..8)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Hdfs(blocks[i]),
                demand: TaskDemand {
                    compute: 30.0,
                    gpu_kernels: 28.0,
                    input_bytes: ByteSize::mib(64),
                    peak_mem: ByteSize::gib(1),
                    ..TaskDemand::default()
                },
            })
            .collect();
        b.add_stage(j, "mult", "gpu/mult", StageKind::Result, vec![], tasks);
        let app = b.build();
        let cfg = SimConfig::default();
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed: 5,
        };
        let mut rupam = RupamScheduler::with_defaults();
        let report = simulate(&input, &mut rupam);
        assert!(report.completed);
        assert!(
            report.gpu_task_count() > 0,
            "no work reached the stack GPUs"
        );
    }
}
