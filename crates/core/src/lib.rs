//! # rupam — A Heterogeneity-Aware Task Scheduler for Spark
//!
//! The paper's contribution (Xu, Butt, Lim, Kannan — IEEE CLUSTER 2018),
//! implemented against the [`rupam_exec`] scheduler interface, plus the
//! stock Spark baseline it is evaluated against:
//!
//! * [`baseline`] — `SparkScheduler`: Spark 2.2's locality-driven delay
//!   scheduling with uniform executors and one-task-per-core slots.
//! * [`fifo`] — `FifoScheduler`: a locality-blind first-fit floor and a
//!   minimal example of the scheduler trait.
//! * [`rm`] — Resource Queues: one priority queue per resource kind,
//!   nodes ordered by capability (descending) then utilisation
//!   (ascending) (§III-B1).
//! * [`tm`] — the Task Manager: Algorithm 1 task characterisation, the
//!   per-resource Task Queues, and `DB_task_char` with its helper-thread
//!   write-behind (§III-B2).
//! * [`dispatcher`] — Algorithm 2: round-robin across resource kinds,
//!   memory feasibility, best-executor locking, locality tie-breaks.
//! * [`straggler`] — memory-straggler relocation and GPU/CPU racing
//!   (§III-C3).
//! * [`alloc`] — tenant allocation: fair queues (weighted-fair, DRF),
//!   per-round session snapshots, quota preemption and gang admission
//!   support (ROADMAP #4).
//! * [`scheduler`] — `RupamScheduler`, tying the components together,
//!   with ablation switches for the design-choice benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use rupam::{RupamScheduler, SparkScheduler};
//! use rupam_cluster::ClusterSpec;
//! use rupam_exec::{simulate, SimConfig, SimInput};
//!
//! // any rupam_dag::Application + DataLayout will do; see rupam-workloads
//! # use rupam_dag::{AppBuilder, StageKind};
//! # use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
//! # let mut b = AppBuilder::new("demo");
//! # let j = b.begin_job();
//! # b.add_stage(j, "r", "demo/r", StageKind::Result, vec![], vec![TaskTemplate {
//! #     index: 0, input: InputSource::Generated, demand: TaskDemand { compute: 1.0, ..TaskDemand::default() } }]);
//! # let app = b.build();
//! # let layout = rupam_dag::DataLayout::new();
//! let cluster = ClusterSpec::hydra();
//! let config = SimConfig::default();
//! let input = SimInput { cluster: &cluster, app: &app, layout: &layout, config: &config, seed: 1 };
//!
//! let mut rupam = RupamScheduler::new(RupamScheduler::default_config());
//! let report = simulate(&input, &mut rupam);
//! assert!(report.completed);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod baseline;
pub mod config;
pub mod db;
pub mod dispatcher;
pub mod fifo;
pub mod rm;
pub mod scheduler;
pub mod straggler;
pub mod tm;

pub use alloc::{AllocationPolicy, TenantSpec};
pub use baseline::SparkScheduler;
pub use config::RupamConfig;
pub use fifo::FifoScheduler;
pub use scheduler::RupamScheduler;
