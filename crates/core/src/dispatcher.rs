//! The Dispatcher: Algorithm 2 (§III-C).
//!
//! Each offer round:
//!
//! 1. RM's Resource Queues rank the nodes per resource kind
//!    (capability ↓, utilisation ↑).
//! 2. The Dispatcher dequeues one node per resource kind in round-robin
//!    order "to make sure no task with a single resource type is
//!    starved", and matches it against the Task Queue of that kind.
//! 3. For the candidate task list it enforces the memory-feasibility
//!    check (`task.peakmemory ≤ node.freememory`), honours the
//!    best-executor lock (`historyresource.size = 5 ∧ optexecutor =
//!    node`), and picks the task with the best locality in the order
//!    PROCESS_LOCAL, NODE_LOCAL, RACK_LOCAL, ANY.
//!
//! Unlike stock Spark's one-task-per-core slots, a node is available "as
//! long as it has enough resources to execute a task" — the Dispatcher
//! over-commits nodes whose *other* resources are idle (§III-C2), bounded
//! by per-kind utilisation ceilings and an overall overcommit factor.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};

use rupam_simcore::units::ByteSize;

use rupam_cluster::resources::ResourceKind;
use rupam_cluster::NodeId;
use rupam_dag::app::StageId;
use rupam_dag::{Locality, TaskRef, TenantId};
use rupam_exec::scheduler::{Command, NodeView, OfferInput, PendingTaskView};
use rupam_metrics::trace::LaunchReason;

use crate::config::RupamConfig;
use crate::rm::{NodeQueueCache, Rank, ResourceQueues, ShardedOrder};
use crate::tm::TaskManager;

/// Per-node admission bookkeeping within one offer round (commands have
/// not been applied yet, so the Dispatcher accounts its own claims).
#[derive(Clone, Debug, Default)]
struct Claims {
    launches: usize,
    mem: ByteSize,
    cpu: usize,
    net: usize,
    io: usize,
    gpu: u32,
}

/// Incremental path only: one resource kind's TM queue, split once per
/// round into the tasks that can influence [`Dispatcher::schedule_task`]'s
/// early returns or locality ranking (*special*: placement preferences or
/// a live best-executor lock) and the rest (*plain*: no preferences, no
/// lock — their locality on any node is always `ANY` and they can never
/// trigger a lock return), so a match probe scans `O(special)` instead of
/// `O(queue)`. Entries are `(queue position, task)` in queue order;
/// launched tasks are skipped on read (queues only shrink mid-round), so
/// the partition stays a faithful image of the live queue. The plain
/// side additionally tracks the live multiset of peak-memory estimates
/// so "nothing plain fits" is answered without a scan.
struct KindPartition {
    special: Vec<(usize, TaskRef)>,
    plain: Vec<(usize, TaskRef, ByteSize)>,
    /// Plain entries before this index are all launched.
    plain_head: usize,
    /// Peak estimate of each plain member (for consume-time updates).
    plain_peak: HashMap<TaskRef, ByteSize>,
    /// Live plain peaks → multiplicity; the first key is the floor.
    plain_by_peak: BTreeMap<ByteSize, usize>,
}

/// The per-kind node ranking a dispatch pass consumes: either rebuilt
/// from scratch for this round (the reference path) or served from the
/// scheduler's persistent sharded [`NodeQueueCache`] with early-exit
/// bounds per shard.
enum Ranking<'c> {
    Rebuilt(ResourceQueues),
    Cached(ShardedOrder<'c>),
}

/// Algorithm 2 over one offer snapshot.
pub struct Dispatcher<'a> {
    cfg: &'a RupamConfig,
    input: &'a OfferInput<'a>,
    /// Reference path only: pending views indexed eagerly. The
    /// incremental path instead binary-searches `input.pending` (already
    /// sorted by `(stage, index)`) and tracks launches in `launched`.
    pending: HashMap<TaskRef, &'a PendingTaskView>,
    launched: HashSet<TaskRef>,
    incremental: bool,
    /// `input.pending_fresh` was present: the TM's *persistent*
    /// special/plain split is warranted in sync with the views, so the
    /// probes read it directly instead of building a [`KindPartition`]
    /// per round.
    hint: bool,
    claims: Vec<Claims>,
    /// Smallest peak-memory estimate among each kind queue's live
    /// candidates, refreshed each dispatch pass. A node whose free
    /// memory is below its kind's floor cannot launch *anything* from
    /// that queue, so [`Dispatcher::has_room`] reports it unavailable —
    /// otherwise a memory-full node at the top of a capability ranking
    /// blocks its whole kind for the round while lower-ranked nodes sit
    /// idle. `None` means the floor is unknown (queue empty or not yet
    /// computed) — the MEM arm then falls back to the conservative
    /// default estimate, the other arms admit vacuously.
    floors: [Option<ByteSize>; ResourceKind::COUNT],
    /// Incremental path only: one DB round-trip per task per round
    /// instead of one per (task, candidate-node) probe. The DB is not
    /// written during a round, so the memo can never go stale.
    peak_cache: RefCell<HashMap<TaskRef, ByteSize>>,
    lock_cache: RefCell<HashMap<TaskRef, Option<NodeId>>>,
    /// Incremental path only: lazily-built per-kind queue partitions
    /// (see [`KindPartition`]); `None` until a kind's queue is first
    /// probed this round.
    partitions: RefCell<[Option<KindPartition>; ResourceKind::COUNT]>,
    /// Tenant scope of the current matching pass. `None` (the default)
    /// is the shared pool — every probe considers every pending task,
    /// exactly the pre-tenant behaviour. Set per tenant by
    /// [`Dispatcher::run_ordered`].
    tenant: Option<TenantId>,
    /// Tasks held back from piecemeal dispatch this round: members of a
    /// gang stage whose all-or-nothing plan did not fit. Invisible to
    /// every probe and to the safety valve.
    held: HashSet<TaskRef>,
}

impl<'a> Dispatcher<'a> {
    /// Prepare a dispatcher for one offer round (reference path: indexes
    /// all pending views up front, re-reads the DB on every probe).
    pub fn new(cfg: &'a RupamConfig, input: &'a OfferInput<'a>) -> Self {
        let pending = input.pending.iter().map(|p| (p.task, p)).collect();
        Self::build(cfg, input, pending, false)
    }

    /// Prepare a dispatcher that resolves pending views by binary search
    /// and memoises DB lookups for the duration of the round. Decisions
    /// are identical to [`Dispatcher::new`]; only the cost differs.
    pub fn new_incremental(cfg: &'a RupamConfig, input: &'a OfferInput<'a>) -> Self {
        debug_assert!(
            input
                .pending
                .windows(2)
                .all(|w| (w[0].task.stage, w[0].task.index) < (w[1].task.stage, w[1].task.index)),
            "OfferInput.pending must stay sorted by (stage, index)"
        );
        Self::build(cfg, input, HashMap::new(), true)
    }

    fn build(
        cfg: &'a RupamConfig,
        input: &'a OfferInput<'a>,
        pending: HashMap<TaskRef, &'a PendingTaskView>,
        incremental: bool,
    ) -> Self {
        Dispatcher {
            cfg,
            input,
            pending,
            launched: HashSet::new(),
            incremental,
            hint: incremental && input.pending_fresh.is_some(),
            claims: vec![Claims::default(); input.nodes.len()],
            floors: [None; ResourceKind::COUNT],
            peak_cache: RefCell::new(HashMap::new()),
            lock_cache: RefCell::new(HashMap::new()),
            partitions: RefCell::new(std::array::from_fn(|_| None)),
            tenant: None,
            held: HashSet::new(),
        }
    }

    /// The pending view for `task`, if it is still dispatchable this
    /// round.
    fn view_of(&self, task: TaskRef) -> Option<&'a PendingTaskView> {
        if !self.held.is_empty() && self.held.contains(&task) {
            return None;
        }
        if !self.incremental {
            return self.pending.get(&task).copied();
        }
        if self.launched.contains(&task) {
            return None;
        }
        self.input
            .pending
            .binary_search_by(|p| (p.task.stage, p.task.index).cmp(&(task.stage, task.index)))
            .ok()
            .map(|i| &self.input.pending[i])
    }

    /// Mark `task` consumed by a launch.
    fn consume(&mut self, task: TaskRef) {
        if self.incremental {
            self.launched.insert(task);
            for part in self.partitions.borrow_mut().iter_mut().flatten() {
                if let Some(&peak) = part.plain_peak.get(&task) {
                    if let Some(count) = part.plain_by_peak.get_mut(&peak) {
                        *count -= 1;
                        if *count == 0 {
                            part.plain_by_peak.remove(&peak);
                        }
                    }
                }
            }
        } else {
            self.pending.remove(&task);
        }
    }

    /// Still dispatchable this round (safety-valve probe).
    fn is_unclaimed(&self, task: TaskRef) -> bool {
        if self.held.contains(&task) {
            return false;
        }
        if self.incremental {
            !self.launched.contains(&task)
        } else {
            self.pending.contains_key(&task)
        }
    }

    /// Whether `task` belongs to the tenant scope of the current
    /// matching pass (vacuously true on the shared pool).
    fn in_scope(&self, tm: &TaskManager, task: TaskRef) -> bool {
        match self.tenant {
            None => true,
            Some(t) => tm.queues.tenant_of(&task) == t,
        }
    }

    /// A best-executor lock is only honoured while its target is alive:
    /// a lock pointing at a node the failure detector declared dead is
    /// released (and its memory-veto override with it) until the node is
    /// re-admitted and re-earns the lock.
    fn live_lock(&self, locked: Option<NodeId>) -> Option<NodeId> {
        locked.filter(|n| {
            self.input
                .nodes
                .get(n.index())
                .map(|v| !v.dead)
                .unwrap_or(false)
        })
    }

    /// One memoised DB round-trip: `(peak estimate, best-executor lock)`.
    fn cached_char(&self, tm: &TaskManager, view: &PendingTaskView) -> (ByteSize, Option<NodeId>) {
        let task = view.task;
        if let Some(&peak) = self.peak_cache.borrow().get(&task) {
            let locked = self.lock_cache.borrow()[&task];
            return (peak, locked);
        }
        let char = tm.lookup(view);
        let locked = self.live_lock(char.as_ref().and_then(|c| {
            if c.history_size() == ResourceKind::COUNT {
                c.best.map(|(n, _)| n)
            } else {
                None
            }
        }));
        let peak = if view.peak_mem_hint > ByteSize::ZERO {
            view.peak_mem_hint
        } else {
            match &char {
                Some(c) if c.peak_mem > ByteSize::ZERO => c.peak_mem,
                _ => self.cfg.unknown_task_mem_estimate,
            }
        };
        self.peak_cache.borrow_mut().insert(task, peak);
        self.lock_cache.borrow_mut().insert(task, locked);
        (peak, locked)
    }

    /// Estimated peak memory for admission: the observed peak when the
    /// task (or the DB) knows it, else a conservative default.
    fn peak_estimate(&self, tm: &TaskManager, view: &PendingTaskView) -> ByteSize {
        if self.incremental {
            return self.cached_char(tm, view).0;
        }
        if view.peak_mem_hint > ByteSize::ZERO {
            return view.peak_mem_hint;
        }
        if let Some(char) = tm.lookup(view) {
            if char.peak_mem > ByteSize::ZERO {
                return char.peak_mem;
            }
        }
        self.cfg.unknown_task_mem_estimate
    }

    /// The node a fully-characterised task is locked to, if any
    /// (`historyresource.size = 5 ∧ optexecutor` known).
    fn locked_best(&self, tm: &TaskManager, view: &PendingTaskView) -> Option<NodeId> {
        if self.incremental {
            return self.cached_char(tm, view).1;
        }
        self.live_lock(tm.lookup(view).and_then(|c| {
            if c.history_size() == ResourceKind::COUNT {
                c.best.map(|(n, _)| n)
            } else {
                None
            }
        }))
    }

    fn free_mem_after_claims(&self, node: NodeId) -> ByteSize {
        let v = &self.input.nodes[node.index()];
        v.free_mem.saturating_sub(self.claims[node.index()].mem)
    }

    /// §III-C2 availability: "a node is available as long as it has
    /// enough resources to execute a task" of the given kind.
    pub fn has_room(&self, node: NodeId, kind: ResourceKind) -> bool {
        self.has_room_floored(node, kind, self.floors[kind.index()])
    }

    /// [`Dispatcher::has_room`] against an explicit memory floor — the
    /// cheapest candidate the caller intends to place. Memory is a
    /// resource like any other: a node that cannot fit even that task
    /// is not available for this queue, no matter how much idle CPU or
    /// network it has. The GPU→CPU fallback passes the *GPU* queue's
    /// floor here, since that is what the picked CPU node must hold.
    fn has_room_floored(&self, node: NodeId, kind: ResourceKind, floor: Option<ByteSize>) -> bool {
        let v: &NodeView = &self.input.nodes[node.index()];
        if v.blocked {
            return false;
        }
        let spec = self.input.cluster.node(node);
        let claims = &self.claims[node.index()];
        let cap = (spec.cores as f64 * self.cfg.overcommit_factor).ceil() as usize;
        if v.running_count() + claims.launches >= cap {
            return false;
        }
        if kind != ResourceKind::Mem {
            // an unknown floor (empty queue) admits vacuously — no
            // candidate exists for the probe to launch anyway
            if let Some(f) = floor {
                if self.free_mem_after_claims(node) < f {
                    return false;
                }
            }
        }
        let cores = spec.cores as f64;
        // "fits after adding one more task" semantics: a ceiling of 1.0
        // admits exactly one task per idle core, like Spark, while lower
        // ceilings reserve headroom
        match kind {
            ResourceKind::Cpu => {
                v.cpu_util + (claims.cpu + 1) as f64 / cores <= self.cfg.cpu_util_ceiling + 1e-9
            }
            ResourceKind::Mem => {
                // a large-memory node has room as long as the *cheapest
                // actual candidate* fits — gating on the fixed default
                // estimate starved big nodes of known-small MEM tasks and
                // admitted known-huge ones it could never hold
                let needed = floor.unwrap_or(self.cfg.unknown_task_mem_estimate);
                self.free_mem_after_claims(node) >= needed
            }
            ResourceKind::Io => {
                v.disk_util + (claims.io + 1) as f64 * 0.25 <= self.cfg.disk_util_ceiling + 1e-9
            }
            ResourceKind::Net => {
                v.net_util + (claims.net + 1) as f64 * 0.25 <= self.cfg.net_util_ceiling + 1e-9
            }
            ResourceKind::Gpu => v.gpus_idle > claims.gpu,
        }
    }

    fn note_claim(&mut self, node: NodeId, kind: ResourceKind, mem: ByteSize) {
        let c = &mut self.claims[node.index()];
        c.launches += 1;
        c.mem += mem;
        match kind {
            ResourceKind::Cpu => c.cpu += 1,
            ResourceKind::Io => c.io += 1,
            ResourceKind::Net => c.net += 1,
            ResourceKind::Gpu => c.gpu += 1,
            ResourceKind::Mem => {}
        }
    }

    /// Per-kind utilisation including this round's own claims — the
    /// within-round counterpart of [`crate::rm::utilization`], using the
    /// same marginal-cost model as [`Dispatcher::has_room`].
    fn utilization_with_claims(&self, node: NodeId, kind: ResourceKind) -> f64 {
        let v = &self.input.nodes[node.index()];
        let claims = &self.claims[node.index()];
        let spec = self.input.cluster.node(node);
        match kind {
            ResourceKind::Cpu => v.cpu_util + claims.cpu as f64 / spec.cores as f64,
            ResourceKind::Mem => {
                let cap = v.executor_mem.as_f64();
                if cap <= 0.0 {
                    1.0
                } else {
                    (v.mem_in_use.as_f64() + claims.mem.as_f64()) / cap
                }
            }
            ResourceKind::Io => v.disk_util + claims.io as f64 * 0.25,
            ResourceKind::Net => v.net_util + claims.net as f64 * 0.25,
            ResourceKind::Gpu => {
                let total =
                    v.gpus_idle as f64 + v.running.iter().filter(|r| r.on_gpu).count() as f64;
                if total <= 0.0 {
                    1.0
                } else {
                    1.0 - v.gpus_idle.saturating_sub(claims.gpu) as f64 / total
                }
            }
        }
    }

    /// Dequeue the best node with room from `queue_kind`'s Resource
    /// Queue. Algorithm 2 keeps the queues "sorted based on both the
    /// capability and the current utilization", and within one round the
    /// round's own claims *are* utilisation the heartbeats have not seen
    /// yet — so the pick maximises the *per-task service capability* a
    /// new task would actually see:
    ///
    /// * CPU and GPU are per-unit resources — a free core (or device)
    ///   serves a task at full speed no matter how busy its neighbours
    ///   are, so capability stays flat until [`Dispatcher::has_room`]
    ///   says the node is saturated. Utilisation only breaks ties, which
    ///   rotates bursts across equally-capable peers.
    /// * Memory, network and disk are shared pools — every admitted task
    ///   shrinks what the next one gets, so remaining capability
    ///   `capability × (1 − utilisation-with-claims)` decays with each
    ///   claim and a large burst waterfills down the tiers instead of
    ///   starving the weaker nodes behind the head.
    ///
    /// On the incremental path the cached [`ShardedOrder`] carries, per
    /// shard and queue position, an upper bound on any later node's
    /// score — so the scan skips whole shards whose top bound cannot
    /// beat the incumbent and stops inside a shard as soon as the
    /// incumbent strictly beats the position bound (strictly: a later
    /// node may still tie the score and win the utilisation/load/rank
    /// tiebreak), instead of always walking the full queue.
    fn pick_node(
        &self,
        ranking: &Ranking<'_>,
        queue_kind: ResourceKind,
        floor: Option<ByteSize>,
    ) -> Option<NodeId> {
        match ranking {
            Ranking::Rebuilt(q) => self.pick_node_scan(q.nodes(queue_kind), queue_kind, floor),
            Ranking::Cached(order) => self.pick_node_sharded(order, queue_kind, floor),
        }
    }

    /// The pick score + tiebreak fields of one candidate node.
    ///
    /// Spot awareness: the score is discounted by the node's published
    /// preemption risk (`1 − min(1, spot_risk_penalty × risk)`), so a
    /// cheap-but-churning node loses ties against a safe peer and only
    /// wins when its raw capability margin outweighs the expected rework.
    /// The discount only ever shrinks a score, so the sharded queue's
    /// suffix-max bounds (computed risk-blind) remain sound upper bounds.
    fn pick_key(&self, n: NodeId, queue_kind: ResourceKind) -> (f64, f64, usize) {
        let util = self.utilization_with_claims(n, queue_kind).clamp(0.0, 1.0);
        let cap = self.input.cluster.node(n).capability(queue_kind);
        let score = match queue_kind {
            ResourceKind::Cpu | ResourceKind::Gpu => cap,
            ResourceKind::Mem | ResourceKind::Net | ResourceKind::Io => cap * (1.0 - util),
        };
        let risk = self.input.nodes[n.index()].preempt_risk;
        let score = score * (1.0 - (self.cfg.spot_risk_penalty * risk).clamp(0.0, 1.0));
        // this kind's utilisation can tie exactly (e.g. two idle
        // 1 GbE NICs) while the nodes are unequally busy overall —
        // prefer the emptier node then, and only then the snapshot
        // queue order (strict comparisons keep the earliest node)
        let load = self.input.nodes[n.index()].running_count() + self.claims[n.index()].launches;
        (score, util, load)
    }

    /// Reference path: full first-wins scan of a flat sorted queue.
    fn pick_node_scan(
        &self,
        nodes: &[NodeId],
        queue_kind: ResourceKind,
        floor: Option<ByteSize>,
    ) -> Option<NodeId> {
        let mut best: Option<(NodeId, f64, f64, usize)> = None;
        for &n in nodes {
            if !self.has_room_floored(n, queue_kind, floor) {
                continue;
            }
            let (score, util, load) = self.pick_key(n, queue_kind);
            let better = match best {
                None => true,
                Some((_, s, u, l)) => {
                    score > s || (score == s && (util < u || (util == u && load < l)))
                }
            };
            if better {
                best = Some((n, score, util, load));
            }
        }
        best.map(|(n, _, _, _)| n)
    }

    /// Incremental path: scan each shard's queue independently and merge
    /// the per-shard winners. The flat scan's winner is the lexicographic
    /// minimum of `(−score, util, load, queue position)` over admissible
    /// nodes, and queue position is exactly the [`Rank`] total order —
    /// so carrying the candidate's `Rank` as the final tiebreak makes
    /// the shard-merged pick byte-identical to the flat one, while the
    /// suffix-max bounds let whole shards be skipped once the incumbent
    /// strictly beats their best possible score.
    fn pick_node_sharded(
        &self,
        order: &ShardedOrder<'_>,
        queue_kind: ResourceKind,
        floor: Option<ByteSize>,
    ) -> Option<NodeId> {
        let mut best: Option<(NodeId, f64, f64, usize, Rank)> = None;
        for shard in 0..order.shard_count() {
            if let Some((_, s, _, _, _)) = best {
                if s > order.top_bound(shard, queue_kind) {
                    continue;
                }
            }
            for (i, r) in order.ranks(shard, queue_kind).iter().enumerate() {
                if let Some((_, s, _, _, _)) = best {
                    if s > order.bound(shard, queue_kind, i) {
                        break;
                    }
                }
                let n = r.node;
                if !self.has_room_floored(n, queue_kind, floor) {
                    continue;
                }
                let (score, util, load) = self.pick_key(n, queue_kind);
                let better = match &best {
                    None => true,
                    Some((_, s, u, l, br)) => {
                        score > *s
                            || (score == *s
                                && (util < *u
                                    || (util == *u && (load < *l || (load == *l && r < br)))))
                    }
                };
                if better {
                    best = Some((n, score, util, load, *r));
                }
            }
        }
        best.map(|(n, _, _, _, _)| n)
    }

    /// Split `kind`'s queue for this round (see [`KindPartition`]).
    /// Entries with no dispatchable view are dropped here once instead of
    /// being re-skipped on every probe: nothing re-enters a queue during
    /// a round, so an entry dead at build time stays dead.
    fn build_partition(&self, tm: &TaskManager, kind: ResourceKind) -> KindPartition {
        let mut special = Vec::new();
        let mut plain = Vec::new();
        let mut plain_peak = HashMap::new();
        let mut plain_by_peak: BTreeMap<ByteSize, usize> = BTreeMap::new();
        for (pos, task) in tm.queues.iter_kind(kind).enumerate() {
            let Some(view) = self.view_of(task) else {
                continue;
            };
            if !view.process_nodes.is_empty()
                || !view.node_local.is_empty()
                || self.locked_best(tm, view).is_some()
            {
                special.push((pos, task));
            } else {
                let peak = self.peak_estimate(tm, view);
                plain.push((pos, task, peak));
                plain_peak.insert(task, peak);
                *plain_by_peak.entry(peak).or_insert(0) += 1;
            }
        }
        KindPartition {
            special,
            plain,
            plain_head: 0,
            plain_peak,
            plain_by_peak,
        }
    }

    fn ensure_partition(&self, tm: &TaskManager, kind: ResourceKind) {
        if self.partitions.borrow()[kind.index()].is_some() {
            return;
        }
        let part = self.build_partition(tm, kind);
        self.partitions.borrow_mut()[kind.index()] = Some(part);
    }

    /// [`Dispatcher::schedule_task`] served from the round's
    /// [`KindPartition`] — decisions are byte-identical to the full
    /// queue scan, because a *plain* task can never trigger an early
    /// return (no lock ⇒ `locked_here` is false on every node; no
    /// preferences ⇒ its locality is always `ANY`), so the flat scan's
    /// winner is exactly the lexicographic minimum of
    /// `(locality, queue position)` over the special candidates plus the
    /// first plain task that fits. The special side is scanned in full
    /// (`O(special)`), the plain side first-fits from a head pointer
    /// after an `O(log)` "does anything fit" floor check.
    fn schedule_task_incremental(
        &self,
        tm: &TaskManager,
        kind: ResourceKind,
        node: NodeId,
    ) -> Option<(TaskRef, LaunchReason)> {
        if self.hint {
            return self.schedule_task_hint(tm, kind, node);
        }
        self.ensure_partition(tm, kind);
        let free_mem = self.free_mem_after_claims(node);
        let mut parts = self.partitions.borrow_mut();
        let part = parts[kind.index()].as_mut().expect("partition ensured");

        let mut best: Option<(usize, TaskRef, Locality)> = None;
        for &(pos, task) in &part.special {
            let Some(view) = self.view_of(task) else {
                continue;
            };
            let locked_here = self.locked_best(tm, view) == Some(node);
            if self.peak_estimate(tm, view) > free_mem {
                if locked_here {
                    return Some((
                        task,
                        LaunchReason::BestExecutorLock {
                            overrode_memory_veto: true,
                        },
                    ));
                }
                continue;
            }
            if locked_here {
                return Some((
                    task,
                    LaunchReason::BestExecutorLock {
                        overrode_memory_veto: false,
                    },
                ));
            }
            let loc = if self.cfg.use_locality {
                view.locality(self.input.cluster, node)
            } else {
                Locality::Any
            };
            if loc == Locality::ProcessLocal {
                return Some((
                    task,
                    LaunchReason::QueueMatch {
                        kind,
                        locality: loc,
                    },
                ));
            }
            if best.map(|(_, _, bl)| loc < bl).unwrap_or(true) {
                best = Some((pos, task, loc));
            }
        }

        // the first live plain entry that fits, found without a scan when
        // even the smallest live plain peak exceeds free memory
        let mut plain_pick: Option<(usize, TaskRef)> = None;
        if part
            .plain_by_peak
            .keys()
            .next()
            .is_some_and(|&min| min <= free_mem)
        {
            while part.plain_head < part.plain.len()
                && self.launched.contains(&part.plain[part.plain_head].1)
            {
                part.plain_head += 1;
            }
            for &(pos, task, peak) in &part.plain[part.plain_head..] {
                if self.launched.contains(&task) {
                    continue;
                }
                if peak <= free_mem {
                    plain_pick = Some((pos, task));
                    break;
                }
            }
        }

        let winner = match (best, plain_pick) {
            (Some((spos, st, sloc)), Some((ppos, pt))) => {
                if sloc < Locality::Any || spos < ppos {
                    Some((st, sloc))
                } else {
                    Some((pt, Locality::Any))
                }
            }
            (Some((_, st, sloc)), None) => Some((st, sloc)),
            (None, Some((_, pt))) => Some((pt, Locality::Any)),
            (None, None) => None,
        };
        winner.map(|(t, loc)| {
            (
                t,
                LaunchReason::QueueMatch {
                    kind,
                    locality: loc,
                },
            )
        })
    }

    /// [`Dispatcher::schedule_task_incremental`] served from the TM's
    /// *persistent* split instead of a per-round [`KindPartition`] —
    /// `O(special + first plain fit)` with zero per-round build cost.
    /// Entries are keyed by seat, and seat order is exactly queue order,
    /// so every position tiebreak is preserved. Launched tasks are
    /// already gone: [`Dispatcher::run`] removes a match from the TM
    /// queues — and thereby from the split — before the next probe.
    ///
    /// The split classifies by *raw* lock (target liveness ignored); a
    /// dead-locked task lands on the special side where the per-round
    /// build would have kept it plain. That is decision-neutral: its
    /// live lock is `None` (no early return), its locality is `ANY` (no
    /// preferences), so it competes exactly as a plain task does — by
    /// queue position at `ANY` — just from the other scan.
    fn schedule_task_hint(
        &self,
        tm: &TaskManager,
        kind: ResourceKind,
        node: NodeId,
    ) -> Option<(TaskRef, LaunchReason)> {
        let free_mem = self.free_mem_after_claims(node);

        // in a tenant pass the probe reads the tenant's own shard of the
        // persistent split — same seat order, pre-filtered
        let special: Box<dyn Iterator<Item = (u64, TaskRef)>> = match self.tenant {
            Some(t) => Box::new(tm.queues.special_kind_of(kind, t)),
            None => Box::new(tm.queues.special_kind(kind)),
        };
        let mut best: Option<(u64, TaskRef, Locality)> = None;
        for (seat, task) in special {
            let Some(view) = self.view_of(task) else {
                continue;
            };
            let locked_here = self.locked_best(tm, view) == Some(node);
            if self.peak_estimate(tm, view) > free_mem {
                if locked_here {
                    return Some((
                        task,
                        LaunchReason::BestExecutorLock {
                            overrode_memory_veto: true,
                        },
                    ));
                }
                continue;
            }
            if locked_here {
                return Some((
                    task,
                    LaunchReason::BestExecutorLock {
                        overrode_memory_veto: false,
                    },
                ));
            }
            let loc = if self.cfg.use_locality {
                view.locality(self.input.cluster, node)
            } else {
                Locality::Any
            };
            if loc == Locality::ProcessLocal {
                return Some((
                    task,
                    LaunchReason::QueueMatch {
                        kind,
                        locality: loc,
                    },
                ));
            }
            if best.map(|(_, _, bl)| loc < bl).unwrap_or(true) {
                best = Some((seat, task, loc));
            }
        }

        let mut plain_pick: Option<(u64, TaskRef)> = None;
        let plain_floor = match self.tenant {
            Some(t) => tm.queues.plain_floor_of(kind, t),
            None => tm.queues.plain_floor(kind),
        };
        if plain_floor.is_some_and(|min| min <= free_mem) {
            let plain: Box<dyn Iterator<Item = (u64, TaskRef, ByteSize)>> = match self.tenant {
                Some(t) => Box::new(tm.queues.plain_kind_of(kind, t)),
                None => Box::new(tm.queues.plain_kind(kind)),
            };
            for (seat, task, peak) in plain {
                if self.held.contains(&task) {
                    continue;
                }
                if peak <= free_mem {
                    plain_pick = Some((seat, task));
                    break;
                }
            }
        }

        let winner = match (best, plain_pick) {
            (Some((sseat, st, sloc)), Some((pseat, pt))) => {
                if sloc < Locality::Any || sseat < pseat {
                    Some((st, sloc))
                } else {
                    Some((pt, Locality::Any))
                }
            }
            (Some((_, st, sloc)), None) => Some((st, sloc)),
            (None, Some((_, pt))) => Some((pt, Locality::Any)),
            (None, None) => None,
        };
        winner.map(|(t, loc)| {
            (
                t,
                LaunchReason::QueueMatch {
                    kind,
                    locality: loc,
                },
            )
        })
    }

    /// [`Dispatcher::kind_floor_incremental`] from the persistent split
    /// (or the tenant's shard of it during a tenant pass).
    fn kind_floor_hint(&self, tm: &TaskManager, kind: ResourceKind) -> Option<ByteSize> {
        let plain_min = match self.tenant {
            Some(t) => tm.queues.plain_floor_of(kind, t),
            None => tm.queues.plain_floor(kind),
        };
        let special: Box<dyn Iterator<Item = (u64, TaskRef)>> = match self.tenant {
            Some(t) => Box::new(tm.queues.special_kind_of(kind, t)),
            None => Box::new(tm.queues.special_kind(kind)),
        };
        let special_min = special
            .filter_map(|(_, t)| self.view_of(t))
            .map(|v| self.peak_estimate(tm, v))
            .min();
        match (plain_min, special_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Smallest peak estimate among a kind queue's live candidates,
    /// from the partition: the plain floor is the first key of the live
    /// peak multiset, the special side is scanned (it is small).
    fn kind_floor_incremental(&self, tm: &TaskManager, kind: ResourceKind) -> Option<ByteSize> {
        if self.hint {
            return self.kind_floor_hint(tm, kind);
        }
        self.ensure_partition(tm, kind);
        let parts = self.partitions.borrow();
        let part = parts[kind.index()].as_ref().expect("partition ensured");
        let plain_min = part.plain_by_peak.keys().next().copied();
        let special_min = part
            .special
            .iter()
            .filter_map(|&(_, t)| self.view_of(t))
            .map(|v| self.peak_estimate(tm, v))
            .min();
        match (plain_min, special_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Algorithm 2's `schedule_task`: pick the task from `kind`'s queue
    /// that best matches `node`, and say why it won.
    fn schedule_task(
        &self,
        tm: &TaskManager,
        kind: ResourceKind,
        node: NodeId,
    ) -> Option<(TaskRef, LaunchReason)> {
        let free_mem = self.free_mem_after_claims(node);
        let mut best: Option<(TaskRef, Locality)> = None;
        for task in tm.queues.iter_kind(kind) {
            if !self.in_scope(tm, task) {
                continue;
            }
            let Some(view) = self.view_of(task) else {
                continue;
            };
            let locked_here = self.locked_best(tm, view) == Some(node);
            if self.peak_estimate(tm, view) > free_mem {
                // Algorithm 2 lines 12–16: the memory check is overridden
                // only for fully-characterised tasks locked to this node
                if locked_here {
                    return Some((
                        task,
                        LaunchReason::BestExecutorLock {
                            overrode_memory_veto: true,
                        },
                    ));
                }
                continue;
            }
            if locked_here {
                return Some((
                    task,
                    LaunchReason::BestExecutorLock {
                        overrode_memory_veto: false,
                    },
                ));
            }
            let loc = if self.cfg.use_locality {
                view.locality(self.input.cluster, node)
            } else {
                Locality::Any
            };
            if loc == Locality::ProcessLocal {
                return Some((
                    task,
                    LaunchReason::QueueMatch {
                        kind,
                        locality: loc,
                    },
                ));
            }
            if best.map(|(_, bl)| loc < bl).unwrap_or(true) {
                best = Some((task, loc));
            }
        }
        best.map(|(t, loc)| {
            (
                t,
                LaunchReason::QueueMatch {
                    kind,
                    locality: loc,
                },
            )
        })
    }

    /// Run the round-robin matching loop, consuming matched tasks from
    /// the TM queues. Returns launch commands. Reference path: rebuilds
    /// and re-sorts the Resource Queues from this round's snapshot.
    pub fn dispatch(&mut self, tm: &mut TaskManager) -> Vec<Command> {
        let ranking =
            Ranking::Rebuilt(ResourceQueues::build(self.input.cluster, &self.input.nodes));
        self.run(tm, &ranking)
    }

    /// The incremental counterpart: diff the persistent node rankings
    /// against this round's snapshot (`O(changed · log n)`) and dispatch
    /// from the materialised order with early-exit bounds. Requires a
    /// dispatcher built with [`Dispatcher::new_incremental`].
    pub fn dispatch_incremental(
        &mut self,
        tm: &mut TaskManager,
        cache: &mut NodeQueueCache,
    ) -> Vec<Command> {
        cache.refresh_keys(
            self.input.cluster,
            &self.input.nodes,
            self.input.changed.as_deref(),
        );
        // With nothing pending the matching loop can only produce zero
        // launches (every TM-queue entry resolves to no dispatchable
        // view, and the safety valve needs a pending task too) — skip
        // the per-node claims allocation, the pick scans and even the
        // dispatch-queue materialisation outright. The re-keying above
        // still ran, so the ordered sets stay in sync and the queues
        // catch up lazily on the next busy round.
        if self.input.pending.is_empty() {
            return Vec::new();
        }
        cache.materialize_dirty(self.input.cluster);
        let ranking = Ranking::Cached(cache.sharded_order());
        self.run(tm, &ranking)
    }

    /// [`Dispatcher::dispatch`] under a tenant allocation order: the
    /// matching loop serves each listed tenant's candidate slice in
    /// turn (see [`Dispatcher::run_ordered`]). Tenants absent from
    /// `order` (over quota this round) receive nothing.
    pub fn dispatch_ordered(&mut self, tm: &mut TaskManager, order: &[TenantId]) -> Vec<Command> {
        let ranking =
            Ranking::Rebuilt(ResourceQueues::build(self.input.cluster, &self.input.nodes));
        self.run_ordered(tm, &ranking, order)
    }

    /// [`Dispatcher::dispatch_incremental`] under a tenant allocation
    /// order.
    pub fn dispatch_ordered_incremental(
        &mut self,
        tm: &mut TaskManager,
        cache: &mut NodeQueueCache,
        order: &[TenantId],
    ) -> Vec<Command> {
        cache.refresh_keys(
            self.input.cluster,
            &self.input.nodes,
            self.input.changed.as_deref(),
        );
        if self.input.pending.is_empty() {
            return Vec::new();
        }
        cache.materialize_dirty(self.input.cluster);
        let ranking = Ranking::Cached(cache.sharded_order());
        self.run_ordered(tm, &ranking, order)
    }

    /// All-or-nothing admission for `gang: true` stages (the GPU
    /// Gramian sweep): every still-pending member of a gang stage must
    /// find a co-resident slot under this round's claims, or none
    /// launches and the whole stage is *held* out of piecemeal dispatch
    /// for the round. Failed plans roll their tentative claims back
    /// completely, so the ordinary dispatch that follows sees an
    /// untouched admission ledger. Call before
    /// [`Dispatcher::dispatch`] / [`Dispatcher::dispatch_ordered`].
    pub fn admit_gangs(&mut self, tm: &mut TaskManager) -> Vec<Command> {
        let mut stages: Vec<StageId> = Vec::new();
        for p in &self.input.pending {
            if self.input.app.stage(p.task.stage).gang && !stages.contains(&p.task.stage) {
                stages.push(p.task.stage);
            }
        }
        let mut out = Vec::new();
        for stage in stages {
            let members: Vec<&PendingTaskView> = self
                .input
                .pending
                .iter()
                .filter(|p| p.task.stage == stage && self.view_of(p.task).is_some())
                .collect();
            if members.is_empty() {
                continue;
            }
            let saved = self.claims.clone();
            let mut plan: Vec<(TaskRef, NodeId, bool, Locality)> = Vec::new();
            let mut fits = true;
            for view in &members {
                let peak = self.peak_estimate(tm, view);
                match self.gang_slot(view, peak) {
                    Some((node, use_gpu, locality)) => {
                        let kind = if use_gpu {
                            ResourceKind::Gpu
                        } else {
                            ResourceKind::Cpu
                        };
                        self.note_claim(node, kind, peak);
                        plan.push((view.task, node, use_gpu, locality));
                    }
                    None => {
                        fits = false;
                        break;
                    }
                }
            }
            if !fits {
                // all-or-nothing rollback: restore the admission ledger
                // and hold every member for the round
                self.claims = saved;
                for view in &members {
                    self.held.insert(view.task);
                }
                continue;
            }
            for (task, node, use_gpu, locality) in plan {
                tm.queues.remove(&task);
                self.consume(task);
                out.push(Command::Launch {
                    task,
                    node,
                    use_gpu,
                    speculative: false,
                    reason: LaunchReason::GangAdmission { locality },
                });
            }
        }
        out
    }

    /// One gang member's slot under the current claims: GPU slots are
    /// preferred for GPU-capable members (mirroring the GPU queue), then
    /// the best locality, then the node with the most post-claim free
    /// memory; node id breaks the final tie, so the plan is a pure
    /// function of the snapshot.
    fn gang_slot(&self, view: &PendingTaskView, peak: ByteSize) -> Option<(NodeId, bool, Locality)> {
        let mut best: Option<((bool, Locality, std::cmp::Reverse<ByteSize>, NodeId), bool)> = None;
        for v in &self.input.nodes {
            let n = v.node;
            let gpu_ok = view.gpu_capable && self.has_room_floored(n, ResourceKind::Gpu, Some(peak));
            let cpu_ok = self.has_room_floored(n, ResourceKind::Cpu, Some(peak));
            if !gpu_ok && !cpu_ok {
                continue;
            }
            if self.free_mem_after_claims(n) < peak {
                continue;
            }
            let loc = if self.cfg.use_locality {
                view.locality(self.input.cluster, n)
            } else {
                Locality::Any
            };
            let key = (
                !gpu_ok,
                loc,
                std::cmp::Reverse(self.free_mem_after_claims(n)),
                n,
            );
            if best.as_ref().map(|(bk, _)| key < *bk).unwrap_or(true) {
                best = Some((key, gpu_ok));
            }
        }
        best.map(|((_, loc, _, n), use_gpu)| (n, use_gpu, loc))
    }

    fn run(&mut self, tm: &mut TaskManager, ranking: &Ranking<'_>) -> Vec<Command> {
        let mut cmds = Vec::new();
        while self.run_pass(tm, ranking, &mut cmds) {}
        self.safety_valve(tm, &mut cmds);
        cmds
    }

    /// The tenant-ordered matching loop: every outer pass serves each
    /// tenant one round-robin cycle over the resource kinds, in session
    /// order, so a burst from the first tenant cannot drain the whole
    /// cluster before later tenants see an offer. Claims are shared
    /// across tenants — the round admits exactly as much as the shared
    /// pool would, only distributed by the allocation policy.
    fn run_ordered(
        &mut self,
        tm: &mut TaskManager,
        ranking: &Ranking<'_>,
        order: &[TenantId],
    ) -> Vec<Command> {
        let mut cmds = Vec::new();
        loop {
            let mut launched_any = false;
            for &t in order {
                self.tenant = Some(t);
                launched_any |= self.run_pass(tm, ranking, &mut cmds);
            }
            if !launched_any {
                break;
            }
        }
        self.tenant = None;
        self.safety_valve(tm, &mut cmds);
        cmds
    }

    /// One round-robin cycle over the resource kinds (the body of the
    /// matching loop). Returns whether anything launched.
    fn run_pass(&mut self, tm: &mut TaskManager, ranking: &Ranking<'_>, cmds: &mut Vec<Command>) -> bool {
        let mut launched_any = false;
        for kind in ResourceKind::ALL {
            // refresh this kind's floor — claims consumed since the
            // last pass may have taken the cheapest candidate. A tenant
            // pass floors on the tenant's own candidates only.
            self.floors[kind.index()] = if self.tenant.is_some() {
                if self.hint {
                    self.kind_floor_hint(tm, kind)
                } else {
                    tm.queues
                        .iter_kind(kind)
                        .filter(|&t| self.in_scope(tm, t))
                        .filter_map(|t| self.view_of(t))
                        .map(|v| self.peak_estimate(tm, v))
                        .min()
                }
            } else if self.incremental {
                self.kind_floor_incremental(tm, kind)
            } else {
                tm.queues
                    .iter_kind(kind)
                    .filter_map(|t| self.view_of(t))
                    .map(|v| self.peak_estimate(tm, v))
                    .min()
            };
            let floor = self.floors[kind.index()];
            // next node from this kind's Resource Queue with room
            let mut node = self.pick_node(ranking, kind, floor);
            let mut fell_back_to_cpu = false;
            if node.is_none() && kind == ResourceKind::Gpu {
                // §III-C3: GPU tasks are not held hostage by busy
                // GPUs — fall back to the most powerful idle CPU,
                // one that can still hold the GPU queue's cheapest
                // candidate
                node = self.pick_node(ranking, ResourceKind::Cpu, floor);
                fell_back_to_cpu = node.is_some();
            }
            let Some(node) = node else { continue };
            // a tenant pass probes the tenant's slice: the persistent
            // shard when the freshness warranty holds, the filtered
            // reference scan otherwise (the per-round KindPartition is
            // a shared-pool structure)
            let probe = if self.tenant.is_some() {
                if self.hint {
                    self.schedule_task_hint(tm, kind, node)
                } else {
                    self.schedule_task(tm, kind, node)
                }
            } else if self.incremental {
                self.schedule_task_incremental(tm, kind, node)
            } else {
                self.schedule_task(tm, kind, node)
            };
            let Some((task, reason)) = probe else {
                continue;
            };
            let view = self.view_of(task).expect("scheduled task is pending");
            let use_gpu = kind == ResourceKind::Gpu
                && !fell_back_to_cpu
                && view.gpu_capable
                && self.input.nodes[node.index()].gpus_idle > self.claims[node.index()].gpu;
            let mem = self.peak_estimate(tm, view);
            let claim_kind = if fell_back_to_cpu {
                ResourceKind::Cpu
            } else {
                kind
            };
            self.note_claim(node, claim_kind, mem);
            tm.queues.remove(&task);
            self.consume(task);
            // a best-executor lock keeps its own reason even on the
            // fallback path — the lock, not the fallback, chose it
            let reason = match reason {
                LaunchReason::QueueMatch { locality, .. } if fell_back_to_cpu => {
                    LaunchReason::GpuCpuFallback { locality }
                }
                other => other,
            };
            cmds.push(Command::Launch {
                task,
                node,
                use_gpu,
                speculative: false,
                reason,
            });
            launched_any = true;
        }
        launched_any
    }

    /// Progress safety valve: if the whole cluster is idle and policy
    /// found nothing (e.g. every estimate exceeds free memory on the
    /// preferred nodes), force the first pending task onto the node
    /// with the most free memory — a stuck cluster is strictly worse
    /// than any placement. Gang-held tasks stay held: their stage
    /// blocks on co-residency, not on this round's estimates.
    fn safety_valve(&mut self, tm: &mut TaskManager, cmds: &mut Vec<Command>) {
        let cluster_idle = self
            .input
            .nodes
            .iter()
            .all(|v| v.running_count() + self.claims[v.node.index()].launches == 0);
        if cmds.is_empty() && cluster_idle {
            // prefer unheld work; but an idle cluster that STILL cannot
            // co-place a gang will never be able to — break the gang
            // open rather than deadlock
            let pick = self
                .input
                .pending
                .iter()
                .find(|p| self.is_unclaimed(p.task))
                .or_else(|| {
                    self.input.pending.iter().find(|p| {
                        self.held.contains(&p.task)
                            && if self.incremental {
                                !self.launched.contains(&p.task)
                            } else {
                                self.pending.contains_key(&p.task)
                            }
                    })
                });
            if let Some(view) = pick {
                if let Some(node) = self
                    .input
                    .nodes
                    .iter()
                    .filter(|v| !v.blocked)
                    .max_by_key(|v| (v.free_mem, std::cmp::Reverse(v.node)))
                    .map(|v| v.node)
                {
                    tm.queues.remove(&view.task);
                    cmds.push(Command::Launch {
                        task: view.task,
                        node,
                        use_gpu: false,
                        speculative: false,
                        reason: LaunchReason::SafetyValve,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_cluster::ClusterSpec;
    use rupam_dag::app::{Application, StageId, StageKind};
    use rupam_simcore::time::SimTime;

    fn dummy_app() -> Application {
        use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
        let mut b = rupam_dag::AppBuilder::new("d");
        let j = b.begin_job();
        b.add_stage(
            j,
            "r",
            "d/r",
            StageKind::Result,
            vec![],
            vec![TaskTemplate {
                index: 0,
                input: InputSource::Generated,
                demand: TaskDemand::default(),
            }],
        );
        b.build()
    }

    fn views(cluster: &ClusterSpec) -> Vec<NodeView> {
        cluster
            .iter()
            .map(|(id, spec)| NodeView {
                node: id,
                executor_mem: spec.mem.saturating_sub(ByteSize::gib(2)),
                mem_in_use: ByteSize::ZERO,
                free_mem: spec.mem.saturating_sub(ByteSize::gib(2)),
                running: vec![],
                cpu_util: 0.0,
                net_util: 0.0,
                disk_util: 0.0,
                gpus_idle: spec.gpus,
                blocked: false,
                heartbeat_age: rupam_simcore::time::SimDuration::ZERO,
                dead: false,
                suspect: false,
                tier: rupam_cluster::NodeTier::OnDemand,
                draining: false,
                preempt_risk: 0.0,
            })
            .collect()
    }

    fn pview(index: usize, kind: StageKind) -> PendingTaskView {
        PendingTaskView {
            task: TaskRef {
                stage: StageId(0),
                index,
            },
            job: rupam_dag::app::JobId(0),
            template_key: "d/r".into(),
            stage_kind: kind,
            attempt_no: 0,
            peak_mem_hint: ByteSize::ZERO,
            gpu_capable: false,
            process_nodes: vec![],
            node_local: vec![],
        }
    }

    fn offer<'a>(
        cluster: &'a ClusterSpec,
        app: &'a Application,
        nodes: Vec<NodeView>,
        pending: Vec<PendingTaskView>,
    ) -> OfferInput<'a> {
        OfferInput {
            now: SimTime::ZERO,
            cluster,
            app,
            nodes,
            pending,
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        }
    }

    #[test]
    fn dispatches_pending_tasks_across_kinds() {
        let cluster = ClusterSpec::hydra();
        let app = dummy_app();
        let cfg = RupamConfig::default();
        let mut tm = TaskManager::new(cfg.clone());
        let pending: Vec<_> = (0..4).map(|i| pview(i, StageKind::ShuffleMap)).collect();
        let input = offer(&cluster, &app, views(&cluster), pending.clone());
        tm.submit_stage(app.stage(StageId(0)), &pending, SimTime::ZERO);
        let mut d = Dispatcher::new(&cfg, &input);
        let cmds = d.dispatch(&mut tm);
        assert_eq!(cmds.len(), 4, "all pending tasks launch: {cmds:?}");
        // each task launched exactly once
        let mut tasks: Vec<usize> = cmds
            .iter()
            .map(|c| match c {
                Command::Launch { task, .. } => task.index,
                _ => panic!(),
            })
            .collect();
        tasks.sort();
        assert_eq!(tasks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn memory_check_protects_small_nodes() {
        let cluster = ClusterSpec::hydra();
        let app = dummy_app();
        let cfg = RupamConfig::default();
        let mut tm = TaskManager::new(cfg.clone());
        // a task that needs 40 GiB: only hulk (62) and stack (46) fit
        let mut p = pview(0, StageKind::ShuffleMap);
        p.peak_mem_hint = ByteSize::gib(40);
        tm.submit_stage(app.stage(StageId(0)), &[p.clone()], SimTime::ZERO);
        let input = offer(&cluster, &app, views(&cluster), vec![p]);
        let mut d = Dispatcher::new(&cfg, &input);
        let cmds = d.dispatch(&mut tm);
        assert_eq!(cmds.len(), 1);
        match &cmds[0] {
            Command::Launch { node, .. } => {
                let class = &cluster.node(*node).class;
                assert!(class == "hulk" || class == "stack", "picked {class}");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn gpu_task_lands_on_gpu_node() {
        let cluster = ClusterSpec::hydra();
        let app = dummy_app();
        let cfg = RupamConfig::default();
        let mut tm = TaskManager::new(cfg.clone());
        let mut p = pview(0, StageKind::ShuffleMap);
        p.gpu_capable = true;
        // teach the TM that this stage uses GPUs (a sibling was observed
        // on one — §III-B2's stage-wide GPU marking)
        {
            use rupam_metrics::breakdown::TaskBreakdown;
            use rupam_metrics::record::{AttemptOutcome, TaskRecord};
            tm.record_finish(&TaskRecord {
                task: TaskRef {
                    stage: StageId(0),
                    index: 99,
                },
                job: rupam_dag::app::JobId(0),
                template_key: "d/r".into(),
                attempt: 0,
                node: NodeId(10),
                speculative: false,
                locality: rupam_dag::Locality::Any,
                launched_at: SimTime::ZERO,
                finished_at: SimTime::from_secs_f64(1.0),
                outcome: AttemptOutcome::Success,
                breakdown: TaskBreakdown::new(),
                peak_mem: ByteSize::mib(100),
                used_gpu: true,
            });
        }
        tm.submit_stage(app.stage(StageId(0)), &[p.clone()], SimTime::ZERO);
        let input = offer(&cluster, &app, views(&cluster), vec![p]);
        let mut d = Dispatcher::new(&cfg, &input);
        let cmds = d.dispatch(&mut tm);
        assert_eq!(cmds.len(), 1);
        match &cmds[0] {
            Command::Launch { node, use_gpu, .. } => {
                assert_eq!(cluster.node(*node).class, "stack");
                assert!(use_gpu);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn locality_breaks_ties() {
        let cluster = ClusterSpec::hydra();
        let app = dummy_app();
        let cfg = RupamConfig::default();
        let mut tm = TaskManager::new(cfg.clone());
        // two CPU-bound-looking tasks; one NODE_LOCAL to the best thor
        let thor_best = {
            // determine which node the dispatcher will pick for CPU
            let input = offer(&cluster, &app, views(&cluster), vec![]);
            let q = crate::rm::ResourceQueues::build(&cluster, &input.nodes);
            q.best(ResourceKind::Cpu).unwrap()
        };
        let mut far = pview(0, StageKind::ShuffleMap);
        far.node_local = vec![]; // ANY everywhere
        let mut near = pview(1, StageKind::ShuffleMap);
        near.node_local = vec![thor_best];
        tm.submit_stage(
            app.stage(StageId(0)),
            &[far.clone(), near.clone()],
            SimTime::ZERO,
        );
        let input = offer(&cluster, &app, views(&cluster), vec![far, near]);
        let mut d = Dispatcher::new(&cfg, &input);
        let cmds = d.dispatch(&mut tm);
        // the first CPU dispatch must pick the NODE_LOCAL task (index 1)
        let first_cpu = cmds
            .iter()
            .find_map(|c| match c {
                Command::Launch { task, node, .. } if *node == thor_best => Some(task.index),
                _ => None,
            })
            .expect("something launched on the best thor");
        assert_eq!(first_cpu, 1, "locality should break the tie");
    }

    #[test]
    fn overcommit_cap_respected() {
        let cluster = ClusterSpec::hydra();
        let app = dummy_app();
        let cfg = RupamConfig {
            overcommit_factor: 1.0,
            ..RupamConfig::default()
        };
        let mut tm = TaskManager::new(cfg.clone());
        let pending: Vec<_> = (0..500).map(|i| pview(i, StageKind::ShuffleMap)).collect();
        tm.submit_stage(app.stage(StageId(0)), &pending, SimTime::ZERO);
        let input = offer(&cluster, &app, views(&cluster), pending);
        let mut d = Dispatcher::new(&cfg, &input);
        let cmds = d.dispatch(&mut tm);
        // at factor 1.0 no more than total cores can launch
        assert!(cmds.len() <= cluster.total_cores() as usize);
        // per node: count
        let mut per_node = vec![0usize; cluster.len()];
        for c in &cmds {
            if let Command::Launch { node, .. } = c {
                per_node[node.index()] += 1;
            }
        }
        for (i, &n) in per_node.iter().enumerate() {
            assert!(
                n <= cluster.node(NodeId(i)).cores as usize,
                "node {i} got {n} tasks with overcommit 1.0"
            );
        }
    }

    #[test]
    fn incremental_dispatch_matches_rebuild() {
        let cluster = ClusterSpec::hydra();
        let app = dummy_app();
        let cfg = RupamConfig::default();
        // enough tasks to force multiple passes, partial launches and
        // the memory floor into play
        let mut pending: Vec<_> = (0..64).map(|i| pview(i, StageKind::ShuffleMap)).collect();
        for (i, p) in pending.iter_mut().enumerate() {
            if i % 5 == 0 {
                p.peak_mem_hint = ByteSize::gib(4);
            }
            if i % 11 == 0 {
                p.peak_mem_hint = ByteSize::gib(40);
            }
        }
        let input = offer(&cluster, &app, views(&cluster), pending.clone());

        let mut tm_reb = TaskManager::new(cfg.clone());
        tm_reb.submit_stage(app.stage(StageId(0)), &pending, SimTime::ZERO);
        let rebuilt = Dispatcher::new(&cfg, &input).dispatch(&mut tm_reb);

        let mut tm_inc = TaskManager::new(cfg.clone());
        tm_inc.submit_stage(app.stage(StageId(0)), &pending, SimTime::ZERO);
        let mut cache = NodeQueueCache::new();
        let incremental =
            Dispatcher::new_incremental(&cfg, &input).dispatch_incremental(&mut tm_inc, &mut cache);

        assert_eq!(
            format!("{rebuilt:?}"),
            format!("{incremental:?}"),
            "the two paths must emit identical command sequences"
        );
    }

    #[test]
    fn safety_valve_fires_on_idle_cluster() {
        let cluster = ClusterSpec::hydra();
        let app = dummy_app();
        let cfg = RupamConfig::default();
        let mut tm = TaskManager::new(cfg.clone());
        // a task so large no estimate fits anywhere
        let mut p = pview(0, StageKind::ShuffleMap);
        p.peak_mem_hint = ByteSize::gib(200);
        tm.submit_stage(app.stage(StageId(0)), &[p.clone()], SimTime::ZERO);
        let input = offer(&cluster, &app, views(&cluster), vec![p]);
        let mut d = Dispatcher::new(&cfg, &input);
        let cmds = d.dispatch(&mut tm);
        assert_eq!(cmds.len(), 1, "valve must keep the cluster moving");
        match &cmds[0] {
            Command::Launch { node, .. } => {
                // most free memory = a hulk node
                assert_eq!(cluster.node(*node).class, "hulk");
            }
            _ => panic!(),
        }
    }
}
