//! A locality-blind FIFO scheduler — the floor both Spark and RUPAM are
//! measured against.
//!
//! Greedy first-fit: walk pending tasks in submission order, place each
//! on the first node with a free core slot, ignore data locality,
//! memory, and hardware capability entirely. Useful as (a) a reference
//! point in ablation studies (how much of RUPAM's win is *any* policy vs
//! heterogeneity awareness specifically) and (b) a minimal example of
//! the [`Scheduler`] trait for downstream users.

use rupam_simcore::time::SimDuration;
use rupam_simcore::units::ByteSize;

use rupam_cluster::{ClusterSpec, NodeId};
use rupam_dag::app::Application;
use rupam_exec::scheduler::{Command, OfferInput, Scheduler};
use rupam_metrics::trace::LaunchReason;

/// The simplest possible task scheduler.
pub struct FifoScheduler {
    slots: Vec<usize>,
}

impl FifoScheduler {
    /// A FIFO scheduler (one task slot per core, like stock Spark).
    pub fn new() -> Self {
        FifoScheduler { slots: Vec::new() }
    }
}

impl Default for FifoScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &str {
        "fifo"
    }

    fn executor_memory(&self, cluster: &ClusterSpec, _node: NodeId) -> ByteSize {
        // uniform executors sized for the smallest node, like stock Spark
        cluster.min_mem().saturating_sub(ByteSize::gib(2))
    }

    fn decision_cost(&self) -> SimDuration {
        SimDuration::from_millis(1)
    }

    fn on_app_start(&mut self, _app: &Application, cluster: &ClusterSpec) {
        self.slots = cluster.nodes().iter().map(|n| n.cores as usize).collect();
    }

    fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
        let mut cmds = Vec::new();
        let mut used: Vec<usize> = input.nodes.iter().map(|n| n.running_count()).collect();
        let mut node_cursor = 0usize;
        for p in &input.pending {
            // first-fit, round-robin start position so node 0 is not a
            // permanent magnet
            let n = input.nodes.len();
            let Some(slot) = (0..n)
                .map(|i| (node_cursor + i) % n)
                .find(|&i| !input.nodes[i].blocked && used[i] < self.slots[i])
            else {
                break; // cluster full
            };
            used[slot] += 1;
            node_cursor = (slot + 1) % n;
            cmds.push(Command::Launch {
                task: p.task,
                node: NodeId(slot),
                use_gpu: false,
                speculative: false,
                reason: LaunchReason::FifoSlot,
            });
        }
        // speculative copies on leftover slots, away from the original
        for s in &input.speculatable {
            let original_on: Vec<NodeId> = input
                .nodes
                .iter()
                .filter(|v| v.running.iter().any(|r| r.task == s.task))
                .map(|v| v.node)
                .collect();
            if let Some(slot) = (0..input.nodes.len()).find(|&i| {
                !input.nodes[i].blocked
                    && used[i] < self.slots[i]
                    && !original_on.contains(&NodeId(i))
            }) {
                used[slot] += 1;
                cmds.push(Command::Launch {
                    task: s.task,
                    node: NodeId(slot),
                    use_gpu: false,
                    speculative: true,
                    reason: LaunchReason::FifoSlot,
                });
            }
        }
        cmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::app::StageKind;
    use rupam_dag::data::DataLayout;
    use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
    use rupam_exec::{simulate, SimConfig, SimInput};

    fn tiny_app(n: usize) -> rupam_dag::Application {
        let mut b = rupam_dag::AppBuilder::new("t");
        let j = b.begin_job();
        b.add_stage(
            j,
            "r",
            "t/r",
            StageKind::Result,
            vec![],
            (0..n)
                .map(|i| TaskTemplate {
                    index: i,
                    input: InputSource::Generated,
                    demand: TaskDemand {
                        compute: 4.0,
                        ..TaskDemand::default()
                    },
                })
                .collect(),
        );
        b.build()
    }

    #[test]
    fn runs_to_completion() {
        let cluster = ClusterSpec::hydra();
        let app = tiny_app(40);
        let layout = DataLayout::new();
        let cfg = SimConfig::default();
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed: 1,
        };
        let mut fifo = FifoScheduler::new();
        let report = simulate(&input, &mut fifo);
        assert!(report.completed);
        assert_eq!(report.scheduler_name, "fifo");
        let successes = report
            .records
            .iter()
            .filter(|r| r.outcome.is_success())
            .count();
        assert_eq!(successes, 40);
    }

    #[test]
    fn spreads_round_robin() {
        let cluster = ClusterSpec::hydra();
        let app = tiny_app(24);
        let layout = DataLayout::new();
        let cfg = SimConfig::default();
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed: 2,
        };
        let mut fifo = FifoScheduler::new();
        let report = simulate(&input, &mut fifo);
        // 24 tasks over 12 nodes round-robin: every node sees work
        let nodes_used: std::collections::HashSet<_> =
            report.records.iter().map(|r| r.node).collect();
        assert!(
            nodes_used.len() >= 10,
            "expected a broad spread, got {}",
            nodes_used.len()
        );
    }

    #[test]
    fn respects_core_slots() {
        let cluster = ClusterSpec::homogeneous(2); // 16 cores each
        let app = tiny_app(64);
        let layout = DataLayout::new();
        let cfg = SimConfig::default();
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed: 3,
        };
        let mut fifo = FifoScheduler::new();
        let report = simulate(&input, &mut fifo);
        assert!(report.completed);
        // with 64 tasks on 32 slots the run needs at least two waves
        let first_wave_end = report
            .records
            .iter()
            .filter(|r| r.outcome.is_success())
            .map(|r| r.finished_at)
            .min()
            .unwrap();
        let launches_after = report
            .records
            .iter()
            .filter(|r| r.launched_at >= first_wave_end)
            .count();
        assert!(launches_after > 0, "second wave must wait for slots");
    }
}
