//! Property-based invariants of the scheduler implementations, exercised
//! against synthetic offer snapshots (no engine in the loop — these pin
//! down the pure decision logic).

use proptest::prelude::*;

use rupam::{RupamConfig, RupamScheduler, SparkScheduler};
use rupam_cluster::{ClusterSpec, NodeId};
use rupam_dag::app::{Application, StageId, StageKind};
use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
use rupam_dag::{AppBuilder, TaskRef};
use rupam_exec::scheduler::{Command, NodeView, OfferInput, PendingTaskView, Scheduler};
use rupam_simcore::time::SimTime;
use rupam_simcore::units::ByteSize;

fn dummy_app(stages: usize, tasks_per_stage: usize) -> Application {
    let mut b = AppBuilder::new("inv");
    let j = b.begin_job();
    let mk = |n: usize| {
        (0..n)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Generated,
                demand: TaskDemand::default(),
            })
            .collect::<Vec<_>>()
    };
    let mut prev: Option<StageId> = None;
    for s in 0..stages {
        let parents = prev.into_iter().collect();
        let kind = if s + 1 == stages {
            StageKind::Result
        } else {
            StageKind::ShuffleMap
        };
        prev = Some(b.add_stage(
            j,
            format!("s{s}"),
            format!("inv/s{s}"),
            kind,
            parents,
            mk(tasks_per_stage),
        ));
    }
    b.build()
}

fn node_views(cluster: &ClusterSpec, busy: &[usize]) -> Vec<NodeView> {
    cluster
        .iter()
        .map(|(id, spec)| {
            let running = busy.get(id.index()).copied().unwrap_or(0);
            NodeView {
                node: id,
                executor_mem: spec.mem.saturating_sub(ByteSize::gib(2)),
                mem_in_use: ByteSize::mib(256 * running as u64),
                free_mem: spec
                    .mem
                    .saturating_sub(ByteSize::gib(2))
                    .saturating_sub(ByteSize::mib(256 * running as u64)),
                // fake running attempts must reference real stage/task
                // slots — schedulers inspect them (e.g. the GPU-race path
                // reads the task's demand from the application)
                running: (0..running)
                    .map(|i| rupam_exec::scheduler::RunningTaskView {
                        task: TaskRef {
                            stage: StageId(0),
                            index: i,
                        },
                        speculative: false,
                        elapsed: rupam_simcore::SimDuration::from_secs(1),
                        peak_mem: ByteSize::mib(256),
                        on_gpu: false,
                    })
                    .collect(),
                cpu_util: (running as f64 / spec.cores as f64).min(1.0),
                net_util: 0.0,
                disk_util: 0.0,
                gpus_idle: spec.gpus,
                blocked: false,
                heartbeat_age: rupam_simcore::SimDuration::ZERO,
                dead: false,
                suspect: false,
                tier: rupam_cluster::NodeTier::OnDemand,
                draining: false,
                preempt_risk: 0.0,
            }
        })
        .collect()
}

fn pending_views(app: &Application, stage: StageId, n: usize) -> Vec<PendingTaskView> {
    (0..n)
        .map(|i| PendingTaskView {
            task: TaskRef { stage, index: i },
            job: rupam_dag::app::JobId(0),
            template_key: app.stage(stage).template_key,
            stage_kind: app.stage(stage).kind,
            attempt_no: 0,
            peak_mem_hint: ByteSize::ZERO,
            gpu_capable: false,
            process_nodes: vec![],
            node_local: vec![],
        })
        .collect()
}

fn check_commands(
    cmds: &[Command],
    cluster: &ClusterSpec,
    pending: &[PendingTaskView],
) -> Result<(), TestCaseError> {
    let mut launched: Vec<TaskRef> = Vec::new();
    for c in cmds {
        match c {
            Command::Launch {
                task,
                node,
                speculative,
                ..
            } => {
                prop_assert!(node.index() < cluster.len(), "node out of range");
                if !speculative {
                    prop_assert!(
                        pending.iter().any(|p| p.task == *task),
                        "launched a task that was not pending: {task}"
                    );
                    prop_assert!(
                        !launched.contains(task),
                        "task {task} launched twice in one round"
                    );
                    launched.push(*task);
                }
            }
            Command::KillAndRequeue { node, .. } => {
                prop_assert!(node.index() < cluster.len());
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// One offer round never double-launches a task, never targets an
    /// unknown node, and never launches more tasks than are pending.
    #[test]
    fn prop_offer_round_commands_are_valid(
        n_pending in 0usize..60,
        busy in proptest::collection::vec(0usize..12, 12),
        rupam_not_spark in any::<bool>(),
    ) {
        let cluster = ClusterSpec::hydra();
        let app = dummy_app(1, 60);
        let stage = StageId(0);
        let pending = pending_views(&app, stage, n_pending);
        let input = OfferInput {
            now: SimTime::from_secs_f64(10.0),
            cluster: &cluster,
            app: &app,
            nodes: node_views(&cluster, &busy),
            pending: pending.clone(),
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        let cmds = if rupam_not_spark {
            let mut s = RupamScheduler::with_defaults();
            s.on_app_start(&app, &cluster);
            s.on_stage_ready(app.stage(stage), SimTime::ZERO);
            s.offer_round(&input)
        } else {
            let mut s = SparkScheduler::with_defaults();
            s.on_app_start(&app, &cluster);
            s.on_stage_ready(app.stage(stage), SimTime::ZERO);
            s.offer_round(&input)
        };
        check_commands(&cmds, &cluster, &pending)?;
        let regular = cmds
            .iter()
            .filter(|c| matches!(c, Command::Launch { speculative: false, .. }))
            .count();
        prop_assert!(regular <= n_pending);
    }

    /// Stock Spark never exceeds one task per core on any node.
    #[test]
    fn prop_spark_respects_slots(
        n_pending in 0usize..400,
        busy in proptest::collection::vec(0usize..40, 12),
    ) {
        let cluster = ClusterSpec::hydra();
        let app = dummy_app(1, 400);
        let stage = StageId(0);
        let pending = pending_views(&app, stage, n_pending);
        let input = OfferInput {
            now: SimTime::from_secs_f64(10.0),
            cluster: &cluster,
            app: &app,
            nodes: node_views(&cluster, &busy),
            pending,
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        let mut s = SparkScheduler::with_defaults();
        s.on_app_start(&app, &cluster);
        s.on_stage_ready(app.stage(stage), SimTime::ZERO);
        let cmds = s.offer_round(&input);
        let mut per_node = busy.clone();
        for c in &cmds {
            if let Command::Launch { node, .. } = c {
                per_node[node.index()] += 1;
            }
        }
        for (i, &n) in per_node.iter().enumerate() {
            let cores = cluster.node(NodeId(i)).cores as usize;
            // nodes that started over-subscribed (busy > cores) must not
            // receive anything new
            if busy[i] >= cores {
                prop_assert_eq!(n, busy[i], "node {} was full but got more work", i);
            } else {
                prop_assert!(n <= cores, "node {} exceeded its {} slots: {}", i, cores, n);
            }
        }
    }

    /// RUPAM stays within its overcommit envelope on every node.
    #[test]
    fn prop_rupam_respects_overcommit(
        n_pending in 0usize..400,
        overcommit in 1.0f64..2.0,
    ) {
        let cluster = ClusterSpec::hydra();
        let app = dummy_app(1, 400);
        let stage = StageId(0);
        let pending = pending_views(&app, stage, n_pending);
        let input = OfferInput {
            now: SimTime::from_secs_f64(10.0),
            cluster: &cluster,
            app: &app,
            nodes: node_views(&cluster, &[]),
            pending,
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        let cfg = RupamConfig { overcommit_factor: overcommit, ..RupamConfig::default() };
        let mut s = RupamScheduler::new(cfg);
        s.on_app_start(&app, &cluster);
        s.on_stage_ready(app.stage(stage), SimTime::ZERO);
        let cmds = s.offer_round(&input);
        let mut per_node = vec![0usize; cluster.len()];
        for c in &cmds {
            if let Command::Launch { node, .. } = c {
                per_node[node.index()] += 1;
            }
        }
        for (i, &n) in per_node.iter().enumerate() {
            let cap = (cluster.node(NodeId(i)).cores as f64 * overcommit).ceil() as usize;
            prop_assert!(
                n <= cap,
                "node {i} got {n} > overcommit cap {cap}"
            );
        }
    }

    /// Offer rounds are idempotent on an empty pending set.
    #[test]
    fn prop_empty_pending_yields_no_regular_launches(busy in proptest::collection::vec(0usize..8, 12)) {
        let cluster = ClusterSpec::hydra();
        let app = dummy_app(1, 4);
        let input = OfferInput {
            now: SimTime::from_secs_f64(5.0),
            cluster: &cluster,
            app: &app,
            nodes: node_views(&cluster, &busy),
            pending: vec![],
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        };
        for rupam in [false, true] {
            let cmds = if rupam {
                let mut s = RupamScheduler::with_defaults();
                s.on_app_start(&app, &cluster);
                s.offer_round(&input)
            } else {
                let mut s = SparkScheduler::with_defaults();
                s.on_app_start(&app, &cluster);
                s.offer_round(&input)
            };
            let regular = cmds
                .iter()
                .filter(|c| matches!(c, Command::Launch { speculative: false, .. }))
                .count();
            prop_assert_eq!(regular, 0);
        }
    }
}
