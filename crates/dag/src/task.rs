//! Task templates and demand vectors.
//!
//! A [`TaskTemplate`] describes one task of a stage before it runs: where
//! its input lives and how much of each resource it will consume (the
//! *ground truth* the simulator executes). Schedulers never see the
//! demand directly — stock Spark ignores it entirely and RUPAM learns an
//! approximation of it through the Task Manager's observed metrics
//! (Table I, right side), exactly as in the paper.

use rupam_simcore::units::ByteSize;

use crate::app::StageId;
use crate::data::BlockId;

/// Key identifying a cacheable RDD partition: the producing stage's
/// template key plus the partition index. Stable across iterations (all
/// `lr/gradient` stages share a template key), so iteration `i + 1` can
/// hit partitions cached by iteration `i`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Template key of the RDD (e.g. `"lr/points"`).
    pub rdd: String,
    /// Partition index within the RDD.
    pub partition: usize,
}

impl CacheKey {
    /// Convenience constructor.
    pub fn new(rdd: impl Into<String>, partition: usize) -> Self {
        CacheKey {
            rdd: rdd.into(),
            partition,
        }
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.rdd, self.partition)
    }
}

/// Where a task's input partition comes from.
#[derive(Clone, Debug)]
pub enum InputSource {
    /// Read an HDFS block (first-touch of input data).
    Hdfs(BlockId),
    /// Prefer an executor-cached partition; fall back to the HDFS block
    /// (or recomputation, modelled as the same cost) on a cache miss.
    /// This is Spark's `RDD.cache()` path for iterative workloads.
    CachedOrHdfs {
        /// Cache key of the partition.
        key: CacheKey,
        /// HDFS block to fall back to on a miss.
        fallback: BlockId,
    },
    /// Read the shuffle output of the parent stages (reduce-side input).
    /// Volume and locations come from the map side at run time.
    Shuffle,
    /// Generated in place (e.g. synthetic data sources); no read phase.
    Generated,
}

/// Ground-truth multi-dimensional resource demand of one task.
///
/// All compute quantities are in giga-cycles on a 1 GHz reference core;
/// a node with `cpu_ghz = 4.0` executes them 4× faster.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskDemand {
    /// CPU work of the task body.
    pub compute: f64,
    /// Portion of the work that can run on a GPU instead (giga-cycles
    /// equivalent). Zero for non-GPU tasks. When executed on a GPU the
    /// kernels run at the node's `gpu_gcps`; on CPU they run like normal
    /// compute (the paper's OpenBLAS fallback).
    pub gpu_kernels: f64,
    /// Input bytes read from HDFS / cache.
    pub input_bytes: ByteSize,
    /// Shuffle bytes fetched from parent-stage map outputs.
    pub shuffle_read: ByteSize,
    /// Shuffle bytes written to local disk for child stages.
    pub shuffle_write: ByteSize,
    /// Result bytes sent back to the driver (Result stages).
    pub output_bytes: ByteSize,
    /// Peak JVM memory held while running.
    pub peak_mem: ByteSize,
    /// Bytes of the produced partition kept in the executor cache when
    /// the stage caches its output (0 = nothing cached).
    pub cached_bytes: ByteSize,
}

impl Default for TaskDemand {
    fn default() -> Self {
        TaskDemand {
            compute: 0.0,
            gpu_kernels: 0.0,
            input_bytes: ByteSize::ZERO,
            shuffle_read: ByteSize::ZERO,
            shuffle_write: ByteSize::ZERO,
            output_bytes: ByteSize::ZERO,
            peak_mem: ByteSize::mib(256),
            cached_bytes: ByteSize::ZERO,
        }
    }
}

impl TaskDemand {
    /// Whether any part of the task can use a GPU.
    #[inline]
    pub fn is_gpu_capable(&self) -> bool {
        self.gpu_kernels > 0.0
    }

    /// Total bytes that move through the task (used by the GC model:
    /// garbage scales with data churned).
    pub fn bytes_touched(&self) -> ByteSize {
        self.input_bytes + self.shuffle_read + self.shuffle_write + self.output_bytes
    }
}

/// One task of a stage, pre-execution.
#[derive(Clone, Debug)]
pub struct TaskTemplate {
    /// Partition index within the stage.
    pub index: usize,
    /// Input location.
    pub input: InputSource,
    /// Ground-truth demand.
    pub demand: TaskDemand,
}

/// Globally unique reference to a task: `(stage, index)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskRef {
    /// Stage the task belongs to.
    pub stage: StageId,
    /// Partition index within the stage.
    pub index: usize,
}

impl std::fmt::Display for TaskRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.stage, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_demand_is_inert() {
        let d = TaskDemand::default();
        assert!(!d.is_gpu_capable());
        assert_eq!(d.compute, 0.0);
        assert_eq!(d.bytes_touched(), ByteSize::ZERO);
    }

    #[test]
    fn gpu_capability() {
        let d = TaskDemand {
            gpu_kernels: 5.0,
            ..TaskDemand::default()
        };
        assert!(d.is_gpu_capable());
    }

    #[test]
    fn bytes_touched_sums_flows() {
        let d = TaskDemand {
            input_bytes: ByteSize::mib(100),
            shuffle_read: ByteSize::mib(50),
            shuffle_write: ByteSize::mib(25),
            output_bytes: ByteSize::mib(5),
            ..TaskDemand::default()
        };
        assert_eq!(d.bytes_touched(), ByteSize::mib(180));
    }

    #[test]
    fn cache_key_display_and_eq() {
        let a = CacheKey::new("lr/points", 3);
        let b = CacheKey::new("lr/points", 3);
        assert_eq!(a, b);
        assert_eq!(format!("{a}"), "lr/points[3]");
        assert_ne!(a, CacheKey::new("lr/points", 4));
    }

    #[test]
    fn task_ref_display() {
        let r = TaskRef {
            stage: StageId(2),
            index: 7,
        };
        assert_eq!(format!("{r}"), "stage2.7");
    }
}
