//! DAG utilities: readiness tracking and idealised lower bounds.
//!
//! [`StageTracker`] drives stage readiness during a run (a stage is ready
//! when all its shuffle parents completed and its job is active; jobs run
//! sequentially). [`ideal_lower_bound`] computes the critical-path
//! makespan with infinite parallelism on the best possible hardware — a
//! bound no correct scheduler can beat, used as a simulation-wide sanity
//! invariant in tests.

use rupam_simcore::time::SimDuration;

use rupam_cluster::ClusterSpec;

use crate::app::{Application, StageId, StageKind};
use crate::task::TaskDemand;

/// One sequential run of app-jobs: a stream entry's slice of the merged
/// application. A single-application run is one chain covering every job.
#[derive(Clone, Debug)]
struct Chain {
    /// App-job indices this chain executes, in order.
    jobs: std::ops::Range<usize>,
    /// Absolute index of the currently active app-job.
    active_job: usize,
    /// Remaining stages in the active app-job.
    stages_left_in_job: usize,
    /// Whether the chain's stream job has been submitted yet. Stages of
    /// an unarrived chain are never surfaced.
    arrived: bool,
}

impl Chain {
    fn done(&self) -> bool {
        self.active_job >= self.jobs.end
    }
}

/// Runtime readiness tracker over an application's job/stage structure.
///
/// The application is partitioned into *chains* — independent sequential
/// runs of app-jobs. A plain single-application run is one chain over
/// all jobs (constructed by [`StageTracker::new`]); a multi-tenant
/// stream has one chain per entry ([`StageTracker::new_stream`]), each
/// gated on its arrival ([`StageTracker::arrive`]) and progressing
/// concurrently with the others.
#[derive(Clone, Debug)]
pub struct StageTracker {
    /// Remaining (unfinished) task count per stage.
    remaining: Vec<usize>,
    /// Unfinished parent count per stage.
    waiting_parents: Vec<usize>,
    /// Stages already surfaced as ready.
    released: Vec<bool>,
    /// Independent sequential job chains.
    chains: Vec<Chain>,
    /// Chain owning each app-job.
    chain_of_job: Vec<usize>,
}

impl StageTracker {
    /// A tracker positioned before the first job, all jobs in one
    /// already-arrived chain (the classic single-application run).
    pub fn new(app: &Application) -> Self {
        Self::with_chains(app, std::slice::from_ref(&(0..app.jobs.len())), true)
    }

    /// A tracker with one not-yet-arrived chain per app-job range.
    /// Call [`StageTracker::arrive`] as each chain's stream job is
    /// submitted.
    ///
    /// # Panics
    /// Panics unless the ranges partition `0..app.jobs.len()` in order.
    pub fn new_stream(app: &Application, chains: &[std::ops::Range<usize>]) -> Self {
        Self::with_chains(app, chains, false)
    }

    fn with_chains(app: &Application, chains: &[std::ops::Range<usize>], arrived: bool) -> Self {
        let mut chain_of_job = Vec::with_capacity(app.jobs.len());
        for (c, range) in chains.iter().enumerate() {
            assert_eq!(
                range.start,
                chain_of_job.len(),
                "chains must partition the app's jobs in order"
            );
            chain_of_job.extend(std::iter::repeat_n(c, range.len()));
        }
        assert_eq!(
            chain_of_job.len(),
            app.jobs.len(),
            "chains must cover every app job"
        );
        StageTracker {
            remaining: app.stages.iter().map(|s| s.num_tasks()).collect(),
            waiting_parents: app.stages.iter().map(|s| s.parents.len()).collect(),
            released: vec![false; app.stages.len()],
            chains: chains
                .iter()
                .map(|r| Chain {
                    jobs: r.clone(),
                    active_job: r.start,
                    stages_left_in_job: app.jobs.get(r.start).map(|j| j.stages.len()).unwrap_or(0),
                    arrived,
                })
                .collect(),
            chain_of_job,
        }
    }

    /// Mark `chain` as arrived; its stages become eligible for release.
    pub fn arrive(&mut self, chain: usize) {
        self.chains[chain].arrived = true;
    }

    /// Whether `chain` has run all of its jobs to completion.
    pub fn chain_done(&self, chain: usize) -> bool {
        self.chains[chain].done()
    }

    /// The chain that owns `stage`.
    pub fn chain_of(&self, app: &Application, stage: StageId) -> usize {
        self.chain_of_job[app.stage(stage).job.index()]
    }

    /// Stages that become ready right now (initially: each arrived
    /// chain's active job's parentless stages). Each stage is surfaced
    /// exactly once.
    pub fn take_ready(&mut self, app: &Application) -> Vec<StageId> {
        let mut out = Vec::new();
        for chain in &self.chains {
            if !chain.arrived || chain.done() {
                continue;
            }
            for &sid in &app.jobs[chain.active_job].stages {
                let i = sid.index();
                if !self.released[i] && self.waiting_parents[i] == 0 {
                    self.released[i] = true;
                    out.push(sid);
                }
            }
        }
        out
    }

    /// Record one finished task of `stage`; returns stages newly ready
    /// (possibly in *other* chains unblocked since the last call).
    pub fn task_finished(&mut self, app: &Application, stage: StageId) -> Vec<StageId> {
        let i = stage.index();
        assert!(
            self.remaining[i] > 0,
            "finished more tasks than {stage} has"
        );
        self.remaining[i] -= 1;
        if self.remaining[i] > 0 {
            return Vec::new();
        }
        // stage complete: unblock children, maybe advance the chain's job
        for s in &app.stages {
            if s.parents.contains(&stage) {
                self.waiting_parents[s.id.index()] -= 1;
            }
        }
        let chain = &mut self.chains[self.chain_of_job[app.stage(stage).job.index()]];
        chain.stages_left_in_job -= 1;
        if chain.stages_left_in_job == 0 {
            chain.active_job += 1;
            if !chain.done() {
                chain.stages_left_in_job = app.jobs[chain.active_job].stages.len();
            }
        }
        self.take_ready(app)
    }

    /// Un-finish one previously finished task of `stage` (its output was
    /// lost with a dead node and must be recomputed from lineage).
    /// Returns `false` — and changes nothing — when the recompute is
    /// pointless: the stage was never released, or its chain has already
    /// run past the owning job (nothing downstream can read the output
    /// any more). When the stage had been complete, its children are
    /// re-blocked and the chain's stage count is restored, so the
    /// recomputed task re-unblocks them exactly like the original did.
    pub fn task_lost(&mut self, app: &Application, stage: StageId) -> bool {
        let i = stage.index();
        if !self.released[i] {
            return false;
        }
        let job = app.stage(stage).job.index();
        let chain = &mut self.chains[self.chain_of_job[job]];
        if chain.done() || chain.active_job != job {
            return false;
        }
        if self.remaining[i] == 0 {
            chain.stages_left_in_job += 1;
            for s in &app.stages {
                if s.parents.contains(&stage) {
                    self.waiting_parents[s.id.index()] += 1;
                }
            }
        }
        self.remaining[i] += 1;
        true
    }

    /// True when every chain has completed. An unarrived chain is not
    /// complete: the run must keep waiting for its submission.
    pub fn all_done(&self, _app: &Application) -> bool {
        self.chains.iter().all(Chain::done)
    }

    /// Remaining tasks in `stage`.
    pub fn remaining_in(&self, stage: StageId) -> usize {
        self.remaining[stage.index()]
    }

    /// Whether `stage` has been surfaced as ready.
    pub fn is_released(&self, stage: StageId) -> bool {
        self.released[stage.index()]
    }
}

/// The fastest conceivable execution of one task anywhere in `cluster`:
/// every phase at the single best rate in the cluster, no contention, no
/// GC, no queueing.
fn ideal_task_secs(cluster: &ClusterSpec, d: &TaskDemand) -> f64 {
    let best_ghz = cluster
        .nodes()
        .iter()
        .map(|n| n.cpu_ghz)
        .fold(0.0f64, f64::max);
    let best_gpu = cluster
        .nodes()
        .iter()
        .map(|n| if n.gpus > 0 { n.gpu_gcps } else { 0.0 })
        .fold(0.0f64, f64::max);
    let best_disk_r = cluster
        .nodes()
        .iter()
        .map(|n| n.disk.read_bw)
        .fold(0.0f64, f64::max);
    let best_disk_w = cluster
        .nodes()
        .iter()
        .map(|n| n.disk.write_bw)
        .fold(0.0f64, f64::max);
    let best_net = cluster
        .nodes()
        .iter()
        .map(|n| n.net_bw)
        .fold(0.0f64, f64::max);
    // GPU-capable kernels run at the better of (best GPU, best core);
    // plain compute on the best core.
    let plain = d.compute - d.gpu_kernels;
    let mut secs = plain.max(0.0) / best_ghz;
    secs += d.gpu_kernels / best_gpu.max(best_ghz);
    // reads could be local-disk at best; writes local disk; driver output
    // crosses the network at best rate
    secs += d.input_bytes.as_f64() / best_disk_r.max(best_net);
    secs += d.shuffle_read.as_f64() / best_disk_r.max(best_net);
    secs += d.shuffle_write.as_f64() / best_disk_w;
    secs += d.output_bytes.as_f64() / best_net;
    secs
}

/// Critical-path lower bound on makespan: jobs are sequential; within a
/// job, a stage cannot start before its longest parent chain; a stage
/// cannot finish faster than its slowest task run under ideal conditions.
pub fn ideal_lower_bound(app: &Application, cluster: &ClusterSpec) -> SimDuration {
    let mut total = 0.0f64;
    let mut finish_at: Vec<f64> = vec![0.0; app.stages.len()];
    for job in &app.jobs {
        let mut job_span = 0.0f64;
        for &sid in &job.stages {
            let s = app.stage(sid);
            let start = s
                .parents
                .iter()
                .map(|p| finish_at[p.index()])
                .fold(0.0f64, f64::max);
            let dur = s
                .tasks
                .iter()
                .map(|t| ideal_task_secs(cluster, &t.demand))
                .fold(0.0f64, f64::max);
            finish_at[sid.index()] = start + dur;
            job_span = job_span.max(start + dur);
        }
        total += job_span;
    }
    SimDuration::from_secs_f64(total)
}

/// Sanity check an application against a cluster: every GPU demand is
/// servable (some node has a GPU) and no task's peak memory exceeds the
/// largest node's memory. Returns a human-readable error.
pub fn validate_against_cluster(app: &Application, cluster: &ClusterSpec) -> Result<(), String> {
    let has_gpu = cluster.nodes().iter().any(|n| n.gpus > 0);
    let max_mem = cluster.nodes().iter().map(|n| n.mem).max().unwrap();
    for s in &app.stages {
        for t in &s.tasks {
            if t.demand.peak_mem > max_mem {
                return Err(format!(
                    "task {} of {} needs {} peak memory but the largest node has {}",
                    t.index, s.name, t.demand.peak_mem, max_mem
                ));
            }
            // GPU-capable tasks can always fall back to CPU, so a GPU-less
            // cluster is only a problem if the task has *no* CPU work.
            if t.demand.is_gpu_capable() && !has_gpu && t.demand.compute <= 0.0 {
                return Err(format!(
                    "task {} of {} is GPU-only but the cluster has no GPUs",
                    t.index, s.name
                ));
            }
        }
        if matches!(s.kind, StageKind::Result) && !s.parents.is_empty() {
            // result stages with parents read shuffle data — nothing to
            // validate, but keep the arm for clarity
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, StageKind};
    use crate::task::{InputSource, TaskTemplate};
    use rupam_simcore::units::ByteSize;

    fn simple_app() -> Application {
        let mut b = AppBuilder::new("t");
        let j = b.begin_job();
        let t = |n: usize, compute: f64| {
            (0..n)
                .map(|i| TaskTemplate {
                    index: i,
                    input: InputSource::Generated,
                    demand: TaskDemand {
                        compute,
                        ..TaskDemand::default()
                    },
                })
                .collect::<Vec<_>>()
        };
        let m = b.add_stage(j, "m", "t/m", StageKind::ShuffleMap, vec![], t(3, 10.0));
        b.add_stage(j, "r", "t/r", StageKind::Result, vec![m], t(2, 5.0));
        b.build()
    }

    #[test]
    fn tracker_releases_in_dependency_order() {
        let app = simple_app();
        let mut tr = StageTracker::new(&app);
        let ready = tr.take_ready(&app);
        assert_eq!(ready, vec![StageId(0)]);
        // re-asking yields nothing new
        assert!(tr.take_ready(&app).is_empty());
        // finish the map stage's 3 tasks
        assert!(tr.task_finished(&app, StageId(0)).is_empty());
        assert!(tr.task_finished(&app, StageId(0)).is_empty());
        let ready = tr.task_finished(&app, StageId(0));
        assert_eq!(ready, vec![StageId(1)]);
        assert!(!tr.all_done(&app));
        tr.task_finished(&app, StageId(1));
        tr.task_finished(&app, StageId(1));
        assert!(tr.all_done(&app));
    }

    #[test]
    fn tracker_sequences_jobs() {
        let mut b = AppBuilder::new("t");
        for _ in 0..2 {
            let j = b.begin_job();
            b.add_stage(
                j,
                "r",
                "t/r",
                StageKind::Result,
                vec![],
                vec![TaskTemplate {
                    index: 0,
                    input: InputSource::Generated,
                    demand: TaskDemand::default(),
                }],
            );
        }
        let app = b.build();
        let mut tr = StageTracker::new(&app);
        assert_eq!(tr.take_ready(&app), vec![StageId(0)]);
        // job 2's stage must NOT be ready yet
        assert!(tr.take_ready(&app).is_empty());
        let ready = tr.task_finished(&app, StageId(0));
        assert_eq!(ready, vec![StageId(1)]);
    }

    fn n_single_stage_jobs(n: usize) -> Application {
        let mut b = AppBuilder::new("t");
        for _ in 0..n {
            let j = b.begin_job();
            b.add_stage(
                j,
                "r",
                "t/r",
                StageKind::Result,
                vec![],
                vec![TaskTemplate {
                    index: 0,
                    input: InputSource::Generated,
                    demand: TaskDemand::default(),
                }],
            );
        }
        b.build()
    }

    #[test]
    fn stream_chains_gate_on_arrival_and_run_concurrently() {
        let app = n_single_stage_jobs(2);
        let mut tr = StageTracker::new_stream(&app, &[0..1, 1..2]);
        // nothing has arrived yet: no stages, but also not done
        assert!(tr.take_ready(&app).is_empty());
        assert!(!tr.all_done(&app));
        tr.arrive(0);
        assert_eq!(tr.take_ready(&app), vec![StageId(0)]);
        // the second chain releases on arrival, concurrently with the first
        tr.arrive(1);
        assert_eq!(tr.take_ready(&app), vec![StageId(1)]);
        assert_eq!(tr.chain_of(&app, StageId(1)), 1);
        // chains complete independently, in either order
        tr.task_finished(&app, StageId(1));
        assert!(tr.chain_done(1));
        assert!(!tr.chain_done(0));
        assert!(!tr.all_done(&app));
        tr.task_finished(&app, StageId(0));
        assert!(tr.all_done(&app));
    }

    #[test]
    fn stream_chain_runs_its_jobs_sequentially() {
        // one chain of two jobs plus an independent single-job chain
        let app = n_single_stage_jobs(3);
        let mut tr = StageTracker::new_stream(&app, &[0..2, 2..3]);
        tr.arrive(0);
        tr.arrive(1);
        let mut ready = tr.take_ready(&app);
        ready.sort();
        // chain 0's second job must wait for its first
        assert_eq!(ready, vec![StageId(0), StageId(2)]);
        assert_eq!(tr.task_finished(&app, StageId(0)), vec![StageId(1)]);
    }

    #[test]
    #[should_panic(expected = "partition the app's jobs")]
    fn overlapping_chains_rejected() {
        let app = n_single_stage_jobs(2);
        StageTracker::new_stream(&app, &[0..2, 1..2]);
    }

    #[test]
    fn task_lost_reblocks_children_of_a_complete_stage() {
        let app = simple_app();
        let mut tr = StageTracker::new(&app);
        tr.take_ready(&app);
        for _ in 0..3 {
            tr.task_finished(&app, StageId(0));
        }
        // the reduce stage is released; now a map output is lost
        assert!(tr.is_released(StageId(1)));
        assert!(tr.task_lost(&app, StageId(0)));
        assert_eq!(tr.remaining_in(StageId(0)), 1);
        // re-finishing the recomputed task must not re-release the child
        // (it is already released) but must rebalance the books exactly
        let ready = tr.task_finished(&app, StageId(0));
        assert!(ready.is_empty(), "child already released: {ready:?}");
        assert!(!tr.all_done(&app));
        tr.task_finished(&app, StageId(1));
        tr.task_finished(&app, StageId(1));
        assert!(tr.all_done(&app));
    }

    #[test]
    fn task_lost_in_incomplete_stage_just_bumps_remaining() {
        let app = simple_app();
        let mut tr = StageTracker::new(&app);
        tr.take_ready(&app);
        tr.task_finished(&app, StageId(0));
        assert!(tr.task_lost(&app, StageId(0)));
        assert_eq!(tr.remaining_in(StageId(0)), 3);
    }

    #[test]
    fn task_lost_refuses_unreleased_and_passed_stages() {
        let app = n_single_stage_jobs(2);
        let mut tr = StageTracker::new(&app);
        // job 1's stage not yet released
        assert!(!tr.task_lost(&app, StageId(1)));
        tr.take_ready(&app);
        tr.task_finished(&app, StageId(0));
        // the chain has advanced to job 1: job 0's output is history
        assert!(!tr.task_lost(&app, StageId(0)));
        assert_eq!(tr.remaining_in(StageId(0)), 0);
    }

    #[test]
    fn lower_bound_positive_and_stable() {
        let app = simple_app();
        let cluster = ClusterSpec::hydra();
        let lb = ideal_lower_bound(&app, &cluster);
        // compute 10 Gcycles at thor's 4 GHz => 2.5 s, plus reduce 1.25 s
        assert!((lb.as_secs_f64() - 3.75).abs() < 1e-6, "lb = {lb}");
    }

    #[test]
    fn validation_catches_oversized_memory() {
        let mut b = AppBuilder::new("t");
        let j = b.begin_job();
        b.add_stage(
            j,
            "r",
            "t/r",
            StageKind::Result,
            vec![],
            vec![TaskTemplate {
                index: 0,
                input: InputSource::Generated,
                demand: TaskDemand {
                    peak_mem: ByteSize::gib(1000),
                    ..TaskDemand::default()
                },
            }],
        );
        let app = b.build();
        assert!(validate_against_cluster(&app, &ClusterSpec::hydra()).is_err());
    }

    #[test]
    fn validation_accepts_simple_app() {
        assert!(validate_against_cluster(&simple_app(), &ClusterSpec::hydra()).is_ok());
    }

    #[test]
    #[should_panic(expected = "more tasks")]
    fn over_finishing_panics() {
        let app = simple_app();
        let mut tr = StageTracker::new(&app);
        tr.take_ready(&app);
        for _ in 0..4 {
            tr.task_finished(&app, StageId(0));
        }
    }
}
