//! DAG utilities: readiness tracking and idealised lower bounds.
//!
//! [`StageTracker`] drives stage readiness during a run (a stage is ready
//! when all its shuffle parents completed and its job is active; jobs run
//! sequentially). [`ideal_lower_bound`] computes the critical-path
//! makespan with infinite parallelism on the best possible hardware — a
//! bound no correct scheduler can beat, used as a simulation-wide sanity
//! invariant in tests.

use rupam_simcore::time::SimDuration;

use rupam_cluster::ClusterSpec;

use crate::app::{Application, StageId, StageKind};
use crate::task::TaskDemand;

/// Runtime readiness tracker over an application's job/stage structure.
#[derive(Clone, Debug)]
pub struct StageTracker {
    /// Remaining (unfinished) task count per stage.
    remaining: Vec<usize>,
    /// Unfinished parent count per stage.
    waiting_parents: Vec<usize>,
    /// Stages already surfaced as ready.
    released: Vec<bool>,
    /// Index of the currently active job.
    active_job: usize,
    /// Remaining stages in the active job.
    stages_left_in_job: usize,
}

impl StageTracker {
    /// A tracker positioned before the first job.
    pub fn new(app: &Application) -> Self {
        let remaining = app.stages.iter().map(|s| s.num_tasks()).collect();
        let waiting_parents = app.stages.iter().map(|s| s.parents.len()).collect();
        let mut t = StageTracker {
            remaining,
            waiting_parents,
            released: vec![false; app.stages.len()],
            active_job: 0,
            stages_left_in_job: 0,
        };
        t.stages_left_in_job = app.jobs.first().map(|j| j.stages.len()).unwrap_or(0);
        t
    }

    /// Stages that become ready right now (initially: the active job's
    /// parentless stages). Each stage is surfaced exactly once.
    pub fn take_ready(&mut self, app: &Application) -> Vec<StageId> {
        let mut out = Vec::new();
        if self.active_job >= app.jobs.len() {
            return out;
        }
        for &sid in &app.jobs[self.active_job].stages {
            let i = sid.index();
            if !self.released[i] && self.waiting_parents[i] == 0 {
                self.released[i] = true;
                out.push(sid);
            }
        }
        out
    }

    /// Record one finished task of `stage`; returns stages newly ready.
    pub fn task_finished(&mut self, app: &Application, stage: StageId) -> Vec<StageId> {
        let i = stage.index();
        assert!(
            self.remaining[i] > 0,
            "finished more tasks than {stage} has"
        );
        self.remaining[i] -= 1;
        if self.remaining[i] > 0 {
            return Vec::new();
        }
        // stage complete: unblock children, maybe advance the job
        for s in &app.stages {
            if s.parents.contains(&stage) {
                self.waiting_parents[s.id.index()] -= 1;
            }
        }
        self.stages_left_in_job -= 1;
        if self.stages_left_in_job == 0 {
            self.active_job += 1;
            if let Some(job) = app.jobs.get(self.active_job) {
                self.stages_left_in_job = job.stages.len();
            }
        }
        self.take_ready(app)
    }

    /// True when every job has completed.
    pub fn all_done(&self, app: &Application) -> bool {
        self.active_job >= app.jobs.len()
    }

    /// Remaining tasks in `stage`.
    pub fn remaining_in(&self, stage: StageId) -> usize {
        self.remaining[stage.index()]
    }

    /// Whether `stage` has been surfaced as ready.
    pub fn is_released(&self, stage: StageId) -> bool {
        self.released[stage.index()]
    }
}

/// The fastest conceivable execution of one task anywhere in `cluster`:
/// every phase at the single best rate in the cluster, no contention, no
/// GC, no queueing.
fn ideal_task_secs(cluster: &ClusterSpec, d: &TaskDemand) -> f64 {
    let best_ghz = cluster
        .nodes()
        .iter()
        .map(|n| n.cpu_ghz)
        .fold(0.0f64, f64::max);
    let best_gpu = cluster
        .nodes()
        .iter()
        .map(|n| if n.gpus > 0 { n.gpu_gcps } else { 0.0 })
        .fold(0.0f64, f64::max);
    let best_disk_r = cluster
        .nodes()
        .iter()
        .map(|n| n.disk.read_bw)
        .fold(0.0f64, f64::max);
    let best_disk_w = cluster
        .nodes()
        .iter()
        .map(|n| n.disk.write_bw)
        .fold(0.0f64, f64::max);
    let best_net = cluster
        .nodes()
        .iter()
        .map(|n| n.net_bw)
        .fold(0.0f64, f64::max);
    // GPU-capable kernels run at the better of (best GPU, best core);
    // plain compute on the best core.
    let plain = d.compute - d.gpu_kernels;
    let mut secs = plain.max(0.0) / best_ghz;
    secs += d.gpu_kernels / best_gpu.max(best_ghz);
    // reads could be local-disk at best; writes local disk; driver output
    // crosses the network at best rate
    secs += d.input_bytes.as_f64() / best_disk_r.max(best_net);
    secs += d.shuffle_read.as_f64() / best_disk_r.max(best_net);
    secs += d.shuffle_write.as_f64() / best_disk_w;
    secs += d.output_bytes.as_f64() / best_net;
    secs
}

/// Critical-path lower bound on makespan: jobs are sequential; within a
/// job, a stage cannot start before its longest parent chain; a stage
/// cannot finish faster than its slowest task run under ideal conditions.
pub fn ideal_lower_bound(app: &Application, cluster: &ClusterSpec) -> SimDuration {
    let mut total = 0.0f64;
    let mut finish_at: Vec<f64> = vec![0.0; app.stages.len()];
    for job in &app.jobs {
        let mut job_span = 0.0f64;
        for &sid in &job.stages {
            let s = app.stage(sid);
            let start = s
                .parents
                .iter()
                .map(|p| finish_at[p.index()])
                .fold(0.0f64, f64::max);
            let dur = s
                .tasks
                .iter()
                .map(|t| ideal_task_secs(cluster, &t.demand))
                .fold(0.0f64, f64::max);
            finish_at[sid.index()] = start + dur;
            job_span = job_span.max(start + dur);
        }
        total += job_span;
    }
    SimDuration::from_secs_f64(total)
}

/// Sanity check an application against a cluster: every GPU demand is
/// servable (some node has a GPU) and no task's peak memory exceeds the
/// largest node's memory. Returns a human-readable error.
pub fn validate_against_cluster(app: &Application, cluster: &ClusterSpec) -> Result<(), String> {
    let has_gpu = cluster.nodes().iter().any(|n| n.gpus > 0);
    let max_mem = cluster.nodes().iter().map(|n| n.mem).max().unwrap();
    for s in &app.stages {
        for t in &s.tasks {
            if t.demand.peak_mem > max_mem {
                return Err(format!(
                    "task {} of {} needs {} peak memory but the largest node has {}",
                    t.index, s.name, t.demand.peak_mem, max_mem
                ));
            }
            // GPU-capable tasks can always fall back to CPU, so a GPU-less
            // cluster is only a problem if the task has *no* CPU work.
            if t.demand.is_gpu_capable() && !has_gpu && t.demand.compute <= 0.0 {
                return Err(format!(
                    "task {} of {} is GPU-only but the cluster has no GPUs",
                    t.index, s.name
                ));
            }
        }
        if matches!(s.kind, StageKind::Result) && !s.parents.is_empty() {
            // result stages with parents read shuffle data — nothing to
            // validate, but keep the arm for clarity
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, StageKind};
    use crate::task::{InputSource, TaskTemplate};
    use rupam_simcore::units::ByteSize;

    fn simple_app() -> Application {
        let mut b = AppBuilder::new("t");
        let j = b.begin_job();
        let t = |n: usize, compute: f64| {
            (0..n)
                .map(|i| TaskTemplate {
                    index: i,
                    input: InputSource::Generated,
                    demand: TaskDemand {
                        compute,
                        ..TaskDemand::default()
                    },
                })
                .collect::<Vec<_>>()
        };
        let m = b.add_stage(j, "m", "t/m", StageKind::ShuffleMap, vec![], t(3, 10.0));
        b.add_stage(j, "r", "t/r", StageKind::Result, vec![m], t(2, 5.0));
        b.build()
    }

    #[test]
    fn tracker_releases_in_dependency_order() {
        let app = simple_app();
        let mut tr = StageTracker::new(&app);
        let ready = tr.take_ready(&app);
        assert_eq!(ready, vec![StageId(0)]);
        // re-asking yields nothing new
        assert!(tr.take_ready(&app).is_empty());
        // finish the map stage's 3 tasks
        assert!(tr.task_finished(&app, StageId(0)).is_empty());
        assert!(tr.task_finished(&app, StageId(0)).is_empty());
        let ready = tr.task_finished(&app, StageId(0));
        assert_eq!(ready, vec![StageId(1)]);
        assert!(!tr.all_done(&app));
        tr.task_finished(&app, StageId(1));
        tr.task_finished(&app, StageId(1));
        assert!(tr.all_done(&app));
    }

    #[test]
    fn tracker_sequences_jobs() {
        let mut b = AppBuilder::new("t");
        for _ in 0..2 {
            let j = b.begin_job();
            b.add_stage(
                j,
                "r",
                "t/r",
                StageKind::Result,
                vec![],
                vec![TaskTemplate {
                    index: 0,
                    input: InputSource::Generated,
                    demand: TaskDemand::default(),
                }],
            );
        }
        let app = b.build();
        let mut tr = StageTracker::new(&app);
        assert_eq!(tr.take_ready(&app), vec![StageId(0)]);
        // job 2's stage must NOT be ready yet
        assert!(tr.take_ready(&app).is_empty());
        let ready = tr.task_finished(&app, StageId(0));
        assert_eq!(ready, vec![StageId(1)]);
    }

    #[test]
    fn lower_bound_positive_and_stable() {
        let app = simple_app();
        let cluster = ClusterSpec::hydra();
        let lb = ideal_lower_bound(&app, &cluster);
        // compute 10 Gcycles at thor's 4 GHz => 2.5 s, plus reduce 1.25 s
        assert!((lb.as_secs_f64() - 3.75).abs() < 1e-6, "lb = {lb}");
    }

    #[test]
    fn validation_catches_oversized_memory() {
        let mut b = AppBuilder::new("t");
        let j = b.begin_job();
        b.add_stage(
            j,
            "r",
            "t/r",
            StageKind::Result,
            vec![],
            vec![TaskTemplate {
                index: 0,
                input: InputSource::Generated,
                demand: TaskDemand {
                    peak_mem: ByteSize::gib(1000),
                    ..TaskDemand::default()
                },
            }],
        );
        let app = b.build();
        assert!(validate_against_cluster(&app, &ClusterSpec::hydra()).is_err());
    }

    #[test]
    fn validation_accepts_simple_app() {
        assert!(validate_against_cluster(&simple_app(), &ClusterSpec::hydra()).is_ok());
    }

    #[test]
    #[should_panic(expected = "more tasks")]
    fn over_finishing_panics() {
        let app = simple_app();
        let mut tr = StageTracker::new(&app);
        tr.take_ready(&app);
        for _ in 0..4 {
            tr.task_finished(&app, StageId(0));
        }
    }
}
