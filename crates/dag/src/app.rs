//! Applications, jobs and stages (paper Fig. 1).
//!
//! A Spark application runs jobs sequentially (one per driver action);
//! each job is a DAG of stages separated by shuffle dependencies; the
//! final stage of a job is its *result* stage (`ResultTask`s in Spark),
//! all earlier ones are *shuffle-map* stages (`ShuffleMapTask`s). RUPAM's
//! first-contact heuristic keys off this distinction (Algorithm 1's
//! "map stage ⇒ enqueue everywhere, reduce stage ⇒ network-bound").

use rupam_simcore::{define_id, Sym};

use crate::task::{TaskRef, TaskTemplate};

define_id!(
    /// Index of a job within an application.
    JobId,
    "job"
);
define_id!(
    /// Global index of a stage within an application (across jobs).
    StageId,
    "stage"
);

/// Whether a stage's tasks are `ShuffleMapTask`s or `ResultTask`s.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageKind {
    /// Intermediate stage writing shuffle output for children.
    ShuffleMap,
    /// Final stage of a job, sending results to the driver.
    Result,
}

/// One stage: a set of identical-operation tasks over the partitions of
/// an RDD.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Global stage id.
    pub id: StageId,
    /// Owning job.
    pub job: JobId,
    /// Human-readable name (`"lr/gradient iter=3"`).
    pub name: String,
    /// Stable identity across iterations — RUPAM's `DB_task_char` is
    /// keyed by `(template_key, partition)`, so iteration 4's gradient
    /// stage hits the characteristics iteration 3 recorded. Mirrors the
    /// paper's observation that "data centers usually run the same
    /// application on input data with similar patterns periodically".
    pub template_key: Sym,
    /// Map or result stage.
    pub kind: StageKind,
    /// Parent stages (shuffle dependencies), all in the same job.
    pub parents: Vec<StageId>,
    /// One task per partition.
    pub tasks: Vec<TaskTemplate>,
    /// Gang-scheduled stage: under a gang-admitting scheduler its tasks
    /// launch all-or-nothing, only when every task can be co-resident
    /// (e.g. an iterative GPU stage whose partitions synchronise each
    /// sweep). Schedulers without gang admission ignore the flag.
    pub gang: bool,
}

impl Stage {
    /// Number of tasks (partitions).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Reference to the `index`-th task.
    pub fn task_ref(&self, index: usize) -> TaskRef {
        debug_assert!(index < self.tasks.len());
        TaskRef {
            stage: self.id,
            index,
        }
    }
}

/// One job: the stages triggered by a single driver action.
#[derive(Clone, Debug)]
pub struct Job {
    /// Job id (jobs run in id order).
    pub id: JobId,
    /// Stages of this job, in creation (topological) order.
    pub stages: Vec<StageId>,
}

/// A complete application: jobs in submission order plus the global
/// stage table.
#[derive(Clone, Debug)]
pub struct Application {
    /// Application name (`"PageRank"`).
    pub name: String,
    /// Jobs in submission order.
    pub jobs: Vec<Job>,
    /// All stages, indexable by [`StageId`].
    pub stages: Vec<Stage>,
}

impl Application {
    /// The stage with the given id.
    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.index()]
    }

    /// The template of a task reference.
    pub fn task(&self, r: TaskRef) -> &TaskTemplate {
        &self.stage(r.stage).tasks[r.index]
    }

    /// Total number of tasks across all stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.num_tasks()).sum()
    }

    /// Iterate all task references in (stage, index) order.
    pub fn all_task_refs(&self) -> impl Iterator<Item = TaskRef> + '_ {
        self.stages.iter().flat_map(|s| {
            (0..s.num_tasks()).map(move |i| TaskRef {
                stage: s.id,
                index: i,
            })
        })
    }
}

/// Incremental, validated construction of an [`Application`].
///
/// ```
/// use rupam_dag::{AppBuilder, StageKind};
/// use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
///
/// let mut b = AppBuilder::new("demo");
/// let job = b.begin_job();
/// let map = b.add_stage(job, "map", "demo/map", StageKind::ShuffleMap, vec![], vec![
///     TaskTemplate { index: 0, input: InputSource::Generated, demand: TaskDemand::default() },
/// ]);
/// b.add_stage(job, "reduce", "demo/reduce", StageKind::Result, vec![map], vec![
///     TaskTemplate { index: 0, input: InputSource::Shuffle, demand: TaskDemand::default() },
/// ]);
/// let app = b.build();
/// assert_eq!(app.total_tasks(), 2);
/// ```
pub struct AppBuilder {
    app: Application,
}

impl AppBuilder {
    /// Start building an application.
    pub fn new(name: impl Into<String>) -> Self {
        AppBuilder {
            app: Application {
                name: name.into(),
                jobs: Vec::new(),
                stages: Vec::new(),
            },
        }
    }

    /// Open a new job; stages added to it run after all prior jobs finish.
    pub fn begin_job(&mut self) -> JobId {
        let id = JobId(self.app.jobs.len());
        self.app.jobs.push(Job {
            id,
            stages: Vec::new(),
        });
        id
    }

    /// Add a stage to `job`.
    ///
    /// # Panics
    /// Panics if `job` doesn't exist, a parent is missing or belongs to a
    /// different job, `tasks` is empty, or task indices are not `0..n`.
    pub fn add_stage(
        &mut self,
        job: JobId,
        name: impl Into<String>,
        template_key: impl Into<Sym>,
        kind: StageKind,
        parents: Vec<StageId>,
        tasks: Vec<TaskTemplate>,
    ) -> StageId {
        assert!(job.index() < self.app.jobs.len(), "unknown job {job}");
        assert!(!tasks.is_empty(), "stage needs at least one task");
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.index, i, "task indices must be 0..n in order");
        }
        let id = StageId(self.app.stages.len());
        for p in &parents {
            let parent = self
                .app
                .stages
                .get(p.index())
                .unwrap_or_else(|| panic!("unknown parent {p}"));
            assert_eq!(
                parent.job, job,
                "shuffle dependencies must stay within one job"
            );
        }
        self.app.stages.push(Stage {
            id,
            job,
            name: name.into(),
            template_key: template_key.into(),
            kind,
            parents,
            tasks,
            gang: false,
        });
        self.app.jobs[job.index()].stages.push(id);
        id
    }

    /// Flag an already-added stage for gang admission (see
    /// [`Stage::gang`]).
    ///
    /// # Panics
    /// Panics if `stage` doesn't exist yet.
    pub fn mark_gang(&mut self, stage: StageId) {
        self.app
            .stages
            .get_mut(stage.index())
            .unwrap_or_else(|| panic!("unknown stage {stage}"))
            .gang = true;
    }

    /// Finish, validating the whole application:
    /// every job non-empty with exactly one result stage (its last), and
    /// every non-final stage a shuffle-map stage.
    pub fn build(self) -> Application {
        let app = self.app;
        assert!(!app.jobs.is_empty(), "application has no jobs");
        for job in &app.jobs {
            assert!(!job.stages.is_empty(), "{} has no stages", job.id);
            let last = *job.stages.last().unwrap();
            for &sid in &job.stages {
                let s = app.stage(sid);
                if sid == last {
                    assert_eq!(
                        s.kind,
                        StageKind::Result,
                        "last stage of {} must be a Result stage",
                        job.id
                    );
                } else {
                    assert_eq!(
                        s.kind,
                        StageKind::ShuffleMap,
                        "non-final stage {} must be ShuffleMap",
                        sid
                    );
                }
            }
        }
        app
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{InputSource, TaskDemand};

    fn tasks(n: usize) -> Vec<TaskTemplate> {
        (0..n)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Generated,
                demand: TaskDemand::default(),
            })
            .collect()
    }

    #[test]
    fn builds_two_stage_job() {
        let mut b = AppBuilder::new("t");
        let j = b.begin_job();
        let m = b.add_stage(j, "m", "t/m", StageKind::ShuffleMap, vec![], tasks(4));
        let r = b.add_stage(j, "r", "t/r", StageKind::Result, vec![m], tasks(2));
        let app = b.build();
        assert_eq!(app.total_tasks(), 6);
        assert_eq!(app.stage(r).parents, vec![m]);
        assert_eq!(app.all_task_refs().count(), 6);
        assert_eq!(app.task(TaskRef { stage: m, index: 3 }).index, 3);
    }

    #[test]
    fn gang_flag_defaults_off_and_marks() {
        let mut b = AppBuilder::new("t");
        let j = b.begin_job();
        let m = b.add_stage(j, "m", "t/m", StageKind::ShuffleMap, vec![], tasks(2));
        let r = b.add_stage(j, "r", "t/r", StageKind::Result, vec![m], tasks(1));
        b.mark_gang(m);
        let app = b.build();
        assert!(app.stage(m).gang);
        assert!(!app.stage(r).gang, "gang is opt-in per stage");
    }

    #[test]
    fn multi_job_ordering() {
        let mut b = AppBuilder::new("t");
        for _ in 0..3 {
            let j = b.begin_job();
            b.add_stage(j, "r", "t/r", StageKind::Result, vec![], tasks(1));
        }
        let app = b.build();
        assert_eq!(app.jobs.len(), 3);
        assert_eq!(app.jobs[1].id, JobId(1));
    }

    #[test]
    #[should_panic(expected = "within one job")]
    fn cross_job_parent_rejected() {
        let mut b = AppBuilder::new("t");
        let j1 = b.begin_job();
        let s1 = b.add_stage(j1, "r", "t/r", StageKind::Result, vec![], tasks(1));
        let j2 = b.begin_job();
        b.add_stage(j2, "r2", "t/r2", StageKind::Result, vec![s1], tasks(1));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_stage_rejected() {
        let mut b = AppBuilder::new("t");
        let j = b.begin_job();
        b.add_stage(j, "r", "t/r", StageKind::Result, vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "must be a Result stage")]
    fn job_must_end_in_result() {
        let mut b = AppBuilder::new("t");
        let j = b.begin_job();
        b.add_stage(j, "m", "t/m", StageKind::ShuffleMap, vec![], tasks(1));
        b.build();
    }

    #[test]
    #[should_panic(expected = "must be ShuffleMap")]
    fn interior_result_rejected() {
        let mut b = AppBuilder::new("t");
        let j = b.begin_job();
        let s = b.add_stage(j, "r1", "t/r1", StageKind::Result, vec![], tasks(1));
        b.add_stage(j, "r2", "t/r2", StageKind::Result, vec![s], tasks(1));
        b.build();
    }

    #[test]
    #[should_panic(expected = "indices must be 0..n")]
    fn bad_task_indices_rejected() {
        let mut b = AppBuilder::new("t");
        let j = b.begin_job();
        let mut ts = tasks(2);
        ts[1].index = 5;
        b.add_stage(j, "r", "t/r", StageKind::Result, vec![], ts);
    }
}
