//! Data placement and locality.
//!
//! Spark's scheduler ranks candidate placements by locality level
//! (§III-C1): `PROCESS_LOCAL` (data in the executor's JVM — here: the
//! partition is in the executor's cache), `NODE_LOCAL` (an HDFS replica on
//! the node), `RACK_LOCAL` (a replica in the same rack) and `ANY`. The
//! baseline scheduler optimises this ordering exclusively; RUPAM uses it
//! as a tie-breaker after resource matching.
//!
//! [`DataLayout`] is a minimal HDFS: input files are split into blocks,
//! each replicated on `replication` nodes, rack-aware (second replica off
//! the first's rack when possible).

use rand::seq::SliceRandom;
use rand::Rng;
use rupam_simcore::define_id;
use rupam_simcore::units::ByteSize;

use rupam_cluster::{ClusterSpec, NodeId};

define_id!(
    /// Identifier of one HDFS block in a [`DataLayout`].
    BlockId,
    "block"
);

/// Spark's four locality levels, best first.
///
/// `Ord` is derived so that *better* locality compares *less*
/// (`ProcessLocal < NodeLocal < RackLocal < Any`), matching the
/// "in the order of PROCESS_LOCAL, NODE_LOCAL, RACK_LOCAL and ANY"
/// preference walk in Algorithm 2.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Locality {
    /// Data is inside the executor process (cached partition).
    ProcessLocal,
    /// Data is on the node's local disks.
    NodeLocal,
    /// Data is on a node in the same rack.
    RackLocal,
    /// Data is on a node in a different rack.
    Any,
}

impl Locality {
    /// All levels, best first.
    pub const ALL: [Locality; 4] = [
        Locality::ProcessLocal,
        Locality::NodeLocal,
        Locality::RackLocal,
        Locality::Any,
    ];

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            Locality::ProcessLocal => "PROCESS_LOCAL",
            Locality::NodeLocal => "NODE_LOCAL",
            Locality::RackLocal => "RACK_LOCAL",
            Locality::Any => "ANY",
        }
    }

    /// True iff `self` is strictly better (more local) than `other`.
    #[inline]
    pub fn better_than(self, other: Locality) -> bool {
        self < other
    }
}

impl std::fmt::Display for Locality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One replicated HDFS block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Block id.
    pub id: BlockId,
    /// Block size.
    pub size: ByteSize,
    /// Nodes holding a replica.
    pub replicas: Vec<NodeId>,
}

/// Block placement map for one simulated application run.
#[derive(Clone, Debug, Default)]
pub struct DataLayout {
    blocks: Vec<Block>,
}

impl DataLayout {
    /// An empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Place `sizes.len()` blocks on `cluster` with the given replication
    /// factor, rack-aware: the first replica lands on a uniformly random
    /// node, subsequent replicas prefer other racks, then other nodes.
    ///
    /// Returns the new blocks' ids in input order.
    pub fn place_blocks(
        &mut self,
        cluster: &ClusterSpec,
        sizes: &[ByteSize],
        replication: usize,
        rng: &mut impl Rng,
    ) -> Vec<BlockId> {
        assert!(replication >= 1, "replication factor must be >= 1");
        let replication = replication.min(cluster.len());
        let all_nodes: Vec<NodeId> = cluster.iter().map(|(id, _)| id).collect();
        let mut ids = Vec::with_capacity(sizes.len());
        for &size in sizes {
            let first = *all_nodes.choose(rng).expect("non-empty cluster");
            let mut replicas = vec![first];
            // prefer off-rack candidates for the remaining replicas
            let mut off_rack: Vec<NodeId> = all_nodes
                .iter()
                .copied()
                .filter(|&n| n != first && !cluster.same_rack(n, first))
                .collect();
            let mut on_rack: Vec<NodeId> = all_nodes
                .iter()
                .copied()
                .filter(|&n| n != first && cluster.same_rack(n, first))
                .collect();
            off_rack.shuffle(rng);
            on_rack.shuffle(rng);
            let mut pool = off_rack.into_iter().chain(on_rack);
            while replicas.len() < replication {
                match pool.next() {
                    Some(n) => replicas.push(n),
                    None => break,
                }
            }
            let id = BlockId(self.blocks.len());
            self.blocks.push(Block { id, size, replicas });
            ids.push(id);
        }
        ids
    }

    /// Append every block of `other`, renumbering ids to follow this
    /// layout's. Returns the id offset: block `BlockId(i)` of `other`
    /// becomes `BlockId(i + offset)` here. Used when merging the layouts
    /// of several stream entries into one shared-cluster layout.
    pub fn absorb(&mut self, other: DataLayout) -> usize {
        let offset = self.blocks.len();
        for mut b in other.blocks {
            b.id = BlockId(b.id.index() + offset);
            self.blocks.push(b);
        }
        offset
    }

    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Number of blocks placed.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True iff no blocks have been placed.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether `node` holds a replica of `block`.
    pub fn is_replica(&self, block: BlockId, node: NodeId) -> bool {
        self.block(block).replicas.contains(&node)
    }

    /// HDFS-read locality of `block` from `node` (ignoring caches, which
    /// the executor layer checks first): `NodeLocal` if the node holds a
    /// replica, `RackLocal` if some replica shares its rack, else `Any`.
    pub fn hdfs_locality(&self, cluster: &ClusterSpec, block: BlockId, node: NodeId) -> Locality {
        let b = self.block(block);
        if b.replicas.contains(&node) {
            return Locality::NodeLocal;
        }
        if b.replicas.iter().any(|&r| cluster.same_rack(r, node)) {
            return Locality::RackLocal;
        }
        Locality::Any
    }

    /// A replica to read `block` from, as seen from `node`: the node
    /// itself if it holds one, else a same-rack replica, else the first
    /// replica.
    pub fn read_source(&self, cluster: &ClusterSpec, block: BlockId, node: NodeId) -> NodeId {
        let b = self.block(block);
        if b.replicas.contains(&node) {
            return node;
        }
        b.replicas
            .iter()
            .copied()
            .find(|&r| cluster.same_rack(r, node))
            .unwrap_or(b.replicas[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rupam_simcore::RngFactory;

    #[test]
    fn locality_ordering_best_first() {
        assert!(Locality::ProcessLocal < Locality::NodeLocal);
        assert!(Locality::NodeLocal < Locality::RackLocal);
        assert!(Locality::RackLocal < Locality::Any);
        assert!(Locality::ProcessLocal.better_than(Locality::Any));
        assert!(!Locality::Any.better_than(Locality::Any));
    }

    #[test]
    fn placement_respects_replication() {
        let cluster = ClusterSpec::hydra();
        let mut layout = DataLayout::new();
        let mut rng = RngFactory::new(1).stream("place");
        let sizes = vec![ByteSize::mib(128); 40];
        let ids = layout.place_blocks(&cluster, &sizes, 3, &mut rng);
        assert_eq!(ids.len(), 40);
        for id in ids {
            let b = layout.block(id);
            assert_eq!(b.replicas.len(), 3);
            // replicas distinct
            let mut r = b.replicas.clone();
            r.sort();
            r.dedup();
            assert_eq!(r.len(), 3);
            // rack-aware: at least two racks covered
            let racks: std::collections::HashSet<_> =
                b.replicas.iter().map(|&n| cluster.node(n).rack).collect();
            assert!(
                racks.len() >= 2,
                "replicas should span racks: {:?}",
                b.replicas
            );
        }
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let cluster = ClusterSpec::two_node_motivation();
        let mut layout = DataLayout::new();
        let mut rng = RngFactory::new(2).stream("place");
        let ids = layout.place_blocks(&cluster, &[ByteSize::mib(64)], 5, &mut rng);
        assert_eq!(layout.block(ids[0]).replicas.len(), 2);
    }

    #[test]
    fn hdfs_locality_levels() {
        let cluster = ClusterSpec::hydra();
        let mut layout = DataLayout::new();
        let mut rng = RngFactory::new(3).stream("place");
        let ids = layout.place_blocks(&cluster, &[ByteSize::mib(128)], 2, &mut rng);
        let b = layout.block(ids[0]).clone();
        let holder = b.replicas[0];
        assert_eq!(
            layout.hdfs_locality(&cluster, b.id, holder),
            Locality::NodeLocal
        );
        // some node that holds no replica
        let non_holder = cluster
            .iter()
            .map(|(id, _)| id)
            .find(|id| !b.replicas.contains(id))
            .unwrap();
        let loc = layout.hdfs_locality(&cluster, b.id, non_holder);
        assert!(loc == Locality::RackLocal || loc == Locality::Any);
        assert_eq!(layout.read_source(&cluster, b.id, holder), holder);
        let src = layout.read_source(&cluster, b.id, non_holder);
        assert!(b.replicas.contains(&src));
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let cluster = ClusterSpec::hydra();
        let run = |seed| {
            let mut layout = DataLayout::new();
            let mut rng = RngFactory::new(seed).stream("place");
            layout.place_blocks(&cluster, &[ByteSize::mib(128); 10], 2, &mut rng);
            layout
                .blocks
                .iter()
                .map(|b| b.replicas.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    proptest! {
        #[test]
        fn prop_placement_valid(seed in any::<u64>(), n_blocks in 1usize..30, repl in 1usize..4) {
            let cluster = ClusterSpec::hydra();
            let mut layout = DataLayout::new();
            let mut rng = RngFactory::new(seed).stream("prop");
            let sizes = vec![ByteSize::mib(64); n_blocks];
            let ids = layout.place_blocks(&cluster, &sizes, repl, &mut rng);
            for id in ids {
                let b = layout.block(id);
                prop_assert_eq!(b.replicas.len(), repl.min(cluster.len()));
                for r in &b.replicas {
                    prop_assert!(r.index() < cluster.len());
                }
            }
        }
    }
}
