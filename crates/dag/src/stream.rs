//! Multi-tenant job streams.
//!
//! The paper evaluates RUPAM on a shared cluster that serves many
//! applications, and `DB_task_char` is keyed so that *later* runs of a
//! job reuse the characterizations banked by earlier ones (Table I,
//! §III-B). A [`JobStream`] models that setting: a sequence of
//! applications submitted to one cluster at seeded arrival offsets,
//! scheduled by one long-lived scheduler.
//!
//! The engine consumes a [`MergedStream`]: all entries merged into a
//! single [`Application`] with globally renumbered stage/job/block ids
//! (so `TaskRef`s stay unique across tenants) plus per-entry metadata —
//! arrival time, display name, and which merged app-jobs belong to which
//! stream job. Stage `template_key`s are deliberately *not* renamed:
//! two tenants running the same workload share characterization keys,
//! which is exactly the cross-job reuse under study.

use rupam_simcore::time::SimTime;
use rupam_simcore::define_id;

use crate::app::{Application, Job, JobId, Stage, StageId};
use crate::data::{BlockId, DataLayout};
use crate::task::InputSource;

define_id!(
    /// Index of a tenant sharing the cluster. Several stream jobs may
    /// belong to one tenant (its submission queue); allocation policies
    /// arbitrate *between* tenants, never between a tenant's own jobs.
    TenantId,
    "tenant"
);

/// One entry of a [`JobStream`]: an application submitted at `arrival`
/// on behalf of `tenant`.
#[derive(Clone, Debug)]
pub struct StreamEntry {
    /// Display name (`"TeraSort#2"`).
    pub name: String,
    /// The application to run.
    pub app: Application,
    /// Its HDFS block placement.
    pub layout: DataLayout,
    /// Submission instant relative to the start of the run.
    pub arrival: SimTime,
    /// Owning tenant. [`JobStream::push`] assigns each entry its own
    /// tenant (the historical one-job-one-tenant reading); use
    /// [`JobStream::push_as`] to submit several jobs under one tenant.
    pub tenant: TenantId,
}

/// A stream of applications arriving at one shared cluster.
#[derive(Clone, Debug, Default)]
pub struct JobStream {
    entries: Vec<StreamEntry>,
}

impl JobStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry. Arrivals must be non-decreasing (stream jobs are
    /// numbered in submission order).
    ///
    /// # Panics
    /// Panics if `arrival` precedes the previous entry's arrival.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        app: Application,
        layout: DataLayout,
        arrival: SimTime,
    ) {
        let tenant = TenantId(self.entries.len());
        self.push_as(name, app, layout, arrival, tenant);
    }

    /// Append an entry on behalf of an explicit tenant. Arrivals must be
    /// non-decreasing; tenant ids may repeat (one tenant, many jobs) and
    /// need not be contiguous, but the merge renumbers nothing — callers
    /// should keep them dense so per-tenant tables stay small.
    ///
    /// # Panics
    /// Panics if `arrival` precedes the previous entry's arrival.
    pub fn push_as(
        &mut self,
        name: impl Into<String>,
        app: Application,
        layout: DataLayout,
        arrival: SimTime,
        tenant: TenantId,
    ) {
        if let Some(last) = self.entries.last() {
            assert!(
                arrival >= last.arrival,
                "stream arrivals must be non-decreasing ({arrival} < {})",
                last.arrival
            );
        }
        self.entries.push(StreamEntry {
            name: name.into(),
            app,
            layout,
            arrival,
            tenant,
        });
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the stream has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge every entry into one engine-consumable bundle.
    ///
    /// # Panics
    /// Panics if the stream is empty.
    pub fn merge(self) -> MergedStream {
        assert!(!self.entries.is_empty(), "cannot merge an empty stream");
        let name = self
            .entries
            .iter()
            .map(|e| e.name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        let mut app = Application {
            name,
            jobs: Vec::new(),
            stages: Vec::new(),
        };
        let mut layout = DataLayout::new();
        let mut jobs = Vec::with_capacity(self.entries.len());
        let mut stage_jobs = Vec::new();
        for (idx, entry) in self.entries.into_iter().enumerate() {
            let stream_job = JobId(idx);
            let stage_off = app.stages.len();
            let job_off = app.jobs.len();
            let block_off = layout.absorb(entry.layout);
            for s in entry.app.stages {
                app.stages
                    .push(remap_stage(s, stage_off, job_off, block_off));
                stage_jobs.push(stream_job);
            }
            let first_app_job = app.jobs.len();
            for j in entry.app.jobs {
                app.jobs.push(Job {
                    id: JobId(job_off + j.id.index()),
                    stages: j
                        .stages
                        .into_iter()
                        .map(|s| StageId(s.index() + stage_off))
                        .collect(),
                });
            }
            jobs.push(StreamJobMeta {
                id: stream_job,
                name: entry.name,
                arrival: entry.arrival,
                app_jobs: first_app_job..app.jobs.len(),
                tenant: entry.tenant,
            });
        }
        MergedStream {
            app,
            layout,
            jobs,
            stage_jobs,
        }
    }
}

fn remap_stage(mut s: Stage, stage_off: usize, job_off: usize, block_off: usize) -> Stage {
    s.id = StageId(s.id.index() + stage_off);
    s.job = JobId(s.job.index() + job_off);
    for p in &mut s.parents {
        *p = StageId(p.index() + stage_off);
    }
    for t in &mut s.tasks {
        match &mut t.input {
            InputSource::Hdfs(b) => *b = BlockId(b.index() + block_off),
            InputSource::CachedOrHdfs { fallback, .. } => {
                *fallback = BlockId(fallback.index() + block_off);
            }
            InputSource::Shuffle | InputSource::Generated => {}
        }
    }
    s
}

/// Per-entry metadata surviving the merge.
#[derive(Clone, Debug)]
pub struct StreamJobMeta {
    /// Stream job id (entry index in submission order).
    pub id: JobId,
    /// Display name.
    pub name: String,
    /// Submission instant.
    pub arrival: SimTime,
    /// The merged application's job indices belonging to this entry.
    /// Those app-jobs still run sequentially *within* the entry; entries
    /// run concurrently once arrived.
    pub app_jobs: std::ops::Range<usize>,
    /// Owning tenant.
    pub tenant: TenantId,
}

/// A [`JobStream`] flattened for the engine: one merged application and
/// layout, plus which stream job each stage belongs to.
#[derive(Clone, Debug)]
pub struct MergedStream {
    /// All entries' stages and jobs, globally renumbered.
    pub app: Application,
    /// All entries' blocks, globally renumbered.
    pub layout: DataLayout,
    /// Per-entry metadata, indexed by stream [`JobId`].
    pub jobs: Vec<StreamJobMeta>,
    /// Stream job of each stage, indexed by [`StageId`].
    pub stage_jobs: Vec<JobId>,
}

impl MergedStream {
    /// The stream job owning `stage`.
    pub fn stream_job(&self, stage: StageId) -> JobId {
        self.stage_jobs[stage.index()]
    }

    /// The tenant owning stream job `job`.
    pub fn tenant_of(&self, job: JobId) -> TenantId {
        self.jobs[job.index()].tenant
    }

    /// Tenant of each stream job, indexed by [`JobId`] — the table
    /// offer-input builders hand to schedulers.
    pub fn job_tenants(&self) -> Vec<TenantId> {
        self.jobs.iter().map(|j| j.tenant).collect()
    }

    /// Number of distinct tenants (`max id + 1`; dense ids assumed).
    pub fn tenant_count(&self) -> usize {
        self.jobs
            .iter()
            .map(|j| j.tenant.index() + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, StageKind};
    use crate::task::{CacheKey, TaskDemand, TaskTemplate};
    use rupam_cluster::ClusterSpec;
    use rupam_simcore::units::ByteSize;
    use rupam_simcore::RngFactory;

    fn entry(cluster: &ClusterSpec, seed: u64) -> (Application, DataLayout) {
        let mut layout = DataLayout::new();
        let mut rng = RngFactory::new(seed).stream("place");
        let blocks = layout.place_blocks(cluster, &[ByteSize::mib(128); 2], 2, &mut rng);
        let mut b = AppBuilder::new("t");
        let j = b.begin_job();
        let maps = blocks
            .iter()
            .enumerate()
            .map(|(i, &bl)| TaskTemplate {
                index: i,
                input: InputSource::CachedOrHdfs {
                    key: CacheKey::new("t/data", i),
                    fallback: bl,
                },
                demand: TaskDemand::default(),
            })
            .collect();
        let m = b.add_stage(j, "m", "t/m", StageKind::ShuffleMap, vec![], maps);
        b.add_stage(
            j,
            "r",
            "t/r",
            StageKind::Result,
            vec![m],
            vec![TaskTemplate {
                index: 0,
                input: InputSource::Shuffle,
                demand: TaskDemand::default(),
            }],
        );
        (b.build(), layout)
    }

    fn two_entry_stream() -> MergedStream {
        let cluster = ClusterSpec::hydra();
        let mut stream = JobStream::new();
        let (a1, l1) = entry(&cluster, 1);
        let (a2, l2) = entry(&cluster, 2);
        stream.push("one", a1, l1, SimTime::ZERO);
        stream.push("two", a2, l2, SimTime::from_secs_f64(30.0));
        stream.merge()
    }

    #[test]
    fn merge_renumbers_stages_jobs_and_blocks() {
        let merged = two_entry_stream();
        assert_eq!(merged.app.name, "one+two");
        assert_eq!(merged.app.stages.len(), 4);
        assert_eq!(merged.app.jobs.len(), 2);
        assert_eq!(merged.layout.len(), 4);
        // ids are their own indices after renumbering
        for (i, s) in merged.app.stages.iter().enumerate() {
            assert_eq!(s.id, StageId(i));
        }
        for (i, j) in merged.app.jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i));
        }
        // entry 2's stages point at entry 2's job and blocks
        let s2 = &merged.app.stages[2];
        assert_eq!(s2.job, JobId(1));
        assert_eq!(s2.parents, Vec::<StageId>::new());
        match &s2.tasks[0].input {
            InputSource::CachedOrHdfs { fallback, .. } => {
                assert!(fallback.index() >= 2, "block not renumbered: {fallback}");
            }
            other => panic!("unexpected input {other:?}"),
        }
        assert_eq!(merged.app.stages[3].parents, vec![StageId(2)]);
        // template keys stay shared across tenants (warm-DB reuse)
        assert_eq!(merged.app.stages[0].template_key, "t/m");
        assert_eq!(merged.app.stages[2].template_key, "t/m");
    }

    #[test]
    fn merge_tracks_per_entry_metadata() {
        let merged = two_entry_stream();
        assert_eq!(merged.jobs.len(), 2);
        assert_eq!(merged.jobs[0].arrival, SimTime::ZERO);
        assert_eq!(merged.jobs[1].arrival, SimTime::from_secs_f64(30.0));
        assert_eq!(merged.jobs[0].app_jobs, 0..1);
        assert_eq!(merged.jobs[1].app_jobs, 1..2);
        assert_eq!(
            merged.stage_jobs,
            vec![JobId(0), JobId(0), JobId(1), JobId(1)]
        );
        assert_eq!(merged.stream_job(StageId(3)), JobId(1));
    }

    #[test]
    fn default_push_gives_each_entry_its_own_tenant() {
        let merged = two_entry_stream();
        assert_eq!(merged.jobs[0].tenant, TenantId(0));
        assert_eq!(merged.jobs[1].tenant, TenantId(1));
        assert_eq!(merged.tenant_of(JobId(1)), TenantId(1));
        assert_eq!(merged.job_tenants(), vec![TenantId(0), TenantId(1)]);
        assert_eq!(merged.tenant_count(), 2);
    }

    #[test]
    fn push_as_groups_jobs_under_one_tenant() {
        let cluster = ClusterSpec::hydra();
        let mut stream = JobStream::new();
        let (a1, l1) = entry(&cluster, 1);
        let (a2, l2) = entry(&cluster, 2);
        let (a3, l3) = entry(&cluster, 3);
        stream.push_as("a0", a1, l1, SimTime::ZERO, TenantId(0));
        stream.push_as("a1", a2, l2, SimTime::from_secs_f64(5.0), TenantId(0));
        stream.push_as("b0", a3, l3, SimTime::from_secs_f64(9.0), TenantId(1));
        let merged = stream.merge();
        assert_eq!(
            merged.job_tenants(),
            vec![TenantId(0), TenantId(0), TenantId(1)]
        );
        assert_eq!(merged.tenant_count(), 2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_arrivals_rejected() {
        let cluster = ClusterSpec::hydra();
        let mut stream = JobStream::new();
        let (a1, l1) = entry(&cluster, 1);
        let (a2, l2) = entry(&cluster, 2);
        stream.push("one", a1, l1, SimTime::from_secs_f64(10.0));
        stream.push("two", a2, l2, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn empty_merge_rejected() {
        JobStream::new().merge();
    }
}
