//! # rupam-dag
//!
//! The Spark-like application model (paper Fig. 1): an
//! [`app::Application`] is a sequence of jobs triggered by actions; each
//! job is a DAG of [`app::Stage`]s separated by shuffle dependencies; each
//! stage runs one [`task::TaskTemplate`] per partition of its RDD.
//!
//! * [`task`] — task templates and multi-dimensional demand vectors (the
//!   task-side metrics of Table I: compute time, GPU use, shuffle
//!   read/write volume, peak memory).
//! * [`data`] — HDFS-like block placement with replication, and the four
//!   Spark locality levels (`PROCESS_LOCAL` … `ANY`).
//! * [`app`] — applications, jobs, stages, and construction/validation.
//! * [`lineage`] — DAG utilities: topological order, readiness, critical
//!   path lower bounds.
//! * [`stream`] — multi-tenant job streams: several applications arriving
//!   at one shared cluster, merged into a single renumbered application.

#![warn(missing_docs)]

pub mod app;
pub mod data;
pub mod lineage;
pub mod stream;
pub mod task;

pub use app::{AppBuilder, Application, Job, JobId, Stage, StageId, StageKind};
pub use data::{BlockId, DataLayout, Locality};
pub use stream::{JobStream, MergedStream, StreamEntry, StreamJobMeta, TenantId};
pub use task::{CacheKey, InputSource, TaskDemand, TaskRef, TaskTemplate};
