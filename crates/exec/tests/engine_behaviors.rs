//! Behavioural integration tests of the execution engine through its
//! public API: contention physics, GPU sharing, decision-cost
//! accounting, and executor-loss consequences.

use rupam_cluster::{ClusterSpec, DiskSpec, NodeId, NodeSpec};
use rupam_dag::app::{Application, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::task::{CacheKey, InputSource, TaskDemand, TaskTemplate};
use rupam_dag::AppBuilder;
use rupam_exec::scheduler::{Command, OfferInput, Scheduler};
use rupam_exec::{simulate, LaunchReason, SimConfig, SimInput};
use rupam_metrics::breakdown::BreakdownCategory as C;
use rupam_simcore::time::SimDuration;
use rupam_simcore::units::ByteSize;

/// Pin every task onto one node, `slots` at a time.
struct PinAll {
    node: NodeId,
    slots: usize,
    use_gpu: bool,
}

impl Scheduler for PinAll {
    fn name(&self) -> &str {
        "pin-all"
    }
    fn executor_memory(&self, cluster: &ClusterSpec, node: NodeId) -> ByteSize {
        cluster.node(node).mem
    }
    fn decision_cost(&self) -> SimDuration {
        SimDuration::from_millis(50)
    }
    fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
        let running = input.nodes[self.node.index()].running_count();
        input
            .pending
            .iter()
            .take(self.slots.saturating_sub(running))
            .map(|p| Command::Launch {
                task: p.task,
                node: self.node,
                use_gpu: self.use_gpu,
                speculative: false,
                reason: LaunchReason::FifoSlot,
            })
            .collect()
    }
}

fn single_node_cluster(cores: u32, ghz: f64, gpus: u32) -> ClusterSpec {
    ClusterSpec::new(vec![NodeSpec {
        name: "solo".into(),
        class: "solo".into(),
        cores,
        cpu_ghz: ghz,
        mem: ByteSize::gib(64),
        net_bw: 125e6,
        disk: DiskSpec::sata_ssd(),
        gpus,
        gpu_gcps: 20.0,
        rack: 0,
    }])
}

fn compute_app(n: usize, compute: f64, gpu_kernels: f64) -> Application {
    let mut b = AppBuilder::new("behav");
    let j = b.begin_job();
    b.add_stage(
        j,
        "r",
        "behav/r",
        StageKind::Result,
        vec![],
        (0..n)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Generated,
                demand: TaskDemand {
                    compute,
                    gpu_kernels,
                    peak_mem: ByteSize::mib(128),
                    ..TaskDemand::default()
                },
            })
            .collect(),
    );
    b.build()
}

fn run(
    cluster: &ClusterSpec,
    app: &Application,
    sched: &mut dyn Scheduler,
    seed: u64,
) -> rupam_metrics::RunReport {
    let layout = DataLayout::new();
    let cfg = SimConfig::default();
    let input = SimInput {
        cluster,
        app,
        layout: &layout,
        config: &cfg,
        seed,
    };
    simulate(&input, sched)
}

#[test]
fn cpu_sharing_is_fair_processor_sharing() {
    // 8 identical tasks on 4 cores: each takes ~2× its solo time
    let cluster = single_node_cluster(4, 2.0, 0);
    let solo = {
        let app = compute_app(1, 20.0, 0.0);
        let mut s = PinAll {
            node: NodeId(0),
            slots: 8,
            use_gpu: false,
        };
        run(&cluster, &app, &mut s, 1).makespan.as_secs_f64()
    };
    let crowded = {
        let app = compute_app(8, 20.0, 0.0);
        let mut s = PinAll {
            node: NodeId(0),
            slots: 8,
            use_gpu: false,
        };
        run(&cluster, &app, &mut s, 1).makespan.as_secs_f64()
    };
    let ratio = crowded / solo;
    assert!(
        (1.7..2.4).contains(&ratio),
        "8 tasks on 4 cores should take ~2x one task, got {ratio:.2}x ({solo:.1}s -> {crowded:.1}s)"
    );
}

#[test]
fn gpu_contention_serialises_kernels() {
    // 4 GPU tasks on a 1-GPU node take ~4× one GPU task
    let cluster = single_node_cluster(8, 2.0, 1);
    let solo = {
        let app = compute_app(1, 40.0, 40.0);
        let mut s = PinAll {
            node: NodeId(0),
            slots: 8,
            use_gpu: true,
        };
        run(&cluster, &app, &mut s, 2).makespan.as_secs_f64()
    };
    let crowded = {
        let app = compute_app(4, 40.0, 40.0);
        let mut s = PinAll {
            node: NodeId(0),
            slots: 8,
            use_gpu: true,
        };
        run(&cluster, &app, &mut s, 2).makespan.as_secs_f64()
    };
    let ratio = crowded / solo;
    assert!(
        (3.2..4.8).contains(&ratio),
        "4 kernels through 1 GPU should take ~4x, got {ratio:.2}x"
    );
}

#[test]
fn gpu_beats_cpu_for_kernel_heavy_tasks() {
    let cluster = single_node_cluster(8, 1.0, 1);
    let app = compute_app(1, 40.0, 40.0);
    let on_gpu = {
        let mut s = PinAll {
            node: NodeId(0),
            slots: 1,
            use_gpu: true,
        };
        run(&cluster, &app, &mut s, 3)
    };
    // a GPU-capable task on a GPU node grabs the GPU opportunistically,
    // so contrast against a cluster with no GPU at all
    let no_gpu_cluster = single_node_cluster(8, 1.0, 0);
    let on_cpu = {
        let mut s = PinAll {
            node: NodeId(0),
            slots: 1,
            use_gpu: false,
        };
        run(&no_gpu_cluster, &app, &mut s, 3)
    };
    assert_eq!(on_gpu.gpu_task_count(), 1);
    assert_eq!(on_cpu.gpu_task_count(), 0);
    // 40 Gc at 20 Gc/s (GPU) vs 1 GHz core: 2 s vs 40 s
    assert!(
        on_cpu.makespan.as_secs_f64() / on_gpu.makespan.as_secs_f64() > 5.0,
        "GPU run {} should crush CPU run {}",
        on_gpu.makespan,
        on_cpu.makespan
    );
}

#[test]
fn decision_cost_lands_in_scheduler_delay() {
    let cluster = single_node_cluster(4, 2.0, 0);
    let app = compute_app(4, 4.0, 0.0);
    let mut s = PinAll {
        node: NodeId(0),
        slots: 4,
        use_gpu: false,
    };
    let report = run(&cluster, &app, &mut s, 4);
    let total = report.breakdown_totals();
    let delay = total.get(C::SchedulerDelay);
    // 4 tasks × 50 ms decision cost
    assert_eq!(delay, SimDuration::from_millis(200));
}

#[test]
fn executor_loss_wipes_the_partition_cache() {
    // Job 1 caches partitions; between jobs the executor dies from an
    // engineered memory blow-up; job 2 must re-read (no PROCESS_LOCAL).
    let cluster = single_node_cluster(8, 2.0, 0);
    let mut rng = rupam_simcore::RngFactory::new(5).stream("layout");
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(&cluster, &[ByteSize::mib(64); 4], 1, &mut rng);
    let mut b = AppBuilder::new("cachewipe");
    let scan_tasks = |blocks: &[rupam_dag::BlockId]| {
        blocks
            .iter()
            .enumerate()
            .map(|(i, blk)| TaskTemplate {
                index: i,
                input: InputSource::CachedOrHdfs {
                    key: CacheKey::new("cw/data", i),
                    fallback: *blk,
                },
                demand: TaskDemand {
                    compute: 2.0,
                    input_bytes: ByteSize::mib(64),
                    peak_mem: ByteSize::mib(256),
                    cached_bytes: ByteSize::mib(80),
                    ..TaskDemand::default()
                },
            })
            .collect::<Vec<_>>()
    };
    // job 1: populate the cache
    let j = b.begin_job();
    b.add_stage(
        j,
        "scan1",
        "cw/data",
        StageKind::Result,
        vec![],
        scan_tasks(&blocks),
    );
    // job 2: a memory bomb — two 45 GiB tasks together overshoot the
    // 62 GiB executor past the kill ratio; each alone fits fine
    let j = b.begin_job();
    b.add_stage(
        j,
        "bomb",
        "cw/bomb",
        StageKind::Result,
        vec![],
        (0..2)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Generated,
                demand: TaskDemand {
                    compute: 30.0,
                    peak_mem: ByteSize::gib(45),
                    ..TaskDemand::default()
                },
            })
            .collect(),
    );
    // job 3: scan again — should find the cache gone
    let j = b.begin_job();
    b.add_stage(
        j,
        "scan2",
        "cw/data",
        StageKind::Result,
        vec![],
        scan_tasks(&blocks),
    );
    let app = b.build();

    // the scheduler detonates the bomb once (both tasks together), then
    // relaunches the survivors one at a time so the run can finish
    struct Detonator {
        boomed: bool,
    }
    impl Scheduler for Detonator {
        fn name(&self) -> &str {
            "detonator"
        }
        fn executor_memory(&self, c: &ClusterSpec, n: NodeId) -> ByteSize {
            c.node(n).mem
        }
        fn on_task_failed(
            &mut self,
            _task: rupam_dag::TaskRef,
            _node: NodeId,
            _outcome: rupam_metrics::record::AttemptOutcome,
            _now: rupam_simcore::time::SimTime,
        ) {
            self.boomed = true;
        }
        fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
            let node = NodeId(0);
            if input.nodes[0].blocked {
                return vec![];
            }
            let bombs_running = input.nodes[0]
                .running
                .iter()
                .filter(|r| r.peak_mem > ByteSize::gib(10))
                .count();
            let mut cmds = Vec::new();
            for p in &input.pending {
                let is_bomb = p.template_key == "cw/bomb";
                if is_bomb && self.boomed && (bombs_running > 0 || !cmds.is_empty()) {
                    continue; // post-boom: one bomb at a time
                }
                cmds.push(Command::Launch {
                    task: p.task,
                    node,
                    use_gpu: false,
                    speculative: false,
                    reason: LaunchReason::FifoSlot,
                });
            }
            cmds
        }
    }
    let cfg = SimConfig::default();
    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &cfg,
        seed: 5,
    };
    let mut s = Detonator { boomed: false };
    let report = simulate(&input, &mut s);
    assert!(report.completed);
    assert!(
        report.executor_losses > 0,
        "the bomb should kill the executor"
    );
    let scan2_process_local = report
        .records
        .iter()
        .filter(|r| {
            r.task.stage.index() == 2
                && r.outcome.is_success()
                && r.locality == rupam_dag::Locality::ProcessLocal
        })
        .count();
    assert_eq!(
        scan2_process_local, 0,
        "post-loss scan must not hit the wiped cache"
    );
}

#[test]
fn network_sharing_scales_fetch_time() {
    // reduce tasks fetching remote shuffle share the NIC
    let mk = |reducers: usize| {
        let mut b = AppBuilder::new("net");
        let j = b.begin_job();
        let maps: Vec<TaskTemplate> = (0..4)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Generated,
                demand: TaskDemand {
                    compute: 0.5,
                    shuffle_write: ByteSize::mib(100),
                    peak_mem: ByteSize::mib(64),
                    ..TaskDemand::default()
                },
            })
            .collect();
        let m = b.add_stage(j, "m", "net/m", StageKind::ShuffleMap, vec![], maps);
        let reds: Vec<TaskTemplate> = (0..reducers)
            .map(|i| TaskTemplate {
                index: i,
                input: InputSource::Shuffle,
                demand: TaskDemand {
                    compute: 0.1,
                    shuffle_read: ByteSize::mib(400 / reducers as u64),
                    peak_mem: ByteSize::mib(64),
                    ..TaskDemand::default()
                },
            })
            .collect();
        b.add_stage(j, "r", "net/r", StageKind::Result, vec![m], reds);
        b.build()
    };
    // two nodes: maps pinned on node 0, reduces pinned on node 1 → all
    // shuffle bytes cross node 1's NIC
    struct SplitPin;
    impl Scheduler for SplitPin {
        fn name(&self) -> &str {
            "split-pin"
        }
        fn executor_memory(&self, c: &ClusterSpec, n: NodeId) -> ByteSize {
            c.node(n).mem
        }
        fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
            input
                .pending
                .iter()
                .map(|p| Command::Launch {
                    task: p.task,
                    node: if p.template_key == "net/m" {
                        NodeId(0)
                    } else {
                        NodeId(1)
                    },
                    use_gpu: false,
                    speculative: false,
                    reason: LaunchReason::FifoSlot,
                })
                .collect()
        }
    }
    let cluster = ClusterSpec::homogeneous(2);
    let layout = DataLayout::new();
    let cfg = SimConfig::default();
    let run_net = |reducers: usize| {
        let app = mk(reducers);
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed: 6,
        };
        let mut s = SplitPin;
        let report = simulate(&input, &mut s);
        assert!(report.completed);
        report.makespan.as_secs_f64()
    };
    // the same 400 MiB cross one NIC either way, so the fan-in must not
    // change wall time (fluid sharing conserves bandwidth)
    let t1 = run_net(1);
    let t4 = run_net(4);
    assert!(
        (t1 - t4).abs() / t1 < 0.15,
        "wall time should be volume-bound: 1 reducer {t1:.2}s vs 4 reducers {t4:.2}s"
    );
}

#[test]
fn scales_to_thousands_of_tasks() {
    // a 3 000-task two-stage app on 12 nodes must complete correctly and
    // in reasonable wall time (the fluid engine is O(events × running))
    let cluster = ClusterSpec::homogeneous(12);
    let mut b = AppBuilder::new("stress");
    let j = b.begin_job();
    let maps: Vec<TaskTemplate> = (0..2500)
        .map(|i| TaskTemplate {
            index: i,
            input: InputSource::Generated,
            demand: TaskDemand {
                compute: 2.0,
                shuffle_write: ByteSize::mib(4),
                peak_mem: ByteSize::mib(64),
                ..TaskDemand::default()
            },
        })
        .collect();
    let m = b.add_stage(j, "m", "stress/m", StageKind::ShuffleMap, vec![], maps);
    let reds: Vec<TaskTemplate> = (0..500)
        .map(|i| TaskTemplate {
            index: i,
            input: InputSource::Shuffle,
            demand: TaskDemand {
                compute: 1.0,
                shuffle_read: ByteSize::mib(20),
                peak_mem: ByteSize::mib(64),
                ..TaskDemand::default()
            },
        })
        .collect();
    b.add_stage(j, "r", "stress/r", StageKind::Result, vec![m], reds);
    let app = b.build();
    let layout = DataLayout::new();
    let cfg = SimConfig::default();
    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &cfg,
        seed: 9,
    };

    struct RR(Vec<usize>);
    impl Scheduler for RR {
        fn name(&self) -> &str {
            "stress-rr"
        }
        fn executor_memory(&self, c: &ClusterSpec, n: NodeId) -> ByteSize {
            c.node(n).mem
        }
        fn on_app_start(&mut self, _: &Application, c: &ClusterSpec) {
            self.0 = c.nodes().iter().map(|n| n.cores as usize).collect();
        }
        fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
            let mut used: Vec<usize> = input.nodes.iter().map(|n| n.running_count()).collect();
            let mut cursor = 0usize;
            let n = input.nodes.len();
            input
                .pending
                .iter()
                .filter_map(|p| {
                    let i = (0..n)
                        .map(|k| (cursor + k) % n)
                        .find(|&i| used[i] < self.0[i])?;
                    used[i] += 1;
                    cursor = (i + 1) % n;
                    Some(Command::Launch {
                        task: p.task,
                        node: NodeId(i),
                        use_gpu: false,
                        speculative: false,
                        reason: LaunchReason::FifoSlot,
                    })
                })
                .collect()
        }
    }
    let started = std::time::Instant::now();
    let mut sched = RR(Vec::new());
    let report = simulate(&input, &mut sched);
    assert!(report.completed);
    let successes = report
        .records
        .iter()
        .filter(|r| r.outcome.is_success())
        .count();
    assert_eq!(successes, 3000);
    assert!(
        started.elapsed().as_secs() < 120,
        "3k-task simulation took {:?} — the engine regressed badly",
        started.elapsed()
    );
}
