//! Simulation tunables.
//!
//! Defaults follow Spark 2.2's shipped configuration where one exists
//! (locality wait 3 s, speculation quantile 0.75 / multiplier 1.5) and the
//! calibration described in `DESIGN.md` otherwise.

use rupam_simcore::time::SimDuration;
use rupam_simcore::units::ByteSize;

/// Spark speculative-execution policy (`spark.speculation.*`).
#[derive(Clone, Debug)]
pub struct SpeculationConfig {
    /// Master switch (`spark.speculation`). The paper enables it for both
    /// schedulers "for a fair comparison".
    pub enabled: bool,
    /// Fraction of a stage's tasks that must have finished before
    /// stragglers are considered (`spark.speculation.quantile`, 0.75).
    pub quantile: f64,
    /// A running task is a straggler once its elapsed time exceeds this
    /// multiple of the median successful duration
    /// (`spark.speculation.multiplier`, 1.5).
    pub multiplier: f64,
    /// How often the engine re-evaluates stragglers.
    pub interval: SimDuration,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            enabled: true,
            quantile: 0.75,
            multiplier: 1.5,
            interval: SimDuration::from_secs(1),
        }
    }
}

/// Cost-model constants (see `DESIGN.md` §4 for the calibration).
#[derive(Clone, Debug)]
pub struct CostConfig {
    /// CPU cycles per byte (de)serialised. 4 cycles/byte ≈ 500 MB/s of
    /// Kryo-style serialisation per 2 GHz core.
    pub ser_cycles_per_byte: f64,
    /// GC cycles per byte of data churned through the heap, scaled by
    /// `(0.25 + pressure²)`.
    pub gc_churn_cycles_per_byte: f64,
    /// GC cycles per byte of *heap* per task, scaled by `pressure²` —
    /// models full-heap scans getting costlier on the bigger executors
    /// RUPAM launches (the paper's §IV-D SQL observation).
    pub gc_heap_cycles_per_byte: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            ser_cycles_per_byte: 4.0,
            gc_churn_cycles_per_byte: 2.0,
            gc_heap_cycles_per_byte: 0.035,
        }
    }
}

/// Memory / failure model.
#[derive(Clone, Debug)]
pub struct MemConfig {
    /// Memory reserved for OS + daemons; the executor can use the rest
    /// (the paper's 16 GB thor nodes run 14 GB executors).
    pub os_reserved: ByteSize,
    /// Fraction of executor memory usable as partition cache (Spark's
    /// storage-memory fraction).
    pub storage_fraction: f64,
    /// When the sum of running peaks exceeds executor memory, an OOM
    /// check fires after a uniformly random delay in this range.
    pub oom_check_min: SimDuration,
    /// Upper bound of the OOM-check delay.
    pub oom_check_max: SimDuration,
    /// Probability slope of a task-level OOM per check:
    /// `p = clamp(slope × (ratio − 1), 0.05, 0.95)`.
    pub oom_prob_slope: f64,
    /// Overcommit ratio beyond which the whole executor JVM dies
    /// (worker loss: every running task fails, the cache is wiped).
    pub executor_kill_ratio: f64,
    /// Time to restart a lost executor JVM.
    pub jvm_restart: SimDuration,
    /// Attempts per task before the application aborts
    /// (`spark.task.maxFailures` is 4; we keep runs alive longer so that
    /// "fails and recovers" — the paper's PR-under-Spark behaviour —
    /// dominates over hard aborts).
    pub max_retries: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            os_reserved: ByteSize::gib(2),
            storage_fraction: 0.5,
            oom_check_min: SimDuration::from_secs(2),
            oom_check_max: SimDuration::from_secs(8),
            oom_prob_slope: 3.0,
            executor_kill_ratio: 1.35,
            jvm_restart: SimDuration::from_secs(15),
            max_retries: 24,
        }
    }
}

/// Top-level simulation configuration.
#[derive(Clone, Debug, Default)]
pub struct SimConfig {
    /// Speculation policy.
    pub speculation: SpeculationConfig,
    /// Cost-model constants.
    pub cost: CostConfig,
    /// Memory / failure model.
    pub mem: MemConfig,
    /// Extra knobs.
    pub engine: EngineConfig,
    /// Fault injection: chaos script + failure-detector thresholds. The
    /// default (empty script) disables the whole subsystem.
    pub faults: rupam_faults::FaultsConfig,
    /// Elastic capacity: spot pools, scaling policy and cost accounting.
    /// The default (no pools) disables the whole subsystem.
    pub elastic: rupam_elastic::ElasticConfig,
}

impl SimConfig {
    /// A config running the given chaos script with default detector
    /// thresholds.
    pub fn with_faults(script: rupam_faults::FaultScript) -> Self {
        SimConfig {
            faults: rupam_faults::FaultsConfig {
                script,
                ..rupam_faults::FaultsConfig::default()
            },
            ..SimConfig::default()
        }
    }

    /// A config running under the given elasticity script.
    pub fn with_elastic(elastic: rupam_elastic::ElasticConfig) -> Self {
        SimConfig {
            elastic,
            ..SimConfig::default()
        }
    }
}

/// Engine cadence knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Heartbeat period: the floor on offer-round cadence (offers also
    /// fire on every task completion, like Spark's `reviveOffers`).
    pub heartbeat: SimDuration,
    /// Hard cap on processed events, as a runaway guard.
    pub max_events: u64,
    /// Worker threads for parallel snapshot construction on big clusters
    /// (`0` = auto: available parallelism, capped at 8). Never affects
    /// results — views are pure per-node functions concatenated in node
    /// order — only how they are built.
    pub shard_count: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            heartbeat: SimDuration::from_secs(1),
            max_events: 50_000_000,
            shard_count: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_spark() {
        let c = SimConfig::default();
        assert!(c.speculation.enabled);
        assert_eq!(c.speculation.quantile, 0.75);
        assert_eq!(c.speculation.multiplier, 1.5);
        assert_eq!(c.mem.os_reserved, ByteSize::gib(2));
        assert!(c.mem.executor_kill_ratio > 1.0);
        assert!(c.mem.oom_check_min < c.mem.oom_check_max);
    }

    #[test]
    fn cost_constants_positive() {
        let c = CostConfig::default();
        assert!(c.ser_cycles_per_byte > 0.0);
        assert!(c.gc_churn_cycles_per_byte > 0.0);
        assert!(c.gc_heap_cycles_per_byte > 0.0);
    }
}
