//! Post-round invariant auditing.
//!
//! The [`InvariantAuditor`] re-checks, after every offer round, that the
//! commands a scheduler returned are consistent with the snapshot it was
//! given — independently of the policy that produced them. It catches the
//! class of bug the paper's Algorithm 2 exists to prevent (placing a task
//! on a node that cannot hold it) *at decision time*, instead of waiting
//! for the simulated OOM to surface it minutes of sim-time later.
//!
//! Which checks apply to a launch depends on the [`LaunchReason`] it
//! carries: only reasons that *claim* to have verified memory feasibility
//! ([`LaunchReason::claims_memory_checked`]) are held to it, so stock
//! Spark's memory-oblivious launches are exempt by design while a RUPAM
//! queue-match that violates its own rule is flagged.

use std::collections::HashMap;

use rupam_cluster::NodeId;
use rupam_dag::app::JobId;
use rupam_dag::TaskRef;
use rupam_simcore::time::SimTime;
use rupam_simcore::units::ByteSize;

use crate::scheduler::{Command, OfferInput};

/// Auditor tunables.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Per-node cap on concurrent non-speculative attempts, as a multiple
    /// of the node's core count (matches RUPAM's dispatcher default; stock
    /// Spark's one-task-per-core policy sits well inside it).
    pub overcommit_factor: f64,
    /// Panic on the first violation instead of collecting it. Off by
    /// default; the test suite turns it on so a regression fails loudly
    /// at the exact decision that broke the invariant.
    pub panic_on_violation: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            overcommit_factor: 1.5,
            panic_on_violation: false,
        }
    }
}

/// One invariant violation, attributed to the offer round that caused it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Offer-round counter at the violation.
    pub round: u64,
    /// Stable code of the violated invariant.
    pub check: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

/// Re-checks scheduler command batches against the snapshot they came
/// from. Stateless across rounds except for the accumulated violations.
#[derive(Debug, Default)]
pub struct InvariantAuditor {
    cfg: AuditConfig,
    violations: Vec<Violation>,
}

impl InvariantAuditor {
    /// A fresh auditor with the given tunables.
    pub fn new(cfg: AuditConfig) -> Self {
        InvariantAuditor {
            cfg,
            violations: Vec::new(),
        }
    }

    /// All violations recorded so far, in round order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Record a violation found outside the per-round checks — e.g. the
    /// engine's end-of-run recovery sweep, which flags fault-killed
    /// tasks that were never re-run to completion. Honours
    /// `panic_on_violation` like [`check_round`].
    ///
    /// [`check_round`]: InvariantAuditor::check_round
    pub fn record_violation(&mut self, round: u64, check: &'static str, detail: String) {
        if self.cfg.panic_on_violation {
            panic!("invariant violation in round {round}: [{check}] {detail}");
        }
        self.violations.push(Violation {
            round,
            check,
            detail,
        });
    }

    /// Audit one round: `commands` as returned by the scheduler for
    /// `input`, plus any `scheduler_findings` from
    /// [`Scheduler::audit_round`]. Returns the violations found in *this*
    /// round (also appended to [`violations`]).
    ///
    /// [`Scheduler::audit_round`]: crate::scheduler::Scheduler::audit_round
    /// [`violations`]: InvariantAuditor::violations
    pub fn check_round(
        &mut self,
        round: u64,
        input: &OfferInput<'_>,
        commands: &[Command],
        scheduler_findings: Vec<String>,
    ) -> Vec<Violation> {
        let mut found: Vec<Violation> = scheduler_findings
            .into_iter()
            .map(|detail| Violation {
                round,
                check: "scheduler-invariant",
                detail,
            })
            .collect();

        self.check_memory_feasibility(round, input, commands, &mut found);
        self.check_double_launch(round, input, commands, &mut found);
        self.check_overcommit_cap(round, input, commands, &mut found);
        self.check_arrival_time(round, input, commands, &mut found);
        self.check_dead_node_launch(round, input, commands, &mut found);

        if self.cfg.panic_on_violation {
            if let Some(v) = found.first() {
                panic!(
                    "invariant violation in round {}: [{}] {}",
                    v.round, v.check, v.detail
                );
            }
        }
        self.violations.extend(found.iter().cloned());
        found
    }

    /// A launch whose reason claims the memory-feasibility check passed
    /// must actually fit: the task's known peak estimate, plus what the
    /// earlier launches of this round already claimed on the node, must
    /// be within the node's free executor memory. Tasks with no estimate
    /// yet (`peak_mem_hint == 0`) are exempt — feasibility is undefined
    /// for them — as are speculative copies and the sanctioned overrides
    /// (best-executor lock, safety valve), whose reasons don't claim the
    /// check.
    fn check_memory_feasibility(
        &self,
        round: u64,
        input: &OfferInput<'_>,
        commands: &[Command],
        out: &mut Vec<Violation>,
    ) {
        let hints: HashMap<TaskRef, ByteSize> = input
            .pending
            .iter()
            .chain(input.speculatable.iter())
            .map(|p| (p.task, p.peak_mem_hint))
            .collect();
        let mut claimed: HashMap<NodeId, ByteSize> = HashMap::new();
        for cmd in commands {
            let Command::Launch {
                task,
                node,
                speculative,
                reason,
                ..
            } = cmd
            else {
                continue;
            };
            if *speculative || !reason.claims_memory_checked() {
                continue;
            }
            let hint = hints.get(task).copied().unwrap_or(ByteSize::ZERO);
            if hint == ByteSize::ZERO {
                continue;
            }
            let prior = claimed.entry(*node).or_insert(ByteSize::ZERO);
            let free = input
                .nodes
                .get(node.index())
                .map(|n| n.free_mem)
                .unwrap_or(ByteSize::ZERO);
            if *prior + hint > free {
                out.push(Violation {
                    round,
                    check: "memory-feasibility",
                    detail: format!(
                        "launch of {:?} on {:?} ({}) claims memory was checked, but \
                         estimated peak {} + already-claimed {} exceeds free {}",
                        task,
                        node,
                        reason.code(),
                        hint,
                        prior,
                        free
                    ),
                });
            }
            *prior += hint;
        }
    }

    /// A non-speculative launch must target a task that is pending in the
    /// snapshot, and no task may be launched non-speculatively twice in
    /// one round.
    fn check_double_launch(
        &self,
        round: u64,
        input: &OfferInput<'_>,
        commands: &[Command],
        out: &mut Vec<Violation>,
    ) {
        let pending: std::collections::HashSet<TaskRef> =
            input.pending.iter().map(|p| p.task).collect();
        let mut launched: std::collections::HashSet<TaskRef> = Default::default();
        for cmd in commands {
            let Command::Launch {
                task,
                node,
                speculative,
                reason,
                ..
            } = cmd
            else {
                continue;
            };
            if *speculative {
                continue;
            }
            if !pending.contains(task) {
                out.push(Violation {
                    round,
                    check: "double-launch",
                    detail: format!(
                        "non-speculative launch of {:?} on {:?} ({}) but the task is \
                         not pending in the snapshot",
                        task,
                        node,
                        reason.code()
                    ),
                });
            }
            if !launched.insert(*task) {
                out.push(Violation {
                    round,
                    check: "double-launch",
                    detail: format!(
                        "task {:?} launched non-speculatively twice in one round \
                         (second target {:?}, {})",
                        task,
                        node,
                        reason.code()
                    ),
                });
            }
        }
    }

    /// No task may launch — speculatively or not — before its stream
    /// job has been submitted ([`OfferInput::job_arrivals`]). The engine
    /// gates stage release on arrival, so a launch aimed at an unarrived
    /// job means scheduler and engine disagree about the workload's
    /// timeline.
    fn check_arrival_time(
        &self,
        round: u64,
        input: &OfferInput<'_>,
        commands: &[Command],
        out: &mut Vec<Violation>,
    ) {
        let jobs: HashMap<TaskRef, JobId> = input
            .pending
            .iter()
            .chain(input.speculatable.iter())
            .map(|p| (p.task, p.job))
            .collect();
        for cmd in commands {
            let Command::Launch {
                task, node, reason, ..
            } = cmd
            else {
                continue;
            };
            let Some(job) = jobs.get(task) else { continue };
            let arrival = input
                .job_arrivals
                .get(job.index())
                .copied()
                .unwrap_or(SimTime::ZERO);
            if arrival > input.now {
                out.push(Violation {
                    round,
                    check: "arrival-time",
                    detail: format!(
                        "launch of {:?} on {:?} ({}) at {} precedes its job {:?}'s \
                         arrival at {}",
                        task,
                        node,
                        reason.code(),
                        input.now,
                        job,
                        arrival
                    ),
                });
            }
        }
    }

    /// No launch — speculative or not — may target a node the failure
    /// detector has declared dead: the engine drops such launches, and a
    /// scheduler issuing one is acting on a stale or corrupted ranking
    /// (a dead node must have been evicted from every queue).
    fn check_dead_node_launch(
        &self,
        round: u64,
        input: &OfferInput<'_>,
        commands: &[Command],
        out: &mut Vec<Violation>,
    ) {
        for cmd in commands {
            let Command::Launch {
                task, node, reason, ..
            } = cmd
            else {
                continue;
            };
            if input
                .nodes
                .get(node.index())
                .map(|n| n.dead)
                .unwrap_or(false)
            {
                out.push(Violation {
                    round,
                    check: "dead-node-launch",
                    detail: format!(
                        "launch of {:?} on {:?} ({}) targets a node the failure \
                         detector has declared dead",
                        task,
                        node,
                        reason.code()
                    ),
                });
            }
        }
    }

    /// Per node: non-speculative attempts already running plus this
    /// round's non-speculative launches must stay within
    /// `ceil(cores × overcommit_factor)`. Launches aimed at blocked nodes
    /// are skipped (the engine drops them, so they consume nothing).
    fn check_overcommit_cap(
        &self,
        round: u64,
        input: &OfferInput<'_>,
        commands: &[Command],
        out: &mut Vec<Violation>,
    ) {
        let mut load: Vec<usize> = input
            .nodes
            .iter()
            .map(|n| n.running.iter().filter(|r| !r.speculative).count())
            .collect();
        for cmd in commands {
            let Command::Launch {
                task,
                node,
                speculative,
                reason,
                ..
            } = cmd
            else {
                continue;
            };
            let idx = node.index();
            if *speculative || idx >= load.len() || input.nodes[idx].blocked {
                continue;
            }
            load[idx] += 1;
            let cores = input.cluster.node(*node).cores;
            let cap = (cores as f64 * self.cfg.overcommit_factor).ceil() as usize;
            if load[idx] > cap {
                out.push(Violation {
                    round,
                    check: "overcommit-cap",
                    detail: format!(
                        "launch of {:?} ({}) pushes {:?} to {} non-speculative \
                         attempts, above cap {} ({} cores × {})",
                        task,
                        reason.code(),
                        node,
                        load[idx],
                        cap,
                        cores,
                        self.cfg.overcommit_factor
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_cluster::ClusterSpec;
    use rupam_dag::app::{AppBuilder, StageKind};
    use rupam_dag::task::{InputSource, TaskDemand, TaskTemplate};
    use rupam_dag::{Locality, StageId};
    use rupam_metrics::trace::LaunchReason;
    use rupam_simcore::time::SimTime;

    use crate::scheduler::{NodeView, PendingTaskView};

    fn pending(task: TaskRef, hint_mib: u64) -> PendingTaskView {
        PendingTaskView {
            task,
            job: JobId(0),
            template_key: "t".into(),
            stage_kind: StageKind::ShuffleMap,
            attempt_no: 0,
            peak_mem_hint: ByteSize::mib(hint_mib),
            gpu_capable: false,
            process_nodes: vec![],
            node_local: vec![],
        }
    }

    fn node_view(id: usize, free_mib: u64) -> NodeView {
        NodeView {
            node: NodeId(id),
            executor_mem: ByteSize::gib(8),
            mem_in_use: ByteSize::gib(8).saturating_sub(ByteSize::mib(free_mib)),
            free_mem: ByteSize::mib(free_mib),
            running: vec![],
            cpu_util: 0.0,
            net_util: 0.0,
            disk_util: 0.0,
            gpus_idle: 0,
            blocked: false,
            heartbeat_age: rupam_simcore::time::SimDuration::ZERO,
            dead: false,
            suspect: false,
            tier: rupam_cluster::NodeTier::OnDemand,
            draining: false,
            preempt_risk: 0.0,
        }
    }

    fn tiny_fixture() -> (ClusterSpec, rupam_dag::app::Application) {
        let cluster = ClusterSpec::hydra();
        let mut b = AppBuilder::new("audit-test");
        let j = b.begin_job();
        let tasks = vec![TaskTemplate {
            index: 0,
            input: InputSource::Generated,
            demand: TaskDemand::default(),
        }];
        b.add_stage(j, "s", "audit/s", StageKind::Result, vec![], tasks);
        (cluster, b.build())
    }

    fn offer<'a>(
        cluster: &'a ClusterSpec,
        app: &'a rupam_dag::app::Application,
        nodes: Vec<NodeView>,
        pending: Vec<PendingTaskView>,
    ) -> OfferInput<'a> {
        OfferInput {
            now: SimTime::ZERO,
            cluster,
            app,
            nodes,
            pending,
            speculatable: vec![],
            job_arrivals: vec![SimTime::ZERO],
            job_tenants: vec![rupam_dag::TenantId(0)],
            changed: None,
            pending_fresh: None,
        }
    }

    fn launch(task: TaskRef, node: usize, reason: LaunchReason) -> Command {
        Command::Launch {
            task,
            node: NodeId(node),
            use_gpu: false,
            speculative: false,
            reason,
        }
    }

    const QM: LaunchReason = LaunchReason::QueueMatch {
        kind: rupam_cluster::resources::ResourceKind::Cpu,
        locality: Locality::Any,
    };

    #[test]
    fn flags_infeasible_memory_claim() {
        let (cluster, app) = tiny_fixture();
        let t = TaskRef {
            stage: StageId(0),
            index: 0,
        };
        let input = offer(
            &cluster,
            &app,
            vec![node_view(0, 512)],
            vec![pending(t, 1024)],
        );
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        let found = aud.check_round(1, &input, &[launch(t, 0, QM)], vec![]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].check, "memory-feasibility");
    }

    #[test]
    fn cumulative_claims_within_round_are_counted() {
        let (cluster, app) = tiny_fixture();
        let a = TaskRef {
            stage: StageId(0),
            index: 0,
        };
        let b = TaskRef {
            stage: StageId(0),
            index: 1,
        };
        // each fits alone; together they overflow the node
        let input = offer(
            &cluster,
            &app,
            vec![node_view(0, 1024)],
            vec![pending(a, 700), pending(b, 700)],
        );
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        let found = aud.check_round(1, &input, &[launch(a, 0, QM), launch(b, 0, QM)], vec![]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].check, "memory-feasibility");
    }

    #[test]
    fn unchecked_reasons_are_exempt_from_memory_feasibility() {
        let (cluster, app) = tiny_fixture();
        let t = TaskRef {
            stage: StageId(0),
            index: 0,
        };
        let input = offer(
            &cluster,
            &app,
            vec![node_view(0, 512)],
            vec![pending(t, 1024)],
        );
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        for reason in [
            LaunchReason::SafetyValve,
            LaunchReason::BestExecutorLock {
                overrode_memory_veto: true,
            },
            LaunchReason::DelaySchedule {
                allowed: Locality::Any,
                achieved: Locality::Any,
            },
            LaunchReason::FifoSlot,
        ] {
            let found = aud.check_round(1, &input, &[launch(t, 0, reason)], vec![]);
            assert!(found.is_empty(), "{} should be exempt", reason.code());
        }
    }

    #[test]
    fn flags_double_launch_and_unknown_task() {
        let (cluster, app) = tiny_fixture();
        let t = TaskRef {
            stage: StageId(0),
            index: 0,
        };
        let ghost = TaskRef {
            stage: StageId(0),
            index: 7,
        };
        let input = offer(
            &cluster,
            &app,
            vec![node_view(0, 4096)],
            vec![pending(t, 100)],
        );
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        let found = aud.check_round(
            1,
            &input,
            &[launch(t, 0, QM), launch(t, 0, QM), launch(ghost, 0, QM)],
            vec![],
        );
        let codes: Vec<_> = found.iter().map(|v| v.check).collect();
        assert_eq!(codes, vec!["double-launch", "double-launch"]);
    }

    #[test]
    fn flags_overcommit_past_cap() {
        let (cluster, app) = tiny_fixture();
        // hydra node 0 has 8 cores → cap 12 at factor 1.5
        let cores = cluster.node(NodeId(0)).cores as usize;
        let cap = (cores as f64 * 1.5).ceil() as usize;
        let tasks: Vec<TaskRef> = (0..cap + 1)
            .map(|i| TaskRef {
                stage: StageId(0),
                index: i,
            })
            .collect();
        let input = offer(
            &cluster,
            &app,
            vec![node_view(0, 1 << 30)],
            tasks.iter().map(|&t| pending(t, 0)).collect(),
        );
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        let cmds: Vec<Command> = tasks.iter().map(|&t| launch(t, 0, QM)).collect();
        let found = aud.check_round(1, &input, &cmds, vec![]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].check, "overcommit-cap");
    }

    #[test]
    fn flags_launch_on_dead_node() {
        let (cluster, app) = tiny_fixture();
        let t = TaskRef {
            stage: StageId(0),
            index: 0,
        };
        let mut dead = node_view(0, 4096);
        dead.dead = true;
        dead.blocked = true;
        let input = offer(&cluster, &app, vec![dead], vec![pending(t, 100)]);
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        let found = aud.check_round(1, &input, &[launch(t, 0, LaunchReason::FifoSlot)], vec![]);
        let codes: Vec<_> = found.iter().map(|v| v.check).collect();
        assert!(codes.contains(&"dead-node-launch"), "{codes:?}");
    }

    #[test]
    fn record_violation_collects_and_panics_like_check_round() {
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        aud.record_violation(7, "lost-task", "task never re-ran".into());
        assert_eq!(aud.violations().len(), 1);
        assert_eq!(aud.violations()[0].check, "lost-task");
        assert_eq!(aud.violations()[0].round, 7);
        let result = std::panic::catch_unwind(|| {
            let mut aud = InvariantAuditor::new(AuditConfig {
                panic_on_violation: true,
                ..AuditConfig::default()
            });
            aud.record_violation(1, "lost-task", "boom".into());
        });
        assert!(result.is_err(), "panic_on_violation must be honoured");
    }

    #[test]
    fn flags_launch_before_job_arrival() {
        let (cluster, app) = tiny_fixture();
        let t = TaskRef {
            stage: StageId(0),
            index: 0,
        };
        let mut input = offer(
            &cluster,
            &app,
            vec![node_view(0, 4096)],
            vec![pending(t, 100)],
        );
        // the snapshot says job 0 only arrives at t = 5 s, yet now = 0
        input.job_arrivals = vec![SimTime::from_secs_f64(5.0)];
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        let found = aud.check_round(1, &input, &[launch(t, 0, LaunchReason::FifoSlot)], vec![]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].check, "arrival-time");
        // once the job has arrived the same launch is clean
        input.job_arrivals = vec![SimTime::ZERO];
        let found = aud.check_round(2, &input, &[launch(t, 0, LaunchReason::FifoSlot)], vec![]);
        assert!(found.is_empty());
    }

    #[test]
    fn scheduler_findings_become_violations() {
        let (cluster, app) = tiny_fixture();
        let input = offer(&cluster, &app, vec![], vec![]);
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        let found = aud.check_round(3, &input, &[], vec!["queue out of order".into()]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].check, "scheduler-invariant");
        assert_eq!(aud.violations().len(), 1);
    }

    #[test]
    #[should_panic(expected = "invariant violation")]
    fn panics_when_configured() {
        let (cluster, app) = tiny_fixture();
        let t = TaskRef {
            stage: StageId(0),
            index: 0,
        };
        let input = offer(
            &cluster,
            &app,
            vec![node_view(0, 512)],
            vec![pending(t, 1024)],
        );
        let mut aud = InvariantAuditor::new(AuditConfig {
            panic_on_violation: true,
            ..AuditConfig::default()
        });
        aud.check_round(1, &input, &[launch(t, 0, QM)], vec![]);
    }
}
