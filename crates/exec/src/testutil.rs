//! Shared scheduler fixtures for tests and benchmarks.
//!
//! Deliberately naive [`Scheduler`] implementations that exercise the
//! engine without any placement intelligence. They live in the library
//! (not under `#[cfg(test)]`) so that unit tests, integration tests and
//! the bench harness all drive the engine through the same fixtures
//! instead of each carrying a private copy.

use rupam_cluster::{ClusterSpec, NodeId};
use rupam_dag::app::Application;
use rupam_metrics::trace::LaunchReason;
use rupam_simcore::units::ByteSize;

use crate::scheduler::{Command, OfferInput, Scheduler};

/// A trivially greedy FIFO scheduler: fills every node's core slots in
/// node order, ignores locality, memory pressure and speculation.
pub struct FifoScheduler {
    slots: Vec<usize>,
}

impl FifoScheduler {
    /// A fresh fixture; slots are sized on [`Scheduler::on_app_start`].
    pub fn new() -> Self {
        FifoScheduler { slots: Vec::new() }
    }
}

impl Default for FifoScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &str {
        "fifo-test"
    }
    fn executor_memory(&self, cluster: &ClusterSpec, node: NodeId) -> ByteSize {
        cluster.node(node).mem
    }
    fn on_app_start(&mut self, _app: &Application, cluster: &ClusterSpec) {
        self.slots = cluster.nodes().iter().map(|n| n.cores as usize).collect();
    }
    fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
        let mut cmds = Vec::new();
        let mut used: Vec<usize> = input.nodes.iter().map(|n| n.running_count()).collect();
        for p in &input.pending {
            if let Some(i) =
                (0..input.nodes.len()).find(|&i| !input.nodes[i].blocked && used[i] < self.slots[i])
            {
                used[i] += 1;
                cmds.push(Command::Launch {
                    task: p.task,
                    node: NodeId(i),
                    use_gpu: false,
                    speculative: false,
                    reason: LaunchReason::FifoSlot,
                });
            }
        }
        cmds
    }
}

/// [`FifoScheduler`] that additionally launches a speculative copy of
/// every flagged straggler onto node 2 (assumed fast in the fixtures
/// that use it).
pub struct SpecFifo(pub FifoScheduler);

impl Scheduler for SpecFifo {
    fn name(&self) -> &str {
        "spec-fifo"
    }
    fn executor_memory(&self, c: &ClusterSpec, n: NodeId) -> ByteSize {
        self.0.executor_memory(c, n)
    }
    fn on_app_start(&mut self, a: &Application, c: &ClusterSpec) {
        self.0.on_app_start(a, c);
    }
    fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
        let mut cmds = self.0.offer_round(input);
        for s in &input.speculatable {
            // copy onto the last (fast) node
            cmds.push(Command::Launch {
                task: s.task,
                node: NodeId(2),
                use_gpu: false,
                speculative: true,
                reason: LaunchReason::SparkSpeculative,
            });
        }
        cmds
    }
}

/// Launches every pending task onto node 0 with `use_gpu: true`;
/// exercises the GPU execution path without any placement logic.
pub struct GpuFifo;

impl Scheduler for GpuFifo {
    fn name(&self) -> &str {
        "gpu-fifo"
    }
    fn executor_memory(&self, c: &ClusterSpec, n: NodeId) -> ByteSize {
        c.node(n).mem
    }
    fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
        input
            .pending
            .iter()
            .map(|p| Command::Launch {
                task: p.task,
                node: NodeId(0),
                use_gpu: true,
                speculative: false,
                reason: LaunchReason::FifoSlot,
            })
            .collect()
    }
}
