//! Per-executor LRU partition cache (Spark storage memory).
//!
//! Iterative workloads (`RDD.cache()`) keep hot partitions inside the
//! executor JVM; a hit upgrades the next iteration's task to
//! `PROCESS_LOCAL` and skips the input read + deserialisation. Capacity
//! is a fraction of executor memory, so the bigger executors RUPAM sizes
//! on large-memory nodes cache more — the mechanism behind the paper's
//! Fig. 6 iteration speed-ups.

use std::collections::HashMap;

use rupam_simcore::units::ByteSize;

use rupam_dag::task::CacheKey;

/// LRU cache of RDD partitions within one executor.
///
/// ```
/// use rupam_dag::task::CacheKey;
/// use rupam_exec::cache::ExecutorCache;
/// use rupam_simcore::ByteSize;
///
/// let mut cache = ExecutorCache::new(ByteSize::mib(100));
/// cache.insert(CacheKey::new("lr/points", 0), ByteSize::mib(60));
/// let evicted = cache.insert(CacheKey::new("lr/points", 1), ByteSize::mib(60));
/// assert_eq!(evicted, vec![CacheKey::new("lr/points", 0)]); // LRU out
/// ```
#[derive(Debug)]
pub struct ExecutorCache {
    capacity: ByteSize,
    used: ByteSize,
    entries: HashMap<CacheKey, Entry>,
    tick: u64,
}

#[derive(Debug)]
struct Entry {
    size: ByteSize,
    last_used: u64,
}

impl ExecutorCache {
    /// An empty cache with the given capacity.
    pub fn new(capacity: ByteSize) -> Self {
        ExecutorCache {
            capacity,
            used: ByteSize::ZERO,
            entries: HashMap::new(),
            tick: 0,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently cached.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Number of cached partitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` is cached. Does not touch LRU order.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Look up `key`, refreshing its recency. Returns the cached size.
    pub fn touch(&mut self, key: &CacheKey) -> Option<ByteSize> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|e| {
            e.last_used = tick;
            e.size
        })
    }

    /// Insert (or refresh) a partition, evicting least-recently-used
    /// entries until it fits. A partition larger than the whole capacity
    /// is not cached at all. Returns the evicted keys.
    pub fn insert(&mut self, key: CacheKey, size: ByteSize) -> Vec<CacheKey> {
        self.tick += 1;
        let mut evicted = Vec::new();
        if size > self.capacity {
            // refuse oversized partitions; also drop a stale copy
            if let Some(old) = self.entries.remove(&key) {
                self.used = self.used.saturating_sub(old.size);
                evicted.push(key);
            }
            return evicted;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.used = self.used.saturating_sub(old.size);
        }
        while self.used + size > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.last_used, k.partition, k.rdd.clone()))
                .map(|(k, _)| k.clone())
                .expect("used > 0 implies entries non-empty");
            let e = self.entries.remove(&victim).unwrap();
            self.used = self.used.saturating_sub(e.size);
            evicted.push(victim);
        }
        self.entries.insert(
            key,
            Entry {
                size,
                last_used: self.tick,
            },
        );
        self.used += size;
        evicted
    }

    /// Wipe the cache (executor restart).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = ByteSize::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(i: usize) -> CacheKey {
        CacheKey::new("rdd", i)
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = ExecutorCache::new(ByteSize::mib(100));
        assert!(c.insert(key(0), ByteSize::mib(40)).is_empty());
        assert!(c.contains(&key(0)));
        assert_eq!(c.touch(&key(0)), Some(ByteSize::mib(40)));
        assert_eq!(c.used(), ByteSize::mib(40));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ExecutorCache::new(ByteSize::mib(100));
        c.insert(key(0), ByteSize::mib(40));
        c.insert(key(1), ByteSize::mib(40));
        // touch 0 so 1 becomes LRU
        c.touch(&key(0));
        let evicted = c.insert(key(2), ByteSize::mib(40));
        assert_eq!(evicted, vec![key(1)]);
        assert!(c.contains(&key(0)) && c.contains(&key(2)));
    }

    #[test]
    fn oversized_rejected() {
        let mut c = ExecutorCache::new(ByteSize::mib(10));
        c.insert(key(0), ByteSize::mib(5));
        let evicted = c.insert(key(1), ByteSize::mib(50));
        assert!(evicted.is_empty());
        assert!(!c.contains(&key(1)));
        assert!(c.contains(&key(0)), "existing entries untouched");
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c = ExecutorCache::new(ByteSize::mib(100));
        c.insert(key(0), ByteSize::mib(40));
        c.insert(key(0), ByteSize::mib(10));
        assert_eq!(c.used(), ByteSize::mib(10));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_wipes() {
        let mut c = ExecutorCache::new(ByteSize::mib(100));
        c.insert(key(0), ByteSize::mib(40));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), ByteSize::ZERO);
        assert!(!c.contains(&key(0)));
    }

    proptest! {
        /// Invariant: used == sum of entry sizes and never exceeds capacity.
        #[test]
        fn prop_capacity_respected(ops in proptest::collection::vec((0usize..20, 1u64..60), 1..100)) {
            let mut c = ExecutorCache::new(ByteSize::mib(100));
            for (k, mb) in ops {
                c.insert(key(k), ByteSize::mib(mb));
                prop_assert!(c.used() <= c.capacity());
            }
        }
    }
}
