//! # rupam-exec
//!
//! The execution substrate: a deterministic discrete-event simulator of a
//! Spark-like cluster engine, plus the pluggable [`scheduler::Scheduler`]
//! trait both the baseline Spark scheduler and RUPAM implement.
//!
//! * [`config`] — all tunables of the simulation (heartbeat cadence,
//!   speculation policy, cost model, memory/OOM model).
//! * [`costmodel`] — translates a task's demand vector into a sequence of
//!   resource *phases* (network fetch, disk read, serialisation, compute
//!   or GPU kernels, GC, shuffle write, driver output).
//! * [`cache`] — per-executor LRU partition cache (Spark storage memory).
//! * [`scheduler`] — the offer-based scheduler interface and the
//!   read-only views schedulers decide from.
//! * [`speculation`] — Spark's speculative-execution policy (quantile +
//!   multiplier) shared by all schedulers.
//! * [`engine`] — the simulation driver, structured as a staged event
//!   bus: a core loop owning the authoritative cluster state, subsystem
//!   modules for lifecycle/heartbeat/recovery/speculation/caching, and
//!   typed [`engine::EngineEvent`]s through which trace emission, fault
//!   statistics, auditing and caller-supplied [`engine::Subscriber`]s
//!   observe the run. Produces a [`rupam_metrics::RunReport`].
//! * [`testutil`] — deliberately naive scheduler fixtures shared by
//!   unit tests, integration tests and benches.
//! * [`audit`] — the post-round invariant auditor: re-checks every
//!   command batch against the snapshot it came from (memory
//!   feasibility, double launches, overcommit caps, scheduler-declared
//!   invariants).

#![warn(missing_docs)]

pub mod audit;
pub mod cache;
pub mod config;
pub mod costmodel;
pub mod engine;
pub mod scheduler;
pub mod speculation;
pub mod testutil;

pub use audit::{AuditConfig, InvariantAuditor, Violation};
pub use config::SimConfig;
pub use engine::{
    simulate, simulate_observed, simulate_observed_with, simulate_stream, simulate_stream_observed,
    simulate_stream_observed_with, BusStage, EngineError, EngineEvent, EventBus, EventCtx,
    SimInput, SimObservation, SimOptions, StreamInput, Subscriber,
};
pub use rupam_metrics::trace::LaunchReason;
pub use scheduler::{
    Command, KillReason, NodeShadowTable, NodeView, OfferInput, PendingTaskView, Scheduler,
};
