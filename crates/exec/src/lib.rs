//! # rupam-exec
//!
//! The execution substrate: a deterministic discrete-event simulator of a
//! Spark-like cluster engine, plus the pluggable [`scheduler::Scheduler`]
//! trait both the baseline Spark scheduler and RUPAM implement.
//!
//! * [`config`] — all tunables of the simulation (heartbeat cadence,
//!   speculation policy, cost model, memory/OOM model).
//! * [`costmodel`] — translates a task's demand vector into a sequence of
//!   resource *phases* (network fetch, disk read, serialisation, compute
//!   or GPU kernels, GC, shuffle write, driver output).
//! * [`cache`] — per-executor LRU partition cache (Spark storage memory).
//! * [`scheduler`] — the offer-based scheduler interface and the
//!   read-only views schedulers decide from.
//! * [`speculation`] — Spark's speculative-execution policy (quantile +
//!   multiplier) shared by all schedulers.
//! * [`engine`] — the simulation driver: fluid processor-sharing
//!   contention, OOM/executor-loss model, race resolution, utilisation
//!   recording. Produces a [`rupam_metrics::RunReport`].

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod costmodel;
pub mod engine;
pub mod scheduler;
pub mod speculation;

pub use config::SimConfig;
pub use engine::{simulate, SimInput};
pub use scheduler::{Command, NodeView, OfferInput, PendingTaskView, Scheduler};
