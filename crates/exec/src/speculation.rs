//! Spark's speculative-execution policy (§III-C3).
//!
//! Once `quantile` of a stage's tasks have finished, any still-running
//! first copy whose elapsed time exceeds `multiplier ×` the median
//! successful duration is marked *speculatable*; the scheduler may then
//! launch one extra copy, and whichever attempt finishes first wins
//! (the engine aborts the loser). The paper enables this for both stock
//! Spark and RUPAM, and RUPAM layers its resource/memory straggler logic
//! on top.

use std::collections::BTreeSet;

use rupam_simcore::stats;
use rupam_simcore::time::{SimDuration, SimTime};

use rupam_dag::TaskRef;

use crate::config::SpeculationConfig;

/// Snapshot of one stage fed to the policy.
pub struct StageProgress<'a> {
    /// Total tasks in the stage.
    pub total_tasks: usize,
    /// Durations (seconds) of successful first-result completions.
    pub finished_secs: &'a [f64],
    /// Currently running attempts: `(task, launched_at, has_copy)`.
    pub running: &'a [(TaskRef, SimTime, bool)],
}

/// Stateless evaluation of Spark's speculation rule for one stage.
/// Returns the tasks that should receive a speculative copy.
pub fn find_speculatable(
    cfg: &SpeculationConfig,
    now: SimTime,
    stage: &StageProgress<'_>,
) -> Vec<TaskRef> {
    if !cfg.enabled || stage.finished_secs.is_empty() || stage.total_tasks == 0 {
        return Vec::new();
    }
    let done_fraction = stage.finished_secs.len() as f64 / stage.total_tasks as f64;
    if done_fraction < cfg.quantile {
        return Vec::new();
    }
    let threshold_secs = stats::median(stage.finished_secs) * cfg.multiplier;
    let threshold = SimDuration::from_secs_f64(threshold_secs.max(0.1));
    stage
        .running
        .iter()
        .filter(|(_, launched, has_copy)| !has_copy && now.since(*launched) > threshold)
        .map(|(task, _, _)| *task)
        .collect()
}

/// Tracks the set of currently speculatable tasks across stages, with
/// deterministic iteration order.
#[derive(Debug, Default)]
pub struct SpeculationSet {
    tasks: BTreeSet<TaskRef>,
}

impl SpeculationSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark a task speculatable. Returns true if newly added.
    pub fn mark(&mut self, task: TaskRef) -> bool {
        self.tasks.insert(task)
    }

    /// Remove a task (it finished, or its copy launched).
    pub fn remove(&mut self, task: &TaskRef) -> bool {
        self.tasks.remove(task)
    }

    /// Whether a task is currently speculatable.
    pub fn contains(&self, task: &TaskRef) -> bool {
        self.tasks.contains(task)
    }

    /// Snapshot in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &TaskRef> {
        self.tasks.iter()
    }

    /// Number of speculatable tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::StageId;

    fn cfg() -> SpeculationConfig {
        SpeculationConfig::default()
    }

    fn task(i: usize) -> TaskRef {
        TaskRef {
            stage: StageId(0),
            index: i,
        }
    }

    #[test]
    fn below_quantile_no_speculation() {
        let finished = [10.0, 10.0];
        let running = [(task(2), SimTime::ZERO, false)];
        let stage = StageProgress {
            total_tasks: 4,
            finished_secs: &finished,
            running: &running,
        };
        // 2/4 = 50% < 75%
        assert!(find_speculatable(&cfg(), SimTime::from_secs_f64(1000.0), &stage).is_empty());
    }

    #[test]
    fn slow_task_marked_after_quantile() {
        let finished = [10.0, 10.0, 10.0];
        let running = [(task(3), SimTime::ZERO, false)];
        let stage = StageProgress {
            total_tasks: 4,
            finished_secs: &finished,
            running: &running,
        };
        // threshold = 15 s; at t=20 the task qualifies
        let out = find_speculatable(&cfg(), SimTime::from_secs_f64(20.0), &stage);
        assert_eq!(out, vec![task(3)]);
        // at t=12 it does not
        assert!(find_speculatable(&cfg(), SimTime::from_secs_f64(12.0), &stage).is_empty());
    }

    #[test]
    fn tasks_with_copy_skipped() {
        let finished = [10.0, 10.0, 10.0];
        let running = [(task(3), SimTime::ZERO, true)];
        let stage = StageProgress {
            total_tasks: 4,
            finished_secs: &finished,
            running: &running,
        };
        assert!(find_speculatable(&cfg(), SimTime::from_secs_f64(100.0), &stage).is_empty());
    }

    #[test]
    fn disabled_switch() {
        let c = SpeculationConfig {
            enabled: false,
            ..cfg()
        };
        let finished = [10.0, 10.0, 10.0];
        let running = [(task(3), SimTime::ZERO, false)];
        let stage = StageProgress {
            total_tasks: 4,
            finished_secs: &finished,
            running: &running,
        };
        assert!(find_speculatable(&c, SimTime::from_secs_f64(100.0), &stage).is_empty());
    }

    #[test]
    fn set_semantics() {
        let mut s = SpeculationSet::new();
        assert!(s.mark(task(1)));
        assert!(!s.mark(task(1)), "double-mark is idempotent");
        assert!(s.contains(&task(1)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(&task(1)));
        assert!(s.is_empty());
        assert!(!s.remove(&task(1)));
    }

    #[test]
    fn set_iterates_deterministically() {
        let mut s = SpeculationSet::new();
        s.mark(task(5));
        s.mark(task(1));
        s.mark(task(3));
        let order: Vec<usize> = s.iter().map(|t| t.index).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }
}
