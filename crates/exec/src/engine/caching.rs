//! Executor-cache scoping and data-locality preference queries.
//!
//! Spark RDD caches are application-private: cache keys are scoped per
//! stream job so tenants never see each other's partitions even when
//! their stages share a template key. This module also answers "where
//! would this task *like* to run" from HDFS replica placement, cached
//! partitions and parent map outputs.

use rupam_cluster::NodeId;
use rupam_dag::app::StageId;
use rupam_dag::task::{CacheKey, InputSource, TaskTemplate};
use rupam_dag::TaskRef;
use rupam_simcore::units::ByteSize;

use rupam_simcore::source::EventSource;

use super::driver::{Engine, Event};
use super::REDUCER_PREF_FRACTION;

impl<'a, 's, S: EventSource<Event>> Engine<'a, 's, S> {
    /// Executor-cache keys are scoped per stream job: Spark RDD caches
    /// are application-private, so tenants must not see each other's
    /// cached partitions even when their stages share a template key.
    pub(crate) fn scoped_cache_key(&self, stage: StageId, rdd: &str, partition: usize) -> CacheKey {
        let job = self.state.stage_jobs[stage.index()];
        CacheKey::new(format!("j{}:{rdd}", job.index()), partition)
    }

    /// A finished winner produced a cacheable partition: insert it into
    /// the executor cache of the node it ran on.
    pub(crate) fn cache_produced_partition(&mut self, task: TaskRef, node_id: NodeId) {
        let stage = self.input.app.stage(task.stage);
        let template = &stage.tasks[task.index];
        if template.demand.cached_bytes > ByteSize::ZERO {
            let key = self.scoped_cache_key(task.stage, stage.template_key.as_str(), task.index);
            self.state.nodes[node_id.index()]
                .cache
                .insert(key, template.demand.cached_bytes);
        }
    }

    /// `(process_nodes, node_local)` preferred placements for a task.
    pub(crate) fn preferred_nodes(
        &self,
        stage: StageId,
        template: &TaskTemplate,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        match &template.input {
            InputSource::Hdfs(block) => {
                (Vec::new(), self.input.layout.block(*block).replicas.clone())
            }
            InputSource::CachedOrHdfs { key, fallback } => {
                let scoped = self.scoped_cache_key(stage, &key.rdd, key.partition);
                let cached: Vec<NodeId> = (0..self.state.nodes.len())
                    .map(NodeId)
                    .filter(|n| self.state.nodes[n.index()].cache.contains(&scoped))
                    .collect();
                (cached, self.input.layout.block(*fallback).replicas.clone())
            }
            InputSource::Shuffle => {
                let parents = &self.input.app.stage(stage).parents;
                let mut per_node = vec![0.0f64; self.state.nodes.len()];
                let mut total = 0.0f64;
                for p in parents {
                    let prt = &self.state.stages[p.index()];
                    for (i, b) in prt.map_out_per_node.iter().enumerate() {
                        per_node[i] += b;
                    }
                    total += prt.map_out_total;
                }
                let node_local = if total > 0.0 {
                    per_node
                        .iter()
                        .enumerate()
                        .filter(|(_, &b)| b / total >= REDUCER_PREF_FRACTION)
                        .map(|(i, _)| NodeId(i))
                        .collect()
                } else {
                    Vec::new()
                };
                (Vec::new(), node_local)
            }
            InputSource::Generated => (Vec::new(), Vec::new()),
        }
    }
}
