//! The periodic speculation scan.
//!
//! Walks every released stage's running originals through
//! [`find_speculatable`] (Spark's quantile + multiplier rule, shared by
//! all schedulers) and marks stragglers in the
//! [`crate::speculation::SpeculationSet`]; each fresh flag is published
//! as [`EngineEvent::SpeculationFlagged`]. Launching the copy is the
//! scheduler's decision on a later offer round.

use rupam_dag::TaskRef;
use rupam_simcore::time::SimTime;

use crate::speculation::{find_speculatable, StageProgress};

use rupam_simcore::source::EventSource;

use super::driver::{Engine, Event};
use super::events::EngineEvent;
use super::state::TaskState;

impl<'a, 's, S: EventSource<Event>> Engine<'a, 's, S> {
    pub(crate) fn speculation_check(&mut self) {
        let cfg = &self.input.config.speculation;
        let mut flagged: Vec<TaskRef> = Vec::new();
        for (sidx, stage_rt) in self.state.stages.iter().enumerate() {
            if !stage_rt.released {
                continue;
            }
            let stage = &self.input.app.stages[sidx];
            let mut running: Vec<(TaskRef, SimTime, bool)> = Vec::new();
            for (tidx, state) in stage_rt.tasks.iter().enumerate() {
                if let TaskState::Running { attempts } = state {
                    // the original copy is the lowest attempt id
                    if let Some(&first) = attempts.first() {
                        running.push((
                            TaskRef {
                                stage: stage.id,
                                index: tidx,
                            },
                            self.state.attempts[first].launched_at,
                            attempts.len() > 1,
                        ));
                    }
                }
            }
            let progress = StageProgress {
                total_tasks: stage.num_tasks(),
                finished_secs: &stage_rt.finished_secs,
                running: &running,
            };
            for task in find_speculatable(cfg, self.now, &progress) {
                if self.state.spec_set.mark(task) {
                    self.need_offers = true;
                    flagged.push(task);
                }
            }
        }
        for task in flagged {
            self.publish(EngineEvent::SpeculationFlagged { task });
        }
    }
}
