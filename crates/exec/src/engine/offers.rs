//! The offer protocol: snapshot construction and the offer round.
//!
//! Each round the engine freezes a read-only [`OfferInput`] snapshot of
//! [`super::state::ClusterState`], hands it to the scheduler, and
//! applies the returned commands. The round summary is published as
//! [`EngineEvent::OfferRound`] (when a trace sink is attached), and the
//! bus's audit sinks re-check the command batch against the very
//! snapshot the scheduler saw.

use rupam_cluster::NodeId;
use rupam_dag::app::StageId;
use rupam_dag::TaskRef;
use rupam_faults::NodeHealth;
use rupam_simcore::time::SimDuration;
use rupam_simcore::units::ByteSize;

use crate::scheduler::{NodeView, OfferInput, PendingTaskView, RunningTaskView};

use super::driver::Engine;
use super::events::EngineEvent;
use super::state::TaskState;

impl<'a, 's> Engine<'a, 's> {
    pub(crate) fn offer_round(&mut self) {
        let offer = self.build_offer_input();
        let commands = self.sched.offer_round(&offer);
        self.round += 1;
        if self.bus.traced() {
            let running = offer.nodes.iter().map(|n| n.running.len()).sum();
            let blocked = offer.nodes.iter().filter(|n| n.blocked).count();
            self.publish(EngineEvent::OfferRound {
                pending: offer.pending.len(),
                running,
                blocked,
                commands: commands.len(),
            });
        }
        if self.bus.audited() {
            let findings = self.sched.audit_round(&offer);
            let fresh = self
                .bus
                .offer_audit(self.round, &offer, &commands, &findings);
            for v in fresh {
                self.publish(EngineEvent::AuditViolation {
                    check: v.check,
                    detail: v.detail,
                });
            }
        }
        for cmd in commands {
            self.apply_command(cmd);
        }
    }

    pub(crate) fn build_node_view(&self, idx: usize) -> NodeView {
        let node = &self.state.nodes[idx];
        let m = self.node_metrics(idx);
        let (heartbeat_age, dead, suspect) = match self.detector.as_ref() {
            Some(d) => {
                let id = NodeId(idx);
                (
                    d.age(id, self.now),
                    d.is_dead(id),
                    d.health(id) == NodeHealth::Suspect,
                )
            }
            None => (SimDuration::ZERO, false, false),
        };
        let running = node
            .running
            .iter()
            .map(|&aid| {
                let a = &self.state.attempts[aid];
                RunningTaskView {
                    task: a.task,
                    speculative: a.speculative,
                    elapsed: self.now.since(a.launched_at),
                    peak_mem: a.peak_mem,
                    on_gpu: a.used_gpu,
                }
            })
            .collect();
        NodeView {
            node: NodeId(idx),
            executor_mem: node.executor_mem,
            mem_in_use: node.mem_in_use,
            free_mem: node.executor_mem.saturating_sub(node.mem_in_use),
            running,
            cpu_util: m.cpu_util,
            net_util: m.net_util,
            disk_util: m.disk_util,
            gpus_idle: m.gpus_idle,
            blocked: node.blocked_until > self.now || dead,
            heartbeat_age,
            dead,
            suspect,
        }
    }

    pub(crate) fn build_pending_view(&self, task: TaskRef, attempt_no: u32) -> PendingTaskView {
        let stage = self.input.app.stage(task.stage);
        let template = &stage.tasks[task.index];
        let (process_nodes, node_local) = self.preferred_nodes(task.stage, template);
        PendingTaskView {
            task,
            job: self.state.stage_jobs[task.stage.index()],
            template_key: stage.template_key,
            stage_kind: stage.kind,
            attempt_no,
            peak_mem_hint: self
                .state
                .observed_peak
                .get(&(task.stage, task.index))
                .copied()
                .unwrap_or(ByteSize::ZERO),
            gpu_capable: template.demand.is_gpu_capable(),
            process_nodes,
            node_local,
        }
    }

    pub(crate) fn build_offer_input(&self) -> OfferInput<'a> {
        let nodes: Vec<NodeView> = (0..self.state.nodes.len())
            .map(|i| self.build_node_view(i))
            .collect();
        let mut pending = Vec::new();
        for (sidx, stage_rt) in self.state.stages.iter().enumerate() {
            if !stage_rt.released {
                continue;
            }
            for (tidx, state) in stage_rt.tasks.iter().enumerate() {
                if let TaskState::Pending { attempt_no } = state {
                    pending.push(self.build_pending_view(
                        TaskRef {
                            stage: StageId(sidx),
                            index: tidx,
                        },
                        *attempt_no,
                    ));
                }
            }
        }
        let speculatable = self
            .state
            .spec_set
            .iter()
            .filter(|t| {
                matches!(
                    self.state.stages[t.stage.index()].tasks[t.index],
                    TaskState::Running { .. }
                )
            })
            .map(|t| self.build_pending_view(*t, 0))
            .collect();
        OfferInput {
            now: self.now,
            cluster: self.input.cluster,
            app: self.input.app,
            nodes,
            pending,
            speculatable,
            job_arrivals: self.state.jobs.iter().map(|j| j.arrival).collect(),
        }
    }
}
