//! The offer protocol: snapshot construction and the offer round.
//!
//! Each round the engine freezes a read-only [`OfferInput`] snapshot of
//! [`super::state::ClusterState`], hands it to the scheduler, and
//! applies the returned commands. The round summary is published as
//! [`EngineEvent::OfferRound`] (when a trace sink is attached), and the
//! bus's audit sinks re-check the command batch against the very
//! snapshot the scheduler saw.

use rupam_cluster::monitor::NodeMetrics;
use rupam_cluster::{ClusterSpec, NodeId};
use rupam_dag::app::StageId;
use rupam_dag::TaskRef;
use rupam_faults::{FailureDetector, NodeHealth};
use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;

use crate::costmodel::PhaseResource;
use crate::scheduler::{NodeView, OfferInput, PendingTaskView, RunningTaskView};

use rupam_simcore::source::EventSource;

use super::driver::{Engine, Event};
use super::events::EngineEvent;
use super::state::{ClusterState, TaskState};

/// Below this many nodes a parallel snapshot costs more in thread
/// spawn/join than it saves (an offer round on hydra64 is single-digit
/// microseconds).
const PARALLEL_SNAPSHOT_MIN_NODES: usize = 512;

/// The read-only inputs a node-view snapshot needs, split from the
/// engine so view construction can fan out across scoped threads on big
/// clusters (everything here is a shared borrow).
pub(crate) struct SnapshotCtx<'e> {
    state: &'e ClusterState,
    cluster: &'e ClusterSpec,
    detector: Option<&'e FailureDetector>,
    elastic: Option<&'e super::elastic::ElasticRt>,
    now: SimTime,
}

impl SnapshotCtx<'_> {
    /// Node-level utilisation snapshot from current phase occupancy.
    pub(crate) fn node_metrics(&self, node_idx: usize) -> NodeMetrics {
        let node = &self.state.nodes[node_idx];
        let spec = self.cluster.node(NodeId(node_idx));
        let mut n_cpu = 0u32;
        let mut n_gpu = 0u32;
        let mut net_bps = 0.0f64;
        let mut disk_bps = 0.0f64;
        for &aid in &node.running {
            let a = &self.state.attempts[aid];
            match a.current_phase().map(|p| p.resource) {
                Some(PhaseResource::Cpu) => n_cpu += 1,
                Some(PhaseResource::Gpu) => n_gpu += 1,
                Some(PhaseResource::Net) => net_bps += a.rate,
                Some(PhaseResource::DiskRead) | Some(PhaseResource::DiskWrite) => {
                    disk_bps += a.rate
                }
                _ => {}
            }
        }
        NodeMetrics {
            cpu_util: (n_cpu as f64 / spec.cores as f64).min(1.0),
            mem_used: node.mem_in_use,
            free_mem: node.executor_mem.saturating_sub(node.mem_in_use),
            net_util: (net_bps / spec.net_bw).min(1.0),
            disk_util: (disk_bps / spec.disk.read_bw.max(spec.disk.write_bw)).min(1.0),
            net_bytes_per_sec: net_bps,
            disk_bytes_per_sec: disk_bps,
            gpus_idle: spec.gpus.saturating_sub(n_gpu.min(spec.gpus)),
        }
    }

    fn node_view(&self, idx: usize) -> NodeView {
        let node = &self.state.nodes[idx];
        let m = self.node_metrics(idx);
        let (heartbeat_age, dead, suspect) = match self.detector {
            Some(d) => {
                let id = NodeId(idx);
                (
                    d.age(id, self.now),
                    d.is_dead(id),
                    d.health(id) == NodeHealth::Suspect,
                )
            }
            None => (SimDuration::ZERO, false, false),
        };
        let running = node
            .running
            .iter()
            .map(|&aid| {
                let a = &self.state.attempts[aid];
                RunningTaskView {
                    task: a.task,
                    speculative: a.speculative,
                    elapsed: self.now.since(a.launched_at),
                    peak_mem: a.peak_mem,
                    on_gpu: a.used_gpu,
                }
            })
            .collect();
        let (tier, preempt_risk) = match self.elastic {
            Some(el) => (
                el.tier_of(idx),
                if node.provisioned {
                    el.risk_of(idx)
                } else {
                    0.0
                },
            ),
            None => (rupam_cluster::NodeTier::OnDemand, 0.0),
        };
        let draining = node.drain_deadline.is_some();
        NodeView {
            node: NodeId(idx),
            executor_mem: node.executor_mem,
            mem_in_use: node.mem_in_use,
            free_mem: node.executor_mem.saturating_sub(node.mem_in_use),
            running,
            cpu_util: m.cpu_util,
            net_util: m.net_util,
            disk_util: m.disk_util,
            gpus_idle: m.gpus_idle,
            blocked: node.blocked_until > self.now || dead || !node.provisioned || draining,
            heartbeat_age,
            dead,
            suspect,
            tier,
            draining,
            preempt_risk,
        }
    }
}

impl<'a, 's, S: EventSource<Event>> Engine<'a, 's, S> {
    pub(crate) fn snapshot_ctx(&self) -> SnapshotCtx<'_> {
        SnapshotCtx {
            state: &self.state,
            cluster: self.input.cluster,
            detector: self.detector.as_ref(),
            elastic: self.elastic.as_ref(),
            now: self.now,
        }
    }

    pub(crate) fn offer_round(&mut self) {
        let offer = self.build_offer_input();
        let commands = self.sched.offer_round(&offer);
        self.round += 1;
        if self.bus.traced() {
            let running = offer.nodes.iter().map(|n| n.running.len()).sum();
            let blocked = offer.nodes.iter().filter(|n| n.blocked).count();
            self.publish(EngineEvent::OfferRound {
                pending: offer.pending.len(),
                running,
                blocked,
                commands: commands.len(),
            });
        }
        if self.bus.audited() {
            let findings = self.sched.audit_round(&offer);
            let fresh = self
                .bus
                .offer_audit(self.round, &offer, &commands, &findings);
            for v in fresh {
                self.publish(EngineEvent::AuditViolation {
                    check: v.check,
                    detail: v.detail,
                });
            }
        }
        for cmd in commands {
            self.apply_command(cmd);
        }
    }

    /// Build all node views, fanning out across scoped threads once the
    /// cluster is big enough for the spawn cost to amortise. Chunk
    /// boundaries never affect the result (views are pure per-node
    /// functions of frozen state, concatenated in node order).
    fn build_node_views(&self) -> Vec<NodeView> {
        let n = self.state.nodes.len();
        let ctx = self.snapshot_ctx();
        let threads = match self.input.config.engine.shard_count {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(8),
            k => k,
        }
        .min(n)
        .max(1);
        if n < PARALLEL_SNAPSHOT_MIN_NODES || threads == 1 {
            return (0..n).map(|i| ctx.node_view(i)).collect();
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(n);
                    let ctx = &ctx;
                    scope.spawn(move || (start..end).map(|i| ctx.node_view(i)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("snapshot worker panicked"))
                .collect()
        })
    }

    /// Diff this round's views against the previous round's shadow —
    /// the shared [`crate::scheduler::NodeShadowTable`] rule, also used
    /// by the live serve driver.
    fn diff_offer_shadow(&mut self, views: &[NodeView]) -> Option<Vec<NodeId>> {
        self.offer_shadow.diff(views)
    }

    pub(crate) fn build_pending_view(&self, task: TaskRef, attempt_no: u32) -> PendingTaskView {
        let stage = self.input.app.stage(task.stage);
        let template = &stage.tasks[task.index];
        let (process_nodes, node_local) = self.preferred_nodes(task.stage, template);
        PendingTaskView {
            task,
            job: self.state.stage_jobs[task.stage.index()],
            template_key: stage.template_key,
            stage_kind: stage.kind,
            attempt_no,
            peak_mem_hint: self
                .state
                .observed_peak
                .get(&(task.stage, task.index))
                .copied()
                .unwrap_or(ByteSize::ZERO),
            gpu_capable: template.demand.is_gpu_capable(),
            process_nodes,
            node_local,
        }
    }

    pub(crate) fn build_offer_input(&mut self) -> OfferInput<'a> {
        let nodes = self.build_node_views();
        let changed = self.diff_offer_shadow(&nodes);
        let mut pending = Vec::new();
        for (sidx, stage_rt) in self.state.stages.iter().enumerate() {
            if !stage_rt.released {
                continue;
            }
            for (tidx, state) in stage_rt.tasks.iter().enumerate() {
                if let TaskState::Pending { attempt_no } = state {
                    pending.push(self.build_pending_view(
                        TaskRef {
                            stage: StageId(sidx),
                            index: tidx,
                        },
                        *attempt_no,
                    ));
                }
            }
        }
        let speculatable = self
            .state
            .spec_set
            .iter()
            .filter(|t| {
                matches!(
                    self.state.stages[t.stage.index()].tasks[t.index],
                    TaskState::Running { .. }
                )
            })
            .map(|t| self.build_pending_view(*t, 0))
            .collect();
        OfferInput {
            now: self.now,
            cluster: self.input.cluster,
            app: self.input.app,
            nodes,
            pending,
            speculatable,
            job_arrivals: self.state.jobs.iter().map(|j| j.arrival).collect(),
            job_tenants: self.state.jobs.iter().map(|j| j.tenant).collect(),
            changed,
            // The sim engine rebuilds `pending` from scratch every round and
            // offers no warranty about which tasks changed, so it always
            // requests the full ingest path.
            pending_fresh: None,
        }
    }
}
