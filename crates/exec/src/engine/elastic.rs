//! The capacity controller: spot prices, scaling and cost accounting.
//!
//! Runs off the periodic [`Event::ElasticCheck`] calendar event (absent
//! without spot pools — the strict no-op guarantee mirrors the fault
//! subsystem's). Each check accrues per-node-second cost at the prices
//! held since the previous check, advances every pool's
//! [`SpotPriceProcess`] on the dedicated `engine/elastic` RNG stream,
//! asks the configured [`rupam_elastic::ScalingPolicy`] for per-pool
//! targets, provisions/decommissions spot nodes to meet them, and draws
//! price-correlated preemptions. Preempted nodes get a drain notice
//! ([`EngineEvent::PreemptionNotice`]) and are then reclaimed through
//! the same node-loss path scripted crashes use — running attempts are
//! killed and re-pended, lineage recompute re-pends lost map outputs,
//! so no task is ever silently lost to churn.
//!
//! Determinism: the price path is a pure function of `(seed, pool
//! order, check count)`, and preemption draws are made for *every* pool
//! slot each check (applied only to active nodes), so the draw sequence
//! never depends on what the scheduler placed where.

use rand::Rng;

use rupam_cluster::{ClusterSpec, NodeId, NodeTier};
use rupam_elastic::{DemandView, ElasticConfig, PoolView, SpotPriceProcess};
use rupam_metrics::report::CostSummary;
use rupam_simcore::source::EventSource;
use rupam_simcore::time::{SimDuration, SimTime};

use super::driver::{Engine, Event};
use super::events::EngineEvent;
use super::state::{NodeRt, TaskState};

/// Runtime state of the capacity controller.
pub(crate) struct ElasticRt {
    /// Per-pool price walks, in pool order.
    prices: Vec<SpotPriceProcess>,
    /// Per-pool current per-check preemption probability (refreshed
    /// after each price step; surfaced to schedulers as
    /// [`crate::scheduler::NodeView::preempt_risk`]).
    risk: Vec<f64>,
    /// Per-node pool membership (`None` = on-demand tier).
    pool_of: Vec<Option<usize>>,
    /// Last instant each node had a running attempt (idle grace for
    /// scale-down).
    last_busy: Vec<SimTime>,
    /// Cost has been accrued up to this instant.
    last_accrual: SimTime,
    /// Task slots per node assumed when converting backlog into nodes.
    slots_per_node: usize,
    /// The run's cost ledger.
    pub(crate) cost: CostSummary,
}

impl ElasticRt {
    pub(crate) fn new(cfg: &ElasticConfig, cluster: &ClusterSpec) -> Self {
        let n = cluster.len();
        let prices: Vec<SpotPriceProcess> = cfg.pools.iter().map(|p| p.price_process()).collect();
        let risk = cfg
            .pools
            .iter()
            .zip(&prices)
            .map(|(pool, p)| pool.preempt_prob(p))
            .collect();
        let pool_of = (0..n).map(|i| cfg.pool_of(NodeId(i))).collect();
        let slots_per_node =
            (cluster.iter().map(|(_, s)| s.cores as usize).sum::<usize>() / n.max(1)).max(1);
        ElasticRt {
            prices,
            risk,
            pool_of,
            last_busy: vec![SimTime::ZERO; n],
            last_accrual: SimTime::ZERO,
            slots_per_node,
            cost: CostSummary::default(),
        }
    }

    /// Tier of node `idx` under this controller.
    pub(crate) fn tier_of(&self, idx: usize) -> NodeTier {
        match self.pool_of.get(idx) {
            Some(Some(_)) => NodeTier::Spot,
            _ => NodeTier::OnDemand,
        }
    }

    /// Current per-check preemption probability of node `idx`'s pool
    /// (0.0 for the on-demand tier).
    pub(crate) fn risk_of(&self, idx: usize) -> f64 {
        match self.pool_of.get(idx) {
            Some(Some(pi)) => self.risk[*pi],
            _ => 0.0,
        }
    }

    /// Accrue per-node-second cost over `[last_accrual, now]` at the
    /// prices held since the previous step. Provisioned nodes bill
    /// whether busy or idle — that is the point of scale-down.
    pub(crate) fn accrue(&mut self, nodes: &[NodeRt], cfg: &ElasticConfig, now: SimTime) {
        let dt = now.since(self.last_accrual).as_secs_f64();
        self.last_accrual = now;
        if dt <= 0.0 {
            return;
        }
        for (i, node) in nodes.iter().enumerate() {
            if !node.provisioned {
                continue;
            }
            match self.pool_of.get(i).copied().flatten() {
                Some(pi) => {
                    self.cost.spot_node_secs += dt;
                    self.cost.spot_cost += self.prices[pi].price / 3600.0 * dt;
                }
                None => {
                    self.cost.on_demand_node_secs += dt;
                    self.cost.on_demand_cost += cfg.on_demand_price / 3600.0 * dt;
                }
            }
        }
    }
}

impl<'a, 's, S: EventSource<Event>> Engine<'a, 's, S> {
    /// One controller check: accrue cost, step prices, scale pools to
    /// their policy targets, draw preemptions, re-arm.
    pub(crate) fn elastic_check(&mut self) {
        let Some(mut el) = self.elastic.take() else {
            return;
        };
        let cfg = self.input.config;
        let ecfg = &cfg.elastic;

        el.accrue(&self.state.nodes, ecfg, self.now);
        for i in 0..el.prices.len() {
            el.prices[i].step(ecfg.check_secs, &mut self.rng_elastic);
            el.risk[i] = ecfg.pools[i].preempt_prob(&el.prices[i]);
        }
        for (i, node) in self.state.nodes.iter().enumerate() {
            if !node.running.is_empty() {
                el.last_busy[i] = self.now;
            }
        }

        let backlog: usize = self
            .state
            .stages
            .iter()
            .filter(|s| s.released)
            .map(|s| {
                s.tasks
                    .iter()
                    .filter(|t| matches!(t, TaskState::Pending { .. }))
                    .count()
            })
            .sum();
        let active_nodes = self
            .state
            .nodes
            .iter()
            .filter(|n| n.provisioned && !n.crashed)
            .count();
        let demand = DemandView {
            backlog,
            active_nodes,
            slots_per_node: el.slots_per_node,
        };

        for (pi, pool) in ecfg.pools.iter().enumerate() {
            let members: Vec<NodeId> = pool
                .nodes
                .iter()
                .copied()
                .filter(|n| n.index() < self.state.nodes.len())
                .collect();
            let active = members
                .iter()
                .filter(|n| {
                    let rt = &self.state.nodes[n.index()];
                    rt.provisioned && !rt.crashed
                })
                .count();
            let view = PoolView {
                price: el.prices[pi].price,
                mean_price: pool.mean_price,
                active,
                capacity: members.len(),
            };
            let target = ecfg
                .policy
                .scaling()
                .target(ecfg, &view, &demand)
                .min(members.len());
            if target > active {
                let mut to_add = target - active;
                for &nid in &members {
                    if to_add == 0 {
                        break;
                    }
                    let rt = &mut self.state.nodes[nid.index()];
                    if rt.provisioned || rt.crashed {
                        continue;
                    }
                    rt.provisioned = true;
                    // provisioning latency: the node joins the fleet now
                    // (and starts billing) but accepts work only later
                    rt.blocked_until = rt
                        .blocked_until
                        .max(self.now + SimDuration::from_secs_f64(ecfg.provision_secs));
                    el.last_busy[nid.index()] = self.now;
                    el.cost.provisions += 1;
                    self.publish(EngineEvent::NodeProvisioned { node: nid });
                    self.need_offers = true;
                    to_add -= 1;
                }
            } else if target < active {
                let mut to_drop = active - target;
                for &nid in &members {
                    if to_drop == 0 {
                        break;
                    }
                    let idle_secs = self.now.since(el.last_busy[nid.index()]).as_secs_f64();
                    let eligible = {
                        let rt = &self.state.nodes[nid.index()];
                        rt.provisioned
                            && !rt.crashed
                            && rt.drain_deadline.is_none()
                            && rt.running.is_empty()
                            && idle_secs >= ecfg.scale_down_idle_secs
                    };
                    if !eligible {
                        continue;
                    }
                    self.state.nodes[nid.index()].provisioned = false;
                    el.cost.decommissions += 1;
                    self.publish(EngineEvent::NodeDecommissioned { node: nid });
                    // the node's cache and any finished map outputs
                    // leave with it — same loss path as a crash, so
                    // lineage recompute keeps reducers correct
                    self.node_lost(nid);
                    to_drop -= 1;
                }
            }
        }

        // price-correlated preemptions: one draw per pool slot per
        // check, applied only to nodes actually in the fleet, so the
        // draw sequence is independent of scheduler behaviour
        for (pi, pool) in ecfg.pools.iter().enumerate() {
            let prob = el.risk[pi];
            for &nid in &pool.nodes {
                let hit = self.rng_elastic.gen_range(0.0..1.0) < prob;
                if !hit || nid.index() >= self.state.nodes.len() {
                    continue;
                }
                let rt = &self.state.nodes[nid.index()];
                if rt.provisioned && !rt.crashed && rt.drain_deadline.is_none() {
                    self.begin_preemption(nid, pool.notice_secs);
                }
            }
        }

        if !self.state.tracker.all_done(self.input.app) && !self.aborted {
            self.source.schedule(
                self.now + SimDuration::from_secs_f64(ecfg.check_secs),
                Event::ElasticCheck,
            );
        }
        self.elastic = Some(el);
    }

    /// Accrue cost up to `now` and return the run's ledger (zero without
    /// spot pools). Called once at end of run.
    pub(crate) fn elastic_settle(&mut self) -> CostSummary {
        let cfg = self.input.config;
        match self.elastic.as_mut() {
            Some(el) => {
                el.accrue(&self.state.nodes, &cfg.elastic, self.now);
                el.cost
            }
            None => CostSummary::default(),
        }
    }
}
