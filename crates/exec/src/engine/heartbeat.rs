//! Heartbeat handling and the RM's failure detector.
//!
//! The engine heartbeat drives three things: the scheduler's periodic
//! hook, the failure detector's observe/evaluate round (when a chaos
//! script armed it), and the livelock guard that aborts a run whose
//! scheduler refuses every placement. Detector transitions are published
//! as [`EngineEvent::NodeSuspect`]/[`EngineEvent::NodeDead`]/
//! [`EngineEvent::NodeRecovered`] for statistics and tracing.

use rupam_cluster::NodeId;
use rupam_faults::NodeHealth;
use rupam_metrics::trace::AbortCause;

use rupam_simcore::source::EventSource;

use super::driver::{Engine, Event};
use super::events::EngineEvent;

impl<'a, 's, S: EventSource<Event>> Engine<'a, 's, S> {
    /// One engine heartbeat: scheduler hook, detector round, livelock
    /// guard, and re-arming the next beat.
    pub(crate) fn on_heartbeat(&mut self) {
        self.sched.on_heartbeat(self.now);
        if self.detector.is_some() {
            self.detector_tick();
        }
        self.need_offers = true;
        // livelock guard: pending work, nothing running, nothing
        // scheduled — the scheduler is refusing every placement.
        // Real Spark jobs die with "Initial job has not accepted
        // any resources"; we abort the run likewise.
        let anything_running = self.state.anything_running();
        let anything_pending = self.state.anything_pending();
        // an empty cluster waiting for the next job arrival is
        // not a livelock — only count heartbeats where released
        // work sits unplaced
        if anything_running || !anything_pending {
            self.idle_heartbeats = 0;
        } else {
            self.idle_heartbeats += 1;
            if self.idle_heartbeats > 600 {
                self.aborted = true;
                self.publish(EngineEvent::Aborted {
                    cause: AbortCause::Livelock,
                    task: None,
                });
            }
        }
        if !self.state.tracker.all_done(self.input.app) && !self.aborted {
            self.source.schedule(
                self.now + self.input.config.engine.heartbeat,
                Event::Heartbeat,
            );
        }
    }

    /// One failure-detector round, driven off the engine heartbeat: feed
    /// it heartbeats from nodes still emitting them, re-admit dead nodes
    /// whose heartbeats resumed, then evaluate the timeout thresholds.
    pub(crate) fn detector_tick(&mut self) {
        let mut revived: Vec<NodeId> = Vec::new();
        {
            let det = self.detector.as_mut().expect("gated by caller");
            for (i, node) in self.state.nodes.iter().enumerate() {
                // deprovisioned spot nodes are out of the fleet: the RM
                // does not expect heartbeats from them, so they are
                // observed as healthy rather than aged towards dead
                let heartbeating =
                    !node.provisioned || (!node.crashed && self.now >= node.hb_dropout_until);
                if !heartbeating {
                    continue;
                }
                let id = NodeId(i);
                if det.is_dead(id) {
                    det.revive(id, self.now);
                    revived.push(id);
                } else {
                    det.observe(id, self.now);
                }
            }
        }
        for id in revived {
            self.publish(EngineEvent::NodeRecovered { node: id });
            self.need_offers = true;
        }
        let transitions = self
            .detector
            .as_mut()
            .expect("gated by caller")
            .evaluate(self.now);
        for t in transitions {
            match t.to {
                NodeHealth::Suspect => {
                    self.publish(EngineEvent::NodeSuspect {
                        node: t.node,
                        age: t.age,
                    });
                }
                NodeHealth::Dead => {
                    self.publish(EngineEvent::NodeDead {
                        node: t.node,
                        age: t.age,
                    });
                    // the driver abandons the node's executor: whether
                    // the node is physically down (crash) or merely
                    // partitioned (dropout), its tasks, cache and map
                    // outputs are gone from the cluster's point of view
                    self.node_lost(t.node);
                }
                NodeHealth::Alive => {
                    // a suspect's heartbeats caught up before the dead
                    // threshold — it never left the rankings
                }
            }
        }
    }
}
