//! The simulation driver, as a staged event-bus architecture.
//!
//! A deterministic discrete-event simulation of a Spark-like cluster
//! engine with a *fluid* contention model: every running task attempt is
//! a queue of resource phases (see [`crate::costmodel`]); tasks in the
//! same phase class on a node share that resource equally; after every
//! event the engine advances all attempts' remaining work exactly and
//! recomputes completion times, so rate changes never go stale.
//!
//! The engine owns physics (execution rates, memory, OOM, executor loss,
//! race resolution) and the offer protocol; *policy* lives entirely in
//! the [`Scheduler`] implementation it drives. Structurally the engine
//! is split around two seams:
//!
//! * **[`state`]** — one authoritative `ClusterState` (nodes, executors,
//!   in-flight attempts, stage/job bookkeeping) owned by the core loop
//!   ([`driver`]) and mutated only by the subsystem modules:
//!   [`lifecycle`] (launch/finish/fail/race), [`heartbeat`] (detector +
//!   livelock guard), [`recovery`] (chaos faults, lineage recompute,
//!   OOM), [`speculation`] (straggler flagging), [`caching`] (cache
//!   scoping + locality preferences) and [`offers`] (snapshot + round).
//! * **[`events`]** — a typed, deterministically-ordered
//!   [`EngineEvent`] bus through which everything that *observes* the
//!   simulation hangs off: trace emission, fault statistics and the
//!   invariant auditor ([`emit`]), plus any caller-supplied
//!   [`Subscriber`] (see [`simulate_observed_with`]).
//!
//! Subscribers cannot mutate simulation state, so observability never
//! perturbs a run: the report of a traced/audited run is identical to an
//! untraced run of the same inputs, and the decision-trace digest is a
//! pure function of `(code, cluster, workload, seed)`.

mod caching;
mod driver;
mod elastic;
pub mod emit;
pub mod events;
mod heartbeat;
mod lifecycle;
mod offers;
mod recovery;
mod speculation;
mod state;
#[cfg(test)]
mod tests;

use std::collections::HashMap;

use rupam_cluster::monitor::NodeMetrics;
use rupam_cluster::{ClusterSpec, NodeId, ResourceMonitor};
use rupam_dag::app::{Application, JobId};
use rupam_dag::data::DataLayout;
use rupam_dag::lineage::StageTracker;
use rupam_dag::stream::MergedStream;
use rupam_dag::TaskRef;
use rupam_faults::FailureDetector;
use rupam_metrics::report::{JobOutcome, RunReport};
use rupam_metrics::trace::{AbortCause, TraceBuffer, DEFAULT_TRACE_CAPACITY};
use rupam_simcore::calendar::Calendar;
use rupam_simcore::rng::RngFactory;
use rupam_simcore::time::SimTime;
use rupam_simcore::units::ByteSize;

use crate::audit::{AuditConfig, Violation};
use crate::cache::ExecutorCache;
use crate::config::SimConfig;
use crate::scheduler::Scheduler;
use crate::speculation::SpeculationSet;

use driver::Engine;
use state::{ClusterState, JobRt, NodeRt, StageRt, TaskState};

pub use emit::{AuditRelay, FaultStats, TraceEmitter};
pub use events::{lost_task_detail, BusStage, EngineEvent, EventBus, EventCtx, Subscriber};

/// Fraction of a reduce task's shuffle input that must sit on one node
/// for Spark to consider that node `NODE_LOCAL` for the task.
pub(crate) const REDUCER_PREF_FRACTION: f64 = 0.2;
/// Work below this is considered complete (unit-scale epsilon).
pub(crate) const WORK_EPS: f64 = 1e-7;

/// Typed failures of the core loop. These are *graceful* ends: callers
/// ([`run_sim`]) convert them into an aborted [`RunReport`] instead of
/// panicking mid-simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Nothing running and nothing on the calendar while stages remain
    /// incomplete — progress is impossible (e.g. a fault script crashed
    /// every node and recovery has nowhere to go).
    CalendarExhausted {
        /// Simulation time at which the calendar ran dry.
        at: SimTime,
    },
    /// The event source's input channel disconnected while work was
    /// still outstanding (serve mode: every producer hung up before the
    /// stream drained). Never produced by the deterministic calendar.
    SourceDisconnected {
        /// Time of the last successfully popped event.
        at: SimTime,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::CalendarExhausted { at } => {
                write!(f, "event calendar exhausted at {at} with stages incomplete")
            }
            EngineError::SourceDisconnected { at } => {
                write!(f, "event source disconnected at {at} with work outstanding")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Everything a single-application run needs.
pub struct SimInput<'a> {
    /// The cluster to run on.
    pub cluster: &'a ClusterSpec,
    /// The application to execute.
    pub app: &'a Application,
    /// HDFS block placement for the application's input.
    pub layout: &'a DataLayout,
    /// Simulation tunables.
    pub config: &'a SimConfig,
    /// Experiment seed (failure-model draws derive from it).
    pub seed: u64,
}

/// Everything a multi-tenant run needs: a [`MergedStream`] (built by
/// [`rupam_dag::JobStream::merge`]) carries the merged application, the
/// combined HDFS layout and the per-job arrival times.
pub struct StreamInput<'a> {
    /// The cluster to run on.
    pub cluster: &'a ClusterSpec,
    /// The merged job stream to execute.
    pub stream: &'a MergedStream,
    /// Simulation tunables.
    pub config: &'a SimConfig,
    /// Experiment seed (failure-model draws derive from it).
    pub seed: u64,
}

/// Observability switches for a run. [`Default`] turns everything off —
/// the plain [`simulate`] path pays no tracing or auditing cost.
#[derive(Clone, Debug, Default)]
pub struct SimOptions {
    /// Record decision traces into a ring of this capacity (`Some(0)` is
    /// digest-only: nothing retained, every event still hashed). `None`
    /// disables tracing entirely.
    pub trace_capacity: Option<usize>,
    /// Run the [`crate::audit::InvariantAuditor`] after every offer
    /// round.
    pub audit: Option<AuditConfig>,
}

impl SimOptions {
    /// Tracing at the default ring capacity, no auditing.
    pub fn traced() -> Self {
        SimOptions {
            trace_capacity: Some(DEFAULT_TRACE_CAPACITY),
            audit: None,
        }
    }

    /// Tracing plus auditing at default settings.
    pub fn audited() -> Self {
        SimOptions {
            trace_capacity: Some(DEFAULT_TRACE_CAPACITY),
            audit: Some(AuditConfig::default()),
        }
    }
}

/// What a traced/audited run observed, alongside its [`RunReport`].
#[derive(Debug, Default)]
pub struct SimObservation {
    /// The decision trace, when tracing was enabled.
    pub trace: Option<TraceBuffer>,
    /// Invariant violations, when auditing was enabled.
    pub violations: Vec<Violation>,
}

/// Run `app` on `cluster` under `scheduler`; returns the full report.
pub fn simulate(input: &SimInput<'_>, scheduler: &mut dyn Scheduler) -> RunReport {
    simulate_observed(input, scheduler, &SimOptions::default()).0
}

/// Like [`simulate`], but with decision tracing and/or invariant
/// auditing per `opts`. The report is identical to an untraced run of
/// the same inputs — observability never perturbs the simulation.
pub fn simulate_observed(
    input: &SimInput<'_>,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
) -> (RunReport, SimObservation) {
    run_sim(input, None, scheduler, opts, Vec::new())
}

/// Like [`simulate_observed`], with additional caller-supplied bus
/// subscribers attached for the duration of the run. Subscribers see
/// every published [`EngineEvent`] in the bus's canonical dispatch
/// order, which is independent of the order of `subscribers`.
pub fn simulate_observed_with(
    input: &SimInput<'_>,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
    subscribers: Vec<Box<dyn Subscriber>>,
) -> (RunReport, SimObservation) {
    run_sim(input, None, scheduler, opts, subscribers)
}

/// Run a stream of jobs arriving over time against one long-lived
/// scheduler instance; [`simulate`] is the 1-job special case. Each
/// stream job's chain of app-jobs stays gated until its arrival; the
/// report carries per-job completion times ([`RunReport::jobs`]).
pub fn simulate_stream(input: &StreamInput<'_>, scheduler: &mut dyn Scheduler) -> RunReport {
    simulate_stream_observed(input, scheduler, &SimOptions::default()).0
}

/// Like [`simulate_stream`], but with decision tracing and/or invariant
/// auditing per `opts`.
pub fn simulate_stream_observed(
    input: &StreamInput<'_>,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
) -> (RunReport, SimObservation) {
    simulate_stream_observed_with(input, scheduler, opts, Vec::new())
}

/// Like [`simulate_stream_observed`], with additional caller-supplied
/// bus subscribers (see [`simulate_observed_with`]).
pub fn simulate_stream_observed_with(
    input: &StreamInput<'_>,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
    subscribers: Vec<Box<dyn Subscriber>>,
) -> (RunReport, SimObservation) {
    let sim_input = SimInput {
        cluster: input.cluster,
        app: &input.stream.app,
        layout: &input.stream.layout,
        config: input.config,
        seed: input.seed,
    };
    run_sim(&sim_input, Some(input.stream), scheduler, opts, subscribers)
}

/// Build a ready-to-run [`Engine`] from the inputs: runtime state,
/// stream bookkeeping, RNG streams and the detector. Split from
/// [`run_sim`] so engine unit tests can drive the loop directly.
pub(crate) fn assemble<'a, 's>(
    input: &'a SimInput<'a>,
    stream: Option<&MergedStream>,
    scheduler: &'s mut dyn Scheduler,
    bus: EventBus,
) -> Engine<'a, 's> {
    let cluster = input.cluster;
    let cfg = input.config;
    scheduler.on_app_start(input.app, cluster);

    let nodes: Vec<NodeRt> = cluster
        .iter()
        .map(|(id, spec)| {
            let requested = scheduler.executor_memory(cluster, id);
            let ceiling = spec.mem.saturating_sub(cfg.mem.os_reserved);
            let executor_mem = requested.min(ceiling);
            NodeRt {
                executor_mem,
                mem_in_use: ByteSize::ZERO,
                running: Vec::new(),
                cache: ExecutorCache::new(executor_mem.scale(cfg.mem.storage_fraction)),
                blocked_until: SimTime::ZERO,
                oom_epoch: 0,
                oom_scheduled: false,
                last_metrics: NodeMetrics {
                    free_mem: executor_mem,
                    gpus_idle: spec.gpus,
                    ..NodeMetrics::default()
                },
                crashed: false,
                slow_factor: 1.0,
                slow_epoch: 0,
                flaky_epoch: 0,
                hb_dropout_until: SimTime::ZERO,
                flaky_until: SimTime::ZERO,
                flaky_prob: 0.0,
                // spot-pool nodes join the fleet only when the
                // controller provisions them; everything else is the
                // always-on on-demand fleet
                provisioned: cfg.elastic.tier(id) == rupam_cluster::NodeTier::OnDemand,
                drain_deadline: None,
                elastic_epoch: 0,
            }
        })
        .collect();

    let stages: Vec<StageRt> = input
        .app
        .stages
        .iter()
        .map(|s| StageRt {
            released: false,
            tasks: vec![TaskState::Pending { attempt_no: 0 }; s.num_tasks()],
            finished_secs: Vec::new(),
            map_out_per_node: vec![0.0; cluster.len()],
            map_out_total: 0.0,
            winners: vec![None; s.num_tasks()],
        })
        .collect();

    // stream metadata; a plain application is a 1-job stream at t = 0
    let (jobs, chains, stage_jobs) = match stream {
        Some(ms) => (
            ms.jobs
                .iter()
                .map(|j| JobRt {
                    name: j.name.clone(),
                    tenant: j.tenant,
                    arrival: j.arrival,
                    completed_at: None,
                })
                .collect::<Vec<_>>(),
            ms.jobs
                .iter()
                .map(|j| j.app_jobs.clone())
                .collect::<Vec<_>>(),
            ms.stage_jobs.clone(),
        ),
        None => (
            vec![JobRt {
                name: input.app.name.clone(),
                tenant: rupam_dag::TenantId(0),
                arrival: SimTime::ZERO,
                completed_at: None,
            }],
            std::iter::once(0..input.app.jobs.len()).collect(),
            vec![JobId(0); input.app.stages.len()],
        ),
    };

    Engine {
        input,
        sched: scheduler,
        source: Calendar::new(),
        now: SimTime::ZERO,
        state: ClusterState {
            attempts: Vec::new(),
            nodes,
            stages,
            jobs,
            stage_jobs,
            tracker: StageTracker::new_stream(input.app, &chains),
            spec_set: SpeculationSet::new(),
            observed_peak: HashMap::new(),
            kill_pending: HashMap::new(),
        },
        monitor: ResourceMonitor::new(cluster),
        records: Vec::new(),
        rng_fail: RngFactory::new(input.seed).stream("engine/failures"),
        rng_faults: RngFactory::new(input.seed).stream("engine/faults"),
        rng_elastic: RngFactory::new(input.seed).stream("engine/elastic"),
        detector: (!cfg.faults.script.is_empty())
            .then(|| FailureDetector::new(cluster.len(), &cfg.faults, SimTime::ZERO)),
        elastic: (!cfg.elastic.is_empty()).then(|| elastic::ElasticRt::new(&cfg.elastic, cluster)),
        oom_failures: 0,
        executor_losses: 0,
        speculative_launched: 0,
        speculative_wins: 0,
        aborted: false,
        need_offers: true,
        idle_heartbeats: 0,
        bus,
        round: 0,
        offer_shadow: crate::scheduler::NodeShadowTable::new(),
        hb_scratch: Vec::new(),
    }
}

fn run_sim(
    input: &SimInput<'_>,
    stream: Option<&MergedStream>,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
    extra: Vec<Box<dyn Subscriber>>,
) -> (RunReport, SimObservation) {
    // assemble the bus: statistics always, trace/audit per options, then
    // whatever the caller brought — registration order is irrelevant by
    // construction (the bus dispatches in canonical (stage, name) order)
    let mut bus = EventBus::new();
    bus.register(Box::new(FaultStats::new()));
    if let Some(cap) = opts.trace_capacity {
        bus.register(Box::new(TraceEmitter::new(cap)));
    }
    if let Some(audit_cfg) = opts.audit.clone() {
        bus.register(Box::new(AuditRelay::new(audit_cfg)));
    }
    for sub in extra {
        bus.register(sub);
    }

    let mut sim = assemble(input, stream, scheduler, bus);
    for i in 0..sim.state.nodes.len() {
        let mem = sim.state.nodes[i].executor_mem;
        sim.publish(EngineEvent::ExecutorSized {
            node: NodeId(i),
            mem,
        });
    }
    if let Err(err) = sim.run() {
        sim.aborted = true;
        sim.publish(EngineEvent::Aborted {
            cause: match err {
                EngineError::CalendarExhausted { .. } => AbortCause::CalendarExhausted,
                EngineError::SourceDisconnected { .. } => AbortCause::SourceDisconnected,
            },
            task: None,
        });
    }

    // recovery invariant: every fault-killed task and lineage re-pend
    // must have been re-run to completion by the end of a completed run;
    // leftovers are permanently lost tasks.
    if !sim.aborted && !sim.state.kill_pending.is_empty() {
        let mut lost: Vec<(TaskRef, SimTime)> = sim
            .state
            .kill_pending
            .iter()
            .map(|(&t, &at)| (t, at))
            .collect();
        lost.sort();
        for (task, killed_at) in lost {
            sim.publish(EngineEvent::LostTask { task, killed_at });
        }
    }

    let makespan = sim.now.since(SimTime::ZERO);
    let jobs: Vec<JobOutcome> = sim
        .state
        .jobs
        .iter()
        .enumerate()
        .map(|(i, j)| JobOutcome {
            job: JobId(i),
            tenant: j.tenant,
            name: j.name.clone(),
            submitted_at: j.arrival,
            completed_at: j.completed_at,
        })
        .collect();
    let faults = sim.bus.take_faults().unwrap_or_default();
    let cost = sim.elastic_settle();
    let report = RunReport {
        app_name: input.app.name.clone(),
        scheduler_name: sim.sched.name().to_string(),
        seed: input.seed,
        makespan,
        completed: !sim.aborted,
        jobs,
        records: sim.records,
        monitor: sim.monitor,
        oom_failures: sim.oom_failures,
        executor_losses: sim.executor_losses,
        speculative_launched: sim.speculative_launched,
        speculative_wins: sim.speculative_wins,
        faults,
        cost,
    };
    let observation = SimObservation {
        trace: sim.bus.take_trace(),
        violations: sim.bus.take_violations(),
    };
    (report, observation)
}
