//! Built-in bus subscribers: trace emission, invariant-audit relay and
//! fault statistics.
//!
//! These are the observers the engine wires up itself (per
//! [`super::SimOptions`]); callers can attach more through
//! [`super::simulate_observed_with`]. Each one is a pure fold over the
//! event stream — none of them can reach back into simulation state,
//! which is what guarantees observability never perturbs a run.

use rupam_faults::FaultKind;
use rupam_metrics::report::FaultSummary;
use rupam_metrics::trace::{TraceBuffer, TraceEvent};

use crate::audit::{AuditConfig, InvariantAuditor, Violation};
use crate::scheduler::{Command, OfferInput};

use super::events::{lost_task_detail, BusStage, EngineEvent, EventCtx, Subscriber};

/// Records the decision trace: every event with a trace projection
/// ([`EngineEvent::trace_kind`]) becomes one [`TraceEvent`] in a ring
/// buffer with a running digest.
pub struct TraceEmitter {
    buffer: TraceBuffer,
}

impl TraceEmitter {
    /// An emitter recording into a ring of `capacity` events (0 =
    /// digest-only).
    pub fn new(capacity: usize) -> Self {
        TraceEmitter {
            buffer: TraceBuffer::new(capacity),
        }
    }
}

impl Subscriber for TraceEmitter {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn stage(&self) -> BusStage {
        BusStage::Emit
    }

    fn is_trace_sink(&self) -> bool {
        true
    }

    fn on_event(&mut self, ctx: &EventCtx, event: &EngineEvent) {
        if let Some(kind) = event.trace_kind() {
            self.buffer.record(TraceEvent {
                at: ctx.at,
                round: ctx.round,
                kind,
            });
        }
    }

    fn take_trace(&mut self) -> Option<TraceBuffer> {
        Some(std::mem::replace(&mut self.buffer, TraceBuffer::new(0)))
    }
}

/// Bridges the bus to the [`InvariantAuditor`]: runs the per-round
/// checks through the audit hook and records end-of-run lost-task
/// violations. Per-round violations are *returned* to the engine (which
/// re-publishes them as [`EngineEvent::AuditViolation`]) rather than
/// consumed from `on_event`, so the relay never double-records its own
/// findings.
pub struct AuditRelay {
    auditor: InvariantAuditor,
}

impl AuditRelay {
    /// A relay around a fresh auditor with the given tunables.
    pub fn new(cfg: AuditConfig) -> Self {
        AuditRelay {
            auditor: InvariantAuditor::new(cfg),
        }
    }
}

impl Subscriber for AuditRelay {
    fn name(&self) -> &'static str {
        "audit"
    }

    fn stage(&self) -> BusStage {
        BusStage::Audit
    }

    fn is_audit_sink(&self) -> bool {
        true
    }

    fn on_event(&mut self, ctx: &EventCtx, event: &EngineEvent) {
        if let EngineEvent::LostTask { task, killed_at } = event {
            self.auditor.record_violation(
                ctx.round,
                "lost-task",
                lost_task_detail(*task, *killed_at),
            );
        }
    }

    fn on_offer_audit(
        &mut self,
        round: u64,
        input: &OfferInput<'_>,
        commands: &[Command],
        findings: &[String],
    ) -> Vec<Violation> {
        self.auditor
            .check_round(round, input, commands, findings.to_vec())
    }

    fn take_violations(&mut self) -> Vec<Violation> {
        self.auditor.violations().to_vec()
    }
}

/// Folds fault-subsystem events into the run's [`FaultSummary`] —
/// injections, detector transitions, fault kills, lineage recomputes and
/// recoveries.
#[derive(Default)]
pub struct FaultStats {
    summary: FaultSummary,
}

impl FaultStats {
    /// A collector with all counters at zero.
    pub fn new() -> Self {
        FaultStats::default()
    }
}

impl Subscriber for FaultStats {
    fn name(&self) -> &'static str {
        "fault-stats"
    }

    fn stage(&self) -> BusStage {
        BusStage::Statistics
    }

    fn on_event(&mut self, _ctx: &EventCtx, event: &EngineEvent) {
        match event {
            EngineEvent::FaultInjected { kind, .. } => match kind {
                FaultKind::Crash => self.summary.crashes += 1,
                FaultKind::Restart => self.summary.restarts += 1,
                FaultKind::Slowdown { .. } => self.summary.slowdowns += 1,
                FaultKind::HeartbeatDropout { .. } => self.summary.dropouts += 1,
                FaultKind::FlakyOom { .. } => self.summary.flaky_windows += 1,
                // counted from the PreemptionNotice it triggers, so
                // scripted and elastic preemptions land in one counter
                FaultKind::Preempt { .. } => {}
            },
            EngineEvent::PreemptionNotice { .. } => self.summary.preemptions += 1,
            EngineEvent::NodeSuspect { .. } => self.summary.suspects += 1,
            EngineEvent::NodeDead { .. } => self.summary.deaths += 1,
            EngineEvent::NodeRecovered { .. } => self.summary.readmissions += 1,
            EngineEvent::TaskKilled { .. } => self.summary.tasks_killed += 1,
            EngineEvent::LineageRecompute { tasks, .. } => {
                self.summary.map_outputs_recomputed += tasks;
            }
            EngineEvent::RecoveryResolved { waited, .. } => {
                self.summary.recoveries += 1;
                self.summary.recovery_secs_total += waited.as_secs_f64();
            }
            _ => {}
        }
    }

    fn take_faults(&mut self) -> Option<FaultSummary> {
        Some(std::mem::take(&mut self.summary))
    }
}
