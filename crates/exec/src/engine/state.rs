//! The single authoritative cluster state.
//!
//! [`ClusterState`] owns everything the engine knows about the simulated
//! cluster at an instant: task attempts, per-node executor state, stage
//! and job bookkeeping, lineage tracking, the speculation set and the
//! fault-recovery ledger. The core loop ([`super::driver`]) owns exactly
//! one `ClusterState`; every subsystem module mutates cluster reality
//! through it, and everything else observes through the
//! [`super::events::EventBus`]. Nothing in here emits events or makes
//! policy decisions — it is pure state plus a few queries.

use std::collections::{HashMap, VecDeque};

use rupam_cluster::monitor::NodeMetrics;
use rupam_cluster::NodeId;
use rupam_dag::app::{JobId, StageId};
use rupam_dag::lineage::StageTracker;
use rupam_dag::{Locality, TaskRef};
use rupam_metrics::breakdown::TaskBreakdown;
use rupam_simcore::time::SimTime;
use rupam_simcore::units::ByteSize;
use rupam_simcore::Sym;

use crate::cache::ExecutorCache;
use crate::costmodel::Phase;
use crate::speculation::SpeculationSet;

/// Index into [`ClusterState::attempts`]; attempts are never removed, so
/// ids are stable for the whole run.
pub(crate) type AttemptId = usize;

/// Runtime state of one task attempt (original or speculative copy).
pub(crate) struct AttemptRt {
    pub(crate) task: TaskRef,
    pub(crate) template_key: Sym,
    pub(crate) attempt_no: u32,
    pub(crate) speculative: bool,
    pub(crate) node: NodeId,
    pub(crate) locality: Locality,
    pub(crate) phases: VecDeque<Phase>,
    pub(crate) launched_at: SimTime,
    pub(crate) breakdown: TaskBreakdown,
    pub(crate) peak_mem: ByteSize,
    pub(crate) used_gpu: bool,
    pub(crate) alive: bool,
    pub(crate) rate: f64,
}

impl AttemptRt {
    pub(crate) fn current_phase(&self) -> Option<&Phase> {
        self.phases.front()
    }
}

/// Runtime state of one node's executor.
pub(crate) struct NodeRt {
    pub(crate) executor_mem: ByteSize,
    pub(crate) mem_in_use: ByteSize,
    pub(crate) running: Vec<AttemptId>,
    pub(crate) cache: ExecutorCache,
    pub(crate) blocked_until: SimTime,
    pub(crate) oom_epoch: u64,
    pub(crate) oom_scheduled: bool,
    pub(crate) last_metrics: NodeMetrics,
    // ---- fault-subsystem state (inert on healthy runs) ----
    /// Physically down: heartbeats stop, launches are dropped.
    pub(crate) crashed: bool,
    /// Service-rate divisor while a scripted slowdown is active (1.0 =
    /// full speed).
    pub(crate) slow_factor: f64,
    /// Guards stale [`super::driver::Event::SlowdownEnd`] events.
    pub(crate) slow_epoch: u64,
    /// Guards stale [`super::driver::Event::FlakyCheck`] events.
    pub(crate) flaky_epoch: u64,
    /// Heartbeats are suppressed (network partition) until this instant.
    pub(crate) hb_dropout_until: SimTime,
    /// End of the active flaky-OOM window.
    pub(crate) flaky_until: SimTime,
    /// Per-check kill probability inside the flaky-OOM window.
    pub(crate) flaky_prob: f64,
    // ---- elastic-subsystem state (inert without spot pools) ----
    /// Part of the active fleet. On-demand nodes are always provisioned;
    /// spot-pool nodes start deprovisioned and churn under the capacity
    /// controller. A deprovisioned node is blocked to the scheduler.
    pub(crate) provisioned: bool,
    /// A preemption notice is in flight: the node reclaims at this
    /// instant. Draining nodes accept no new work.
    pub(crate) drain_deadline: Option<SimTime>,
    /// Guards stale [`super::driver::Event::PreemptFire`] events across
    /// deprovision/re-provision cycles.
    pub(crate) elastic_epoch: u64,
}

/// Runtime state of one stream job (single-app runs have exactly one).
pub(crate) struct JobRt {
    pub(crate) name: String,
    pub(crate) tenant: rupam_dag::TenantId,
    pub(crate) arrival: SimTime,
    pub(crate) completed_at: Option<SimTime>,
}

/// Scheduling state of one task.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum TaskState {
    Pending { attempt_no: u32 },
    Running { attempts: Vec<AttemptId> },
    Done,
}

/// Runtime state of one stage.
pub(crate) struct StageRt {
    pub(crate) released: bool,
    pub(crate) tasks: Vec<TaskState>,
    pub(crate) finished_secs: Vec<f64>,
    pub(crate) map_out_per_node: Vec<f64>,
    pub(crate) map_out_total: f64,
    /// Per task: node and attempt number of the winning (completed)
    /// copy, so that losing a node tells us exactly which finished map
    /// outputs died with it (lineage-driven recompute).
    pub(crate) winners: Vec<Option<(NodeId, u32)>>,
}

/// The one authoritative snapshot of cluster reality, owned by the core
/// loop and mutated only by the engine's subsystem modules.
pub(crate) struct ClusterState {
    /// Every attempt ever launched (ids are indices; never removed).
    pub(crate) attempts: Vec<AttemptRt>,
    /// Per-node executor runtime state.
    pub(crate) nodes: Vec<NodeRt>,
    /// Per-stage scheduling state.
    pub(crate) stages: Vec<StageRt>,
    /// Per-stream-job metadata and completion times.
    pub(crate) jobs: Vec<JobRt>,
    /// Stage → owning stream job.
    pub(crate) stage_jobs: Vec<JobId>,
    /// Lineage/readiness tracking across stages and job chains.
    pub(crate) tracker: StageTracker,
    /// Tasks currently flagged speculatable (not yet copied).
    pub(crate) spec_set: SpeculationSet,
    /// Highest observed peak memory per task, fed back into offers.
    pub(crate) observed_peak: HashMap<(StageId, usize), ByteSize>,
    /// Tasks killed by node faults (or re-pended by lineage recompute)
    /// that have not yet been re-run to completion, with the kill time.
    pub(crate) kill_pending: HashMap<TaskRef, SimTime>,
}

impl ClusterState {
    /// Remove a (still-alive) attempt from its node, freeing memory.
    pub(crate) fn detach_attempt(&mut self, id: AttemptId) {
        let a = &mut self.attempts[id];
        debug_assert!(a.alive);
        a.alive = false;
        let node = &mut self.nodes[a.node.index()];
        node.running.retain(|&x| x != id);
        node.mem_in_use = node.mem_in_use.saturating_sub(a.peak_mem);
    }

    /// Is any attempt alive anywhere on the cluster?
    pub(crate) fn anything_running(&self) -> bool {
        self.attempts.iter().any(|a| a.alive)
    }

    /// Does any released stage still hold pending (schedulable) tasks?
    pub(crate) fn anything_pending(&self) -> bool {
        self.stages.iter().any(|s| {
            s.released
                && s.tasks
                    .iter()
                    .any(|t| matches!(t, TaskState::Pending { .. }))
        })
    }
}
