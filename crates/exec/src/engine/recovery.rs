//! Fault injection, node loss, lineage recompute and the OOM machinery.
//!
//! Applies scripted chaos ([`rupam_faults::FaultScript`]) to the
//! cluster, abandons executors on crashed/dead nodes, re-pends finished
//! shuffle-map tasks whose outputs died with a node, and runs the
//! probabilistic OOM model for overcommitted executors. All accounting
//! flows through the bus: [`EngineEvent::FaultInjected`],
//! [`EngineEvent::TaskKilled`], [`EngineEvent::LineageRecompute`],
//! [`EngineEvent::OomTaskKill`].

use rand::Rng;

use rupam_cluster::NodeId;
use rupam_dag::app::{StageId, StageKind};
use rupam_dag::TaskRef;
use rupam_faults::FaultKind;
use rupam_metrics::record::AttemptOutcome;
use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;

use rupam_simcore::source::EventSource;

use super::driver::{Engine, Event};
use super::events::EngineEvent;
use super::state::{AttemptId, TaskState};

impl<'a, 's, S: EventSource<Event>> Engine<'a, 's, S> {
    /// Apply the `index`-th scripted fault to its target node.
    pub(crate) fn apply_fault(&mut self, index: usize) {
        let spec = *self
            .input
            .config
            .faults
            .script
            .get(index)
            .expect("fault events are scheduled once per script entry");
        let node_id = spec.node;
        if node_id.index() >= self.state.nodes.len() {
            return; // script targets a node this cluster doesn't have
        }
        self.publish(EngineEvent::FaultInjected {
            node: node_id,
            kind: spec.kind,
        });
        match spec.kind {
            FaultKind::Crash => {
                self.state.nodes[node_id.index()].crashed = true;
                self.node_lost(node_id);
            }
            FaultKind::Restart => {
                let node = &mut self.state.nodes[node_id.index()];
                node.crashed = false;
                node.slow_factor = 1.0;
                node.slow_epoch += 1;
                node.flaky_epoch += 1;
                node.flaky_until = SimTime::ZERO;
                node.hb_dropout_until = SimTime::ZERO;
                // the node stays out of the rankings until its first
                // heartbeat re-admits it via the detector
            }
            FaultKind::Slowdown { factor, secs } => {
                let node = &mut self.state.nodes[node_id.index()];
                node.slow_factor = factor.max(1e-9);
                node.slow_epoch += 1;
                let epoch = node.slow_epoch;
                self.source.schedule(
                    self.now + SimDuration::from_secs_f64(secs),
                    Event::SlowdownEnd {
                        node: node_id,
                        epoch,
                    },
                );
            }
            FaultKind::HeartbeatDropout { secs } => {
                self.state.nodes[node_id.index()].hb_dropout_until =
                    self.now + SimDuration::from_secs_f64(secs);
            }
            FaultKind::FlakyOom { secs, prob } => {
                let node = &mut self.state.nodes[node_id.index()];
                node.flaky_until = self.now + SimDuration::from_secs_f64(secs);
                node.flaky_prob = prob.clamp(0.0, 1.0);
                node.flaky_epoch += 1;
                let epoch = node.flaky_epoch;
                self.source.schedule(
                    self.now + SimDuration::from_secs(1),
                    Event::FlakyCheck {
                        node: node_id,
                        epoch,
                    },
                );
            }
            FaultKind::Preempt { notice_secs } => {
                self.begin_preemption(node_id, notice_secs);
            }
        }
    }

    /// Serve a preemption notice on a node: it drains (no new work) for
    /// the notice window, then [`Engine::preempt_fire`] reclaims it
    /// through the node-loss path. Used by scripted `preempt` faults and
    /// the elastic controller's price-correlated draws alike.
    pub(crate) fn begin_preemption(&mut self, node_id: NodeId, notice_secs: f64) {
        let notice = SimDuration::from_secs_f64(notice_secs.max(0.0));
        self.publish(EngineEvent::PreemptionNotice {
            node: node_id,
            notice,
        });
        let node = &mut self.state.nodes[node_id.index()];
        node.drain_deadline = Some(self.now + notice);
        node.elastic_epoch += 1;
        let epoch = node.elastic_epoch;
        self.source.schedule(
            self.now + notice,
            Event::PreemptFire {
                node: node_id,
                epoch,
            },
        );
        // draining blocks new launches; tell the scheduler now rather
        // than at the next heartbeat
        self.need_offers = true;
    }

    /// The drain window of a preemption notice expired: reclaim the
    /// node. Spot nodes leave the fleet (the controller may re-provision
    /// the slot later); a scripted preemption on an on-demand node
    /// behaves like a crash-with-notice (a `restart` fault revives it).
    pub(crate) fn preempt_fire(&mut self, node_id: NodeId, epoch: u64) {
        {
            let node = &self.state.nodes[node_id.index()];
            if node.elastic_epoch != epoch || node.drain_deadline.is_none() || node.crashed {
                return; // stale: the node was lost or revived meanwhile
            }
        }
        let spot = !self.input.config.elastic.is_empty()
            && self.input.config.elastic.pool_of(node_id).is_some();
        // bill the partial interval before the node leaves the fleet
        if let Some(el) = self.elastic.as_mut() {
            el.accrue(&self.state.nodes, &self.input.config.elastic, self.now);
        }
        {
            let node = &mut self.state.nodes[node_id.index()];
            node.drain_deadline = None;
            if spot {
                node.provisioned = false;
            } else {
                node.crashed = true;
            }
        }
        if spot {
            if let Some(el) = self.elastic.as_mut() {
                el.cost.preemptions += 1;
            }
        }
        self.node_lost(node_id);
    }

    /// A node's executor state is gone — it physically crashed, or the
    /// failure detector declared it dead and the driver abandoned it.
    /// Kill its running attempts, wipe the executor, and re-pend every
    /// completed map task whose output lived there (lineage recompute).
    pub(crate) fn node_lost(&mut self, node_id: NodeId) {
        let victims: Vec<AttemptId> = self.state.nodes[node_id.index()].running.clone();
        for id in victims {
            let task = self.state.attempts[id].task;
            self.state.kill_pending.entry(task).or_insert(self.now);
            self.publish(EngineEvent::TaskKilled {
                task,
                node: node_id,
            });
            self.fail_attempt(id, AttemptOutcome::NodeFaulted);
        }
        let node = &mut self.state.nodes[node_id.index()];
        node.cache.clear();
        node.mem_in_use = ByteSize::ZERO;
        node.oom_epoch += 1;
        node.oom_scheduled = false;
        node.slow_factor = 1.0;
        // cancel any in-flight preemption notice: the node is already
        // gone, and a later re-provision must not inherit a stale fire
        node.drain_deadline = None;
        node.elastic_epoch += 1;
        self.recompute_lost_outputs(node_id);
        self.need_offers = true;
    }

    /// Walk the lineage: completed shuffle-map tasks whose winning copy
    /// ran on the lost node have lost their map output. Re-pend them
    /// (next attempt number), roll back their contribution to the
    /// shuffle bookkeeping, and re-block dependent stages through
    /// [`rupam_dag::lineage::StageTracker::task_lost`]. Cached partitions
    /// need no lineage action: the executor cache was wiped and every
    /// cached read carries an HDFS fallback.
    pub(crate) fn recompute_lost_outputs(&mut self, node_id: NodeId) {
        for sidx in 0..self.state.stages.len() {
            if self.input.app.stages[sidx].kind != StageKind::ShuffleMap {
                continue;
            }
            let n_tasks = self.state.stages[sidx].tasks.len();
            let mut lost = 0usize;
            for tidx in 0..n_tasks {
                let Some((winner, attempt_no)) = self.state.stages[sidx].winners[tidx] else {
                    continue;
                };
                if winner != node_id {
                    continue;
                }
                debug_assert!(matches!(
                    self.state.stages[sidx].tasks[tidx],
                    TaskState::Done
                ));
                if !self.state.tracker.task_lost(self.input.app, StageId(sidx)) {
                    continue; // the chain no longer needs this output
                }
                let bytes = self.input.app.stages[sidx].tasks[tidx]
                    .demand
                    .shuffle_write
                    .as_f64();
                let srt = &mut self.state.stages[sidx];
                srt.map_out_per_node[node_id.index()] =
                    (srt.map_out_per_node[node_id.index()] - bytes).max(0.0);
                srt.map_out_total = (srt.map_out_total - bytes).max(0.0);
                srt.winners[tidx] = None;
                srt.tasks[tidx] = TaskState::Pending {
                    attempt_no: attempt_no + 1,
                };
                self.state
                    .kill_pending
                    .entry(TaskRef {
                        stage: StageId(sidx),
                        index: tidx,
                    })
                    .or_insert(self.now);
                lost += 1;
            }
            if lost > 0 {
                self.publish(EngineEvent::LineageRecompute {
                    stage: StageId(sidx),
                    node: node_id,
                    tasks: lost,
                });
                self.need_offers = true;
            }
        }
    }

    /// One probe of a flaky-OOM window: with probability `flaky_prob`
    /// the node's hungriest attempt dies through the normal OOM-kill
    /// machinery; re-arms itself every second while the window lasts.
    pub(crate) fn flaky_check(&mut self, node_id: NodeId, epoch: u64) {
        let (stale, done) = {
            let n = &self.state.nodes[node_id.index()];
            (
                n.flaky_epoch != epoch || n.crashed,
                self.now >= n.flaky_until,
            )
        };
        if stale || done {
            return;
        }
        let prob = self.state.nodes[node_id.index()].flaky_prob;
        if self.rng_faults.gen_range(0.0..1.0) < prob {
            let victim = self.state.nodes[node_id.index()]
                .running
                .iter()
                .copied()
                .max_by_key(|&id| (self.state.attempts[id].peak_mem, id));
            if let Some(v) = victim {
                let pressure_pct = {
                    let n = &self.state.nodes[node_id.index()];
                    (n.mem_in_use.as_f64() / n.executor_mem.as_f64().max(1.0) * 100.0) as u32
                };
                self.oom_failures += 1;
                self.publish(EngineEvent::OomTaskKill {
                    task: self.state.attempts[v].task,
                    node: node_id,
                    pressure_pct,
                });
                self.fail_attempt(v, AttemptOutcome::OomFailure);
            }
        }
        self.source.schedule(
            self.now + SimDuration::from_secs(1),
            Event::FlakyCheck {
                node: node_id,
                epoch,
            },
        );
    }

    pub(crate) fn oom_check(&mut self, node_id: NodeId, epoch: u64) {
        let cfg = &self.input.config.mem;
        {
            let node = &mut self.state.nodes[node_id.index()];
            if node.oom_epoch != epoch {
                return; // stale (executor restarted meanwhile)
            }
            node.oom_scheduled = false;
            if node.mem_in_use <= node.executor_mem {
                return; // pressure resolved itself
            }
        }
        let (mem_in_use, executor_mem) = {
            let n = &self.state.nodes[node_id.index()];
            (n.mem_in_use, n.executor_mem)
        };
        let ratio = mem_in_use.as_f64() / executor_mem.as_f64().max(1.0);
        if ratio >= cfg.executor_kill_ratio {
            // the OS kills the whole JVM (paper §III-C3's catastrophic case)
            self.executor_lost(node_id);
            return;
        }
        let p = (cfg.oom_prob_slope * (ratio - 1.0)).clamp(0.05, 0.95);
        if self.rng_fail.gen_range(0.0..1.0) < p {
            // task-level OOM: the hungriest attempt dies; ties go to the
            // newest attempt (the allocation that tipped the heap over),
            // which is also what lets long-running attempts make progress
            let victim = self.state.nodes[node_id.index()]
                .running
                .iter()
                .copied()
                .max_by_key(|&id| (self.state.attempts[id].peak_mem, id));
            if let Some(v) = victim {
                self.oom_failures += 1;
                self.publish(EngineEvent::OomTaskKill {
                    task: self.state.attempts[v].task,
                    node: node_id,
                    pressure_pct: (ratio * 100.0) as u32,
                });
                self.fail_attempt(v, AttemptOutcome::OomFailure);
            }
        }
        // still overcommitted? keep checking
        self.schedule_oom_check_if_needed(node_id);
    }

    pub(crate) fn schedule_oom_check_if_needed(&mut self, node_id: NodeId) {
        let cfg = &self.input.config.mem;
        let (over, scheduled, epoch) = {
            let n = &self.state.nodes[node_id.index()];
            (n.mem_in_use > n.executor_mem, n.oom_scheduled, n.oom_epoch)
        };
        if over && !scheduled {
            let lo = cfg.oom_check_min.as_secs_f64();
            let hi = cfg.oom_check_max.as_secs_f64();
            let delay = SimDuration::from_secs_f64(self.rng_fail.gen_range(lo..hi));
            self.state.nodes[node_id.index()].oom_scheduled = true;
            self.source.schedule(
                self.now + delay,
                Event::OomCheck {
                    node: node_id,
                    epoch,
                },
            );
        }
    }
}
