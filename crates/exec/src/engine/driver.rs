//! The core loop: calendar, clock, and the fluid contention physics.
//!
//! [`Engine`] owns the one [`ClusterState`], the event calendar and the
//! [`super::events::EventBus`]; the subsystem modules (`lifecycle`,
//! `heartbeat`, `recovery`, `speculation`, `caching`, `offers`) are
//! `impl Engine` extensions that mutate that state and publish
//! [`EngineEvent`]s. This file contains only time and physics: advancing
//! the clock, recomputing contention rates, finding the next completion
//! and dispatching calendar events.

use rand::rngs::StdRng;

use rupam_cluster::monitor::{HeartbeatSnapshot, NodeMetrics};
use rupam_cluster::{NodeId, ResourceMonitor};
use rupam_dag::app::JobId;
use rupam_faults::FailureDetector;
use rupam_metrics::record::TaskRecord;
use rupam_simcore::calendar::Calendar;
use rupam_simcore::source::EventSource;
use rupam_simcore::time::{SimDuration, SimTime};

use crate::costmodel::PhaseResource;
use crate::scheduler::Scheduler;

use super::events::{EngineEvent, EventBus, EventCtx};
use super::state::{AttemptId, ClusterState};
use super::{EngineError, SimInput, WORK_EPS};
use crate::scheduler::NodeShadowTable;

/// Calendar events the engine schedules for itself.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Event {
    Heartbeat,
    SpeculationCheck,
    OomCheck { node: NodeId, epoch: u64 },
    ExecutorRestored { node: NodeId },
    JobSubmitted { job: JobId },
    Fault { index: usize },
    SlowdownEnd { node: NodeId, epoch: u64 },
    FlakyCheck { node: NodeId, epoch: u64 },
    ElasticCheck,
    PreemptFire { node: NodeId, epoch: u64 },
}

/// The simulation engine: core loop, clock and physics. Policy lives in
/// the [`Scheduler`] it drives; observation lives on the bus. Time lives
/// behind the [`EventSource`] type parameter: the default deterministic
/// [`Calendar`] for sim mode, or any other source (e.g. a wall-clock
/// one) that honours the same pop/schedule contract.
pub(crate) struct Engine<'a, 's, S: EventSource<Event> = Calendar<Event>> {
    pub(crate) input: &'a SimInput<'a>,
    pub(crate) sched: &'s mut dyn Scheduler,
    pub(crate) source: S,
    pub(crate) now: SimTime,
    /// The single authoritative cluster state.
    pub(crate) state: ClusterState,
    pub(crate) monitor: ResourceMonitor,
    pub(crate) records: Vec<TaskRecord>,
    pub(crate) rng_fail: StdRng,
    /// Fault-subsystem draws (flaky-OOM coin flips) come from their own
    /// stream so healthy-path draws from `rng_fail` are untouched.
    pub(crate) rng_faults: StdRng,
    /// Elastic-subsystem draws (spot-price noise, preemption coin flips)
    /// come from their own stream for the same reason: an empty
    /// elasticity script leaves every other stream byte-identical.
    pub(crate) rng_elastic: StdRng,
    /// Capacity-controller runtime; `None` unless the run has spot pools
    /// (strict no-op guarantee).
    pub(crate) elastic: Option<super::elastic::ElasticRt>,
    /// The RM's heartbeat failure detector; `None` unless the run has a
    /// non-empty chaos script (strict no-op guarantee).
    pub(crate) detector: Option<FailureDetector>,
    pub(crate) oom_failures: usize,
    pub(crate) executor_losses: usize,
    pub(crate) speculative_launched: usize,
    pub(crate) speculative_wins: usize,
    pub(crate) aborted: bool,
    pub(crate) need_offers: bool,
    pub(crate) idle_heartbeats: u32,
    /// The typed event bus every observer hangs off.
    pub(crate) bus: EventBus,
    pub(crate) round: u64,
    /// Per-node snapshot of what the scheduler saw at the previous offer
    /// round, diffed each round into [`crate::scheduler::OfferInput::changed`].
    pub(crate) offer_shadow: NodeShadowTable,
    /// Reusable buffer for one round's heartbeat batch (storm batching:
    /// the monitor is patched once per round, not once per node).
    pub(crate) hb_scratch: Vec<HeartbeatSnapshot>,
}

impl<'a, 's, S: EventSource<Event>> Engine<'a, 's, S> {
    /// Publish one event stamped with the current time and round.
    pub(crate) fn publish(&mut self, event: EngineEvent) {
        let ctx = EventCtx {
            at: self.now,
            round: self.round,
        };
        self.bus.publish(&ctx, &event);
    }

    /// Run the simulation to completion (or graceful abort). The only
    /// error case is [`EngineError::CalendarExhausted`]: nothing running,
    /// nothing scheduled, stages incomplete — progress is impossible, so
    /// the run ends instead of panicking.
    pub(crate) fn run(&mut self) -> Result<(), EngineError> {
        self.prologue();
        self.main_loop()
    }

    /// Startup work before the first loop iteration: job submissions,
    /// the first heartbeat, the chaos script and the initial offer round.
    pub(crate) fn prologue(&mut self) {
        let cfg = self.input.config;
        // submit every stream job already arrived at t = 0; later
        // arrivals become calendar events (the multi-tenant case)
        for j in 0..self.state.jobs.len() {
            let arrival = self.state.jobs[j].arrival;
            if arrival <= self.now {
                self.submit_job(JobId(j));
            } else {
                self.source
                    .schedule(arrival, Event::JobSubmitted { job: JobId(j) });
            }
        }
        self.source
            .schedule(self.now + cfg.engine.heartbeat, Event::Heartbeat);
        // inject the chaos script (no-op for the empty default)
        for (i, spec) in cfg.faults.script.events().iter().enumerate() {
            self.source.schedule(spec.at, Event::Fault { index: i });
        }
        if cfg.speculation.enabled {
            self.source
                .schedule(self.now + cfg.speculation.interval, Event::SpeculationCheck);
        }
        // arm the capacity controller (absent without spot pools)
        if self.elastic.is_some() {
            self.source.schedule(
                self.now + SimDuration::from_secs_f64(cfg.elastic.check_secs),
                Event::ElasticCheck,
            );
        }
        // initial offer round at t = 0 — waiting for the first heartbeat
        // would idle the whole cluster for one period at startup
        if self.need_offers {
            self.need_offers = false;
            self.offer_round();
        }
    }

    /// The core event loop (see [`Engine::run`]).
    pub(crate) fn main_loop(&mut self) -> Result<(), EngineError> {
        let cfg = self.input.config;
        let mut events: u64 = 0;
        while !self.state.tracker.all_done(self.input.app) && !self.aborted {
            events += 1;
            assert!(
                events <= cfg.engine.max_events,
                "engine exceeded max_events = {} (deadlock or runaway?)",
                cfg.engine.max_events
            );

            self.recompute_rates();
            self.record_utilization();

            let next_completion = self.next_completion();
            let next_event = self.source.peek_time();
            let target = match (next_completion, next_event) {
                (Some((tc, _)), Some(te)) => tc.min(te),
                (Some((tc, _)), None) => tc,
                (None, Some(te)) => te,
                (None, None) => {
                    // no running attempts and no pending events while
                    // stages are incomplete: the calendar drained (e.g. a
                    // fault script crashed everything before arrival) —
                    // end the run gracefully with a typed error
                    return Err(EngineError::CalendarExhausted { at: self.now });
                }
            };

            self.advance_to(target);

            // complete all phases that just hit zero (deterministic order)
            let finished: Vec<AttemptId> = (0..self.state.attempts.len())
                .filter(|&i| {
                    self.state.attempts[i].alive
                        && self.state.attempts[i]
                            .current_phase()
                            .map(|p| p.work <= WORK_EPS)
                            .unwrap_or(false)
                })
                .collect();
            for id in finished {
                // completing an attempt may kill its race siblings; a
                // sibling that was due to finish at this very instant is
                // already dead and must be skipped
                if self.state.attempts[id].alive {
                    self.phase_complete(id);
                }
            }

            // drain calendar events scheduled at or before `now`
            while self
                .source
                .peek_time()
                .map(|t| t <= self.now)
                .unwrap_or(false)
            {
                let Some((_, ev)) = self.source.pop() else {
                    break;
                };
                self.handle_event(ev);
            }

            if self.need_offers {
                self.need_offers = false;
                self.offer_round();
            }
        }
        // flush final utilisation sample
        self.recompute_rates();
        self.record_utilization();
        Ok(())
    }

    // ---- time & physics -------------------------------------------------

    fn advance_to(&mut self, target: SimTime) {
        debug_assert!(target >= self.now);
        let dt = target.since(self.now);
        if !dt.is_zero() {
            let secs = dt.as_secs_f64();
            for a in self.state.attempts.iter_mut().filter(|a| a.alive) {
                if let Some(phase) = a.phases.front_mut() {
                    phase.work = (phase.work - a.rate * secs).max(0.0);
                    a.breakdown.add(phase.category, dt);
                }
            }
        }
        self.now = target;
        // events strictly before `now` must already have been handled;
        // finding one here would mean the driver skipped it — a logic
        // error worth failing loudly on
        if let Some(t) = self.source.peek_time() {
            assert!(t >= self.now, "unprocessed event at {t} < now {}", self.now);
        }
    }

    /// Recompute every alive attempt's current rate from node contention.
    fn recompute_rates(&mut self) {
        // per node: count users per phase class
        for (node_idx, node) in self.state.nodes.iter().enumerate() {
            let spec = self.input.cluster.node(NodeId(node_idx));
            let mut n_cpu = 0u32;
            let mut n_gpu = 0u32;
            let mut n_net = 0u32;
            let mut n_disk = 0u32;
            for &aid in &node.running {
                match self.state.attempts[aid].current_phase().map(|p| p.resource) {
                    Some(PhaseResource::Cpu) => n_cpu += 1,
                    Some(PhaseResource::Gpu) => n_gpu += 1,
                    Some(PhaseResource::Net) => n_net += 1,
                    Some(PhaseResource::DiskRead) | Some(PhaseResource::DiskWrite) => n_disk += 1,
                    Some(PhaseResource::Wait) | None => {}
                }
            }
            for &aid in &node.running {
                let rate = match self.state.attempts[aid].current_phase().map(|p| p.resource) {
                    Some(PhaseResource::Cpu) => {
                        spec.cpu_ghz * (spec.cores as f64 / n_cpu as f64).min(1.0)
                    }
                    Some(PhaseResource::Gpu) => {
                        spec.gpu_gcps * (spec.gpus as f64 / n_gpu as f64).min(1.0)
                    }
                    Some(PhaseResource::Net) => spec.net_bw / n_net as f64,
                    Some(PhaseResource::DiskRead) => spec.disk.read_bw / n_disk as f64,
                    Some(PhaseResource::DiskWrite) => spec.disk.write_bw / n_disk as f64,
                    Some(PhaseResource::Wait) => 1.0,
                    None => 0.0,
                };
                // scripted slowdowns stretch every phase on the node
                let rate = if node.slow_factor != 1.0 {
                    rate / node.slow_factor
                } else {
                    rate
                };
                debug_assert!(rate > 0.0 || self.state.attempts[aid].phases.is_empty());
                self.state.attempts[aid].rate = rate;
            }
        }
    }

    fn next_completion(&self) -> Option<(SimTime, AttemptId)> {
        let mut best: Option<(SimTime, AttemptId)> = None;
        for (id, a) in self.state.attempts.iter().enumerate() {
            if !a.alive {
                continue;
            }
            if let Some(p) = a.current_phase() {
                // round UP to the next microsecond: rounding down would
                // leave sub-µs work remainders that never complete
                let eta = if p.work <= WORK_EPS {
                    self.now
                } else {
                    let micros = (p.work / a.rate * 1e6).ceil() as u64;
                    self.now + SimDuration(micros.max(1))
                };
                if best.map(|(t, _)| eta < t).unwrap_or(true) {
                    best = Some((eta, id));
                }
            }
        }
        best
    }

    /// Node-level utilisation snapshot from current phase occupancy.
    pub(crate) fn node_metrics(&self, node_idx: usize) -> NodeMetrics {
        self.snapshot_ctx().node_metrics(node_idx)
    }

    /// Sample every node's metrics and feed the monitor *one batch* for
    /// the whole round — a heartbeat storm (many nodes reporting at the
    /// same instant) patches the monitor once, not once per node.
    pub(crate) fn record_utilization(&mut self) {
        let mut batch = std::mem::take(&mut self.hb_scratch);
        batch.clear();
        for i in 0..self.state.nodes.len() {
            let m = self.node_metrics(i);
            if m != self.state.nodes[i].last_metrics {
                self.state.nodes[i].last_metrics = m;
                batch.push(HeartbeatSnapshot {
                    node: NodeId(i),
                    at: self.now,
                    metrics: m,
                });
            }
        }
        self.monitor.ingest_batch(&batch);
        self.hb_scratch = batch;
    }

    // ---- calendar dispatch ----------------------------------------------

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::Heartbeat => self.on_heartbeat(),
            Event::SpeculationCheck => {
                self.speculation_check();
                if !self.state.tracker.all_done(self.input.app) && !self.aborted {
                    self.source.schedule(
                        self.now + self.input.config.speculation.interval,
                        Event::SpeculationCheck,
                    );
                }
            }
            Event::OomCheck { node, epoch } => self.oom_check(node, epoch),
            Event::ExecutorRestored { node } => {
                // nothing to restore explicitly; blocked_until gates offers
                let _ = node;
                self.need_offers = true;
            }
            Event::JobSubmitted { job } => self.submit_job(job),
            Event::Fault { index } => self.apply_fault(index),
            Event::SlowdownEnd { node, epoch } => {
                let n = &mut self.state.nodes[node.index()];
                if n.slow_epoch == epoch {
                    n.slow_factor = 1.0;
                }
            }
            Event::FlakyCheck { node, epoch } => self.flaky_check(node, epoch),
            Event::ElasticCheck => self.elastic_check(),
            Event::PreemptFire { node, epoch } => self.preempt_fire(node, epoch),
        }
    }
}
