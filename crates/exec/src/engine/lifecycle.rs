//! Task and job lifecycle: submission, stage release, attempt
//! completion, failure, race resolution and command application.
//!
//! Everything here mutates [`super::state::ClusterState`] and publishes
//! the corresponding [`EngineEvent`]s; no policy decisions are made —
//! the [`crate::scheduler::Scheduler`] issued the commands, this module
//! makes them physical (or drops them, like a lost RPC, when reality
//! disagrees).

use std::collections::VecDeque;

use rupam_cluster::NodeId;
use rupam_dag::app::{JobId, StageId, StageKind};
use rupam_dag::task::InputSource;
use rupam_dag::TaskRef;
use rupam_metrics::record::{AttemptOutcome, TaskRecord};
use rupam_metrics::trace::{AbortCause, LaunchReason};
use rupam_simcore::units::ByteSize;

use rupam_metrics::breakdown::TaskBreakdown;

use crate::costmodel::{build_phases, LaunchContext, Phase};
use crate::scheduler::{Command, KillReason};

use rupam_simcore::source::EventSource;

use super::driver::{Engine, Event};
use super::events::EngineEvent;
use super::state::{AttemptId, AttemptRt, TaskState};
use super::REDUCER_PREF_FRACTION;

impl<'a, 's, S: EventSource<Event>> Engine<'a, 's, S> {
    /// A stream job arrives: unlock its chain, tell the scheduler which
    /// stages it will eventually run, and release whatever is ready.
    pub(crate) fn submit_job(&mut self, job: JobId) {
        self.state.tracker.arrive(job.index());
        self.publish(EngineEvent::JobSubmitted {
            job,
            tenant: self.state.jobs[job.index()].tenant,
        });
        let stages: Vec<StageId> = self
            .state
            .stage_jobs
            .iter()
            .enumerate()
            .filter(|&(_, &j)| j == job)
            .map(|(i, _)| StageId(i))
            .collect();
        self.sched.on_job_submitted(job, &stages, self.now);
        self.release_ready_stages();
        self.need_offers = true;
    }

    pub(crate) fn release_ready_stages(&mut self) {
        let ready = self.state.tracker.take_ready(self.input.app);
        for sid in ready {
            // a stage re-blocked by lineage recompute can become ready a
            // second time; schedulers must see on_stage_ready only once
            if !self.state.stages[sid.index()].released {
                self.state.stages[sid.index()].released = true;
                self.sched
                    .on_stage_ready(self.input.app.stage(sid), self.now);
            }
            self.need_offers = true;
        }
    }

    pub(crate) fn phase_complete(&mut self, id: AttemptId) {
        let a = &mut self.state.attempts[id];
        debug_assert!(a.alive);
        a.phases.pop_front();
        if a.phases.is_empty() {
            self.finish_attempt(id);
        }
    }

    pub(crate) fn finish_attempt(&mut self, id: AttemptId) {
        let (task, node_id, attempt_no) = {
            let a = &self.state.attempts[id];
            (a.task, a.node, a.attempt_no)
        };
        self.state.detach_attempt(id);
        self.state
            .observed_peak
            .insert((task.stage, task.index), self.state.attempts[id].peak_mem);

        let stage = self.input.app.stage(task.stage);
        let template = &stage.tasks[task.index];

        // has the task already been completed by another copy?
        let already_done = matches!(
            self.state.stages[task.stage.index()].tasks[task.index],
            TaskState::Done
        );
        let outcome = if already_done {
            AttemptOutcome::LostRace
        } else {
            AttemptOutcome::Success
        };
        let record = self.make_record(id, outcome);
        if !already_done {
            let stage_rt = &mut self.state.stages[task.stage.index()];
            // register map outputs for reducers
            if stage.kind == StageKind::ShuffleMap {
                let bytes = template.demand.shuffle_write.as_f64();
                stage_rt.map_out_per_node[node_id.index()] += bytes;
                stage_rt.map_out_total += bytes;
            }
            stage_rt.winners[task.index] = Some((node_id, attempt_no));
            stage_rt.finished_secs.push(record.duration().as_secs_f64());
            // cache the produced partition
            self.cache_produced_partition(task, node_id);
            // kill losing copies
            let losers: Vec<AttemptId> =
                match &self.state.stages[task.stage.index()].tasks[task.index] {
                    TaskState::Running { attempts } => {
                        attempts.iter().copied().filter(|&o| o != id).collect()
                    }
                    _ => Vec::new(),
                };
            if self.state.attempts[id].speculative {
                self.speculative_wins += 1;
            }
            for loser in losers {
                self.abort_attempt(loser, AttemptOutcome::LostRace);
            }
            self.state.stages[task.stage.index()].tasks[task.index] = TaskState::Done;
            self.state.spec_set.remove(&task);
            // a fault-killed (or lineage re-pended) task re-ran to
            // completion: the recovery is resolved
            if let Some(killed_at) = self.state.kill_pending.remove(&task) {
                let waited = self.now.since(killed_at);
                self.publish(EngineEvent::RecoveryResolved { task, waited });
            }
            self.sched.on_task_finished(&record, self.now);
            self.records.push(record);
            // stage/job bookkeeping
            let newly_ready = self.state.tracker.task_finished(self.input.app, task.stage);
            for sid in newly_ready {
                // skip stages re-completing after a lineage recompute —
                // schedulers must see on_stage_ready exactly once
                if !self.state.stages[sid.index()].released {
                    self.state.stages[sid.index()].released = true;
                    self.sched
                        .on_stage_ready(self.input.app.stage(sid), self.now);
                }
            }
            // stream-job completion (chain index == stream job index)
            let job = self.state.stage_jobs[task.stage.index()];
            if self.state.jobs[job.index()].completed_at.is_none()
                && self.state.tracker.chain_done(job.index())
            {
                self.state.jobs[job.index()].completed_at = Some(self.now);
                self.publish(EngineEvent::JobCompleted {
                    job,
                    tenant: self.state.jobs[job.index()].tenant,
                });
            }
        } else {
            self.records.push(record);
        }
        self.need_offers = true;
    }

    pub(crate) fn make_record(&self, id: AttemptId, outcome: AttemptOutcome) -> TaskRecord {
        let a = &self.state.attempts[id];
        TaskRecord {
            task: a.task,
            job: self.state.stage_jobs[a.task.stage.index()],
            template_key: a.template_key,
            attempt: a.attempt_no,
            node: a.node,
            speculative: a.speculative,
            locality: a.locality,
            launched_at: a.launched_at,
            finished_at: self.now,
            outcome,
            breakdown: a.breakdown,
            peak_mem: a.peak_mem,
            used_gpu: a.used_gpu,
        }
    }

    /// Abort a running attempt whose sibling won the race.
    pub(crate) fn abort_attempt(&mut self, id: AttemptId, outcome: AttemptOutcome) {
        debug_assert!(matches!(outcome, AttemptOutcome::LostRace));
        self.state.detach_attempt(id);
        let record = self.make_record(id, outcome);
        self.records.push(record);
        self.need_offers = true;
    }

    /// Fail a running attempt; its task goes back to pending (or the app
    /// aborts once retries are exhausted).
    pub(crate) fn fail_attempt(&mut self, id: AttemptId, outcome: AttemptOutcome) {
        let task = self.state.attempts[id].task;
        let node = self.state.attempts[id].node;
        let attempt_no = self.state.attempts[id].attempt_no;
        self.state.detach_attempt(id);
        self.state
            .observed_peak
            .insert((task.stage, task.index), self.state.attempts[id].peak_mem);
        let record = self.make_record(id, outcome);
        self.records.push(record);

        let mut retries_exhausted = false;
        let state = &mut self.state.stages[task.stage.index()].tasks[task.index];
        if let TaskState::Running { attempts } = state {
            attempts.retain(|&x| x != id);
            if attempts.is_empty() {
                let next = attempt_no + 1;
                if next > self.input.config.mem.max_retries {
                    self.aborted = true;
                    retries_exhausted = true;
                }
                *state = TaskState::Pending { attempt_no: next };
            }
        }
        if retries_exhausted {
            self.publish(EngineEvent::Aborted {
                cause: AbortCause::RetriesExhausted,
                task: Some(task),
            });
        }
        self.sched.on_task_failed(task, node, outcome, self.now);
        self.need_offers = true;
    }

    pub(crate) fn apply_command(&mut self, cmd: Command) {
        match cmd {
            Command::Launch {
                task,
                node,
                use_gpu,
                speculative,
                reason,
            } => {
                self.try_launch(task, node, use_gpu, speculative, reason);
            }
            Command::KillAndRequeue { task, node, reason } => {
                let outcome = match reason {
                    KillReason::MemoryStraggler => AttemptOutcome::MemoryStragglerKilled,
                    KillReason::QuotaPreempt => AttemptOutcome::QuotaPreempted,
                };
                let state = &self.state.stages[task.stage.index()].tasks[task.index];
                if let TaskState::Running { attempts } = state {
                    let on_node: Vec<AttemptId> = attempts
                        .iter()
                        .copied()
                        .filter(|&id| self.state.attempts[id].node == node)
                        .collect();
                    if !on_node.is_empty() {
                        self.publish(EngineEvent::KillRequeue { task, node });
                    }
                    for id in on_node {
                        self.fail_attempt(id, outcome);
                    }
                }
            }
        }
    }

    pub(crate) fn try_launch(
        &mut self,
        task: TaskRef,
        node_id: NodeId,
        use_gpu: bool,
        speculative: bool,
        reason: LaunchReason,
    ) {
        if node_id.index() >= self.state.nodes.len() {
            return;
        }
        if self.state.nodes[node_id.index()].blocked_until > self.now {
            return;
        }
        // launches aimed at a crashed node — or one the driver has
        // declared dead — are dropped on the floor like a lost RPC;
        // same for nodes outside the elastic fleet or draining towards
        // a preemption deadline
        if self.state.nodes[node_id.index()].crashed
            || !self.state.nodes[node_id.index()].provisioned
            || self.state.nodes[node_id.index()].drain_deadline.is_some()
            || self.detector.as_ref().is_some_and(|d| d.is_dead(node_id))
        {
            return;
        }
        if !self.state.stages[task.stage.index()].released {
            return;
        }
        let attempt_no = match &self.state.stages[task.stage.index()].tasks[task.index] {
            TaskState::Pending { attempt_no } if !speculative => *attempt_no,
            TaskState::Running { attempts } if speculative => {
                // one extra copy max, never a copy of a copy
                if attempts.len() != 1 || self.state.attempts[attempts[0]].speculative {
                    return;
                }
                self.state.attempts[attempts[0]].attempt_no + 1
            }
            _ => return,
        };

        let stage = self.input.app.stage(task.stage);
        let template = &stage.tasks[task.index];
        let demand = &template.demand;
        let spec = self.input.cluster.node(node_id);
        let cache_key = match &template.input {
            InputSource::CachedOrHdfs { key, .. } => {
                Some(self.scoped_cache_key(task.stage, &key.rdd, key.partition))
            }
            _ => None,
        };
        let node = &mut self.state.nodes[node_id.index()];

        // resolve input placement & locality (live)
        let mut local_input = ByteSize::ZERO;
        let mut remote_input = ByteSize::ZERO;
        let mut cached_input = false;
        let mut locality = rupam_dag::Locality::Any;
        match &template.input {
            InputSource::Hdfs(block) => {
                if self.input.layout.is_replica(*block, node_id) {
                    local_input = demand.input_bytes;
                    locality = rupam_dag::Locality::NodeLocal;
                } else {
                    remote_input = demand.input_bytes;
                    locality = self
                        .input
                        .layout
                        .hdfs_locality(self.input.cluster, *block, node_id);
                }
            }
            InputSource::CachedOrHdfs { key: _, fallback } => {
                let scoped = cache_key.as_ref().expect("computed above");
                if node.cache.touch(scoped).is_some() {
                    cached_input = true;
                    locality = rupam_dag::Locality::ProcessLocal;
                } else if self.input.layout.is_replica(*fallback, node_id) {
                    local_input = demand.input_bytes;
                    locality = rupam_dag::Locality::NodeLocal;
                } else {
                    remote_input = demand.input_bytes;
                    locality =
                        self.input
                            .layout
                            .hdfs_locality(self.input.cluster, *fallback, node_id);
                }
            }
            // Shuffle locality is refined below from map outputs;
            // generated inputs have no locality at all.
            InputSource::Shuffle | InputSource::Generated => {}
        }

        // shuffle split from parent map outputs
        let mut shuffle_local = ByteSize::ZERO;
        let mut shuffle_remote = ByteSize::ZERO;
        if demand.shuffle_read > ByteSize::ZERO {
            let parents = &self.input.app.stage(task.stage).parents;
            let mut on_node = 0.0f64;
            let mut total = 0.0f64;
            for p in parents {
                let prt = &self.state.stages[p.index()];
                on_node += prt.map_out_per_node[node_id.index()];
                total += prt.map_out_total;
            }
            let frac = if total > 0.0 {
                (on_node / total).clamp(0.0, 1.0)
            } else {
                0.0
            };
            shuffle_local = demand.shuffle_read.scale(frac);
            shuffle_remote = demand.shuffle_read.saturating_sub(shuffle_local);
            if matches!(template.input, InputSource::Shuffle) && frac >= REDUCER_PREF_FRACTION {
                locality = rupam_dag::Locality::NodeLocal;
            }
        }

        // GPU-capable task libraries (the paper's NVBLAS example) grab a
        // GPU opportunistically wherever they run — scheduling `use_gpu`
        // only forces sharing when the GPUs are already busy.
        let gpus_busy = node
            .running
            .iter()
            .filter(|&&aid| self.state.attempts[aid].used_gpu)
            .count() as u32;
        let use_gpu =
            spec.gpus > 0 && demand.is_gpu_capable() && (use_gpu || gpus_busy < spec.gpus);
        node.mem_in_use += demand.peak_mem;
        let pressure = node.mem_in_use.as_f64() / node.executor_mem.as_f64().max(1.0);
        let ctx = LaunchContext {
            local_input,
            remote_input,
            cached_input,
            shuffle_local,
            shuffle_remote,
            use_gpu,
            pressure,
            heap: node.executor_mem,
            decision_cost: self.sched.decision_cost(),
        };
        let phases: VecDeque<Phase> = build_phases(demand, &ctx, &self.input.config.cost).into();

        let id = self.state.attempts.len();
        self.state.attempts.push(AttemptRt {
            task,
            template_key: stage.template_key,
            attempt_no,
            speculative,
            node: node_id,
            locality,
            phases,
            launched_at: self.now,
            breakdown: TaskBreakdown::new(),
            peak_mem: demand.peak_mem,
            used_gpu: use_gpu,
            alive: true,
            rate: 0.0,
        });
        self.state.nodes[node_id.index()].running.push(id);
        let state = &mut self.state.stages[task.stage.index()].tasks[task.index];
        match state {
            TaskState::Pending { .. } => *state = TaskState::Running { attempts: vec![id] },
            TaskState::Running { attempts } => attempts.push(id),
            TaskState::Done => unreachable!("validated above"),
        }
        if speculative {
            self.speculative_launched += 1;
            self.state.spec_set.remove(&task);
        }
        let launch_job = self.state.stage_jobs[task.stage.index()];
        self.publish(EngineEvent::Launch {
            task,
            job: launch_job,
            tenant: self.state.jobs[launch_job.index()].tenant,
            node: node_id,
            attempt: attempt_no,
            speculative,
            use_gpu,
            locality,
            reason,
        });
        self.schedule_oom_check_if_needed(node_id);
    }

    /// The executor JVM on `node_id` died (catastrophic OOM): fail its
    /// attempts, wipe it, and block it for the JVM restart time.
    pub(crate) fn executor_lost(&mut self, node_id: NodeId) {
        self.executor_losses += 1;
        let victims: Vec<AttemptId> = self.state.nodes[node_id.index()].running.clone();
        if self.bus.traced() {
            let pressure_pct = {
                let n = &self.state.nodes[node_id.index()];
                (n.mem_in_use.as_f64() / n.executor_mem.as_f64().max(1.0) * 100.0) as u32
            };
            self.publish(EngineEvent::ExecutorLost {
                node: node_id,
                victims: victims.len(),
                pressure_pct,
            });
        }
        for id in victims {
            self.fail_attempt(id, AttemptOutcome::ExecutorLost);
        }
        let cfg = self.input.config;
        let node = &mut self.state.nodes[node_id.index()];
        node.cache.clear();
        node.mem_in_use = ByteSize::ZERO;
        node.blocked_until = self.now + cfg.mem.jvm_restart;
        node.oom_epoch += 1;
        node.oom_scheduled = false;
        self.source.schedule(
            node.blocked_until,
            Event::ExecutorRestored { node: node_id },
        );
    }
}
