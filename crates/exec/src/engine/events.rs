//! The typed engine event bus.
//!
//! Every observable thing the engine does is published as an
//! [`EngineEvent`] on the [`EventBus`]; subsystems that *observe* rather
//! than *simulate* — trace emission, fault statistics, invariant
//! auditing, and any caller-supplied [`Subscriber`] — react to the bus
//! instead of being called inline from the core loop. The bus is
//! strictly synchronous and deterministic: subscribers are dispatched in
//! a canonical order (by [`BusStage`], then name) that is independent of
//! registration order, so two runs that publish the same events always
//! produce the same observations, byte for byte.
//!
//! Subscribers never mutate simulation state — the engine publishes
//! facts, not requests — which is what makes the bus safe to extend
//! without perturbing decision traces.

use rupam_cluster::NodeId;
use rupam_dag::app::{JobId, StageId};
use rupam_dag::{Locality, TaskRef, TenantId};
use rupam_faults::FaultKind;
use rupam_metrics::report::FaultSummary;
use rupam_metrics::trace::{AbortCause, LaunchReason, TraceBuffer, TraceEventKind};
use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;

use crate::audit::Violation;
use crate::scheduler::{Command, OfferInput};

/// The canonical detail string for a permanently lost task, shared by
/// the trace emitter and the audit relay so both record byte-identical
/// diagnostics for the same [`EngineEvent::LostTask`].
pub fn lost_task_detail(task: TaskRef, killed_at: SimTime) -> String {
    format!("task {task:?} killed at {killed_at} never re-ran to completion")
}

/// When the engine publishes an event: simulation time and offer round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventCtx {
    /// Simulation time of the event.
    pub at: SimTime,
    /// Offer-round counter at the event (0 = before the first round).
    pub round: u64,
}

/// A semantic engine event. Most variants map 1:1 onto a
/// [`TraceEventKind`] (see [`EngineEvent::trace_kind`]); the remainder
/// ([`TaskKilled`], [`RecoveryResolved`]) carry fault-accounting facts
/// that the pre-bus engine counted inline and are not traced.
///
/// [`TaskKilled`]: EngineEvent::TaskKilled
/// [`RecoveryResolved`]: EngineEvent::RecoveryResolved
#[derive(Clone, Debug, PartialEq)]
pub enum EngineEvent {
    /// An executor was sized at application start.
    ExecutorSized {
        /// Node the executor runs on.
        node: NodeId,
        /// Heap the scheduler requested (after the node-capacity clamp).
        mem: ByteSize,
    },
    /// An offer round ran. Only published when the bus has a trace sink
    /// (the summary counts cost a cluster scan to compute).
    OfferRound {
        /// Pending (schedulable) tasks in the snapshot.
        pending: usize,
        /// Running attempts across the cluster.
        running: usize,
        /// Nodes blocked by a JVM restart.
        blocked: usize,
        /// Commands the scheduler returned.
        commands: usize,
    },
    /// A stream job was submitted to the shared cluster.
    JobSubmitted {
        /// The arriving stream job.
        job: JobId,
        /// Tenant submitting it (`TenantId(0)` on single-app runs).
        tenant: TenantId,
    },
    /// A stream job ran all of its stages to completion.
    JobCompleted {
        /// The finished stream job.
        job: JobId,
        /// Tenant the job ran for.
        tenant: TenantId,
    },
    /// A launch command was applied.
    Launch {
        /// The task launched.
        task: TaskRef,
        /// Stream job of the task (`JobId(0)` on single-app runs).
        job: JobId,
        /// Tenant the launch serves (`TenantId(0)` on single-app runs).
        tenant: TenantId,
        /// Target node.
        node: NodeId,
        /// Attempt number (0 = first try).
        attempt: u32,
        /// Whether this is a speculative copy.
        speculative: bool,
        /// Whether the attempt runs its kernels on a GPU.
        use_gpu: bool,
        /// Locality level resolved against live state at launch.
        locality: Locality,
        /// Why the scheduler placed it here.
        reason: LaunchReason,
    },
    /// A memory-straggler kill-and-requeue was applied.
    KillRequeue {
        /// The task killed.
        task: TaskRef,
        /// Node it was killed on.
        node: NodeId,
    },
    /// A task-level OOM killed one attempt.
    OomTaskKill {
        /// The victim.
        task: TaskRef,
        /// Node it died on.
        node: NodeId,
        /// Heap pressure (`mem_in_use / executor_mem`) in percent.
        pressure_pct: u32,
    },
    /// The whole executor JVM died; every running attempt failed. Only
    /// published when the bus has a trace sink (pressure is derived).
    ExecutorLost {
        /// Node whose executor died.
        node: NodeId,
        /// Attempts that died with it.
        victims: usize,
        /// Heap pressure in percent at the kill.
        pressure_pct: u32,
    },
    /// The engine flagged a running task as speculatable.
    SpeculationFlagged {
        /// The straggling task.
        task: TaskRef,
    },
    /// The run aborted.
    Aborted {
        /// Why.
        cause: AbortCause,
        /// The task that exhausted retries, if that was the cause.
        task: Option<TaskRef>,
    },
    /// The invariant auditor flagged a violation during an offer round.
    AuditViolation {
        /// Which invariant (stable code).
        check: &'static str,
        /// Human-readable specifics.
        detail: String,
    },
    /// A scripted fault was injected on a node (chaos calendar).
    FaultInjected {
        /// Target node.
        node: NodeId,
        /// What the fault does; trace sinks record its stable code.
        kind: FaultKind,
    },
    /// The failure detector declared a node suspect (heartbeats late).
    NodeSuspect {
        /// The suspected node.
        node: NodeId,
        /// Heartbeat age at the declaration.
        age: SimDuration,
    },
    /// The failure detector declared a node dead.
    NodeDead {
        /// The declared-dead node.
        node: NodeId,
        /// Heartbeat age at the declaration.
        age: SimDuration,
    },
    /// A previously suspect/dead node resumed heartbeating (or was
    /// restarted) and was re-admitted to the rankings.
    NodeRecovered {
        /// The re-admitted node.
        node: NodeId,
    },
    /// Lineage-driven recompute: finished shuffle-map tasks whose
    /// outputs lived on a dead node were re-pended.
    LineageRecompute {
        /// The shuffle-map stage whose outputs were lost.
        stage: StageId,
        /// The dead node that held them.
        node: NodeId,
        /// How many tasks were re-pended.
        tasks: usize,
    },
    /// The capacity controller provisioned a node into the active fleet
    /// (spot scale-up). The node accepts work after the provisioning
    /// latency.
    NodeProvisioned {
        /// The provisioned node.
        node: NodeId,
    },
    /// The capacity controller returned an idle node (spot scale-down)
    /// — or a preemption reclaimed it.
    NodeDecommissioned {
        /// The decommissioned node.
        node: NodeId,
    },
    /// A preemption notice fired on a node: it drains for `notice` and
    /// is then reclaimed through the node-loss path.
    PreemptionNotice {
        /// The node being reclaimed.
        node: NodeId,
        /// Drain window between notice and reclaim.
        notice: SimDuration,
    },
    /// A running attempt was killed by a node fault (crash or dead
    /// declaration). Untraced; counted by fault statistics.
    TaskKilled {
        /// The killed task.
        task: TaskRef,
        /// The faulted node it was running on.
        node: NodeId,
    },
    /// A fault-killed (or lineage re-pended) task re-ran to completion.
    /// Untraced; counted by fault statistics.
    RecoveryResolved {
        /// The recovered task.
        task: TaskRef,
        /// Kill-to-refinish latency.
        waited: SimDuration,
    },
    /// End-of-run sweep: a fault-killed task never re-ran to completion.
    /// Trace sinks and the audit relay both derive their record from
    /// [`lost_task_detail`].
    LostTask {
        /// The permanently lost task.
        task: TaskRef,
        /// When the fault killed it.
        killed_at: SimTime,
    },
}

impl EngineEvent {
    /// The canonical projection of an engine event onto the trace
    /// schema; `None` for events that are deliberately untraced. This is
    /// the *single* mapping used by every trace sink — tests mirror it
    /// to prove a shadow subscriber reconstructs the official digest.
    pub fn trace_kind(&self) -> Option<TraceEventKind> {
        Some(match self {
            EngineEvent::ExecutorSized { node, mem } => TraceEventKind::ExecutorSized {
                node: *node,
                mem: *mem,
            },
            EngineEvent::OfferRound {
                pending,
                running,
                blocked,
                commands,
            } => TraceEventKind::OfferRound {
                pending: *pending,
                running: *running,
                blocked: *blocked,
                commands: *commands,
            },
            EngineEvent::JobSubmitted { job, tenant } => TraceEventKind::JobSubmitted {
                job: *job,
                tenant: *tenant,
            },
            EngineEvent::JobCompleted { job, tenant } => TraceEventKind::JobCompleted {
                job: *job,
                tenant: *tenant,
            },
            EngineEvent::Launch {
                task,
                job,
                tenant,
                node,
                attempt,
                speculative,
                use_gpu,
                locality,
                reason,
            } => TraceEventKind::Launch {
                task: *task,
                job: *job,
                tenant: *tenant,
                node: *node,
                attempt: *attempt,
                speculative: *speculative,
                use_gpu: *use_gpu,
                locality: *locality,
                reason: *reason,
            },
            EngineEvent::KillRequeue { task, node } => TraceEventKind::KillRequeue {
                task: *task,
                node: *node,
            },
            EngineEvent::OomTaskKill {
                task,
                node,
                pressure_pct,
            } => TraceEventKind::OomTaskKill {
                task: *task,
                node: *node,
                pressure_pct: *pressure_pct,
            },
            EngineEvent::ExecutorLost {
                node,
                victims,
                pressure_pct,
            } => TraceEventKind::ExecutorLost {
                node: *node,
                victims: *victims,
                pressure_pct: *pressure_pct,
            },
            EngineEvent::SpeculationFlagged { task } => {
                TraceEventKind::SpeculationFlagged { task: *task }
            }
            EngineEvent::Aborted { cause, task } => TraceEventKind::Aborted {
                cause: *cause,
                task: *task,
            },
            EngineEvent::AuditViolation { check, detail } => TraceEventKind::AuditViolation {
                check,
                detail: detail.clone(),
            },
            EngineEvent::FaultInjected { node, kind } => TraceEventKind::FaultInjected {
                node: *node,
                fault: kind.code(),
            },
            EngineEvent::NodeSuspect { node, age } => TraceEventKind::NodeSuspect {
                node: *node,
                age: *age,
            },
            EngineEvent::NodeDead { node, age } => TraceEventKind::NodeDead {
                node: *node,
                age: *age,
            },
            EngineEvent::NodeRecovered { node } => TraceEventKind::NodeRecovered { node: *node },
            EngineEvent::LineageRecompute { stage, node, tasks } => {
                TraceEventKind::LineageRecompute {
                    stage: *stage,
                    node: *node,
                    tasks: *tasks,
                }
            }
            EngineEvent::NodeProvisioned { node } => {
                TraceEventKind::NodeProvisioned { node: *node }
            }
            EngineEvent::NodeDecommissioned { node } => {
                TraceEventKind::NodeDecommissioned { node: *node }
            }
            EngineEvent::PreemptionNotice { node, notice } => TraceEventKind::PreemptionNotice {
                node: *node,
                notice: *notice,
            },
            EngineEvent::LostTask { task, killed_at } => TraceEventKind::AuditViolation {
                check: "lost-task",
                detail: lost_task_detail(*task, *killed_at),
            },
            EngineEvent::TaskKilled { .. } | EngineEvent::RecoveryResolved { .. } => return None,
        })
    }
}

/// Which dispatch stage a subscriber runs in. Within one published
/// event, every `Statistics` subscriber runs before every `Audit`
/// subscriber, which runs before every `Emit` subscriber; within a
/// stage, subscribers run in lexicographic name order. Registration
/// order is deliberately irrelevant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum BusStage {
    /// Pure accumulation (counters, summaries); no externally visible
    /// output of its own.
    Statistics,
    /// Invariant auditing; may surface violations the engine re-publishes.
    Audit,
    /// Trace/metrics emission — the externally visible record.
    Emit,
}

/// An observer attached to the [`EventBus`]. Implementations must be
/// deterministic pure functions of the event stream: no wall-clock, no
/// host randomness, no simulation-state mutation.
pub trait Subscriber {
    /// Stable name; with [`Subscriber::stage`] it defines the canonical
    /// dispatch order, so two subscribers on one bus should not share a
    /// (stage, name) pair.
    fn name(&self) -> &'static str;

    /// Which dispatch stage this subscriber runs in.
    fn stage(&self) -> BusStage;

    /// Called once per published event, in canonical order.
    fn on_event(&mut self, ctx: &EventCtx, event: &EngineEvent);

    /// True when this subscriber retains/digests the full decision
    /// trace. Enables publication of derived-payload events
    /// ([`EngineEvent::OfferRound`], [`EngineEvent::ExecutorLost`]) the
    /// engine otherwise skips computing.
    fn is_trace_sink(&self) -> bool {
        false
    }

    /// True when this subscriber audits offer rounds; enables the
    /// (expensive) per-round [`Subscriber::on_offer_audit`] hook.
    fn is_audit_sink(&self) -> bool {
        false
    }

    /// Offer-round audit hook: the exact snapshot the scheduler saw, the
    /// commands it returned and its self-reported findings. Violations
    /// returned here are re-published by the engine as
    /// [`EngineEvent::AuditViolation`] — implementations must not also
    /// record them from `on_event`, or they would double-count.
    fn on_offer_audit(
        &mut self,
        round: u64,
        input: &OfferInput<'_>,
        commands: &[Command],
        findings: &[String],
    ) -> Vec<Violation> {
        let _ = (round, input, commands, findings);
        Vec::new()
    }

    /// Yield the decision trace, if this subscriber accumulated one.
    fn take_trace(&mut self) -> Option<TraceBuffer> {
        None
    }

    /// Yield accumulated invariant violations, if any.
    fn take_violations(&mut self) -> Vec<Violation> {
        Vec::new()
    }

    /// Yield the accumulated fault summary, if this subscriber built one.
    fn take_faults(&mut self) -> Option<FaultSummary> {
        None
    }
}

/// The deterministically-ordered, synchronous event bus.
pub struct EventBus {
    /// Kept sorted by `(stage, name)`; ties preserve registration order.
    subscribers: Vec<Box<dyn Subscriber>>,
    traced: bool,
    audited: bool,
    published: u64,
}

impl Default for EventBus {
    fn default() -> Self {
        EventBus::new()
    }
}

impl EventBus {
    /// An empty bus.
    pub fn new() -> Self {
        EventBus {
            subscribers: Vec::new(),
            traced: false,
            audited: false,
            published: 0,
        }
    }

    /// Attach a subscriber. Insertion keeps the canonical `(stage,
    /// name)` order, so the observable dispatch sequence is independent
    /// of the order subscribers were registered in.
    pub fn register(&mut self, sub: Box<dyn Subscriber>) {
        self.traced |= sub.is_trace_sink();
        self.audited |= sub.is_audit_sink();
        let key = (sub.stage(), sub.name());
        let pos = self
            .subscribers
            .iter()
            .position(|s| (s.stage(), s.name()) > key)
            .unwrap_or(self.subscribers.len());
        self.subscribers.insert(pos, sub);
    }

    /// Does any subscriber want the full trace (and its derived-payload
    /// events)?
    pub fn traced(&self) -> bool {
        self.traced
    }

    /// Does any subscriber audit offer rounds?
    pub fn audited(&self) -> bool {
        self.audited
    }

    /// Total events published so far.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Dispatch one event to every subscriber, in canonical order.
    pub fn publish(&mut self, ctx: &EventCtx, event: &EngineEvent) {
        self.published += 1;
        for sub in &mut self.subscribers {
            sub.on_event(ctx, event);
        }
    }

    /// Run every audit sink's offer-round hook, concatenating their
    /// fresh violations in canonical subscriber order.
    pub fn offer_audit(
        &mut self,
        round: u64,
        input: &OfferInput<'_>,
        commands: &[Command],
        findings: &[String],
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        for sub in &mut self.subscribers {
            if sub.is_audit_sink() {
                out.extend(sub.on_offer_audit(round, input, commands, findings));
            }
        }
        out
    }

    /// Extract the decision trace from the first subscriber that holds
    /// one (canonical order).
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.subscribers.iter_mut().find_map(|s| s.take_trace())
    }

    /// Extract accumulated violations from every subscriber.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        let mut out = Vec::new();
        for sub in &mut self.subscribers {
            out.extend(sub.take_violations());
        }
        out
    }

    /// Extract the fault summary from the first subscriber that built
    /// one.
    pub fn take_faults(&mut self) -> Option<FaultSummary> {
        self.subscribers.iter_mut().find_map(|s| s.take_faults())
    }

    /// Subscriber names in canonical dispatch order (for tests).
    pub fn subscriber_names(&self) -> Vec<&'static str> {
        self.subscribers.iter().map(|s| s.name()).collect()
    }
}
