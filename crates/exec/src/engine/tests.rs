//! Engine behavior tests, driven through the shared fixtures in
//! [`crate::testutil`].

use rupam_cluster::{ClusterSpec, NodeId};
use rupam_dag::app::{AppBuilder, JobId, StageId, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::task::{CacheKey, InputSource, TaskDemand};
use rupam_dag::{Locality, TaskRef};
use rupam_metrics::record::TaskRecord;
use rupam_metrics::report::RunReport;
use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;
use rupam_simcore::RngFactory;

use crate::config::SimConfig;
use crate::scheduler::{Command, OfferInput, Scheduler};
use crate::testutil::{FifoScheduler, GpuFifo, SpecFifo};

use super::{assemble, simulate, simulate_stream, EngineError, EventBus, SimInput, StreamInput};

fn tiny_app(tasks_per_stage: usize, compute: f64) -> (rupam_dag::app::Application, DataLayout) {
    let mut b = AppBuilder::new("tiny");
    let j = b.begin_job();
    let mk = |n: usize, c: f64, sw: u64, sr: u64| {
        (0..n)
            .map(|i| rupam_dag::task::TaskTemplate {
                index: i,
                input: if sr > 0 {
                    InputSource::Shuffle
                } else {
                    InputSource::Generated
                },
                demand: TaskDemand {
                    compute: c,
                    shuffle_write: ByteSize::mib(sw),
                    shuffle_read: ByteSize::mib(sr),
                    peak_mem: ByteSize::mib(512),
                    ..TaskDemand::default()
                },
            })
            .collect::<Vec<_>>()
    };
    let m = b.add_stage(
        j,
        "map",
        "tiny/map",
        StageKind::ShuffleMap,
        vec![],
        mk(tasks_per_stage, compute, 16, 0),
    );
    b.add_stage(
        j,
        "reduce",
        "tiny/reduce",
        StageKind::Result,
        vec![m],
        mk(2, compute / 2.0, 0, 16),
    );
    (b.build(), DataLayout::new())
}

fn run_tiny(seed: u64) -> RunReport {
    let cluster = ClusterSpec::two_node_motivation();
    let (app, layout) = tiny_app(8, 4.0);
    let cfg = SimConfig::default();
    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &cfg,
        seed,
    };
    let mut sched = FifoScheduler::new();
    simulate(&input, &mut sched)
}

#[test]
fn completes_all_tasks() {
    let report = run_tiny(1);
    assert!(report.completed);
    let successes = report
        .records
        .iter()
        .filter(|r| r.outcome.is_success())
        .count();
    assert_eq!(successes, 10);
    assert!(report.makespan > SimDuration::ZERO);
}

#[test]
fn deterministic_across_runs() {
    let a = run_tiny(42);
    let b = run_tiny(42);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(x.task, y.task);
        assert_eq!(x.node, y.node);
        assert_eq!(x.finished_at, y.finished_at);
    }
}

#[test]
fn respects_ideal_lower_bound() {
    let cluster = ClusterSpec::two_node_motivation();
    let (app, layout) = tiny_app(8, 4.0);
    let lb = rupam_dag::lineage::ideal_lower_bound(&app, &cluster);
    let report = run_tiny(7);
    assert!(
        report.makespan >= lb,
        "makespan {} beats the ideal lower bound {}",
        report.makespan,
        lb
    );
    let _ = layout;
}

#[test]
fn reduce_waits_for_map() {
    let report = run_tiny(3);
    let map_finish = report
        .records
        .iter()
        .filter(|r| r.template_key == "tiny/map" && r.outcome.is_success())
        .map(|r| r.finished_at)
        .max()
        .unwrap();
    let reduce_start = report
        .records
        .iter()
        .filter(|r| r.template_key == "tiny/reduce")
        .map(|r| r.launched_at)
        .min()
        .unwrap();
    assert!(reduce_start >= map_finish, "shuffle dependency violated");
}

#[test]
fn contention_slows_execution() {
    // 1 task vs 32 tasks on a 16-core node: per-task time must grow
    let cluster = ClusterSpec::two_node_motivation();
    let cfg = SimConfig::default();
    let run = |n: usize| {
        let mut b = AppBuilder::new("contend");
        let j = b.begin_job();
        let tasks = (0..n)
            .map(|i| rupam_dag::task::TaskTemplate {
                index: i,
                input: InputSource::Generated,
                demand: TaskDemand {
                    compute: 24.0,
                    peak_mem: ByteSize::mib(64),
                    ..TaskDemand::default()
                },
            })
            .collect();
        b.add_stage(j, "r", "c/r", StageKind::Result, vec![], tasks);
        let app = b.build();
        let layout = DataLayout::new();
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed: 5,
        };
        let mut sched = FifoScheduler::new();
        simulate(&input, &mut sched).makespan
    };
    let t1 = run(1);
    let t64 = run(64);
    // 64 tasks over 32 cores (two nodes) => at least 2 waves
    assert!(t64 > t1 * 1.8, "t1={t1} t64={t64}");
}

#[test]
fn oom_fires_on_overcommit() {
    // one node, tasks that together exceed executor memory
    let cluster = ClusterSpec::homogeneous(1);
    let mut cfg = SimConfig::default();
    cfg.mem.oom_prob_slope = 100.0; // make the OOM certain
    let mut b = AppBuilder::new("oom");
    let j = b.begin_job();
    let tasks = (0..8)
        .map(|i| rupam_dag::task::TaskTemplate {
            index: i,
            input: InputSource::Generated,
            demand: TaskDemand {
                compute: 120.0,
                peak_mem: ByteSize::gib(7), // 8 × 7 = 56 > 46 GiB executor
                ..TaskDemand::default()
            },
        })
        .collect();
    b.add_stage(j, "r", "oom/r", StageKind::Result, vec![], tasks);
    let app = b.build();
    let layout = DataLayout::new();
    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &cfg,
        seed: 11,
    };
    let mut sched = FifoScheduler::new();
    let report = simulate(&input, &mut sched);
    assert!(
        report.oom_failures > 0 || report.executor_losses > 0,
        "expected memory failures, got none"
    );
    assert!(report.completed, "should eventually recover and finish");
}

#[test]
fn speculation_rescues_straggler_node() {
    // cluster with one crippled node: tasks stuck there get copies
    let mut nodes = Vec::new();
    for i in 0..3 {
        nodes.push(rupam_cluster::NodeSpec {
            name: format!("n{i}"),
            class: "fast".into(),
            // cripple node 0, and give it only 2 cores so ≥ 75 % of
            // the stage can still finish (Spark's speculation quantile)
            cores: if i == 0 { 2 } else { 4 },
            cpu_ghz: if i == 0 { 0.05 } else { 3.0 },
            mem: ByteSize::gib(32),
            net_bw: 1.25e9,
            disk: rupam_cluster::DiskSpec::sata_ssd(),
            gpus: 0,
            gpu_gcps: 0.0,
            rack: 0,
        });
    }
    let cluster = ClusterSpec::new(nodes);
    let cfg = SimConfig::default();
    let mut b = AppBuilder::new("spec");
    let j = b.begin_job();
    let tasks = (0..12)
        .map(|i| rupam_dag::task::TaskTemplate {
            index: i,
            input: InputSource::Generated,
            demand: TaskDemand {
                compute: 30.0,
                peak_mem: ByteSize::mib(128),
                ..TaskDemand::default()
            },
        })
        .collect();
    b.add_stage(j, "r", "spec/r", StageKind::Result, vec![], tasks);
    let app = b.build();
    let layout = DataLayout::new();

    // FIFO launches 4 tasks onto the crippled node; speculation must
    // eventually re-run them elsewhere (SpecFifo copies onto node 2).
    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &cfg,
        seed: 2,
    };
    let mut sched = SpecFifo(FifoScheduler::new());
    let report = simulate(&input, &mut sched);
    assert!(report.completed);
    assert!(
        report.speculative_launched > 0,
        "no speculative copies launched"
    );
    assert!(
        report.speculative_wins > 0,
        "copies on fast nodes should win"
    );
    // every task succeeded exactly once
    let mut winners: Vec<TaskRef> = report
        .records
        .iter()
        .filter(|r| r.outcome.is_success())
        .map(|r| r.task)
        .collect();
    winners.sort();
    winners.dedup();
    assert_eq!(winners.len(), 12);
}

#[test]
fn utilization_recorded() {
    let report = run_tiny(9);
    let hist = report
        .monitor
        .history(NodeId(0), rupam_cluster::monitor::MetricKey::CpuUtil);
    assert!(!hist.is_empty(), "cpu history empty");
    // at some point utilisation was positive
    assert!(hist.points().iter().any(|p| p.1 > 0.0));
}

#[test]
fn gpu_task_uses_gpu_when_asked() {
    let mut nodes = vec![rupam_cluster::NodeSpec {
        name: "g0".into(),
        class: "gpu".into(),
        cores: 4,
        cpu_ghz: 1.0,
        mem: ByteSize::gib(32),
        net_bw: 1.25e9,
        disk: rupam_cluster::DiskSpec::sata_ssd(),
        gpus: 1,
        gpu_gcps: 20.0,
        rack: 0,
    }];
    nodes.push(nodes[0].clone());
    nodes[1].name = "g1".into();
    let cluster = ClusterSpec::new(nodes);
    let cfg = SimConfig::default();
    let mut b = AppBuilder::new("gpu");
    let j = b.begin_job();
    b.add_stage(
        j,
        "r",
        "gpu/r",
        StageKind::Result,
        vec![],
        vec![rupam_dag::task::TaskTemplate {
            index: 0,
            input: InputSource::Generated,
            demand: TaskDemand {
                compute: 40.0,
                gpu_kernels: 40.0,
                peak_mem: ByteSize::mib(128),
                ..TaskDemand::default()
            },
        }],
    );
    let app = b.build();
    let layout = DataLayout::new();

    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &cfg,
        seed: 1,
    };
    let mut sched = GpuFifo;
    let report = simulate(&input, &mut sched);
    assert!(report.completed);
    assert_eq!(report.gpu_task_count(), 1);
    // 40 Gcycles at 20 Gc/s on GPU ≈ 2 s; on the 1 GHz CPU it would be 40 s
    assert!(
        report.makespan < SimDuration::from_secs(10),
        "GPU not used: {}",
        report.makespan
    );
}

#[test]
fn stream_jobs_wait_for_arrival_and_report_jcts() {
    let cluster = ClusterSpec::two_node_motivation();
    let cfg = SimConfig::default();
    let mut stream = rupam_dag::JobStream::new();
    for (i, arrival) in [0.0f64, 30.0].into_iter().enumerate() {
        let (app, layout) = tiny_app(4, 4.0);
        stream.push(
            format!("tenant-{i}"),
            app,
            layout,
            SimTime::from_secs_f64(arrival),
        );
    }
    let merged = stream.merge();
    let input = StreamInput {
        cluster: &cluster,
        stream: &merged,
        config: &cfg,
        seed: 21,
    };
    let mut sched = FifoScheduler::new();
    let report = simulate_stream(&input, &mut sched);
    assert!(report.completed);
    assert_eq!(report.jobs.len(), 2);
    assert_eq!(report.jobs[1].submitted_at, SimTime::from_secs_f64(30.0));
    for j in &report.jobs {
        assert!(j.completed_at.is_some(), "job {:?} never finished", j.job);
    }
    // nothing of the late tenant may launch before it arrives
    let early = report
        .records
        .iter()
        .filter(|r| r.job == JobId(1))
        .map(|r| r.launched_at)
        .min()
        .unwrap();
    assert!(early >= SimTime::from_secs_f64(30.0));
    // JCTs are per job, not makespan: job 0 finished long before t=30
    let jct0 = report.jobs[0].jct().unwrap();
    assert!(jct0 < SimDuration::from_secs(30), "jct0 = {jct0}");
    assert!(report.jct_mean() > 0.0);
}

#[test]
fn single_app_run_reports_one_job() {
    let report = run_tiny(6);
    assert_eq!(report.jobs.len(), 1);
    assert_eq!(report.jobs[0].submitted_at, SimTime::ZERO);
    assert_eq!(
        report.jobs[0].completed_at,
        Some(SimTime::ZERO + report.makespan)
    );
    assert!(report.records.iter().all(|r| r.job == JobId(0)));
}

/// A scheduler that refuses every placement — the degenerate policy the
/// calendar-exhaustion path needs.
struct RefuseAll;

impl Scheduler for RefuseAll {
    fn name(&self) -> &str {
        "refuse-all"
    }
    fn executor_memory(&self, c: &ClusterSpec, n: NodeId) -> ByteSize {
        c.node(n).mem
    }
    fn offer_round(&mut self, _input: &OfferInput<'_>) -> Vec<Command> {
        Vec::new()
    }
}

#[test]
fn exhausted_calendar_is_a_typed_error_not_a_panic() {
    // nothing running (the scheduler refuses all offers), calendar
    // force-drained, stages incomplete: the loop must return the typed
    // error instead of panicking on the empty pop
    let cluster = ClusterSpec::two_node_motivation();
    let (app, layout) = tiny_app(4, 4.0);
    let cfg = SimConfig::with_faults(rupam_faults::FaultScript::one_node_crash(
        NodeId(0),
        1.0,
        None,
    ));
    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &cfg,
        seed: 13,
    };
    let mut sched = RefuseAll;
    let mut sim = assemble(&input, None, &mut sched, EventBus::new());
    sim.prologue();
    sim.source.clear();
    let err = sim
        .main_loop()
        .expect_err("an empty calendar with pending stages cannot succeed");
    let EngineError::CalendarExhausted { at } = err else {
        panic!("expected CalendarExhausted, got {err}");
    };
    assert_eq!(at, SimTime::ZERO);
    assert!(!err.to_string().is_empty());
}

#[test]
fn engine_errors_propagate_through_thread_and_channel_boundaries() {
    // serve mode moves `EngineError`s between threads as boxed
    // `std::error::Error`s; pin the trait bounds that make that legal
    fn assert_send_sync_error<E: std::error::Error + Send + Sync + 'static>(_: &E) {}
    let err = EngineError::SourceDisconnected { at: SimTime(7) };
    assert_send_sync_error(&err);
    let (tx, rx) = std::sync::mpsc::channel::<Box<dyn std::error::Error + Send + Sync>>();
    std::thread::spawn(move || tx.send(Box::new(err) as _).unwrap())
        .join()
        .unwrap();
    let boxed = rx.recv().unwrap();
    assert!(boxed.to_string().contains("disconnected"));
    let concrete = boxed
        .downcast_ref::<EngineError>()
        .expect("downcast back to EngineError");
    assert_eq!(
        *concrete,
        EngineError::SourceDisconnected { at: SimTime(7) }
    );
}

#[test]
fn run_with_refusing_scheduler_ends_gracefully() {
    // the full public path: a scheduler that never places anything hits
    // the livelock guard and the run reports `completed: false` — no
    // panic anywhere between the first offer and the final report
    let cluster = ClusterSpec::two_node_motivation();
    let (app, layout) = tiny_app(4, 4.0);
    let cfg = SimConfig::with_faults(rupam_faults::FaultScript::one_node_crash(
        NodeId(0),
        1.0,
        None,
    ));
    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &cfg,
        seed: 17,
    };
    let mut sched = RefuseAll;
    let report = simulate(&input, &mut sched);
    assert!(!report.completed);
    assert!(report.records.iter().all(|r| !r.outcome.is_success()));
}

#[test]
fn cache_hit_upgrades_locality() {
    let cluster = ClusterSpec::homogeneous(2);
    let cfg = SimConfig::default();
    let mut rng = RngFactory::new(4).stream("layout");
    let mut layout = DataLayout::new();
    let blocks = layout.place_blocks(&cluster, &[ByteSize::mib(128); 2], 1, &mut rng);
    let mut b = AppBuilder::new("cache");
    let mk_tasks = |blocks: &[rupam_dag::BlockId]| {
        blocks
            .iter()
            .enumerate()
            .map(|(i, blk)| rupam_dag::task::TaskTemplate {
                index: i,
                input: InputSource::CachedOrHdfs {
                    key: CacheKey::new("cache/data", i),
                    fallback: *blk,
                },
                demand: TaskDemand {
                    compute: 2.0,
                    input_bytes: ByteSize::mib(128),
                    peak_mem: ByteSize::mib(256),
                    cached_bytes: ByteSize::mib(160),
                    ..TaskDemand::default()
                },
            })
            .collect::<Vec<_>>()
    };
    // two identical jobs over the same cacheable RDD
    for _ in 0..2 {
        let j = b.begin_job();
        b.add_stage(
            j,
            "scan",
            "cache/data",
            StageKind::Result,
            vec![],
            mk_tasks(&blocks),
        );
    }
    let app = b.build();
    let input = SimInput {
        cluster: &cluster,
        app: &app,
        layout: &layout,
        config: &cfg,
        seed: 8,
    };
    let mut sched = FifoScheduler::new();
    let report = simulate(&input, &mut sched);
    assert!(report.completed);
    let first_job: Vec<&TaskRecord> = report
        .records
        .iter()
        .filter(|r| r.task.stage == StageId(0) && r.outcome.is_success())
        .collect();
    let second_job: Vec<&TaskRecord> = report
        .records
        .iter()
        .filter(|r| r.task.stage == StageId(1) && r.outcome.is_success())
        .collect();
    assert!(first_job
        .iter()
        .all(|r| r.locality != Locality::ProcessLocal));
    // FIFO places tasks deterministically on node 0 first; the cached
    // copies live where the first job ran, so at least one second-job
    // task should hit the cache.
    assert!(
        second_job
            .iter()
            .any(|r| r.locality == Locality::ProcessLocal),
        "no cache hits in second job: {:?}",
        second_job.iter().map(|r| r.locality).collect::<Vec<_>>()
    );
}
