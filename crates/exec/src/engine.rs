//! The simulation driver.
//!
//! A deterministic discrete-event simulation of a Spark-like cluster
//! engine with a *fluid* contention model: every running task attempt is
//! a queue of resource phases (see [`crate::costmodel`]); tasks in the
//! same phase class on a node share that resource equally; after every
//! event the engine advances all attempts' remaining work exactly and
//! recomputes completion times, so rate changes never go stale.
//!
//! The engine owns physics (execution rates, memory, OOM, executor loss,
//! race resolution) and the offer protocol; *policy* lives entirely in
//! the [`Scheduler`] implementation it drives.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::Rng;

use rupam_simcore::calendar::Calendar;
use rupam_simcore::rng::RngFactory;
use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;
use rupam_simcore::Sym;

use rupam_cluster::monitor::{HeartbeatSnapshot, NodeMetrics};
use rupam_cluster::{ClusterSpec, NodeId, ResourceMonitor};
use rupam_dag::app::{Application, JobId, StageId, StageKind};
use rupam_dag::data::DataLayout;
use rupam_dag::lineage::StageTracker;
use rupam_dag::stream::MergedStream;
use rupam_dag::task::{CacheKey, InputSource, TaskTemplate};
use rupam_dag::{Locality, TaskRef};
use rupam_faults::{FailureDetector, FaultKind, NodeHealth};
use rupam_metrics::breakdown::TaskBreakdown;
use rupam_metrics::record::{AttemptOutcome, TaskRecord};
use rupam_metrics::report::{FaultSummary, JobOutcome, RunReport};
use rupam_metrics::trace::{
    AbortCause, LaunchReason, TraceBuffer, TraceEvent, TraceEventKind, DEFAULT_TRACE_CAPACITY,
};

use crate::audit::{AuditConfig, InvariantAuditor, Violation};
use crate::cache::ExecutorCache;
use crate::config::SimConfig;
use crate::costmodel::{build_phases, LaunchContext, Phase, PhaseResource};
use crate::scheduler::{
    Command, NodeView, OfferInput, PendingTaskView, RunningTaskView, Scheduler,
};
use crate::speculation::{find_speculatable, SpeculationSet, StageProgress};

/// Fraction of a reduce task's shuffle input that must sit on one node
/// for Spark to consider that node `NODE_LOCAL` for the task.
const REDUCER_PREF_FRACTION: f64 = 0.2;
/// Work below this is considered complete (unit-scale epsilon).
const WORK_EPS: f64 = 1e-7;

/// Everything a single-application run needs.
pub struct SimInput<'a> {
    /// The cluster to run on.
    pub cluster: &'a ClusterSpec,
    /// The application to execute.
    pub app: &'a Application,
    /// HDFS block placement for the application's input.
    pub layout: &'a DataLayout,
    /// Simulation tunables.
    pub config: &'a SimConfig,
    /// Experiment seed (failure-model draws derive from it).
    pub seed: u64,
}

/// Everything a multi-tenant run needs: a [`MergedStream`] (built by
/// [`rupam_dag::JobStream::merge`]) carries the merged application, the
/// combined HDFS layout and the per-job arrival times.
pub struct StreamInput<'a> {
    /// The cluster to run on.
    pub cluster: &'a ClusterSpec,
    /// The merged job stream to execute.
    pub stream: &'a MergedStream,
    /// Simulation tunables.
    pub config: &'a SimConfig,
    /// Experiment seed (failure-model draws derive from it).
    pub seed: u64,
}

/// Observability switches for a run. [`Default`] turns everything off —
/// the plain [`simulate`] path pays no tracing or auditing cost.
#[derive(Clone, Debug, Default)]
pub struct SimOptions {
    /// Record decision traces into a ring of this capacity (`Some(0)` is
    /// digest-only: nothing retained, every event still hashed). `None`
    /// disables tracing entirely.
    pub trace_capacity: Option<usize>,
    /// Run the [`InvariantAuditor`] after every offer round.
    pub audit: Option<AuditConfig>,
}

impl SimOptions {
    /// Tracing at the default ring capacity, no auditing.
    pub fn traced() -> Self {
        SimOptions {
            trace_capacity: Some(DEFAULT_TRACE_CAPACITY),
            audit: None,
        }
    }

    /// Tracing plus auditing at default settings.
    pub fn audited() -> Self {
        SimOptions {
            trace_capacity: Some(DEFAULT_TRACE_CAPACITY),
            audit: Some(AuditConfig::default()),
        }
    }
}

/// What a traced/audited run observed, alongside its [`RunReport`].
#[derive(Debug, Default)]
pub struct SimObservation {
    /// The decision trace, when tracing was enabled.
    pub trace: Option<TraceBuffer>,
    /// Invariant violations, when auditing was enabled.
    pub violations: Vec<Violation>,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    Heartbeat,
    SpeculationCheck,
    OomCheck { node: NodeId, epoch: u64 },
    ExecutorRestored { node: NodeId },
    JobSubmitted { job: JobId },
    Fault { index: usize },
    SlowdownEnd { node: NodeId, epoch: u64 },
    FlakyCheck { node: NodeId, epoch: u64 },
}

type AttemptId = usize;

struct AttemptRt {
    task: TaskRef,
    template_key: Sym,
    attempt_no: u32,
    speculative: bool,
    node: NodeId,
    locality: Locality,
    phases: VecDeque<Phase>,
    launched_at: SimTime,
    breakdown: TaskBreakdown,
    peak_mem: ByteSize,
    used_gpu: bool,
    alive: bool,
    rate: f64,
}

impl AttemptRt {
    fn current_phase(&self) -> Option<&Phase> {
        self.phases.front()
    }
}

struct NodeRt {
    executor_mem: ByteSize,
    mem_in_use: ByteSize,
    running: Vec<AttemptId>,
    cache: ExecutorCache,
    blocked_until: SimTime,
    oom_epoch: u64,
    oom_scheduled: bool,
    last_metrics: NodeMetrics,
    // ---- fault-subsystem state (inert on healthy runs) ----
    /// Physically down: heartbeats stop, launches are dropped.
    crashed: bool,
    /// Service-rate divisor while a scripted slowdown is active (1.0 =
    /// full speed).
    slow_factor: f64,
    /// Guards stale [`Event::SlowdownEnd`] events.
    slow_epoch: u64,
    /// Guards stale [`Event::FlakyCheck`] events.
    flaky_epoch: u64,
    /// Heartbeats are suppressed (network partition) until this instant.
    hb_dropout_until: SimTime,
    /// End of the active flaky-OOM window.
    flaky_until: SimTime,
    /// Per-check kill probability inside the flaky-OOM window.
    flaky_prob: f64,
}

/// Runtime state of one stream job (single-app runs have exactly one).
struct JobRt {
    name: String,
    arrival: SimTime,
    completed_at: Option<SimTime>,
}

#[derive(Clone, Debug, PartialEq)]
enum TaskState {
    Pending { attempt_no: u32 },
    Running { attempts: Vec<AttemptId> },
    Done,
}

struct StageRt {
    released: bool,
    tasks: Vec<TaskState>,
    finished_secs: Vec<f64>,
    map_out_per_node: Vec<f64>,
    map_out_total: f64,
    /// Per task: node and attempt number of the winning (completed)
    /// copy, so that losing a node tells us exactly which finished map
    /// outputs died with it (lineage-driven recompute).
    winners: Vec<Option<(NodeId, u32)>>,
}

struct Sim<'a, 's> {
    input: &'a SimInput<'a>,
    sched: &'s mut dyn Scheduler,
    cal: Calendar<Event>,
    now: SimTime,
    attempts: Vec<AttemptRt>,
    nodes: Vec<NodeRt>,
    stages: Vec<StageRt>,
    jobs: Vec<JobRt>,
    stage_jobs: Vec<JobId>,
    tracker: StageTracker,
    monitor: ResourceMonitor,
    records: Vec<TaskRecord>,
    spec_set: SpeculationSet,
    observed_peak: HashMap<(StageId, usize), ByteSize>,
    rng_fail: StdRng,
    /// Fault-subsystem draws (flaky-OOM coin flips) come from their own
    /// stream so healthy-path draws from `rng_fail` are untouched.
    rng_faults: StdRng,
    /// The RM's heartbeat failure detector; `None` unless the run has a
    /// non-empty chaos script (strict no-op guarantee).
    detector: Option<FailureDetector>,
    /// Tasks killed by node faults (or re-pended by lineage recompute)
    /// that have not yet been re-run to completion, with the kill time.
    kill_pending: HashMap<TaskRef, SimTime>,
    faults: FaultSummary,
    oom_failures: usize,
    executor_losses: usize,
    speculative_launched: usize,
    speculative_wins: usize,
    aborted: bool,
    need_offers: bool,
    idle_heartbeats: u32,
    trace: Option<TraceBuffer>,
    auditor: Option<InvariantAuditor>,
    round: u64,
}

/// Run `app` on `cluster` under `scheduler`; returns the full report.
pub fn simulate(input: &SimInput<'_>, scheduler: &mut dyn Scheduler) -> RunReport {
    simulate_observed(input, scheduler, &SimOptions::default()).0
}

/// Like [`simulate`], but with decision tracing and/or invariant
/// auditing per `opts`. The report is identical to an untraced run of
/// the same inputs — observability never perturbs the simulation.
pub fn simulate_observed(
    input: &SimInput<'_>,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
) -> (RunReport, SimObservation) {
    run_sim(input, None, scheduler, opts)
}

/// Run a stream of jobs arriving over time against one long-lived
/// scheduler instance; [`simulate`] is the 1-job special case. Each
/// stream job's chain of app-jobs stays gated until its arrival; the
/// report carries per-job completion times ([`RunReport::jobs`]).
pub fn simulate_stream(input: &StreamInput<'_>, scheduler: &mut dyn Scheduler) -> RunReport {
    simulate_stream_observed(input, scheduler, &SimOptions::default()).0
}

/// Like [`simulate_stream`], but with decision tracing and/or invariant
/// auditing per `opts`.
pub fn simulate_stream_observed(
    input: &StreamInput<'_>,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
) -> (RunReport, SimObservation) {
    let sim_input = SimInput {
        cluster: input.cluster,
        app: &input.stream.app,
        layout: &input.stream.layout,
        config: input.config,
        seed: input.seed,
    };
    run_sim(&sim_input, Some(input.stream), scheduler, opts)
}

fn run_sim(
    input: &SimInput<'_>,
    stream: Option<&MergedStream>,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
) -> (RunReport, SimObservation) {
    let cluster = input.cluster;
    let cfg = input.config;
    scheduler.on_app_start(input.app, cluster);

    let nodes: Vec<NodeRt> = cluster
        .iter()
        .map(|(id, spec)| {
            let requested = scheduler.executor_memory(cluster, id);
            let ceiling = spec.mem.saturating_sub(cfg.mem.os_reserved);
            let executor_mem = requested.min(ceiling);
            NodeRt {
                executor_mem,
                mem_in_use: ByteSize::ZERO,
                running: Vec::new(),
                cache: ExecutorCache::new(executor_mem.scale(cfg.mem.storage_fraction)),
                blocked_until: SimTime::ZERO,
                oom_epoch: 0,
                oom_scheduled: false,
                last_metrics: NodeMetrics {
                    free_mem: executor_mem,
                    gpus_idle: spec.gpus,
                    ..NodeMetrics::default()
                },
                crashed: false,
                slow_factor: 1.0,
                slow_epoch: 0,
                flaky_epoch: 0,
                hb_dropout_until: SimTime::ZERO,
                flaky_until: SimTime::ZERO,
                flaky_prob: 0.0,
            }
        })
        .collect();

    let stages: Vec<StageRt> = input
        .app
        .stages
        .iter()
        .map(|s| StageRt {
            released: false,
            tasks: vec![TaskState::Pending { attempt_no: 0 }; s.num_tasks()],
            finished_secs: Vec::new(),
            map_out_per_node: vec![0.0; cluster.len()],
            map_out_total: 0.0,
            winners: vec![None; s.num_tasks()],
        })
        .collect();

    // stream metadata; a plain application is a 1-job stream at t = 0
    let (jobs, chains, stage_jobs) = match stream {
        Some(ms) => (
            ms.jobs
                .iter()
                .map(|j| JobRt {
                    name: j.name.clone(),
                    arrival: j.arrival,
                    completed_at: None,
                })
                .collect::<Vec<_>>(),
            ms.jobs
                .iter()
                .map(|j| j.app_jobs.clone())
                .collect::<Vec<_>>(),
            ms.stage_jobs.clone(),
        ),
        None => (
            vec![JobRt {
                name: input.app.name.clone(),
                arrival: SimTime::ZERO,
                completed_at: None,
            }],
            std::iter::once(0..input.app.jobs.len()).collect(),
            vec![JobId(0); input.app.stages.len()],
        ),
    };

    let mut sim = Sim {
        input,
        sched: scheduler,
        cal: Calendar::new(),
        now: SimTime::ZERO,
        attempts: Vec::new(),
        nodes,
        stages,
        jobs,
        stage_jobs,
        tracker: StageTracker::new_stream(input.app, &chains),
        monitor: ResourceMonitor::new(cluster),
        records: Vec::new(),
        spec_set: SpeculationSet::new(),
        observed_peak: HashMap::new(),
        rng_fail: RngFactory::new(input.seed).stream("engine/failures"),
        rng_faults: RngFactory::new(input.seed).stream("engine/faults"),
        detector: (!cfg.faults.script.is_empty())
            .then(|| FailureDetector::new(cluster.len(), &cfg.faults, SimTime::ZERO)),
        kill_pending: HashMap::new(),
        faults: FaultSummary::default(),
        oom_failures: 0,
        executor_losses: 0,
        speculative_launched: 0,
        speculative_wins: 0,
        aborted: false,
        need_offers: true,
        idle_heartbeats: 0,
        trace: opts.trace_capacity.map(TraceBuffer::new),
        auditor: opts.audit.clone().map(InvariantAuditor::new),
        round: 0,
    };
    for (i, node) in sim.nodes.iter().enumerate() {
        let mem = node.executor_mem;
        if let Some(t) = sim.trace.as_mut() {
            t.record(TraceEvent {
                at: SimTime::ZERO,
                round: 0,
                kind: TraceEventKind::ExecutorSized {
                    node: NodeId(i),
                    mem,
                },
            });
        }
    }
    sim.run();

    // recovery invariant: every fault-killed task and lineage re-pend
    // must have been re-run to completion by the end of a completed run;
    // leftovers are permanently lost tasks.
    if !sim.aborted && !sim.kill_pending.is_empty() {
        let mut lost: Vec<(TaskRef, SimTime)> =
            sim.kill_pending.iter().map(|(&t, &at)| (t, at)).collect();
        lost.sort();
        for (task, killed_at) in lost {
            let detail = format!("task {task:?} killed at {killed_at} never re-ran to completion");
            if let Some(a) = sim.auditor.as_mut() {
                a.record_violation(sim.round, "lost-task", detail.clone());
            }
            sim.trace_event(TraceEventKind::AuditViolation {
                check: "lost-task",
                detail,
            });
        }
    }

    let makespan = sim.now.since(SimTime::ZERO);
    let jobs: Vec<JobOutcome> = sim
        .jobs
        .iter()
        .enumerate()
        .map(|(i, j)| JobOutcome {
            job: JobId(i),
            name: j.name.clone(),
            submitted_at: j.arrival,
            completed_at: j.completed_at,
        })
        .collect();
    let report = RunReport {
        app_name: input.app.name.clone(),
        scheduler_name: sim.sched.name().to_string(),
        seed: input.seed,
        makespan,
        completed: !sim.aborted,
        jobs,
        records: sim.records,
        monitor: sim.monitor,
        oom_failures: sim.oom_failures,
        executor_losses: sim.executor_losses,
        speculative_launched: sim.speculative_launched,
        speculative_wins: sim.speculative_wins,
        faults: sim.faults,
    };
    let observation = SimObservation {
        trace: sim.trace,
        violations: sim
            .auditor
            .map(|a| a.violations().to_vec())
            .unwrap_or_default(),
    };
    (report, observation)
}

impl<'a, 's> Sim<'a, 's> {
    fn run(&mut self) {
        let cfg = self.input.config;
        // submit every stream job already arrived at t = 0; later
        // arrivals become calendar events (the multi-tenant case)
        for j in 0..self.jobs.len() {
            let arrival = self.jobs[j].arrival;
            if arrival <= self.now {
                self.submit_job(JobId(j));
            } else {
                self.cal
                    .schedule(arrival, Event::JobSubmitted { job: JobId(j) });
            }
        }
        self.cal
            .schedule(self.now + cfg.engine.heartbeat, Event::Heartbeat);
        // inject the chaos script (no-op for the empty default)
        for (i, spec) in cfg.faults.script.events().iter().enumerate() {
            self.cal.schedule(spec.at, Event::Fault { index: i });
        }
        if cfg.speculation.enabled {
            self.cal
                .schedule(self.now + cfg.speculation.interval, Event::SpeculationCheck);
        }
        // initial offer round at t = 0 — waiting for the first heartbeat
        // would idle the whole cluster for one period at startup
        if self.need_offers {
            self.need_offers = false;
            self.offer_round();
        }

        let mut events: u64 = 0;
        while !self.tracker.all_done(self.input.app) && !self.aborted {
            events += 1;
            assert!(
                events <= cfg.engine.max_events,
                "engine exceeded max_events = {} (deadlock or runaway?)",
                cfg.engine.max_events
            );

            self.recompute_rates();
            self.record_utilization();

            let next_completion = self.next_completion();
            let next_event = self.cal.peek_time();
            let target = match (next_completion, next_event) {
                (Some((tc, _)), Some(te)) => tc.min(te),
                (Some((tc, _)), None) => tc,
                (None, Some(te)) => te,
                (None, None) => {
                    panic!(
                        "deadlock at {}: no running attempts and no pending events \
                         while stages are incomplete",
                        self.now
                    )
                }
            };

            self.advance_to(target);

            // complete all phases that just hit zero (deterministic order)
            let finished: Vec<AttemptId> = (0..self.attempts.len())
                .filter(|&i| {
                    self.attempts[i].alive
                        && self.attempts[i]
                            .current_phase()
                            .map(|p| p.work <= WORK_EPS)
                            .unwrap_or(false)
                })
                .collect();
            for id in finished {
                // completing an attempt may kill its race siblings; a
                // sibling that was due to finish at this very instant is
                // already dead and must be skipped
                if self.attempts[id].alive {
                    self.phase_complete(id);
                }
            }

            // drain calendar events scheduled at or before `now`
            while self.cal.peek_time().map(|t| t <= self.now).unwrap_or(false) {
                let (_, ev) = self.cal.pop().unwrap();
                self.handle_event(ev);
            }

            if self.need_offers {
                self.need_offers = false;
                self.offer_round();
            }
        }
        // flush final utilisation sample
        self.recompute_rates();
        self.record_utilization();
    }

    // ---- time & physics -------------------------------------------------

    fn advance_to(&mut self, target: SimTime) {
        debug_assert!(target >= self.now);
        let dt = target.since(self.now);
        if !dt.is_zero() {
            let secs = dt.as_secs_f64();
            for a in self.attempts.iter_mut().filter(|a| a.alive) {
                if let Some(phase) = a.phases.front_mut() {
                    phase.work = (phase.work - a.rate * secs).max(0.0);
                    a.breakdown.add(phase.category, dt);
                }
            }
        }
        self.now = target;
        // events strictly before `now` must already have been handled;
        // finding one here would mean the driver skipped it — a logic
        // error worth failing loudly on
        if let Some(t) = self.cal.peek_time() {
            assert!(t >= self.now, "unprocessed event at {t} < now {}", self.now);
        }
    }

    /// Recompute every alive attempt's current rate from node contention.
    fn recompute_rates(&mut self) {
        // per node: count users per phase class
        for (node_idx, node) in self.nodes.iter().enumerate() {
            let spec = self.input.cluster.node(NodeId(node_idx));
            let mut n_cpu = 0u32;
            let mut n_gpu = 0u32;
            let mut n_net = 0u32;
            let mut n_disk = 0u32;
            for &aid in &node.running {
                match self.attempts[aid].current_phase().map(|p| p.resource) {
                    Some(PhaseResource::Cpu) => n_cpu += 1,
                    Some(PhaseResource::Gpu) => n_gpu += 1,
                    Some(PhaseResource::Net) => n_net += 1,
                    Some(PhaseResource::DiskRead) | Some(PhaseResource::DiskWrite) => n_disk += 1,
                    Some(PhaseResource::Wait) | None => {}
                }
            }
            for &aid in &node.running {
                let rate = match self.attempts[aid].current_phase().map(|p| p.resource) {
                    Some(PhaseResource::Cpu) => {
                        spec.cpu_ghz * (spec.cores as f64 / n_cpu as f64).min(1.0)
                    }
                    Some(PhaseResource::Gpu) => {
                        spec.gpu_gcps * (spec.gpus as f64 / n_gpu as f64).min(1.0)
                    }
                    Some(PhaseResource::Net) => spec.net_bw / n_net as f64,
                    Some(PhaseResource::DiskRead) => spec.disk.read_bw / n_disk as f64,
                    Some(PhaseResource::DiskWrite) => spec.disk.write_bw / n_disk as f64,
                    Some(PhaseResource::Wait) => 1.0,
                    None => 0.0,
                };
                // scripted slowdowns stretch every phase on the node
                let rate = if node.slow_factor != 1.0 {
                    rate / node.slow_factor
                } else {
                    rate
                };
                debug_assert!(rate > 0.0 || self.attempts[aid].phases.is_empty());
                self.attempts[aid].rate = rate;
            }
        }
    }

    fn next_completion(&self) -> Option<(SimTime, AttemptId)> {
        let mut best: Option<(SimTime, AttemptId)> = None;
        for (id, a) in self.attempts.iter().enumerate() {
            if !a.alive {
                continue;
            }
            if let Some(p) = a.current_phase() {
                // round UP to the next microsecond: rounding down would
                // leave sub-µs work remainders that never complete
                let eta = if p.work <= WORK_EPS {
                    self.now
                } else {
                    let micros = (p.work / a.rate * 1e6).ceil() as u64;
                    self.now + SimDuration(micros.max(1))
                };
                if best.map(|(t, _)| eta < t).unwrap_or(true) {
                    best = Some((eta, id));
                }
            }
        }
        best
    }

    /// Node-level utilisation snapshot from current phase occupancy.
    fn node_metrics(&self, node_idx: usize) -> NodeMetrics {
        let node = &self.nodes[node_idx];
        let spec = self.input.cluster.node(NodeId(node_idx));
        let mut n_cpu = 0u32;
        let mut n_gpu = 0u32;
        let mut net_bps = 0.0f64;
        let mut disk_bps = 0.0f64;
        for &aid in &node.running {
            let a = &self.attempts[aid];
            match a.current_phase().map(|p| p.resource) {
                Some(PhaseResource::Cpu) => n_cpu += 1,
                Some(PhaseResource::Gpu) => n_gpu += 1,
                Some(PhaseResource::Net) => net_bps += a.rate,
                Some(PhaseResource::DiskRead) | Some(PhaseResource::DiskWrite) => {
                    disk_bps += a.rate
                }
                _ => {}
            }
        }
        NodeMetrics {
            cpu_util: (n_cpu as f64 / spec.cores as f64).min(1.0),
            mem_used: node.mem_in_use,
            free_mem: node.executor_mem.saturating_sub(node.mem_in_use),
            net_util: (net_bps / spec.net_bw).min(1.0),
            disk_util: (disk_bps / spec.disk.read_bw.max(spec.disk.write_bw)).min(1.0),
            net_bytes_per_sec: net_bps,
            disk_bytes_per_sec: disk_bps,
            gpus_idle: spec.gpus.saturating_sub(n_gpu.min(spec.gpus)),
        }
    }

    fn record_utilization(&mut self) {
        for i in 0..self.nodes.len() {
            let m = self.node_metrics(i);
            if m != self.nodes[i].last_metrics {
                self.nodes[i].last_metrics = m;
                self.monitor.ingest(HeartbeatSnapshot {
                    node: NodeId(i),
                    at: self.now,
                    metrics: m,
                });
            }
        }
    }

    // ---- lifecycle -------------------------------------------------------

    /// A stream job arrives: unlock its chain, tell the scheduler which
    /// stages it will eventually run, and release whatever is ready.
    fn submit_job(&mut self, job: JobId) {
        self.tracker.arrive(job.index());
        self.trace_event(TraceEventKind::JobSubmitted { job });
        let stages: Vec<StageId> = self
            .stage_jobs
            .iter()
            .enumerate()
            .filter(|&(_, &j)| j == job)
            .map(|(i, _)| StageId(i))
            .collect();
        self.sched.on_job_submitted(job, &stages, self.now);
        self.release_ready_stages();
        self.need_offers = true;
    }

    fn release_ready_stages(&mut self) {
        let ready = self.tracker.take_ready(self.input.app);
        for sid in ready {
            // a stage re-blocked by lineage recompute can become ready a
            // second time; schedulers must see on_stage_ready only once
            if !self.stages[sid.index()].released {
                self.stages[sid.index()].released = true;
                self.sched
                    .on_stage_ready(self.input.app.stage(sid), self.now);
            }
            self.need_offers = true;
        }
    }

    fn phase_complete(&mut self, id: AttemptId) {
        let a = &mut self.attempts[id];
        debug_assert!(a.alive);
        a.phases.pop_front();
        if a.phases.is_empty() {
            self.finish_attempt(id);
        }
    }

    fn finish_attempt(&mut self, id: AttemptId) {
        let (task, node_id, attempt_no) = {
            let a = &self.attempts[id];
            (a.task, a.node, a.attempt_no)
        };
        self.detach_attempt(id);
        self.observed_peak
            .insert((task.stage, task.index), self.attempts[id].peak_mem);

        let stage = self.input.app.stage(task.stage);
        let template = &stage.tasks[task.index];

        // has the task already been completed by another copy?
        let already_done = matches!(
            self.stages[task.stage.index()].tasks[task.index],
            TaskState::Done
        );
        let outcome = if already_done {
            AttemptOutcome::LostRace
        } else {
            AttemptOutcome::Success
        };
        let record = self.make_record(id, outcome);
        if !already_done {
            let stage_rt = &mut self.stages[task.stage.index()];
            // register map outputs for reducers
            if stage.kind == StageKind::ShuffleMap {
                let bytes = template.demand.shuffle_write.as_f64();
                stage_rt.map_out_per_node[node_id.index()] += bytes;
                stage_rt.map_out_total += bytes;
            }
            stage_rt.winners[task.index] = Some((node_id, attempt_no));
            stage_rt.finished_secs.push(record.duration().as_secs_f64());
            // cache the produced partition
            if template.demand.cached_bytes > ByteSize::ZERO {
                let key =
                    self.scoped_cache_key(task.stage, stage.template_key.as_str(), task.index);
                self.nodes[node_id.index()]
                    .cache
                    .insert(key, template.demand.cached_bytes);
            }
            // kill losing copies
            let losers: Vec<AttemptId> = match &self.stages[task.stage.index()].tasks[task.index] {
                TaskState::Running { attempts } => {
                    attempts.iter().copied().filter(|&o| o != id).collect()
                }
                _ => Vec::new(),
            };
            if self.attempts[id].speculative {
                self.speculative_wins += 1;
            }
            for loser in losers {
                self.abort_attempt(loser, AttemptOutcome::LostRace);
            }
            self.stages[task.stage.index()].tasks[task.index] = TaskState::Done;
            self.spec_set.remove(&task);
            // a fault-killed (or lineage re-pended) task re-ran to
            // completion: the recovery is resolved
            if let Some(killed_at) = self.kill_pending.remove(&task) {
                self.faults.recoveries += 1;
                self.faults.recovery_secs_total += self.now.since(killed_at).as_secs_f64();
            }
            self.sched.on_task_finished(&record, self.now);
            self.records.push(record);
            // stage/job bookkeeping
            let newly_ready = self.tracker.task_finished(self.input.app, task.stage);
            for sid in newly_ready {
                // skip stages re-completing after a lineage recompute —
                // schedulers must see on_stage_ready exactly once
                if !self.stages[sid.index()].released {
                    self.stages[sid.index()].released = true;
                    self.sched
                        .on_stage_ready(self.input.app.stage(sid), self.now);
                }
            }
            // stream-job completion (chain index == stream job index)
            let job = self.stage_jobs[task.stage.index()];
            if self.jobs[job.index()].completed_at.is_none() && self.tracker.chain_done(job.index())
            {
                self.jobs[job.index()].completed_at = Some(self.now);
                self.trace_event(TraceEventKind::JobCompleted { job });
            }
        } else {
            self.records.push(record);
        }
        self.need_offers = true;
    }

    /// Remove a (still-alive) attempt from its node, freeing memory.
    fn detach_attempt(&mut self, id: AttemptId) {
        let a = &mut self.attempts[id];
        debug_assert!(a.alive);
        a.alive = false;
        let node = &mut self.nodes[a.node.index()];
        node.running.retain(|&x| x != id);
        node.mem_in_use = node.mem_in_use.saturating_sub(a.peak_mem);
    }

    fn make_record(&self, id: AttemptId, outcome: AttemptOutcome) -> TaskRecord {
        let a = &self.attempts[id];
        TaskRecord {
            task: a.task,
            job: self.stage_jobs[a.task.stage.index()],
            template_key: a.template_key,
            attempt: a.attempt_no,
            node: a.node,
            speculative: a.speculative,
            locality: a.locality,
            launched_at: a.launched_at,
            finished_at: self.now,
            outcome,
            breakdown: a.breakdown,
            peak_mem: a.peak_mem,
            used_gpu: a.used_gpu,
        }
    }

    /// Abort a running attempt whose sibling won the race.
    fn abort_attempt(&mut self, id: AttemptId, outcome: AttemptOutcome) {
        debug_assert!(matches!(outcome, AttemptOutcome::LostRace));
        self.detach_attempt(id);
        let record = self.make_record(id, outcome);
        self.records.push(record);
        self.need_offers = true;
    }

    /// Fail a running attempt; its task goes back to pending (or the app
    /// aborts once retries are exhausted).
    fn fail_attempt(&mut self, id: AttemptId, outcome: AttemptOutcome) {
        let task = self.attempts[id].task;
        let node = self.attempts[id].node;
        let attempt_no = self.attempts[id].attempt_no;
        self.detach_attempt(id);
        self.observed_peak
            .insert((task.stage, task.index), self.attempts[id].peak_mem);
        let record = self.make_record(id, outcome);
        self.records.push(record);

        let mut retries_exhausted = false;
        let state = &mut self.stages[task.stage.index()].tasks[task.index];
        if let TaskState::Running { attempts } = state {
            attempts.retain(|&x| x != id);
            if attempts.is_empty() {
                let next = attempt_no + 1;
                if next > self.input.config.mem.max_retries {
                    self.aborted = true;
                    retries_exhausted = true;
                }
                *state = TaskState::Pending { attempt_no: next };
            }
        }
        if retries_exhausted {
            self.trace_event(TraceEventKind::Aborted {
                cause: AbortCause::RetriesExhausted,
                task: Some(task),
            });
        }
        self.sched.on_task_failed(task, node, outcome, self.now);
        self.need_offers = true;
    }

    fn executor_lost(&mut self, node_id: NodeId) {
        self.executor_losses += 1;
        let victims: Vec<AttemptId> = self.nodes[node_id.index()].running.clone();
        if self.trace.is_some() {
            let n = &self.nodes[node_id.index()];
            let pressure_pct =
                (n.mem_in_use.as_f64() / n.executor_mem.as_f64().max(1.0) * 100.0) as u32;
            self.trace_event(TraceEventKind::ExecutorLost {
                node: node_id,
                victims: victims.len(),
                pressure_pct,
            });
        }
        for id in victims {
            self.fail_attempt(id, AttemptOutcome::ExecutorLost);
        }
        let cfg = self.input.config;
        let node = &mut self.nodes[node_id.index()];
        node.cache.clear();
        node.mem_in_use = ByteSize::ZERO;
        node.blocked_until = self.now + cfg.mem.jvm_restart;
        node.oom_epoch += 1;
        node.oom_scheduled = false;
        self.cal.schedule(
            node.blocked_until,
            Event::ExecutorRestored { node: node_id },
        );
    }

    // ---- events ----------------------------------------------------------

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::Heartbeat => {
                self.sched.on_heartbeat(self.now);
                if self.detector.is_some() {
                    self.detector_tick();
                }
                self.need_offers = true;
                // livelock guard: pending work, nothing running, nothing
                // scheduled — the scheduler is refusing every placement.
                // Real Spark jobs die with "Initial job has not accepted
                // any resources"; we abort the run likewise.
                let anything_running = self.attempts.iter().any(|a| a.alive);
                let anything_pending = self.stages.iter().any(|s| {
                    s.released
                        && s.tasks
                            .iter()
                            .any(|t| matches!(t, TaskState::Pending { .. }))
                });
                // an empty cluster waiting for the next job arrival is
                // not a livelock — only count heartbeats where released
                // work sits unplaced
                if anything_running || !anything_pending {
                    self.idle_heartbeats = 0;
                } else {
                    self.idle_heartbeats += 1;
                    if self.idle_heartbeats > 600 {
                        self.aborted = true;
                        self.trace_event(TraceEventKind::Aborted {
                            cause: AbortCause::Livelock,
                            task: None,
                        });
                    }
                }
                if !self.tracker.all_done(self.input.app) && !self.aborted {
                    self.cal.schedule(
                        self.now + self.input.config.engine.heartbeat,
                        Event::Heartbeat,
                    );
                }
            }
            Event::SpeculationCheck => {
                self.speculation_check();
                if !self.tracker.all_done(self.input.app) && !self.aborted {
                    self.cal.schedule(
                        self.now + self.input.config.speculation.interval,
                        Event::SpeculationCheck,
                    );
                }
            }
            Event::OomCheck { node, epoch } => self.oom_check(node, epoch),
            Event::ExecutorRestored { node } => {
                // nothing to restore explicitly; blocked_until gates offers
                let _ = node;
                self.need_offers = true;
            }
            Event::JobSubmitted { job } => self.submit_job(job),
            Event::Fault { index } => self.apply_fault(index),
            Event::SlowdownEnd { node, epoch } => {
                let n = &mut self.nodes[node.index()];
                if n.slow_epoch == epoch {
                    n.slow_factor = 1.0;
                }
            }
            Event::FlakyCheck { node, epoch } => self.flaky_check(node, epoch),
        }
    }

    // ---- faults & recovery ----------------------------------------------

    /// One failure-detector round, driven off the engine heartbeat: feed
    /// it heartbeats from nodes still emitting them, re-admit dead nodes
    /// whose heartbeats resumed, then evaluate the timeout thresholds.
    fn detector_tick(&mut self) {
        let mut revived: Vec<NodeId> = Vec::new();
        {
            let det = self.detector.as_mut().expect("gated by caller");
            for (i, node) in self.nodes.iter().enumerate() {
                let heartbeating = !node.crashed && self.now >= node.hb_dropout_until;
                if !heartbeating {
                    continue;
                }
                let id = NodeId(i);
                if det.is_dead(id) {
                    det.revive(id, self.now);
                    revived.push(id);
                } else {
                    det.observe(id, self.now);
                }
            }
        }
        for id in revived {
            self.faults.readmissions += 1;
            self.trace_event(TraceEventKind::NodeRecovered { node: id });
            self.need_offers = true;
        }
        let transitions = self
            .detector
            .as_mut()
            .expect("gated by caller")
            .evaluate(self.now);
        for t in transitions {
            match t.to {
                NodeHealth::Suspect => {
                    self.faults.suspects += 1;
                    self.trace_event(TraceEventKind::NodeSuspect {
                        node: t.node,
                        age: t.age,
                    });
                }
                NodeHealth::Dead => {
                    self.faults.deaths += 1;
                    self.trace_event(TraceEventKind::NodeDead {
                        node: t.node,
                        age: t.age,
                    });
                    // the driver abandons the node's executor: whether
                    // the node is physically down (crash) or merely
                    // partitioned (dropout), its tasks, cache and map
                    // outputs are gone from the cluster's point of view
                    self.node_lost(t.node);
                }
                NodeHealth::Alive => {
                    // a suspect's heartbeats caught up before the dead
                    // threshold — it never left the rankings
                }
            }
        }
    }

    /// Apply the `index`-th scripted fault to its target node.
    fn apply_fault(&mut self, index: usize) {
        let spec = *self
            .input
            .config
            .faults
            .script
            .get(index)
            .expect("fault events are scheduled once per script entry");
        let node_id = spec.node;
        if node_id.index() >= self.nodes.len() {
            return; // script targets a node this cluster doesn't have
        }
        self.trace_event(TraceEventKind::FaultInjected {
            node: node_id,
            fault: spec.kind.code(),
        });
        match spec.kind {
            FaultKind::Crash => {
                self.faults.crashes += 1;
                self.nodes[node_id.index()].crashed = true;
                self.node_lost(node_id);
            }
            FaultKind::Restart => {
                self.faults.restarts += 1;
                let node = &mut self.nodes[node_id.index()];
                node.crashed = false;
                node.slow_factor = 1.0;
                node.slow_epoch += 1;
                node.flaky_epoch += 1;
                node.flaky_until = SimTime::ZERO;
                node.hb_dropout_until = SimTime::ZERO;
                // the node stays out of the rankings until its first
                // heartbeat re-admits it via the detector
            }
            FaultKind::Slowdown { factor, secs } => {
                self.faults.slowdowns += 1;
                let node = &mut self.nodes[node_id.index()];
                node.slow_factor = factor.max(1e-9);
                node.slow_epoch += 1;
                let epoch = node.slow_epoch;
                self.cal.schedule(
                    self.now + SimDuration::from_secs_f64(secs),
                    Event::SlowdownEnd {
                        node: node_id,
                        epoch,
                    },
                );
            }
            FaultKind::HeartbeatDropout { secs } => {
                self.faults.dropouts += 1;
                self.nodes[node_id.index()].hb_dropout_until =
                    self.now + SimDuration::from_secs_f64(secs);
            }
            FaultKind::FlakyOom { secs, prob } => {
                self.faults.flaky_windows += 1;
                let node = &mut self.nodes[node_id.index()];
                node.flaky_until = self.now + SimDuration::from_secs_f64(secs);
                node.flaky_prob = prob.clamp(0.0, 1.0);
                node.flaky_epoch += 1;
                let epoch = node.flaky_epoch;
                self.cal.schedule(
                    self.now + SimDuration::from_secs(1),
                    Event::FlakyCheck {
                        node: node_id,
                        epoch,
                    },
                );
            }
        }
    }

    /// A node's executor state is gone — it physically crashed, or the
    /// failure detector declared it dead and the driver abandoned it.
    /// Kill its running attempts, wipe the executor, and re-pend every
    /// completed map task whose output lived there (lineage recompute).
    fn node_lost(&mut self, node_id: NodeId) {
        let victims: Vec<AttemptId> = self.nodes[node_id.index()].running.clone();
        for id in victims {
            let task = self.attempts[id].task;
            self.kill_pending.entry(task).or_insert(self.now);
            self.faults.tasks_killed += 1;
            self.fail_attempt(id, AttemptOutcome::NodeFaulted);
        }
        let node = &mut self.nodes[node_id.index()];
        node.cache.clear();
        node.mem_in_use = ByteSize::ZERO;
        node.oom_epoch += 1;
        node.oom_scheduled = false;
        node.slow_factor = 1.0;
        self.recompute_lost_outputs(node_id);
        self.need_offers = true;
    }

    /// Walk the lineage: completed shuffle-map tasks whose winning copy
    /// ran on the lost node have lost their map output. Re-pend them
    /// (next attempt number), roll back their contribution to the
    /// shuffle bookkeeping, and re-block dependent stages through
    /// [`StageTracker::task_lost`]. Cached partitions need no lineage
    /// action: the executor cache was wiped and every cached read
    /// carries an HDFS fallback.
    fn recompute_lost_outputs(&mut self, node_id: NodeId) {
        for sidx in 0..self.stages.len() {
            if self.input.app.stages[sidx].kind != StageKind::ShuffleMap {
                continue;
            }
            let n_tasks = self.stages[sidx].tasks.len();
            let mut lost = 0usize;
            for tidx in 0..n_tasks {
                let Some((winner, attempt_no)) = self.stages[sidx].winners[tidx] else {
                    continue;
                };
                if winner != node_id {
                    continue;
                }
                debug_assert!(matches!(self.stages[sidx].tasks[tidx], TaskState::Done));
                if !self.tracker.task_lost(self.input.app, StageId(sidx)) {
                    continue; // the chain no longer needs this output
                }
                let bytes = self.input.app.stages[sidx].tasks[tidx]
                    .demand
                    .shuffle_write
                    .as_f64();
                let srt = &mut self.stages[sidx];
                srt.map_out_per_node[node_id.index()] =
                    (srt.map_out_per_node[node_id.index()] - bytes).max(0.0);
                srt.map_out_total = (srt.map_out_total - bytes).max(0.0);
                srt.winners[tidx] = None;
                srt.tasks[tidx] = TaskState::Pending {
                    attempt_no: attempt_no + 1,
                };
                self.kill_pending
                    .entry(TaskRef {
                        stage: StageId(sidx),
                        index: tidx,
                    })
                    .or_insert(self.now);
                lost += 1;
            }
            if lost > 0 {
                self.faults.map_outputs_recomputed += lost;
                self.trace_event(TraceEventKind::LineageRecompute {
                    stage: StageId(sidx),
                    node: node_id,
                    tasks: lost,
                });
                self.need_offers = true;
            }
        }
    }

    /// One probe of a flaky-OOM window: with probability `flaky_prob`
    /// the node's hungriest attempt dies through the normal OOM-kill
    /// machinery; re-arms itself every second while the window lasts.
    fn flaky_check(&mut self, node_id: NodeId, epoch: u64) {
        let (stale, done) = {
            let n = &self.nodes[node_id.index()];
            (
                n.flaky_epoch != epoch || n.crashed,
                self.now >= n.flaky_until,
            )
        };
        if stale || done {
            return;
        }
        let prob = self.nodes[node_id.index()].flaky_prob;
        if self.rng_faults.gen_range(0.0..1.0) < prob {
            let victim = self.nodes[node_id.index()]
                .running
                .iter()
                .copied()
                .max_by_key(|&id| (self.attempts[id].peak_mem, id));
            if let Some(v) = victim {
                let pressure_pct = {
                    let n = &self.nodes[node_id.index()];
                    (n.mem_in_use.as_f64() / n.executor_mem.as_f64().max(1.0) * 100.0) as u32
                };
                self.oom_failures += 1;
                self.trace_event(TraceEventKind::OomTaskKill {
                    task: self.attempts[v].task,
                    node: node_id,
                    pressure_pct,
                });
                self.fail_attempt(v, AttemptOutcome::OomFailure);
            }
        }
        self.cal.schedule(
            self.now + SimDuration::from_secs(1),
            Event::FlakyCheck {
                node: node_id,
                epoch,
            },
        );
    }

    fn speculation_check(&mut self) {
        let cfg = &self.input.config.speculation;
        let mut flagged: Vec<TaskRef> = Vec::new();
        for (sidx, stage_rt) in self.stages.iter().enumerate() {
            if !stage_rt.released {
                continue;
            }
            let stage = &self.input.app.stages[sidx];
            let mut running: Vec<(TaskRef, SimTime, bool)> = Vec::new();
            for (tidx, state) in stage_rt.tasks.iter().enumerate() {
                if let TaskState::Running { attempts } = state {
                    // the original copy is the lowest attempt id
                    if let Some(&first) = attempts.first() {
                        running.push((
                            TaskRef {
                                stage: stage.id,
                                index: tidx,
                            },
                            self.attempts[first].launched_at,
                            attempts.len() > 1,
                        ));
                    }
                }
            }
            let progress = StageProgress {
                total_tasks: stage.num_tasks(),
                finished_secs: &stage_rt.finished_secs,
                running: &running,
            };
            for task in find_speculatable(cfg, self.now, &progress) {
                if self.spec_set.mark(task) {
                    self.need_offers = true;
                    flagged.push(task);
                }
            }
        }
        for task in flagged {
            self.trace_event(TraceEventKind::SpeculationFlagged { task });
        }
    }

    fn oom_check(&mut self, node_id: NodeId, epoch: u64) {
        let cfg = &self.input.config.mem;
        {
            let node = &mut self.nodes[node_id.index()];
            if node.oom_epoch != epoch {
                return; // stale (executor restarted meanwhile)
            }
            node.oom_scheduled = false;
            if node.mem_in_use <= node.executor_mem {
                return; // pressure resolved itself
            }
        }
        let (mem_in_use, executor_mem) = {
            let n = &self.nodes[node_id.index()];
            (n.mem_in_use, n.executor_mem)
        };
        let ratio = mem_in_use.as_f64() / executor_mem.as_f64().max(1.0);
        if ratio >= cfg.executor_kill_ratio {
            // the OS kills the whole JVM (paper §III-C3's catastrophic case)
            self.executor_lost(node_id);
            return;
        }
        let p = (cfg.oom_prob_slope * (ratio - 1.0)).clamp(0.05, 0.95);
        if self.rng_fail.gen_range(0.0..1.0) < p {
            // task-level OOM: the hungriest attempt dies; ties go to the
            // newest attempt (the allocation that tipped the heap over),
            // which is also what lets long-running attempts make progress
            let victim = self.nodes[node_id.index()]
                .running
                .iter()
                .copied()
                .max_by_key(|&id| (self.attempts[id].peak_mem, id));
            if let Some(v) = victim {
                self.oom_failures += 1;
                self.trace_event(TraceEventKind::OomTaskKill {
                    task: self.attempts[v].task,
                    node: node_id,
                    pressure_pct: (ratio * 100.0) as u32,
                });
                self.fail_attempt(v, AttemptOutcome::OomFailure);
            }
        }
        // still overcommitted? keep checking
        self.schedule_oom_check_if_needed(node_id);
    }

    fn schedule_oom_check_if_needed(&mut self, node_id: NodeId) {
        let cfg = &self.input.config.mem;
        let (over, scheduled, epoch) = {
            let n = &self.nodes[node_id.index()];
            (n.mem_in_use > n.executor_mem, n.oom_scheduled, n.oom_epoch)
        };
        if over && !scheduled {
            let lo = cfg.oom_check_min.as_secs_f64();
            let hi = cfg.oom_check_max.as_secs_f64();
            let delay = SimDuration::from_secs_f64(self.rng_fail.gen_range(lo..hi));
            self.nodes[node_id.index()].oom_scheduled = true;
            self.cal.schedule(
                self.now + delay,
                Event::OomCheck {
                    node: node_id,
                    epoch,
                },
            );
        }
    }

    // ---- offers ----------------------------------------------------------

    /// Record one trace event at the current time and round (no-op when
    /// tracing is off).
    fn trace_event(&mut self, kind: TraceEventKind) {
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent {
                at: self.now,
                round: self.round,
                kind,
            });
        }
    }

    fn offer_round(&mut self) {
        let offer = self.build_offer_input();
        let commands = self.sched.offer_round(&offer);
        self.round += 1;
        if self.trace.is_some() {
            let running = offer.nodes.iter().map(|n| n.running.len()).sum();
            let blocked = offer.nodes.iter().filter(|n| n.blocked).count();
            self.trace_event(TraceEventKind::OfferRound {
                pending: offer.pending.len(),
                running,
                blocked,
                commands: commands.len(),
            });
        }
        if self.auditor.is_some() {
            let findings = self.sched.audit_round(&offer);
            let auditor = self.auditor.as_mut().expect("checked above");
            let fresh = auditor.check_round(self.round, &offer, &commands, findings);
            for v in fresh {
                self.trace_event(TraceEventKind::AuditViolation {
                    check: v.check,
                    detail: v.detail,
                });
            }
        }
        for cmd in commands {
            self.apply_command(cmd);
        }
    }

    fn build_node_view(&self, idx: usize) -> NodeView {
        let node = &self.nodes[idx];
        let m = self.node_metrics(idx);
        let (heartbeat_age, dead, suspect) = match self.detector.as_ref() {
            Some(d) => {
                let id = NodeId(idx);
                (
                    d.age(id, self.now),
                    d.is_dead(id),
                    d.health(id) == NodeHealth::Suspect,
                )
            }
            None => (SimDuration::ZERO, false, false),
        };
        let running = node
            .running
            .iter()
            .map(|&aid| {
                let a = &self.attempts[aid];
                RunningTaskView {
                    task: a.task,
                    speculative: a.speculative,
                    elapsed: self.now.since(a.launched_at),
                    peak_mem: a.peak_mem,
                    on_gpu: a.used_gpu,
                }
            })
            .collect();
        NodeView {
            node: NodeId(idx),
            executor_mem: node.executor_mem,
            mem_in_use: node.mem_in_use,
            free_mem: node.executor_mem.saturating_sub(node.mem_in_use),
            running,
            cpu_util: m.cpu_util,
            net_util: m.net_util,
            disk_util: m.disk_util,
            gpus_idle: m.gpus_idle,
            blocked: node.blocked_until > self.now || dead,
            heartbeat_age,
            dead,
            suspect,
        }
    }

    fn build_pending_view(&self, task: TaskRef, attempt_no: u32) -> PendingTaskView {
        let stage = self.input.app.stage(task.stage);
        let template = &stage.tasks[task.index];
        let (process_nodes, node_local) = self.preferred_nodes(task.stage, template);
        PendingTaskView {
            task,
            job: self.stage_jobs[task.stage.index()],
            template_key: stage.template_key,
            stage_kind: stage.kind,
            attempt_no,
            peak_mem_hint: self
                .observed_peak
                .get(&(task.stage, task.index))
                .copied()
                .unwrap_or(ByteSize::ZERO),
            gpu_capable: template.demand.is_gpu_capable(),
            process_nodes,
            node_local,
        }
    }

    fn build_offer_input(&self) -> OfferInput<'a> {
        let nodes: Vec<NodeView> = (0..self.nodes.len())
            .map(|i| self.build_node_view(i))
            .collect();
        let mut pending = Vec::new();
        for (sidx, stage_rt) in self.stages.iter().enumerate() {
            if !stage_rt.released {
                continue;
            }
            for (tidx, state) in stage_rt.tasks.iter().enumerate() {
                if let TaskState::Pending { attempt_no } = state {
                    pending.push(self.build_pending_view(
                        TaskRef {
                            stage: StageId(sidx),
                            index: tidx,
                        },
                        *attempt_no,
                    ));
                }
            }
        }
        let speculatable = self
            .spec_set
            .iter()
            .filter(|t| {
                matches!(
                    self.stages[t.stage.index()].tasks[t.index],
                    TaskState::Running { .. }
                )
            })
            .map(|t| self.build_pending_view(*t, 0))
            .collect();
        OfferInput {
            now: self.now,
            cluster: self.input.cluster,
            app: self.input.app,
            nodes,
            pending,
            speculatable,
            job_arrivals: self.jobs.iter().map(|j| j.arrival).collect(),
        }
    }

    /// Executor-cache keys are scoped per stream job: Spark RDD caches
    /// are application-private, so tenants must not see each other's
    /// cached partitions even when their stages share a template key.
    fn scoped_cache_key(&self, stage: StageId, rdd: &str, partition: usize) -> CacheKey {
        let job = self.stage_jobs[stage.index()];
        CacheKey::new(format!("j{}:{rdd}", job.index()), partition)
    }

    /// `(process_nodes, node_local)` preferred placements for a task.
    fn preferred_nodes(
        &self,
        stage: StageId,
        template: &TaskTemplate,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        match &template.input {
            InputSource::Hdfs(block) => {
                (Vec::new(), self.input.layout.block(*block).replicas.clone())
            }
            InputSource::CachedOrHdfs { key, fallback } => {
                let scoped = self.scoped_cache_key(stage, &key.rdd, key.partition);
                let cached: Vec<NodeId> = (0..self.nodes.len())
                    .map(NodeId)
                    .filter(|n| self.nodes[n.index()].cache.contains(&scoped))
                    .collect();
                (cached, self.input.layout.block(*fallback).replicas.clone())
            }
            InputSource::Shuffle => {
                let parents = &self.input.app.stage(stage).parents;
                let mut per_node = vec![0.0f64; self.nodes.len()];
                let mut total = 0.0f64;
                for p in parents {
                    let prt = &self.stages[p.index()];
                    for (i, b) in prt.map_out_per_node.iter().enumerate() {
                        per_node[i] += b;
                    }
                    total += prt.map_out_total;
                }
                let node_local = if total > 0.0 {
                    per_node
                        .iter()
                        .enumerate()
                        .filter(|(_, &b)| b / total >= REDUCER_PREF_FRACTION)
                        .map(|(i, _)| NodeId(i))
                        .collect()
                } else {
                    Vec::new()
                };
                (Vec::new(), node_local)
            }
            InputSource::Generated => (Vec::new(), Vec::new()),
        }
    }

    fn apply_command(&mut self, cmd: Command) {
        match cmd {
            Command::Launch {
                task,
                node,
                use_gpu,
                speculative,
                reason,
            } => {
                self.try_launch(task, node, use_gpu, speculative, reason);
            }
            Command::KillAndRequeue { task, node } => {
                let state = &self.stages[task.stage.index()].tasks[task.index];
                if let TaskState::Running { attempts } = state {
                    let on_node: Vec<AttemptId> = attempts
                        .iter()
                        .copied()
                        .filter(|&id| self.attempts[id].node == node)
                        .collect();
                    if !on_node.is_empty() {
                        self.trace_event(TraceEventKind::KillRequeue { task, node });
                    }
                    for id in on_node {
                        self.fail_attempt(id, AttemptOutcome::MemoryStragglerKilled);
                    }
                }
            }
        }
    }

    fn try_launch(
        &mut self,
        task: TaskRef,
        node_id: NodeId,
        use_gpu: bool,
        speculative: bool,
        reason: LaunchReason,
    ) {
        if node_id.index() >= self.nodes.len() {
            return;
        }
        if self.nodes[node_id.index()].blocked_until > self.now {
            return;
        }
        // launches aimed at a crashed node — or one the driver has
        // declared dead — are dropped on the floor like a lost RPC
        if self.nodes[node_id.index()].crashed
            || self.detector.as_ref().is_some_and(|d| d.is_dead(node_id))
        {
            return;
        }
        if !self.stages[task.stage.index()].released {
            return;
        }
        let attempt_no = match &self.stages[task.stage.index()].tasks[task.index] {
            TaskState::Pending { attempt_no } if !speculative => *attempt_no,
            TaskState::Running { attempts } if speculative => {
                // one extra copy max, never a copy of a copy
                if attempts.len() != 1 || self.attempts[attempts[0]].speculative {
                    return;
                }
                self.attempts[attempts[0]].attempt_no + 1
            }
            _ => return,
        };

        let stage = self.input.app.stage(task.stage);
        let template = &stage.tasks[task.index];
        let demand = &template.demand;
        let spec = self.input.cluster.node(node_id);
        let cache_key = match &template.input {
            InputSource::CachedOrHdfs { key, .. } => {
                Some(self.scoped_cache_key(task.stage, &key.rdd, key.partition))
            }
            _ => None,
        };
        let node = &mut self.nodes[node_id.index()];

        // resolve input placement & locality (live)
        let mut local_input = ByteSize::ZERO;
        let mut remote_input = ByteSize::ZERO;
        let mut cached_input = false;
        let mut locality = Locality::Any;
        match &template.input {
            InputSource::Hdfs(block) => {
                if self.input.layout.is_replica(*block, node_id) {
                    local_input = demand.input_bytes;
                    locality = Locality::NodeLocal;
                } else {
                    remote_input = demand.input_bytes;
                    locality = self
                        .input
                        .layout
                        .hdfs_locality(self.input.cluster, *block, node_id);
                }
            }
            InputSource::CachedOrHdfs { key: _, fallback } => {
                let scoped = cache_key.as_ref().expect("computed above");
                if node.cache.touch(scoped).is_some() {
                    cached_input = true;
                    locality = Locality::ProcessLocal;
                } else if self.input.layout.is_replica(*fallback, node_id) {
                    local_input = demand.input_bytes;
                    locality = Locality::NodeLocal;
                } else {
                    remote_input = demand.input_bytes;
                    locality =
                        self.input
                            .layout
                            .hdfs_locality(self.input.cluster, *fallback, node_id);
                }
            }
            // Shuffle locality is refined below from map outputs;
            // generated inputs have no locality at all.
            InputSource::Shuffle | InputSource::Generated => {}
        }

        // shuffle split from parent map outputs
        let mut shuffle_local = ByteSize::ZERO;
        let mut shuffle_remote = ByteSize::ZERO;
        if demand.shuffle_read > ByteSize::ZERO {
            let parents = &self.input.app.stage(task.stage).parents;
            let mut on_node = 0.0f64;
            let mut total = 0.0f64;
            for p in parents {
                let prt = &self.stages[p.index()];
                on_node += prt.map_out_per_node[node_id.index()];
                total += prt.map_out_total;
            }
            let frac = if total > 0.0 {
                (on_node / total).clamp(0.0, 1.0)
            } else {
                0.0
            };
            shuffle_local = demand.shuffle_read.scale(frac);
            shuffle_remote = demand.shuffle_read.saturating_sub(shuffle_local);
            if matches!(template.input, InputSource::Shuffle) && frac >= REDUCER_PREF_FRACTION {
                locality = Locality::NodeLocal;
            }
        }

        // GPU-capable task libraries (the paper's NVBLAS example) grab a
        // GPU opportunistically wherever they run — scheduling `use_gpu`
        // only forces sharing when the GPUs are already busy.
        let gpus_busy = node
            .running
            .iter()
            .filter(|&&aid| self.attempts[aid].used_gpu)
            .count() as u32;
        let use_gpu =
            spec.gpus > 0 && demand.is_gpu_capable() && (use_gpu || gpus_busy < spec.gpus);
        node.mem_in_use += demand.peak_mem;
        let pressure = node.mem_in_use.as_f64() / node.executor_mem.as_f64().max(1.0);
        let ctx = LaunchContext {
            local_input,
            remote_input,
            cached_input,
            shuffle_local,
            shuffle_remote,
            use_gpu,
            pressure,
            heap: node.executor_mem,
            decision_cost: self.sched.decision_cost(),
        };
        let phases: VecDeque<Phase> = build_phases(demand, &ctx, &self.input.config.cost).into();

        let id = self.attempts.len();
        self.attempts.push(AttemptRt {
            task,
            template_key: stage.template_key,
            attempt_no,
            speculative,
            node: node_id,
            locality,
            phases,
            launched_at: self.now,
            breakdown: TaskBreakdown::new(),
            peak_mem: demand.peak_mem,
            used_gpu: use_gpu,
            alive: true,
            rate: 0.0,
        });
        self.nodes[node_id.index()].running.push(id);
        let state = &mut self.stages[task.stage.index()].tasks[task.index];
        match state {
            TaskState::Pending { .. } => *state = TaskState::Running { attempts: vec![id] },
            TaskState::Running { attempts } => attempts.push(id),
            TaskState::Done => unreachable!("validated above"),
        }
        if speculative {
            self.speculative_launched += 1;
            self.spec_set.remove(&task);
        }
        self.trace_event(TraceEventKind::Launch {
            task,
            job: self.stage_jobs[task.stage.index()],
            node: node_id,
            attempt: attempt_no,
            speculative,
            use_gpu,
            locality,
            reason,
        });
        self.schedule_oom_check_if_needed(node_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::app::AppBuilder;
    use rupam_dag::task::TaskDemand;
    use rupam_simcore::RngFactory;

    /// A trivially greedy FIFO scheduler used to exercise the engine.
    struct FifoScheduler {
        slots: Vec<usize>,
    }

    impl FifoScheduler {
        fn new() -> Self {
            FifoScheduler { slots: Vec::new() }
        }
    }

    impl Scheduler for FifoScheduler {
        fn name(&self) -> &str {
            "fifo-test"
        }
        fn executor_memory(&self, cluster: &ClusterSpec, node: NodeId) -> ByteSize {
            cluster.node(node).mem
        }
        fn on_app_start(&mut self, _app: &Application, cluster: &ClusterSpec) {
            self.slots = cluster.nodes().iter().map(|n| n.cores as usize).collect();
        }
        fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
            let mut cmds = Vec::new();
            let mut used: Vec<usize> = input.nodes.iter().map(|n| n.running_count()).collect();
            for p in &input.pending {
                if let Some(i) = (0..input.nodes.len())
                    .find(|&i| !input.nodes[i].blocked && used[i] < self.slots[i])
                {
                    used[i] += 1;
                    cmds.push(Command::Launch {
                        task: p.task,
                        node: NodeId(i),
                        use_gpu: false,
                        speculative: false,
                        reason: LaunchReason::FifoSlot,
                    });
                }
            }
            cmds
        }
    }

    fn tiny_app(tasks_per_stage: usize, compute: f64) -> (Application, DataLayout) {
        let mut b = AppBuilder::new("tiny");
        let j = b.begin_job();
        let mk = |n: usize, c: f64, sw: u64, sr: u64| {
            (0..n)
                .map(|i| rupam_dag::task::TaskTemplate {
                    index: i,
                    input: if sr > 0 {
                        InputSource::Shuffle
                    } else {
                        InputSource::Generated
                    },
                    demand: TaskDemand {
                        compute: c,
                        shuffle_write: ByteSize::mib(sw),
                        shuffle_read: ByteSize::mib(sr),
                        peak_mem: ByteSize::mib(512),
                        ..TaskDemand::default()
                    },
                })
                .collect::<Vec<_>>()
        };
        let m = b.add_stage(
            j,
            "map",
            "tiny/map",
            StageKind::ShuffleMap,
            vec![],
            mk(tasks_per_stage, compute, 16, 0),
        );
        b.add_stage(
            j,
            "reduce",
            "tiny/reduce",
            StageKind::Result,
            vec![m],
            mk(2, compute / 2.0, 0, 16),
        );
        (b.build(), DataLayout::new())
    }

    fn run_tiny(seed: u64) -> RunReport {
        let cluster = ClusterSpec::two_node_motivation();
        let (app, layout) = tiny_app(8, 4.0);
        let cfg = SimConfig::default();
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed,
        };
        let mut sched = FifoScheduler::new();
        simulate(&input, &mut sched)
    }

    #[test]
    fn completes_all_tasks() {
        let report = run_tiny(1);
        assert!(report.completed);
        let successes = report
            .records
            .iter()
            .filter(|r| r.outcome.is_success())
            .count();
        assert_eq!(successes, 10);
        assert!(report.makespan > SimDuration::ZERO);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_tiny(42);
        let b = run_tiny(42);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(b.records.iter()) {
            assert_eq!(x.task, y.task);
            assert_eq!(x.node, y.node);
            assert_eq!(x.finished_at, y.finished_at);
        }
    }

    #[test]
    fn respects_ideal_lower_bound() {
        let cluster = ClusterSpec::two_node_motivation();
        let (app, layout) = tiny_app(8, 4.0);
        let lb = rupam_dag::lineage::ideal_lower_bound(&app, &cluster);
        let report = run_tiny(7);
        assert!(
            report.makespan >= lb,
            "makespan {} beats the ideal lower bound {}",
            report.makespan,
            lb
        );
        let _ = layout;
    }

    #[test]
    fn reduce_waits_for_map() {
        let report = run_tiny(3);
        let map_finish = report
            .records
            .iter()
            .filter(|r| r.template_key == "tiny/map" && r.outcome.is_success())
            .map(|r| r.finished_at)
            .max()
            .unwrap();
        let reduce_start = report
            .records
            .iter()
            .filter(|r| r.template_key == "tiny/reduce")
            .map(|r| r.launched_at)
            .min()
            .unwrap();
        assert!(reduce_start >= map_finish, "shuffle dependency violated");
    }

    #[test]
    fn contention_slows_execution() {
        // 1 task vs 32 tasks on a 16-core node: per-task time must grow
        let cluster = ClusterSpec::two_node_motivation();
        let cfg = SimConfig::default();
        let run = |n: usize| {
            let mut b = AppBuilder::new("contend");
            let j = b.begin_job();
            let tasks = (0..n)
                .map(|i| rupam_dag::task::TaskTemplate {
                    index: i,
                    input: InputSource::Generated,
                    demand: TaskDemand {
                        compute: 24.0,
                        peak_mem: ByteSize::mib(64),
                        ..TaskDemand::default()
                    },
                })
                .collect();
            b.add_stage(j, "r", "c/r", StageKind::Result, vec![], tasks);
            let app = b.build();
            let layout = DataLayout::new();
            let input = SimInput {
                cluster: &cluster,
                app: &app,
                layout: &layout,
                config: &cfg,
                seed: 5,
            };
            let mut sched = FifoScheduler::new();
            simulate(&input, &mut sched).makespan
        };
        let t1 = run(1);
        let t64 = run(64);
        // 64 tasks over 32 cores (two nodes) => at least 2 waves
        assert!(t64 > t1 * 1.8, "t1={t1} t64={t64}");
    }

    #[test]
    fn oom_fires_on_overcommit() {
        // one node, tasks that together exceed executor memory
        let cluster = ClusterSpec::homogeneous(1);
        let mut cfg = SimConfig::default();
        cfg.mem.oom_prob_slope = 100.0; // make the OOM certain
        let mut b = AppBuilder::new("oom");
        let j = b.begin_job();
        let tasks = (0..8)
            .map(|i| rupam_dag::task::TaskTemplate {
                index: i,
                input: InputSource::Generated,
                demand: TaskDemand {
                    compute: 120.0,
                    peak_mem: ByteSize::gib(7), // 8 × 7 = 56 > 46 GiB executor
                    ..TaskDemand::default()
                },
            })
            .collect();
        b.add_stage(j, "r", "oom/r", StageKind::Result, vec![], tasks);
        let app = b.build();
        let layout = DataLayout::new();
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed: 11,
        };
        let mut sched = FifoScheduler::new();
        let report = simulate(&input, &mut sched);
        assert!(
            report.oom_failures > 0 || report.executor_losses > 0,
            "expected memory failures, got none"
        );
        assert!(report.completed, "should eventually recover and finish");
    }

    #[test]
    fn speculation_rescues_straggler_node() {
        // cluster with one crippled node: tasks stuck there get copies
        let mut nodes = Vec::new();
        for i in 0..3 {
            nodes.push(rupam_cluster::NodeSpec {
                name: format!("n{i}"),
                class: "fast".into(),
                // cripple node 0, and give it only 2 cores so ≥ 75 % of
                // the stage can still finish (Spark's speculation quantile)
                cores: if i == 0 { 2 } else { 4 },
                cpu_ghz: if i == 0 { 0.05 } else { 3.0 },
                mem: ByteSize::gib(32),
                net_bw: 1.25e9,
                disk: rupam_cluster::DiskSpec::sata_ssd(),
                gpus: 0,
                gpu_gcps: 0.0,
                rack: 0,
            });
        }
        let cluster = ClusterSpec::new(nodes);
        let cfg = SimConfig::default();
        let mut b = AppBuilder::new("spec");
        let j = b.begin_job();
        let tasks = (0..12)
            .map(|i| rupam_dag::task::TaskTemplate {
                index: i,
                input: InputSource::Generated,
                demand: TaskDemand {
                    compute: 30.0,
                    peak_mem: ByteSize::mib(128),
                    ..TaskDemand::default()
                },
            })
            .collect();
        b.add_stage(j, "r", "spec/r", StageKind::Result, vec![], tasks);
        let app = b.build();
        let layout = DataLayout::new();

        // FIFO launches 4 tasks onto the crippled node; speculation must
        // eventually re-run them elsewhere. FifoScheduler ignores the
        // speculatable list, so extend it minimally here.
        struct SpecFifo(FifoScheduler);
        impl Scheduler for SpecFifo {
            fn name(&self) -> &str {
                "spec-fifo"
            }
            fn executor_memory(&self, c: &ClusterSpec, n: NodeId) -> ByteSize {
                self.0.executor_memory(c, n)
            }
            fn on_app_start(&mut self, a: &Application, c: &ClusterSpec) {
                self.0.on_app_start(a, c);
            }
            fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
                let mut cmds = self.0.offer_round(input);
                for s in &input.speculatable {
                    // copy onto the last (fast) node
                    cmds.push(Command::Launch {
                        task: s.task,
                        node: NodeId(2),
                        use_gpu: false,
                        speculative: true,
                        reason: LaunchReason::SparkSpeculative,
                    });
                }
                cmds
            }
        }
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed: 2,
        };
        let mut sched = SpecFifo(FifoScheduler::new());
        let report = simulate(&input, &mut sched);
        assert!(report.completed);
        assert!(
            report.speculative_launched > 0,
            "no speculative copies launched"
        );
        assert!(
            report.speculative_wins > 0,
            "copies on fast nodes should win"
        );
        // every task succeeded exactly once
        let mut winners: Vec<TaskRef> = report
            .records
            .iter()
            .filter(|r| r.outcome.is_success())
            .map(|r| r.task)
            .collect();
        winners.sort();
        winners.dedup();
        assert_eq!(winners.len(), 12);
    }

    #[test]
    fn utilization_recorded() {
        let report = run_tiny(9);
        let hist = report
            .monitor
            .history(NodeId(0), rupam_cluster::monitor::MetricKey::CpuUtil);
        assert!(!hist.is_empty(), "cpu history empty");
        // at some point utilisation was positive
        assert!(hist.points().iter().any(|p| p.1 > 0.0));
    }

    #[test]
    fn gpu_task_uses_gpu_when_asked() {
        let mut nodes = vec![rupam_cluster::NodeSpec {
            name: "g0".into(),
            class: "gpu".into(),
            cores: 4,
            cpu_ghz: 1.0,
            mem: ByteSize::gib(32),
            net_bw: 1.25e9,
            disk: rupam_cluster::DiskSpec::sata_ssd(),
            gpus: 1,
            gpu_gcps: 20.0,
            rack: 0,
        }];
        nodes.push(nodes[0].clone());
        nodes[1].name = "g1".into();
        let cluster = ClusterSpec::new(nodes);
        let cfg = SimConfig::default();
        let mut b = AppBuilder::new("gpu");
        let j = b.begin_job();
        b.add_stage(
            j,
            "r",
            "gpu/r",
            StageKind::Result,
            vec![],
            vec![rupam_dag::task::TaskTemplate {
                index: 0,
                input: InputSource::Generated,
                demand: TaskDemand {
                    compute: 40.0,
                    gpu_kernels: 40.0,
                    peak_mem: ByteSize::mib(128),
                    ..TaskDemand::default()
                },
            }],
        );
        let app = b.build();
        let layout = DataLayout::new();

        struct GpuFifo;
        impl Scheduler for GpuFifo {
            fn name(&self) -> &str {
                "gpu-fifo"
            }
            fn executor_memory(&self, c: &ClusterSpec, n: NodeId) -> ByteSize {
                c.node(n).mem
            }
            fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command> {
                input
                    .pending
                    .iter()
                    .map(|p| Command::Launch {
                        task: p.task,
                        node: NodeId(0),
                        use_gpu: true,
                        speculative: false,
                        reason: LaunchReason::FifoSlot,
                    })
                    .collect()
            }
        }
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed: 1,
        };
        let mut sched = GpuFifo;
        let report = simulate(&input, &mut sched);
        assert!(report.completed);
        assert_eq!(report.gpu_task_count(), 1);
        // 40 Gcycles at 20 Gc/s on GPU ≈ 2 s; on the 1 GHz CPU it would be 40 s
        assert!(
            report.makespan < SimDuration::from_secs(10),
            "GPU not used: {}",
            report.makespan
        );
    }

    #[test]
    fn stream_jobs_wait_for_arrival_and_report_jcts() {
        let cluster = ClusterSpec::two_node_motivation();
        let cfg = SimConfig::default();
        let mut stream = rupam_dag::JobStream::new();
        for (i, arrival) in [0.0f64, 30.0].into_iter().enumerate() {
            let (app, layout) = tiny_app(4, 4.0);
            stream.push(
                format!("tenant-{i}"),
                app,
                layout,
                SimTime::from_secs_f64(arrival),
            );
        }
        let merged = stream.merge();
        let input = StreamInput {
            cluster: &cluster,
            stream: &merged,
            config: &cfg,
            seed: 21,
        };
        let mut sched = FifoScheduler::new();
        let report = simulate_stream(&input, &mut sched);
        assert!(report.completed);
        assert_eq!(report.jobs.len(), 2);
        assert_eq!(report.jobs[1].submitted_at, SimTime::from_secs_f64(30.0));
        for j in &report.jobs {
            assert!(j.completed_at.is_some(), "job {:?} never finished", j.job);
        }
        // nothing of the late tenant may launch before it arrives
        let early = report
            .records
            .iter()
            .filter(|r| r.job == JobId(1))
            .map(|r| r.launched_at)
            .min()
            .unwrap();
        assert!(early >= SimTime::from_secs_f64(30.0));
        // JCTs are per job, not makespan: job 0 finished long before t=30
        let jct0 = report.jobs[0].jct().unwrap();
        assert!(jct0 < SimDuration::from_secs(30), "jct0 = {jct0}");
        assert!(report.jct_mean() > 0.0);
    }

    #[test]
    fn single_app_run_reports_one_job() {
        let report = run_tiny(6);
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.jobs[0].submitted_at, SimTime::ZERO);
        assert_eq!(
            report.jobs[0].completed_at,
            Some(SimTime::ZERO + report.makespan)
        );
        assert!(report.records.iter().all(|r| r.job == JobId(0)));
    }

    #[test]
    fn cache_hit_upgrades_locality() {
        let cluster = ClusterSpec::homogeneous(2);
        let cfg = SimConfig::default();
        let mut rng = RngFactory::new(4).stream("layout");
        let mut layout = DataLayout::new();
        let blocks = layout.place_blocks(&cluster, &[ByteSize::mib(128); 2], 1, &mut rng);
        let mut b = AppBuilder::new("cache");
        let mk_tasks = |blocks: &[rupam_dag::BlockId]| {
            blocks
                .iter()
                .enumerate()
                .map(|(i, blk)| rupam_dag::task::TaskTemplate {
                    index: i,
                    input: InputSource::CachedOrHdfs {
                        key: CacheKey::new("cache/data", i),
                        fallback: *blk,
                    },
                    demand: TaskDemand {
                        compute: 2.0,
                        input_bytes: ByteSize::mib(128),
                        peak_mem: ByteSize::mib(256),
                        cached_bytes: ByteSize::mib(160),
                        ..TaskDemand::default()
                    },
                })
                .collect::<Vec<_>>()
        };
        // two identical jobs over the same cacheable RDD
        for _ in 0..2 {
            let j = b.begin_job();
            b.add_stage(
                j,
                "scan",
                "cache/data",
                StageKind::Result,
                vec![],
                mk_tasks(&blocks),
            );
        }
        let app = b.build();
        let input = SimInput {
            cluster: &cluster,
            app: &app,
            layout: &layout,
            config: &cfg,
            seed: 8,
        };
        let mut sched = FifoScheduler::new();
        let report = simulate(&input, &mut sched);
        assert!(report.completed);
        let first_job: Vec<&TaskRecord> = report
            .records
            .iter()
            .filter(|r| r.task.stage == StageId(0) && r.outcome.is_success())
            .collect();
        let second_job: Vec<&TaskRecord> = report
            .records
            .iter()
            .filter(|r| r.task.stage == StageId(1) && r.outcome.is_success())
            .collect();
        assert!(first_job
            .iter()
            .all(|r| r.locality != Locality::ProcessLocal));
        // FIFO places tasks deterministically on node 0 first; the cached
        // copies live where the first job ran, so at least one second-job
        // task should hit the cache.
        assert!(
            second_job
                .iter()
                .any(|r| r.locality == Locality::ProcessLocal),
            "no cache hits in second job: {:?}",
            second_job.iter().map(|r| r.locality).collect::<Vec<_>>()
        );
    }
}
