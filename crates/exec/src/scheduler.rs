//! The pluggable scheduler interface.
//!
//! The engine mirrors Spark's offer-based protocol: it notifies the
//! scheduler of lifecycle events (`on_stage_ready`, `on_task_finished`,
//! `on_task_failed`) and, whenever capacity might have appeared (a task
//! finished, a heartbeat arrived, an executor came back), builds a
//! read-only [`OfferInput`] snapshot and asks the scheduler for
//! [`Command`]s. Commands are validated against live state before being
//! applied, so schedulers may act on slightly stale views safely — just
//! like real drivers do.

use rupam_simcore::time::{SimDuration, SimTime};
use rupam_simcore::units::ByteSize;
use rupam_simcore::Sym;

use rupam_cluster::{ClusterSpec, NodeId, NodeTier};
use rupam_dag::app::{Application, JobId, Stage, StageId, StageKind};
use rupam_dag::{Locality, TaskRef, TenantId};
use rupam_metrics::record::{AttemptOutcome, TaskRecord};
use rupam_metrics::trace::LaunchReason;

/// A summary of one running attempt, visible to schedulers (for RUPAM's
/// memory-straggler detection and resource-aware speculation).
#[derive(Clone, Debug)]
pub struct RunningTaskView {
    /// The task being run.
    pub task: TaskRef,
    /// Whether this copy is speculative.
    pub speculative: bool,
    /// Time since launch.
    pub elapsed: SimDuration,
    /// Memory the attempt holds.
    pub peak_mem: ByteSize,
    /// Whether it runs its kernels on a GPU.
    pub on_gpu: bool,
}

/// Read-only view of one node at offer time.
#[derive(Clone, Debug)]
pub struct NodeView {
    /// The node.
    pub node: NodeId,
    /// Executor heap size on this node (scheduler-determined at start).
    pub executor_mem: ByteSize,
    /// Memory held by running attempts.
    pub mem_in_use: ByteSize,
    /// Free executor memory (`executor_mem - mem_in_use`).
    pub free_mem: ByteSize,
    /// Running attempts.
    pub running: Vec<RunningTaskView>,
    /// Busy-core fraction right now.
    pub cpu_util: f64,
    /// NIC utilisation fraction right now.
    pub net_util: f64,
    /// Disk utilisation fraction right now.
    pub disk_util: f64,
    /// GPUs not currently executing kernels.
    pub gpus_idle: u32,
    /// True while the executor JVM is restarting or the failure detector
    /// has declared the node dead (nothing can launch).
    pub blocked: bool,
    /// Time since the node's last heartbeat reached the RM (always zero
    /// when the fault subsystem is disabled).
    pub heartbeat_age: SimDuration,
    /// True when the failure detector has declared the node dead: it is
    /// evicted from every ranking until heartbeats resume.
    pub dead: bool,
    /// True when the node's heartbeats are late enough to suspect it;
    /// speculation treats its running tasks as straggler sources.
    pub suspect: bool,
    /// Billing tier: on-demand (fixed fleet) or spot (elastic, cheaper,
    /// preemptible). Always on-demand without spot pools.
    pub tier: NodeTier,
    /// True while a preemption notice is in flight: running tasks may
    /// finish inside the drain window, but nothing new launches.
    pub draining: bool,
    /// Current per-check preemption probability of the node's spot pool
    /// (0.0 for on-demand nodes and deprovisioned spot nodes).
    /// Risk-aware dispatchers penalise placements by it.
    pub preempt_risk: f64,
}

impl NodeView {
    /// Number of running attempts (stock Spark's slot accounting).
    pub fn running_count(&self) -> usize {
        self.running.len()
    }
}

/// One pending (launchable) task at offer time.
#[derive(Clone, Debug)]
pub struct PendingTaskView {
    /// The task.
    pub task: TaskRef,
    /// Stream job the task belongs to (`JobId(0)` on single-app runs).
    pub job: JobId,
    /// Template key of its stage (RUPAM's `DB_task_char` key part).
    pub template_key: Sym,
    /// Map or result stage (Algorithm 1's first-contact heuristic).
    pub stage_kind: StageKind,
    /// Attempt number this launch would get (0 = first).
    pub attempt_no: u32,
    /// Ground-truth-free memory hint: the *observed* peak of the previous
    /// attempt if any, else the stage-level conservative estimate Spark
    /// exposes through its memory manager. RUPAM's Algorithm 2 compares
    /// this against node free memory.
    pub peak_mem_hint: ByteSize,
    /// Whether the task has GPU kernels (known statically in the paper:
    /// BLAS-backed stages are marked once one task is seen using a GPU).
    pub gpu_capable: bool,
    /// Nodes whose executor cache holds the input (`PROCESS_LOCAL`).
    pub process_nodes: Vec<NodeId>,
    /// Nodes with an HDFS replica or ≥ 20 % of the shuffle input
    /// (`NODE_LOCAL`).
    pub node_local: Vec<NodeId>,
}

impl PendingTaskView {
    /// Locality this task would achieve on `node`.
    pub fn locality(&self, cluster: &ClusterSpec, node: NodeId) -> Locality {
        if self.process_nodes.contains(&node) {
            return Locality::ProcessLocal;
        }
        if self.node_local.contains(&node) {
            return Locality::NodeLocal;
        }
        if self.node_local.iter().any(|&n| cluster.same_rack(n, node)) {
            return Locality::RackLocal;
        }
        Locality::Any
    }

    /// Best locality achievable anywhere right now.
    pub fn best_locality(&self) -> Locality {
        if !self.process_nodes.is_empty() {
            Locality::ProcessLocal
        } else if !self.node_local.is_empty() {
            Locality::NodeLocal
        } else {
            Locality::Any
        }
    }
}

/// The full offer-round snapshot.
pub struct OfferInput<'a> {
    /// Current time.
    pub now: SimTime,
    /// Cluster topology.
    pub cluster: &'a ClusterSpec,
    /// The application being run.
    pub app: &'a Application,
    /// Per-node views, indexed by node id.
    pub nodes: Vec<NodeView>,
    /// All launchable regular tasks, in (stage, index) order.
    pub pending: Vec<PendingTaskView>,
    /// Running tasks eligible for a speculative copy, per Spark's policy
    /// (plus whatever the scheduler adds on its own authority).
    pub speculatable: Vec<PendingTaskView>,
    /// Submission instant of each stream job, indexed by [`JobId`]
    /// (`[t0]` on single-app runs). No task of a job may launch before
    /// its job's arrival — the auditor enforces this.
    pub job_arrivals: Vec<SimTime>,
    /// Tenant of each stream job, indexed by [`JobId`]
    /// (`[TenantId(0)]` on single-app runs). Tenant-aware allocators
    /// resolve a pending task's tenant through its `job`; FIFO-baseline
    /// schedulers ignore the column entirely.
    pub job_tenants: Vec<TenantId>,
    /// Engine-computed delta against the previous offer round: the nodes
    /// whose view may differ from what the scheduler last saw (the
    /// paper's collectors piggy-back exactly such deltas on heartbeats).
    /// `None` means "unknown — assume every node moved"; schedulers may
    /// use a `Some` set to refresh cached rankings in `O(changed)`
    /// instead of `O(nodes)`, but must behave identically either way.
    ///
    /// Guarantee: a `Some` delta is sorted by node id and always
    /// includes every node with running attempts in this round's view or
    /// the previous one — so policies that only act on running attempts
    /// (straggler kills, GPU races, relocations) may scan the delta
    /// instead of the whole cluster without missing a candidate.
    pub changed: Option<Vec<NodeId>>,
    /// The task-side counterpart of [`changed`](Self::changed): the
    /// caller's warranty about how `pending` differs from the previous
    /// offer round it gave this scheduler. `None` means "unknown —
    /// rescan everything" (the sim engine rebuilds its pending list per
    /// round and always passes `None`). A `Some` list is sorted by
    /// `(stage, index)` and contains every task that (a) entered or
    /// re-entered the pending set since the previous round, or (b) is
    /// still pending but had its view change (placement preferences,
    /// peak-memory hint). Tasks the *scheduler's own commands* launched
    /// are exempt — the scheduler saw those leave. Schedulers may use
    /// the list to ingest new work in `O(fresh)` and keep persistent
    /// task-queue partitions instead of rescanning `O(pending)` per
    /// round, but must decide identically either way.
    pub pending_fresh: Option<Vec<TaskRef>>,
}

/// What an offer-input producer saw of one node at the previous offer
/// round — exactly the fields node rankings can depend on.
/// `heartbeat_age` is deliberately absent: it moves monotonically every
/// round under an armed detector, and the state changes it drives
/// (suspect/dead) are captured here at their transitions.
#[derive(Clone, Copy, PartialEq)]
pub struct NodeShadow {
    executor_mem: ByteSize,
    mem_in_use: ByteSize,
    cpu_util: f64,
    net_util: f64,
    disk_util: f64,
    gpus_idle: u32,
    blocked: bool,
    dead: bool,
    suspect: bool,
    draining: bool,
    preempt_risk: f64,
    running_len: usize,
}

impl NodeShadow {
    /// Shadow of one node view.
    pub fn of(v: &NodeView) -> Self {
        NodeShadow {
            executor_mem: v.executor_mem,
            mem_in_use: v.mem_in_use,
            cpu_util: v.cpu_util,
            net_util: v.net_util,
            disk_util: v.disk_util,
            gpus_idle: v.gpus_idle,
            blocked: v.blocked,
            dead: v.dead,
            suspect: v.suspect,
            draining: v.draining,
            preempt_risk: v.preempt_risk,
            running_len: v.running.len(),
        }
    }
}

/// The producer-side state behind [`OfferInput::changed`]: one
/// [`NodeShadow`] per node, diffed against each round's fresh views.
/// Shared by the sim engine and the live serve driver so both modes emit
/// deltas under the exact same rule (and therefore satisfy the same
/// guarantee: running nodes — this round or last — are always included).
#[derive(Default)]
pub struct NodeShadowTable {
    shadows: Vec<NodeShadow>,
}

impl NodeShadowTable {
    /// An empty table; the first [`diff`](Self::diff) returns `None`.
    pub fn new() -> Self {
        NodeShadowTable::default()
    }

    /// Diff this round's views against the previous round's shadow,
    /// producing the changed-node delta for [`OfferInput::changed`].
    /// Nodes with running attempts (now or at the previous offer) are
    /// always in the delta: their attempt composition can change — which
    /// attempts hold GPUs, what they have accrued — without any shadowed
    /// scalar moving. The first round after (re)sizing returns `None`
    /// (full rescore).
    pub fn diff(&mut self, views: &[NodeView]) -> Option<Vec<NodeId>> {
        if self.shadows.len() != views.len() {
            self.shadows = views.iter().map(NodeShadow::of).collect();
            return None;
        }
        let mut delta = Vec::new();
        for (i, v) in views.iter().enumerate() {
            let next = NodeShadow::of(v);
            let prev = self.shadows[i];
            if next != prev || next.running_len > 0 || prev.running_len > 0 {
                self.shadows[i] = next;
                delta.push(NodeId(i));
            }
        }
        Some(delta)
    }
}

/// An action a scheduler requests.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Launch a pending task (or a speculative copy of a running one).
    Launch {
        /// Task to launch.
        task: TaskRef,
        /// Target node.
        node: NodeId,
        /// Execute GPU kernels on a GPU (engine falls back to CPU when
        /// the task has no kernels).
        use_gpu: bool,
        /// Launch as a speculative / racing copy of a running attempt.
        speculative: bool,
        /// Why the scheduler placed the task here — recorded in decision
        /// traces and used by the invariant auditor to decide which
        /// checks the launch must satisfy.
        reason: LaunchReason,
    },
    /// Kill a *running* attempt and requeue its task (RUPAM's
    /// memory-straggler relocation §III-C3, or tenant-quota preemption).
    KillAndRequeue {
        /// Task whose running attempt dies.
        task: TaskRef,
        /// Node it is running on (guards against stale views).
        node: NodeId,
        /// Why the attempt dies — decides the recorded
        /// [`AttemptOutcome`] and which TM statistics the kill feeds.
        reason: KillReason,
    },
}

/// Why a [`Command::KillAndRequeue`] was issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillReason {
    /// RUPAM's memory-straggler relocation: the attempt grinds against
    /// memory pressure and is re-queued for a better-fitting node. Feeds
    /// the TM's memory-failure statistics.
    MemoryStraggler,
    /// The attempt's tenant ran over quota; the allocator reclaims the
    /// capacity. Says nothing about the task's memory behaviour, so the
    /// TM must *not* count it as a memory failure.
    QuotaPreempt,
}

/// A task scheduler: stock Spark, RUPAM, or an ablation variant.
pub trait Scheduler {
    /// Human-readable name used in reports.
    fn name(&self) -> &str;

    /// Executor heap size to launch on `node`. Stock Spark returns one
    /// uniform size; RUPAM sizes per node (§III-C2).
    fn executor_memory(&self, cluster: &ClusterSpec, node: NodeId) -> ByteSize;

    /// Per-decision overhead charged to each launched task as scheduler
    /// delay.
    fn decision_cost(&self) -> SimDuration {
        SimDuration::from_millis(1)
    }

    /// Called once before the run.
    fn on_app_start(&mut self, _app: &Application, _cluster: &ClusterSpec) {}

    /// A stream job was submitted: `stages` are all the stages it will
    /// eventually run (its chain of app-jobs). Called at the run start
    /// for jobs already arrived, then at each later arrival. Single-app
    /// runs see exactly one call covering the whole application.
    fn on_job_submitted(&mut self, _job: JobId, _stages: &[StageId], _now: SimTime) {}

    /// A stage's tasks became launchable.
    fn on_stage_ready(&mut self, _stage: &Stage, _now: SimTime) {}

    /// An attempt finished successfully; `record` carries the observed
    /// task metrics (Table I, right side) RUPAM's TM banks.
    fn on_task_finished(&mut self, _record: &TaskRecord, _now: SimTime) {}

    /// An attempt failed (OOM, executor loss, straggler kill) and the
    /// task went back to pending.
    fn on_task_failed(
        &mut self,
        _task: TaskRef,
        _node: NodeId,
        _outcome: AttemptOutcome,
        _now: SimTime,
    ) {
    }

    /// Produce commands for the current snapshot.
    fn offer_round(&mut self, input: &OfferInput<'_>) -> Vec<Command>;

    /// Audit scheduler-internal invariants against the snapshot the
    /// round just consumed (queue ordering, staleness of cached state,
    /// …). Called by the engine's [`InvariantAuditor`] after each round
    /// when auditing is enabled; returns human-readable violation
    /// descriptions. Default: no scheduler-specific invariants.
    ///
    /// [`InvariantAuditor`]: crate::audit::InvariantAuditor
    fn audit_round(&self, _input: &OfferInput<'_>) -> Vec<String> {
        Vec::new()
    }

    /// Engine heartbeat tick — a hook for cheap background maintenance
    /// (draining write-behind stores, aging caches) off the dispatch
    /// path. Default: nothing.
    fn on_heartbeat(&mut self, _now: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupam_dag::StageId;

    fn view(process: Vec<NodeId>, node_local: Vec<NodeId>) -> PendingTaskView {
        PendingTaskView {
            task: TaskRef {
                stage: StageId(0),
                index: 0,
            },
            job: JobId(0),
            template_key: "t".into(),
            stage_kind: StageKind::ShuffleMap,
            attempt_no: 0,
            peak_mem_hint: ByteSize::mib(256),
            gpu_capable: false,
            process_nodes: process,
            node_local,
        }
    }

    #[test]
    fn locality_resolution() {
        let cluster = ClusterSpec::hydra();
        // thor nodes 0 and 2 share rack 0; thor 1 is rack 1
        let v = view(vec![NodeId(0)], vec![NodeId(2)]);
        assert_eq!(v.locality(&cluster, NodeId(0)), Locality::ProcessLocal);
        assert_eq!(v.locality(&cluster, NodeId(2)), Locality::NodeLocal);
        // node 4 (thor5) is rack 0, same rack as the NODE_LOCAL holder 2
        assert_eq!(v.locality(&cluster, NodeId(4)), Locality::RackLocal);
        // node 1 (thor2) is rack 1: no replica, different rack
        assert_eq!(v.locality(&cluster, NodeId(1)), Locality::Any);
    }

    #[test]
    fn best_locality() {
        assert_eq!(
            view(vec![NodeId(0)], vec![]).best_locality(),
            Locality::ProcessLocal
        );
        assert_eq!(
            view(vec![], vec![NodeId(0)]).best_locality(),
            Locality::NodeLocal
        );
        assert_eq!(view(vec![], vec![]).best_locality(), Locality::Any);
    }
}
