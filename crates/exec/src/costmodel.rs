//! Phase construction: a launched task attempt becomes a sequence of
//! resource phases the engine executes under fluid contention.
//!
//! The decomposition mirrors how the paper (and Spark's UI) accounts task
//! time: scheduler delay, shuffle fetch (network vs local disk),
//! (de)serialisation, compute (CPU or GPU kernels), garbage collection,
//! shuffle write and driver output. A 4 GHz core executes `Cpu` work four
//! times faster than a 1 GHz core; bandwidth-bound phases are shared
//! equally among concurrent users on the node.

use rupam_metrics::breakdown::BreakdownCategory;
use rupam_simcore::time::SimDuration;
use rupam_simcore::units::ByteSize;

use rupam_dag::task::TaskDemand;

use crate::config::CostConfig;

/// Which node resource a phase consumes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhaseResource {
    /// One CPU core; work in giga-cycles.
    Cpu,
    /// One GPU; work in giga-cycles executed at the node's `gpu_gcps`.
    Gpu,
    /// NIC receive bandwidth; work in bytes.
    Net,
    /// Disk read bandwidth; work in bytes.
    DiskRead,
    /// Disk write bandwidth; work in bytes.
    DiskWrite,
    /// Pure wall-clock wait; work in seconds (rate always 1).
    Wait,
}

/// One phase of a task attempt.
#[derive(Clone, Copy, Debug)]
pub struct Phase {
    /// Resource consumed.
    pub resource: PhaseResource,
    /// Remaining work, in the resource's unit.
    pub work: f64,
    /// Where elapsed time is charged in the breakdown.
    pub category: BreakdownCategory,
}

/// Everything about the placement that shapes an attempt's phases.
#[derive(Clone, Debug)]
pub struct LaunchContext {
    /// Input bytes read from the node's local disk (local HDFS replica).
    pub local_input: ByteSize,
    /// Input bytes fetched over the network (remote replica).
    pub remote_input: ByteSize,
    /// Input served from the executor cache (no read phase, no input
    /// deserialisation — cached partitions are live JVM objects).
    pub cached_input: bool,
    /// Shuffle bytes available on the node's local disk.
    pub shuffle_local: ByteSize,
    /// Shuffle bytes fetched from other nodes.
    pub shuffle_remote: ByteSize,
    /// Run GPU kernels on a GPU (true) or fall back to the CPU (false).
    pub use_gpu: bool,
    /// Executor heap pressure right after admission,
    /// `mem_in_use / executor_mem`, clamped to `0..=1.5`.
    pub pressure: f64,
    /// Executor heap size.
    pub heap: ByteSize,
    /// The scheduler's per-decision overhead, charged as scheduler delay.
    pub decision_cost: SimDuration,
}

/// Build the phase list for one attempt.
pub fn build_phases(demand: &TaskDemand, ctx: &LaunchContext, cfg: &CostConfig) -> Vec<Phase> {
    let mut phases = Vec::with_capacity(8);
    let mut push = |resource: PhaseResource, work: f64, category: BreakdownCategory| {
        if work > 0.0 {
            phases.push(Phase {
                resource,
                work,
                category,
            });
        }
    };

    // 1. scheduler decision overhead
    push(
        PhaseResource::Wait,
        ctx.decision_cost.as_secs_f64(),
        BreakdownCategory::SchedulerDelay,
    );

    // 2a. remote shuffle fetch over the NIC
    push(
        PhaseResource::Net,
        ctx.shuffle_remote.as_f64(),
        BreakdownCategory::ShuffleNet,
    );
    // 2b. remote HDFS input over the NIC (reported apart from shuffle,
    //     as Spark does — Algorithm 1 keys on *shuffle* time)
    push(
        PhaseResource::Net,
        ctx.remote_input.as_f64(),
        BreakdownCategory::HdfsNet,
    );

    // 3a. local shuffle spill from disk
    push(
        PhaseResource::DiskRead,
        ctx.shuffle_local.as_f64(),
        BreakdownCategory::ShuffleDisk,
    );
    // 3b. local HDFS replica from disk
    push(
        PhaseResource::DiskRead,
        ctx.local_input.as_f64(),
        BreakdownCategory::HdfsDisk,
    );

    // 4. (de)serialisation: everything read from bytes plus everything
    //    written back to bytes; cached input is already deserialised.
    let mut ser_bytes = demand.shuffle_read + demand.shuffle_write + demand.output_bytes;
    if !ctx.cached_input {
        ser_bytes += demand.input_bytes;
    }
    push(
        PhaseResource::Cpu,
        cfg.ser_cycles_per_byte * ser_bytes.as_f64() / 1e9,
        BreakdownCategory::Serialization,
    );

    // 5. task body
    if ctx.use_gpu && demand.gpu_kernels > 0.0 {
        push(
            PhaseResource::Gpu,
            demand.gpu_kernels,
            BreakdownCategory::Compute,
        );
        push(
            PhaseResource::Cpu,
            (demand.compute - demand.gpu_kernels).max(0.0),
            BreakdownCategory::Compute,
        );
    } else {
        push(
            PhaseResource::Cpu,
            demand.compute,
            BreakdownCategory::Compute,
        );
    }

    // 6. garbage collection: churn term + heap-scan term
    let pressure = ctx.pressure.clamp(0.0, 1.5);
    let churn = cfg.gc_churn_cycles_per_byte
        * demand.bytes_touched().as_f64()
        * (0.25 + pressure * pressure)
        / 1e9;
    let heap_scan = cfg.gc_heap_cycles_per_byte * ctx.heap.as_f64() * pressure * pressure / 1e9;
    push(PhaseResource::Cpu, churn + heap_scan, BreakdownCategory::Gc);

    // 7. shuffle write to local disk
    push(
        PhaseResource::DiskWrite,
        demand.shuffle_write.as_f64(),
        BreakdownCategory::ShuffleWrite,
    );

    // 8. result bytes to the driver
    push(
        PhaseResource::Net,
        demand.output_bytes.as_f64(),
        BreakdownCategory::ShuffleNet,
    );

    phases
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand() -> TaskDemand {
        TaskDemand {
            compute: 10.0,
            gpu_kernels: 0.0,
            input_bytes: ByteSize::mib(128),
            shuffle_read: ByteSize::mib(64),
            shuffle_write: ByteSize::mib(32),
            output_bytes: ByteSize::mib(1),
            peak_mem: ByteSize::gib(1),
            cached_bytes: ByteSize::ZERO,
        }
    }

    fn ctx() -> LaunchContext {
        LaunchContext {
            local_input: ByteSize::mib(128),
            remote_input: ByteSize::ZERO,
            cached_input: false,
            shuffle_local: ByteSize::mib(16),
            shuffle_remote: ByteSize::mib(48),
            use_gpu: false,
            pressure: 0.5,
            heap: ByteSize::gib(14),
            decision_cost: SimDuration::from_millis(1),
        }
    }

    fn total_work(phases: &[Phase], res: PhaseResource) -> f64 {
        phases
            .iter()
            .filter(|p| p.resource == res)
            .map(|p| p.work)
            .sum()
    }

    #[test]
    fn phases_cover_all_flows() {
        let phases = build_phases(&demand(), &ctx(), &CostConfig::default());
        assert!(
            (total_work(&phases, PhaseResource::Net)
                - (ByteSize::mib(48) + ByteSize::mib(1)).as_f64())
            .abs()
                < 1.0
        );
        assert!(
            (total_work(&phases, PhaseResource::DiskRead)
                - (ByteSize::mib(16) + ByteSize::mib(128)).as_f64())
            .abs()
                < 1.0
        );
        assert!(
            (total_work(&phases, PhaseResource::DiskWrite) - ByteSize::mib(32).as_f64()).abs()
                < 1.0
        );
        // compute + serialisation + gc all on CPU
        assert!(total_work(&phases, PhaseResource::Cpu) > 10.0);
        assert!((total_work(&phases, PhaseResource::Wait) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn zero_work_phases_skipped() {
        let d = TaskDemand {
            compute: 1.0,
            ..TaskDemand::default()
        };
        let c = LaunchContext {
            local_input: ByteSize::ZERO,
            remote_input: ByteSize::ZERO,
            cached_input: true,
            shuffle_local: ByteSize::ZERO,
            shuffle_remote: ByteSize::ZERO,
            use_gpu: false,
            pressure: 0.0,
            heap: ByteSize::gib(14),
            decision_cost: SimDuration::ZERO,
        };
        let phases = build_phases(&d, &c, &CostConfig::default());
        // only compute (ser=0 because nothing read/written, gc tiny-but-positive? churn=0, heap term 0 at p=0)
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].resource, PhaseResource::Cpu);
        assert_eq!(phases[0].category, BreakdownCategory::Compute);
    }

    #[test]
    fn cached_input_skips_read_and_deser() {
        let cfg = CostConfig::default();
        let base = build_phases(&demand(), &ctx(), &cfg);
        let mut cached_ctx = ctx();
        cached_ctx.cached_input = true;
        cached_ctx.local_input = ByteSize::ZERO;
        let cached = build_phases(&demand(), &cached_ctx, &cfg);
        let ser = |ps: &[Phase]| -> f64 {
            ps.iter()
                .filter(|p| p.category == BreakdownCategory::Serialization)
                .map(|p| p.work)
                .sum()
        };
        assert!(ser(&cached) < ser(&base));
        assert!(
            total_work(&cached, PhaseResource::DiskRead)
                < total_work(&base, PhaseResource::DiskRead)
        );
    }

    #[test]
    fn gpu_split() {
        let d = TaskDemand {
            compute: 10.0,
            gpu_kernels: 8.0,
            ..TaskDemand::default()
        };
        let mut c = ctx();
        c.use_gpu = true;
        let phases = build_phases(&d, &c, &CostConfig::default());
        assert!((total_work(&phases, PhaseResource::Gpu) - 8.0).abs() < 1e-12);
        // CPU compute residue = 2.0 (plus ser/gc in other categories)
        let cpu_compute: f64 = phases
            .iter()
            .filter(|p| {
                p.resource == PhaseResource::Cpu && p.category == BreakdownCategory::Compute
            })
            .map(|p| p.work)
            .sum();
        assert!((cpu_compute - 2.0).abs() < 1e-12);
        // on CPU fallback, all 10 run as CPU
        c.use_gpu = false;
        let phases = build_phases(&d, &c, &CostConfig::default());
        assert_eq!(total_work(&phases, PhaseResource::Gpu), 0.0);
        let cpu_compute: f64 = phases
            .iter()
            .filter(|p| {
                p.resource == PhaseResource::Cpu && p.category == BreakdownCategory::Compute
            })
            .map(|p| p.work)
            .sum();
        assert!((cpu_compute - 10.0).abs() < 1e-12);
    }

    #[test]
    fn prop_work_conservation() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        runner
            .run(
                &(
                    0.0f64..200.0, // compute
                    0.0f64..200.0, // gpu kernels (clamped below)
                    0u64..512,     // input MiB
                    0u64..512,     // shuffle read MiB
                    0u64..512,     // shuffle write MiB
                    0.0f64..1.5,   // pressure
                    any::<bool>(), // use_gpu
                    any::<bool>(), // cached input
                ),
                |(compute, gpu, in_mib, sr_mib, sw_mib, pressure, use_gpu, cached)| {
                    let d = TaskDemand {
                        compute,
                        gpu_kernels: gpu.min(compute),
                        input_bytes: ByteSize::mib(in_mib),
                        shuffle_read: ByteSize::mib(sr_mib),
                        shuffle_write: ByteSize::mib(sw_mib),
                        output_bytes: ByteSize::mib(1),
                        peak_mem: ByteSize::gib(1),
                        cached_bytes: ByteSize::ZERO,
                    };
                    let local = ByteSize::mib(sr_mib / 2);
                    let c = LaunchContext {
                        local_input: if cached {
                            ByteSize::ZERO
                        } else {
                            ByteSize::mib(in_mib)
                        },
                        remote_input: ByteSize::ZERO,
                        cached_input: cached,
                        shuffle_local: local,
                        shuffle_remote: d.shuffle_read.saturating_sub(local),
                        use_gpu,
                        pressure,
                        heap: ByteSize::gib(14),
                        decision_cost: SimDuration::from_millis(1),
                    };
                    let phases = build_phases(&d, &c, &CostConfig::default());
                    // every phase has strictly positive work
                    prop_assert!(phases.iter().all(|p| p.work > 0.0));
                    // compute is conserved: total compute-category work
                    // equals the demand regardless of the CPU/GPU split
                    let body: f64 = phases
                        .iter()
                        .filter(|p| p.category == BreakdownCategory::Compute)
                        .map(|p| p.work)
                        .sum();
                    prop_assert!(
                        (body - compute).abs() < 1e-9,
                        "compute leaked: {body} vs {compute}"
                    );
                    // byte flows conserved across net + disk phases
                    let moved: f64 = phases
                        .iter()
                        .filter(|p| {
                            matches!(
                                p.resource,
                                PhaseResource::Net
                                    | PhaseResource::DiskRead
                                    | PhaseResource::DiskWrite
                            )
                        })
                        .map(|p| p.work)
                        .sum();
                    let expected = d.shuffle_read.as_f64()
                        + d.shuffle_write.as_f64()
                        + d.output_bytes.as_f64()
                        + if cached { 0.0 } else { d.input_bytes.as_f64() };
                    prop_assert!(
                        (moved - expected).abs() < 1.0,
                        "bytes leaked: {moved} vs {expected}"
                    );
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn gc_grows_with_pressure_and_heap() {
        let cfg = CostConfig::default();
        let gc = |pressure: f64, heap_gib: u64| -> f64 {
            let mut c = ctx();
            c.pressure = pressure;
            c.heap = ByteSize::gib(heap_gib);
            build_phases(&demand(), &c, &cfg)
                .iter()
                .filter(|p| p.category == BreakdownCategory::Gc)
                .map(|p| p.work)
                .sum()
        };
        assert!(gc(0.9, 14) > gc(0.3, 14));
        assert!(gc(0.9, 62) > gc(0.9, 14));
    }
}
